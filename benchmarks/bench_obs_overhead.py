"""Observability overhead: the disabled path must be (nearly) free.

``repro.obs`` instruments the coverage-kernel primitives, the streaming
runner, the parallel mapper and the serving driver — permanently, at import
time.  The whole design rests on one promise: while the process-global
switch is **off**, that instrumentation costs nothing measurable.  This
benchmark turns the promise into a CI gate:

* **kernel hot path** — the pack/popcount primitives are registered wrapped
  in :func:`repro.coverage.kernels._timed_kernel_op`; with obs disabled the
  wrapper is one ``enabled()`` check.  :func:`uninstrumented_backend`
  recovers the raw primitives exactly as they were before wrapping
  (via ``__wrapped__``), giving a true no-obs baseline in the same process.
  The gate: instrumented-disabled popcount+pack throughput within
  ``MAX_DISABLED_OVERHEAD`` of the raw baseline, min-of-``ROUNDS`` timing
  on realistic marginal-gain shaped arrays.
* **span no-op path** — ``obs.span(...)`` with the switch off returns a
  shared null object after a single attribute load; its per-call cost is
  recorded (and sanity-bounded) so a regression that starts allocating on
  the disabled path shows up in the trajectory.

Identity is asserted too: the instrumented backend's outputs are
bit-identical to the raw primitives' (the full matrix is property-tested
in ``tests/property/test_obs_identity.py``).

Results land in ``results/obs_overhead.json`` + ``.md`` and are folded
into ``trajectory.json`` by ``benchmarks/collect_results.py``.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from benchmarks.common import RESULTS_DIR, print_table, write_table
from repro import obs
from repro.coverage.kernels import resolve_kernel_backend, uninstrumented_backend
from repro.utils.rng import spawn_rng
from repro.utils.tables import Table

SEED = 0
#: Marginal-gain shaped workload: one packed row per candidate set.
NUM_ROWS = 256
NUM_ELEMENTS = 8192
#: pack + popcount calls per timed loop (popcount dominates real greedy).
POPCOUNTS_PER_LOOP = 60
PACKS_PER_LOOP = 3
#: min-of-ROUNDS timing; the loops alternate variants to share cache state.
ROUNDS = 9
#: The gate: disabled instrumentation within 2% of the raw primitives.
MAX_DISABLED_OVERHEAD = 1.02
#: Sanity bound on the disabled span path (measured ~0.1 µs; a regression
#: that allocates a real Span when disabled lands far above this).
MAX_DISABLED_SPAN_MICROS = 5.0
SPAN_CALLS = 200_000


def _dense_rows() -> np.ndarray:
    rng = spawn_rng(SEED, "bench-obs-overhead")
    return rng.random((NUM_ROWS, NUM_ELEMENTS)) < 0.2


def _kernel_loop(backend, dense, packed) -> float:
    """One timed loop of the greedy-shaped kernel mix; returns seconds."""
    start = time.perf_counter()
    for _ in range(PACKS_PER_LOOP):
        backend.pack(dense)
    for _ in range(POPCOUNTS_PER_LOOP):
        backend.popcount(packed, 1)
    return time.perf_counter() - start


def _measure_kernels() -> dict[str, float]:
    instrumented = resolve_kernel_backend("auto")
    raw = uninstrumented_backend(instrumented.name)
    dense = _dense_rows()
    packed = raw.pack(dense)

    # Identity first: the wrapper must never change a result, only time it.
    assert np.array_equal(instrumented.pack(dense), packed)
    assert np.array_equal(
        instrumented.popcount(packed, 1), raw.popcount(packed, 1)
    )

    raw_best = float("inf")
    instrumented_best = float("inf")
    for _ in range(ROUNDS):
        raw_best = min(raw_best, _kernel_loop(raw, dense, packed))
        instrumented_best = min(
            instrumented_best, _kernel_loop(instrumented, dense, packed)
        )
    return {
        "backend": instrumented.name,
        "raw_seconds": raw_best,
        "instrumented_seconds": instrumented_best,
        "overhead_ratio": instrumented_best / raw_best,
    }


def _measure_span_noop() -> dict[str, float]:
    span = obs.span
    start = time.perf_counter()
    for _ in range(SPAN_CALLS):
        span("bench.noop")
    elapsed = time.perf_counter() - start
    return {
        "calls": SPAN_CALLS,
        "micros_per_call": elapsed / SPAN_CALLS * 1e6,
    }


def _measure() -> dict[str, dict[str, float]]:
    return {"kernel": _measure_kernels(), "span": _measure_span_noop()}


@pytest.mark.benchmark(group="obs-overhead")
def test_disabled_instrumentation_is_within_two_percent(benchmark):
    """Gate: obs-disabled kernel path <= 2% over the raw primitives."""
    obs.disable()
    assert not obs.enabled()
    measured = benchmark.pedantic(_measure, rounds=1, iterations=1)
    kernel = measured["kernel"]
    span = measured["span"]

    table = Table(["path", "baseline_ms", "instrumented_ms", "overhead"])
    table.add_row(
        path=f"kernel pack+popcount ({kernel['backend']})",
        baseline_ms=kernel["raw_seconds"] * 1e3,
        instrumented_ms=kernel["instrumented_seconds"] * 1e3,
        overhead=f"{(kernel['overhead_ratio'] - 1.0) * 100:+.2f}%",
    )
    table.add_row(
        path="obs.span() disabled no-op",
        baseline_ms=0.0,
        instrumented_ms=span["micros_per_call"] * SPAN_CALLS / 1e3,
        overhead=f"{span['micros_per_call']:.3f}us/call",
    )
    print_table("Observability overhead — disabled path", table)
    write_table(
        "obs_overhead",
        "Observability overhead with the switch off",
        table,
        notes=[
            f"{NUM_ROWS}x{NUM_ELEMENTS} bool rows; "
            f"{PACKS_PER_LOOP} packs + {POPCOUNTS_PER_LOOP} row-popcounts "
            f"per loop, min of {ROUNDS} rounds per variant.",
            "Baseline is uninstrumented_backend(): the primitives exactly as "
            "registered, unwrapped via __wrapped__ — a true no-obs build.",
            f"gate: instrumented/raw <= {MAX_DISABLED_OVERHEAD} "
            f"(measured {kernel['overhead_ratio']:.4f}).",
            f"disabled obs.span() costs {span['micros_per_call']:.3f} us/call "
            "(one attribute load + returning the shared null span).",
        ],
    )
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "obs_overhead.json").write_text(
        json.dumps(
            {
                "rows": NUM_ROWS,
                "elements": NUM_ELEMENTS,
                "rounds": ROUNDS,
                "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
                "kernel": kernel,
                "span_noop": span,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )
    assert kernel["overhead_ratio"] <= MAX_DISABLED_OVERHEAD, (
        f"disabled instrumentation costs "
        f"{(kernel['overhead_ratio'] - 1.0) * 100:.2f}% on the kernel hot "
        f"path (gate: <= {(MAX_DISABLED_OVERHEAD - 1.0) * 100:.0f}%)"
    )
    assert span["micros_per_call"] <= MAX_DISABLED_SPAN_MICROS, (
        f"disabled obs.span() costs {span['micros_per_call']:.2f} us/call — "
        "the no-op path has stopped being free"
    )
