"""Query-serving latency: one sketch build, then a flood of cached queries.

The paper's promise is that a single pass builds a sketch that answers *many*
coverage queries; :mod:`repro.serve` realises it as a cached query layer.
This benchmark measures the promise as a latency contract:

* **cold** — each query answered the honest way, a full ``solve()`` from the
  raw instance (stream + sketch build + greedy extraction), timed per call;
* **warm** — a :class:`~repro.serve.QueryEngine` whose store is sized to the
  sweep's working set, driven by ``CLIENTS`` concurrent thread clients
  through :func:`repro.serve.drive_queries`, all queries hitting cached
  sketches (the store's stats are asserted: zero rebuilds during the drive);
* **identity** — the served answer for a spot-check spec must equal the
  fresh ``solve()`` answer (the full byte-identity matrix lives in
  ``tests/serve/test_serving_identity.py``).

The CI gate: the warm concurrent p50 must be at least ``MIN_WARM_SPEEDUP``×
faster than the mean cold solve.  Measured ~40x on a single-CPU sandbox with
8 contending clients and >100x on idle multi-core hosts; 20x is the
acceptance floor.  p50/p99/QPS land in ``results/serving_latency.json`` +
``.md`` and are archived by the bench-smoke job.
"""

from __future__ import annotations

import json
import time

import pytest

from benchmarks.common import RESULTS_DIR, print_table, write_table
from repro.api import QuerySpec, StreamSpec, solve
from repro.datasets import planted_kcover_instance
from repro.serve import QueryEngine, SketchStore, drive_queries
from repro.utils.tables import Table

SEED = 0
BATCH = 1024
#: Serving workload: larger than the Table-1 instances so the one-pass build
#: a cold query pays (streaming ~24k edges) dominates the cached greedy
#: extraction a warm query pays — the gap the cache is supposed to win.
SIZES = {"n": 160, "m": 20_000, "k": 10, "seed": 401}
#: Concurrent clients for the warm drive (the issue's floor is 8).
CLIENTS = 8
#: Total queries in the warm drive; k cycles over the sweep below.
QUERIES = 64
#: k values the query mix sweeps — each derives its own degree cap, so each
#: needs its own cache entry.
K_SWEEP = tuple(range(1, 11))
#: Store capacity sized to the sweep's working set.  Undersizing it below
#: ``len(K_SWEEP)`` makes every query thrash the LRU and rebuild — the
#: benchmark asserts zero builds during the drive to catch exactly that.
STORE_CAPACITY = 16
#: k values timed for the cold baseline (full solve() per query).
COLD_KS = (4, 8, 10)
#: Required cold-mean over warm-p50 ratio.  ~30x on a 1-CPU sandbox with 8
#: contending thread clients; 20x is the acceptance floor with CI headroom.
MIN_WARM_SPEEDUP = 20.0
OPTIONS = {"scale": 0.1}


@pytest.fixture(scope="module")
def serving_instance():
    return planted_kcover_instance(
        SIZES["n"], SIZES["m"], k=SIZES["k"], planted_coverage=0.9,
        seed=SIZES["seed"],
    )


def _spec(k: int) -> QuerySpec:
    return QuerySpec(problem="k_cover", k=k, options=dict(OPTIONS))


def _cold_solve(instance, k: int):
    return solve(
        instance.graph,
        "kcover/sketch",
        problem_kind="k_cover",
        k=k,
        seed=SEED,
        options=dict(OPTIONS),
        stream=StreamSpec(order="random", seed=SEED, batch_size=BATCH),
    )


def _measure(instance):
    cold_seconds: dict[int, float] = {}
    cold_reports = {}
    for k in COLD_KS:
        start = time.perf_counter()
        cold_reports[k] = _cold_solve(instance, k)
        cold_seconds[k] = time.perf_counter() - start

    engine = QueryEngine(
        instance.graph,
        store=SketchStore(capacity=STORE_CAPACITY),
        seed=SEED,
        batch_size=BATCH,
    )
    specs = [_spec(K_SWEEP[i % len(K_SWEEP)]) for i in range(QUERIES)]
    warm_start = time.perf_counter()
    for k in K_SWEEP:
        engine.query(_spec(k))
    warm_build_seconds = time.perf_counter() - warm_start
    builds_after_warmup = engine.store.stats()["builds"]

    load = drive_queries(engine, specs, clients=CLIENTS, executor="thread")
    return {
        "cold_seconds": cold_seconds,
        "cold_reports": cold_reports,
        "engine": engine,
        "warm_build_seconds": warm_build_seconds,
        "builds_after_warmup": builds_after_warmup,
        "load": load,
    }


@pytest.mark.benchmark(group="serving-latency")
def test_warm_cache_serves_20x_faster_than_cold_solve(benchmark, serving_instance):
    """Record cold-vs-warm latency; gate warm p50 >= 20x over cold mean."""
    measured = benchmark.pedantic(
        _measure, args=(serving_instance,), rounds=1, iterations=1
    )
    engine = measured["engine"]
    load = measured["load"]
    cold_seconds = measured["cold_seconds"]
    cold_mean = sum(cold_seconds.values()) / len(cold_seconds)
    speedup_p50 = cold_mean / load.p50
    speedup_mean = cold_mean / load.mean_latency

    # The drive itself must have run entirely out of cache: every build
    # happened during warm-up, none under load.
    stats = engine.store.stats()
    assert stats["builds"] == measured["builds_after_warmup"], (
        f"the concurrent drive rebuilt sketches ({stats['builds']} builds, "
        f"{measured['builds_after_warmup']} at warm-up) — store capacity "
        f"{STORE_CAPACITY} no longer covers the {len(K_SWEEP)}-entry sweep"
    )
    assert stats["evictions"] == 0

    # Served answers are the same reports solve() produces (spot check; the
    # full matrix is property-tested in tests/serve).
    for k in COLD_KS:
        served = engine.query(_spec(k))
        assert served.solution == measured["cold_reports"][k].solution, k

    table = Table(
        ["phase", "queries", "clients", "p50_ms", "p99_ms", "mean_ms", "qps"]
    )
    for k in COLD_KS:
        table.add_row(
            phase=f"cold solve() k={k}", queries=1, clients=1,
            p50_ms=cold_seconds[k] * 1e3, p99_ms=cold_seconds[k] * 1e3,
            mean_ms=cold_seconds[k] * 1e3, qps=1.0 / cold_seconds[k],
        )
    table.add_row(
        phase=f"warm serve ({load.executor})", queries=load.num_queries,
        clients=load.clients, p50_ms=load.p50 * 1e3, p99_ms=load.p99 * 1e3,
        mean_ms=load.mean_latency * 1e3, qps=load.qps,
    )
    print_table("Query serving — cold solve vs warm cached engine", table)
    write_table(
        "serving_latency",
        "Cached-sketch query serving latency under concurrent clients",
        table,
        notes=[
            f"planted k-cover serving instance (n = {SIZES['n']}, m = {SIZES['m']}); "
            f"k sweep {K_SWEEP[0]}..{K_SWEEP[-1]}, {QUERIES} queries, "
            f"{CLIENTS} thread clients, store capacity {STORE_CAPACITY}.",
            f"warm-up built {measured['builds_after_warmup']} sketch entries in "
            f"{measured['warm_build_seconds']:.3f}s; the drive hit cache on every query.",
            f"warm p50 speedup over cold mean: {speedup_p50:.1f}x "
            f"(gate: >= {MIN_WARM_SPEEDUP}x).",
            "Served answers are asserted equal to fresh solve() answers.",
        ],
    )
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "serving_latency.json").write_text(
        json.dumps(
            {
                "clients": CLIENTS,
                "queries": QUERIES,
                "k_sweep": list(K_SWEEP),
                "store_capacity": STORE_CAPACITY,
                "min_warm_speedup": MIN_WARM_SPEEDUP,
                "cold_seconds": {str(k): s for k, s in cold_seconds.items()},
                "cold_mean_seconds": cold_mean,
                "warm_build_seconds": measured["warm_build_seconds"],
                "warm": load.as_dict(),
                "speedup_p50": speedup_p50,
                "speedup_mean": speedup_mean,
                "store": stats,
            },
            indent=2,
        ),
        encoding="utf-8",
    )
    assert speedup_p50 >= MIN_WARM_SPEEDUP, (
        f"warm p50 {load.p50 * 1e3:.2f}ms is only {speedup_p50:.1f}x faster "
        f"than the {cold_mean * 1e3:.2f}ms cold mean (required "
        f"{MIN_WARM_SPEEDUP}x)"
    )
