"""Ablation — the ε / edge-budget trade-off (Theorem 2.7's accuracy knob).

The sketch's edge budget scales as ``1/ε³`` in theory (``~ n log n / ε`` in
the scaled mode used here).  The ablation sweeps ε and reports, for each
value: the realised edge budget, the peak stored edges, the estimator error
of Lemma 2.2 on the greedy solution, and the end-to-end approximation ratio
of Algorithm 3 against the planted optimum.  Expected shape: smaller ε ⇒
larger sketch ⇒ smaller estimation error and ratio closer to 1; even large ε
stays above the 1 − 1/e − ε floor.
"""

from __future__ import annotations

import math

import pytest

from benchmarks.common import print_table, write_table
from repro.core import StreamingKCover
from repro.core.kcover import default_kcover_params
from repro.datasets import planted_kcover_instance
from repro.offline.greedy import greedy_k_cover
from repro.streaming import EdgeStream, StreamingRunner
from repro.utils.tables import Table

EPSILONS = (0.8, 0.4, 0.2, 0.1)
K = 8


def _run_sweep() -> Table:
    instance = planted_kcover_instance(
        100, 5000, k=K, planted_coverage=0.9, noise_set_size=45, seed=600
    )
    reference = greedy_k_cover(instance.graph, K).coverage
    table = Table(
        [
            "epsilon",
            "edge_budget",
            "space_peak",
            "approx_ratio",
            "floor_1_1e_eps",
            "estimator_rel_error",
        ]
    )
    for index, epsilon in enumerate(EPSILONS):
        params = default_kcover_params(
            instance.n, instance.m, K, epsilon, mode="scaled", scale=0.12
        )
        algo = StreamingKCover(
            instance.n, instance.m, k=K, epsilon=epsilon, params=params, seed=600 + index
        )
        report = StreamingRunner(instance.graph).run(
            algo, EdgeStream.from_graph(instance.graph, order="random", seed=index)
        )
        estimate = algo.estimated_coverage()
        table.add_row(
            epsilon=epsilon,
            edge_budget=params.edge_budget,
            space_peak=report.space_peak,
            approx_ratio=report.coverage / reference,
            floor_1_1e_eps=max(0.0, 1 - 1 / math.e - epsilon),
            estimator_rel_error=abs(estimate - report.coverage) / max(1, report.coverage),
        )
    return table


@pytest.mark.benchmark(group="ablation-epsilon")
def test_epsilon_budget_tradeoff(benchmark):
    """Smaller ε buys a bigger sketch and better accuracy."""
    table = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    print_table("Ablation — ε vs budget vs accuracy", table)
    write_table(
        "ablation_epsilon",
        "Ablation — ε / edge-budget trade-off (Theorem 2.7)",
        table,
        notes=["Scaled budgets (scale = 0.12) so the sweep actually changes the sketch size."],
    )
    budgets = table.column("edge_budget")
    ratios = table.column("approx_ratio")
    floors = table.column("floor_1_1e_eps")
    # Budget increases monotonically as ε decreases.
    assert all(a <= b for a, b in zip(budgets, budgets[1:]))
    # Every run clears its theoretical floor.
    assert all(r >= f for r, f in zip(ratios, floors))
    # The tightest ε is (weakly) the most accurate.
    assert ratios[-1] >= ratios[0] - 0.02
