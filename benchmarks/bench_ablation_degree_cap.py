"""Ablation — the element degree cap (H'_p vs H_p, Lemmas 2.4–2.6).

The cap ``n log(1/ε)/(εk)`` is what turns the sampled subgraph ``H_p`` into a
bounded-space sketch: without it, a few wildly popular elements can blow the
edge count up to Ω(nk) while contributing almost nothing to which solution is
best (Lemma 2.4 shows removing their surplus edges costs at most a 1 − ε
factor).  The ablation compares, on a heavy-tailed Zipf workload:

* the sketch with the paper's cap,
* the same budget without any cap (``H_p``-style), and
* an over-aggressive cap of 1,

reporting stored edges, number of truncated elements and end-to-end quality.
Expected shape: the capped sketch matches the uncapped one's quality while
storing (often far) fewer edges per admitted element; the cap-1 variant loses
little on k-cover quality (membership beyond one witness is redundant for
coverage) but destroys the degree information.
"""

from __future__ import annotations

import pytest

from benchmarks.common import print_table, write_table
from repro.core.params import SketchParams
from repro.core.streaming_sketch import StreamingSketchBuilder
from repro.datasets import zipf_instance
from repro.offline.greedy import greedy_k_cover
from repro.utils.tables import Table

K = 20
EPSILON = 0.5


def _run() -> Table:
    # Strongly skewed popularity so the head elements belong to a large
    # fraction of the sets — the regime where the cap actually binds.
    instance = zipf_instance(
        100, 5000, edges_per_set=120, zipf_exponent=1.6, k=K, seed=700
    )
    reference = greedy_k_cover(instance.graph, K).coverage
    paper_cap = SketchParams.theoretical_degree_cap(instance.n, K, EPSILON)
    variants = {
        "paper-cap": paper_cap,
        "no-cap": instance.n,  # an element can belong to at most n sets
        "cap-1": 1,
    }
    table = Table(
        [
            "variant",
            "degree_cap",
            "stored_edges",
            "admitted_elements",
            "edges_per_element",
            "truncated_elements",
            "approx_ratio",
        ]
    )
    for name, cap in variants.items():
        params = SketchParams.explicit(
            instance.n, instance.m, K, EPSILON, edge_budget=8 * instance.n, degree_cap=cap
        )
        builder = StreamingSketchBuilder(params, seed=701)
        builder.consume(instance.graph.edges())
        sketch = builder.sketch()
        solution = greedy_k_cover(sketch.graph, K).selected
        achieved = instance.graph.coverage(solution)
        table.add_row(
            variant=name,
            degree_cap=cap,
            stored_edges=sketch.num_edges,
            admitted_elements=sketch.num_elements,
            edges_per_element=sketch.num_edges / max(1, sketch.num_elements),
            truncated_elements=len(sketch.truncated_elements),
            approx_ratio=achieved / reference,
        )
    return table


@pytest.mark.benchmark(group="ablation-degree-cap")
def test_degree_cap_ablation(benchmark):
    """The cap trades redundant edges for admitted elements at ~no quality cost."""
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_table("Ablation — degree cap (H'_p vs H_p)", table)
    write_table(
        "ablation_degree_cap",
        "Ablation — element degree cap (Lemma 2.4)",
        table,
        notes=[
            "Zipf workload: a few elements belong to a large fraction of the sets.",
            "Same edge budget for every variant; only the per-element cap changes.",
        ],
    )
    rows = {row["variant"]: row for row in table.rows}
    # The cap actually binds on this workload (some elements get truncated)...
    assert rows["paper-cap"]["truncated_elements"] > 0
    # ...letting the sketch admit strictly more elements for the same budget,
    # with fewer stored edges per element.
    assert rows["paper-cap"]["admitted_elements"] >= rows["no-cap"]["admitted_elements"]
    assert rows["paper-cap"]["edges_per_element"] <= rows["no-cap"]["edges_per_element"] + 1e-9
    # Quality is preserved (Lemma 2.4's (1 − ε) factor, with slack).
    assert rows["paper-cap"]["approx_ratio"] >= rows["no-cap"]["approx_ratio"] - 0.1
    assert rows["paper-cap"]["approx_ratio"] >= 0.75
