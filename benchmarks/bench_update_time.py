"""Section 3's update-time claim — O~(1) amortised time per edge arrival.

"Interestingly, the update times of all our algorithms are O~(1)."  The
benchmark feeds streams of growing length (growing m with n fixed, so the
number of edges grows while the sketch budget does not) through the streaming
sketch builder and reports the amortised time per edge.  Expected shape: the
per-edge cost is flat (it does not grow with the stream length or with m) —
each arrival does a hash, a dictionary update and occasionally an eviction
whose cost amortises against the edges it removes.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.common import print_table, write_table
from repro.core.params import SketchParams
from repro.core.streaming_sketch import StreamingSketchBuilder
from repro.datasets import planted_kcover_instance
from repro.streaming import EdgeStream
from repro.utils.tables import Table

K = 10
M_SWEEP = (2000, 8000, 32_000)


def _per_edge_times() -> Table:
    table = Table(["n", "m", "stream_edges", "stored_edges", "microseconds_per_edge"])
    for index, m in enumerate(M_SWEEP):
        instance = planted_kcover_instance(80, m, k=K, seed=1500 + index)
        params = SketchParams.explicit(
            instance.n, instance.m, K, 0.2, edge_budget=6 * instance.n, degree_cap=40
        )
        edges = [
            event.as_tuple()
            for event in EdgeStream.from_graph(instance.graph, order="random", seed=index)
        ]
        builder = StreamingSketchBuilder(params, seed=index)
        start = time.perf_counter()
        builder.consume(edges)
        elapsed = time.perf_counter() - start
        table.add_row(
            n=instance.n,
            m=instance.m,
            stream_edges=len(edges),
            stored_edges=builder.stored_edges,
            microseconds_per_edge=1e6 * elapsed / max(1, len(edges)),
        )
    return table


@pytest.mark.benchmark(group="update-time")
def test_amortised_update_time_is_flat(benchmark):
    """Per-edge processing time does not grow with the stream length."""
    table = benchmark.pedantic(_per_edge_times, rounds=1, iterations=1)
    print_table("Amortised update time per edge arrival", table)
    write_table(
        "update_time",
        "Section 3 — O~(1) amortised update time",
        table,
        notes=[
            "n = 80 fixed, sketch budget 6·n edges; the stream grows 16x across the sweep.",
            "Timing noise of a few x is expected on shared machines; the claim is the absence "
            "of growth proportional to the stream length.",
        ],
    )
    per_edge = table.column("microseconds_per_edge")
    stored = table.column("stored_edges")
    # Flat within generous noise bounds: the longest stream costs at most a
    # small constant factor more per edge than the shortest.
    assert max(per_edge) <= 5.0 * min(per_edge)
    # The sketch itself stays budget-bound throughout the sweep.
    assert max(stored) <= 6 * 80 + 40 + 1
