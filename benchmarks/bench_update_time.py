"""Section 3's update-time claim — O~(1) amortised time per edge arrival.

"Interestingly, the update times of all our algorithms are O~(1)."  The
benchmark feeds streams of growing length (growing m with n fixed, so the
number of edges grows while the sketch budget does not) through the streaming
sketch and reports the amortised time per edge.  Expected shape: the per-edge
cost is flat (it does not grow with the stream length or with m).

On top of the paper's claim, the benchmark measures what the batched columnar
engine buys: the same runs driven scalar (one Python call per edge) versus in
``EventBatch`` chunks, reported as events/sec straight from
``StreamingReport.events_per_second``.  The batched path must beat scalar by
a wide margin — a regression here means the vectorised pipeline fell off the
fast path.
"""

from __future__ import annotations

import json

import pytest

from benchmarks.common import RESULTS_DIR, print_table, write_table
from repro.api import StreamSpec, solve
from repro.datasets import planted_kcover_instance
from repro.utils.tables import Table

K = 10
M_SWEEP = (2000, 8000, 32_000)
BATCH_SIZE = 1024
#: Minimum batched-over-scalar events/sec ratio on the largest instance.
#: Measured ~7-9x on a laptop; 3x is the acceptance bar with CI headroom.
MIN_SPEEDUP = 3.0


def _instances():
    for index, m in enumerate(M_SWEEP):
        yield index, planted_kcover_instance(80, m, k=K, seed=1500 + index)


def _options(instance) -> dict:
    return {"edge_budget": 6 * instance.n, "degree_cap": 40, "epsilon": 0.2}


def _throughput_table() -> Table:
    table = Table(
        [
            "n",
            "m",
            "stream_edges",
            "space_peak",
            "scalar_events_per_sec",
            "batched_events_per_sec",
            "speedup",
            "microseconds_per_edge_scalar",
        ]
    )
    for index, instance in _instances():
        scalar = solve(
            instance,
            "kcover/sketch",
            options=_options(instance),
            stream=StreamSpec(order="random", seed=index),
        )
        batched = solve(
            instance,
            "kcover/sketch",
            options=_options(instance),
            stream=StreamSpec(order="random", seed=index, batch_size=BATCH_SIZE),
        )
        assert batched.solution == scalar.solution
        assert batched.space_peak == scalar.space_peak
        table.add_row(
            n=instance.n,
            m=instance.m,
            stream_edges=scalar.stream_events,
            space_peak=scalar.space_peak,
            scalar_events_per_sec=scalar.events_per_second,
            batched_events_per_sec=batched.events_per_second,
            speedup=batched.events_per_second / scalar.events_per_second,
            microseconds_per_edge_scalar=1e6 / scalar.events_per_second,
        )
    return table


@pytest.mark.benchmark(group="update-time")
def test_amortised_update_time_is_flat_and_batching_wins(benchmark):
    """Per-edge time does not grow with the stream; batches beat scalar >= 3x."""
    table = benchmark.pedantic(_throughput_table, rounds=1, iterations=1)
    print_table("Amortised update time per edge arrival (scalar vs batched)", table)
    write_table(
        "update_time",
        "Section 3 — O~(1) amortised update time, scalar vs batched drive",
        table,
        notes=[
            "n = 80 fixed, sketch budget 6·n edges; the stream grows 16x across the sweep.",
            f"Batched drive uses EventBatch chunks of {BATCH_SIZE} edges; reports are "
            "byte-identical to the scalar run (asserted).",
            "Timing noise of a few x is expected on shared machines; the claims are the "
            "absence of growth proportional to the stream length, and the batched/scalar gap.",
        ],
    )
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "update_time.json").write_text(
        json.dumps({"batch_size": BATCH_SIZE, "rows": table.rows}, indent=2),
        encoding="utf-8",
    )
    # The paper's O~(1) claim is about the scalar per-event path: flat within
    # generous noise bounds — the longest stream costs at most a small
    # constant factor more per edge than the shortest.
    per_edge = table.column("microseconds_per_edge_scalar")
    assert max(per_edge) <= 5.0 * min(per_edge)
    # The sketch stays budget-bound throughout the sweep (edge budget 6n plus
    # one degree-cap worth of transient slack).
    assert max(table.column("space_peak")) <= 6 * 80 + 40 + 1
    # The columnar engine must deliver its headline win on the largest stream.
    assert table.column("speedup")[-1] >= MIN_SPEEDUP
