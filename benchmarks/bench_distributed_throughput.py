"""Distributed map-phase throughput — batched columnar engine vs edge tuples.

The two-round simulation's round 1 (shard the edges, build one ``H_{<=n}``
sketch per machine) used to run on per-edge Python tuples.  It now routes
whole ``EventBatch`` columns through one vectorised shard assignment and the
sketch builder's native ``process_batch``.  This benchmark times both map
phases on the same workload:

* **scalar edge-list path** — shards as tuple lists, workers consume one
  edge per Python call (the historical pipeline, still reachable through the
  public pieces);
* **batched columnar path** — :meth:`DistributedKCover.run_from_columnar`
  over a memory-mapped columnar directory, no per-edge objects anywhere.

Both paths produce byte-identical runs (asserted here and property-tested in
``tests/property/test_distributed_batching.py``); the batched map phase must
process edges at least ``MIN_SPEEDUP`` times faster, so a regression off the
vectorised path fails CI loudly.
"""

from __future__ import annotations

import json
import time

import pytest

from benchmarks.common import RESULTS_DIR, print_table, write_table
from repro.core.hashing import UniformHash
from repro.core.params import SketchParams
from repro.core.streaming_sketch import StreamingSketchBuilder
from repro.coverage.io import write_columnar
from repro.datasets import planted_kcover_instance
from repro.distributed import (
    DistributedKCover,
    MachineSketch,
    merge_machine_sketches,
    partition_edges,
)
from repro.offline.greedy import greedy_k_cover
from repro.utils.tables import Table

K = 10
N = 100
M = 150_000
MACHINES = (2, 4, 8)
STRATEGY = "random"
SEED = 1700
#: Minimum batched-over-scalar map-phase edges/sec ratio on the largest
#: machine count.  Measured well above this on a laptop; 3x is the
#: acceptance bar with CI headroom.
MIN_SPEEDUP = 3.0


def _scalar_map_phase(edges, params, machines: int):
    """The historical tuple-based map phase: per-edge sharding consume."""
    shards = partition_edges(edges, machines, strategy=STRATEGY, seed=SEED)
    machine_sketches = []
    for machine_id, shard in enumerate(shards):
        builder = StreamingSketchBuilder(params, hash_fn=UniformHash(SEED))
        for set_id, element in shard:
            builder.add_edge(set_id, element)
        sketch = builder.sketch()
        machine_sketches.append(
            MachineSketch(machine_id, sketch, len(shard), sketch.num_edges)
        )
    return machine_sketches


def _throughput_table(tmp_path) -> Table:
    instance = planted_kcover_instance(N, M, k=K, seed=SEED)
    edges = list(instance.graph.edges())
    params = SketchParams.explicit(
        instance.n, instance.m, K, 0.2, edge_budget=6 * instance.n, degree_cap=40
    )
    columnar_dir = tmp_path / "workload.cols"
    write_columnar(edges, columnar_dir, num_sets=instance.n)

    table = Table(
        [
            "machines",
            "input_edges",
            "scalar_edges_per_sec",
            "batched_edges_per_sec",
            "speedup",
            "max_machine_load",
        ]
    )
    for machines in MACHINES:
        start = time.perf_counter()
        scalar_sketches = _scalar_map_phase(edges, params, machines)
        scalar_seconds = time.perf_counter() - start

        runner = DistributedKCover(
            instance.n, instance.m, k=K, num_machines=machines,
            strategy=STRATEGY, params=params, seed=SEED,
        )
        start = time.perf_counter()
        report = runner.run_from_columnar(columnar_dir)
        batched_seconds = time.perf_counter() - start

        # Identical outcomes: the batched run must land on the very greedy
        # solution the scalar map phase leads to.
        merged = merge_machine_sketches(scalar_sketches, params, hash_seed=SEED)
        assert greedy_k_cover(merged.graph, K).selected == report.solution
        assert [ms.edges_stored for ms in scalar_sketches] == report.machine_stored_edges
        # The batched timing also covers merge + greedy, so the measured
        # speedup understates the pure map-phase gap — fine for a floor.
        table.add_row(
            machines=machines,
            input_edges=len(edges),
            scalar_edges_per_sec=len(edges) / scalar_seconds,
            batched_edges_per_sec=len(edges) / batched_seconds,
            speedup=scalar_seconds / batched_seconds,
            max_machine_load=report.max_machine_load,
        )
    return table


@pytest.mark.benchmark(group="distributed-throughput")
def test_batched_map_phase_beats_scalar(benchmark, tmp_path):
    """The columnar map phase processes edges >= 3x faster than tuples."""
    table = benchmark.pedantic(_throughput_table, args=(tmp_path,), rounds=1, iterations=1)
    print_table("Distributed map phase — scalar tuples vs batched columns", table)
    write_table(
        "distributed_throughput",
        "Distributed map-phase throughput, scalar edge lists vs columnar batches",
        table,
        notes=[
            f"planted k-cover, n = {N}, ~{M} edges, sketch budget 6·n per machine, "
            f"'{STRATEGY}' sharding.",
            "The batched column times a full run_from_columnar (sharding, map, "
            "merge, greedy) against the scalar map phase alone, so the reported "
            "speedup is a lower bound on the map-phase gap.",
            "Both paths are byte-identical (asserted per row and property-tested).",
        ],
    )
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "distributed_throughput.json").write_text(
        json.dumps(
            {"strategy": STRATEGY, "machines": list(MACHINES), "rows": table.rows},
            indent=2,
        ),
        encoding="utf-8",
    )
    assert table.column("speedup")[-1] >= MIN_SPEEDUP
