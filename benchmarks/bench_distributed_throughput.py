"""Distributed map-phase throughput — batched columnar engine vs edge tuples.

The two-round simulation's round 1 (shard the edges, build one ``H_{<=n}``
sketch per machine) used to run on per-edge Python tuples.  It now routes
whole ``EventBatch`` columns through one vectorised shard assignment and the
sketch builder's native ``process_batch``.  This benchmark times both map
phases on the same workload:

* **scalar edge-list path** — shards as tuple lists, workers consume one
  edge per Python call (the historical pipeline, still reachable through the
  public pieces);
* **batched columnar path** — :meth:`DistributedKCover.run_from_columnar`
  over a memory-mapped columnar directory, no per-edge objects anywhere
  (barrier reduce, serial mapper — the reference pipeline);
* **streaming reduce × recompute jobs** — the same columnar workload under a
  thread executor: every machine gets a zero-ship
  :class:`~repro.distributed.worker.ShardRecomputeJob` and the coordinator
  folds sketches into the incremental merge tree as they complete, holding
  only O(log machines) sketches resident.

All paths produce byte-identical runs (asserted here and property-tested in
``tests/property/test_distributed_batching.py`` /
``tests/property/test_streaming_reduce.py``).  CI gates: the batched map
phase must process edges at least ``MIN_SPEEDUP`` times faster than the
scalar one; the streaming reduce must stay within ``MIN_STREAMING_RATIO``
of a barrier reduce under the *same* executor and job type (no map-phase
regression from the as-completed gather — the recompute-vs-ship trade is
held fixed so only the reduce mode varies); and its peak resident sketch
count must stay below the machine count once there are enough machines for
the logarithm to bite (>= 4; a binary counter over 2 leaves still holds 2).
"""

from __future__ import annotations

import json
import time

import pytest

from benchmarks.common import RESULTS_DIR, print_table, write_table
from repro.core.hashing import UniformHash
from repro.core.params import SketchParams
from repro.core.streaming_sketch import StreamingSketchBuilder
from repro.coverage.io import write_columnar
from repro.datasets import planted_kcover_instance
from repro.distributed import (
    DistributedKCover,
    MachineSketch,
    merge_machine_sketches,
    partition_edges,
)
from repro.offline.greedy import greedy_k_cover
from repro.utils.tables import Table

K = 10
N = 100
M = 150_000
MACHINES = (2, 4, 8)
STRATEGY = "random"
SEED = 1700
#: Minimum batched-over-scalar map-phase edges/sec ratio on the largest
#: machine count.  Measured well above this on a laptop; 3x is the
#: acceptance bar with CI headroom.
MIN_SPEEDUP = 3.0
#: Minimum (barrier seconds / streaming seconds) under the same thread
#: executor and recompute jobs.  Measured at parity (~0.9-1.2); 0.6 is the
#: loud-regression bar with CI noise headroom.
MIN_STREAMING_RATIO = 0.6


def _scalar_map_phase(edges, params, machines: int):
    """The historical tuple-based map phase: per-edge sharding consume."""
    shards = partition_edges(edges, machines, strategy=STRATEGY, seed=SEED)
    machine_sketches = []
    for machine_id, shard in enumerate(shards):
        builder = StreamingSketchBuilder(params, hash_fn=UniformHash(SEED))
        for set_id, element in shard:
            builder.add_edge(set_id, element)
        sketch = builder.sketch()
        machine_sketches.append(
            MachineSketch(machine_id, sketch, len(shard), sketch.num_edges)
        )
    return machine_sketches


def _throughput_table(tmp_path) -> Table:
    instance = planted_kcover_instance(N, M, k=K, seed=SEED)
    edges = list(instance.graph.edges())
    params = SketchParams.explicit(
        instance.n, instance.m, K, 0.2, edge_budget=6 * instance.n, degree_cap=40
    )
    columnar_dir = tmp_path / "workload.cols"
    write_columnar(edges, columnar_dir, num_sets=instance.n)

    table = Table(
        [
            "machines",
            "input_edges",
            "scalar_edges_per_sec",
            "batched_edges_per_sec",
            "speedup",
            "streaming_edges_per_sec",
            "streaming_vs_barrier",
            "peak_resident_sketches",
            "merge_count",
            "max_machine_load",
        ]
    )
    for machines in MACHINES:
        start = time.perf_counter()
        scalar_sketches = _scalar_map_phase(edges, params, machines)
        scalar_seconds = time.perf_counter() - start

        runner = DistributedKCover(
            instance.n, instance.m, k=K, num_machines=machines,
            strategy=STRATEGY, params=params, seed=SEED, reduce="barrier",
        )
        start = time.perf_counter()
        report = runner.run_from_columnar(columnar_dir)
        batched_seconds = time.perf_counter() - start

        # Streaming reduce over zero-ship recompute jobs: a thread executor
        # makes run_from_columnar ship ShardRecomputeJobs (path + routing
        # only) and the merge tree folds sketches in completion order.  The
        # barrier twin runs the identical executor and job type, so the
        # seconds ratio isolates the reduce mode.
        seconds = {}
        for reduce in ("barrier", "streaming"):
            streaming_runner = DistributedKCover(
                instance.n, instance.m, k=K, num_machines=machines,
                strategy=STRATEGY, params=params, seed=SEED,
                executor="thread", max_workers=machines, reduce=reduce,
            )
            start = time.perf_counter()
            streaming_report = streaming_runner.run_from_columnar(columnar_dir)
            seconds[reduce] = time.perf_counter() - start
        streaming_seconds = seconds["streaming"]

        # Identical outcomes: both batched runs must land on the very greedy
        # solution the scalar map phase leads to.
        merged = merge_machine_sketches(scalar_sketches, params, hash_seed=SEED)
        assert greedy_k_cover(merged.graph, K).selected == report.solution
        assert [ms.edges_stored for ms in scalar_sketches] == report.machine_stored_edges
        assert streaming_report.solution == report.solution
        assert streaming_report.merged_threshold == report.merged_threshold
        assert streaming_report.machine_stored_edges == report.machine_stored_edges
        assert streaming_report.shard_edges == report.shard_edges
        # The batched timings also cover merge + greedy, so the measured
        # speedups understate the pure map-phase gap — fine for a floor.
        table.add_row(
            machines=machines,
            input_edges=len(edges),
            scalar_edges_per_sec=len(edges) / scalar_seconds,
            batched_edges_per_sec=len(edges) / batched_seconds,
            speedup=scalar_seconds / batched_seconds,
            streaming_edges_per_sec=len(edges) / streaming_seconds,
            streaming_vs_barrier=seconds["barrier"] / streaming_seconds,
            peak_resident_sketches=streaming_report.peak_resident_sketches,
            merge_count=streaming_report.merge_count,
            max_machine_load=report.max_machine_load,
        )
    return table


@pytest.mark.benchmark(group="distributed-throughput")
def test_batched_map_phase_beats_scalar(benchmark, tmp_path):
    """The columnar map phase processes edges >= 3x faster than tuples."""
    table = benchmark.pedantic(_throughput_table, args=(tmp_path,), rounds=1, iterations=1)
    print_table("Distributed map phase — scalar tuples vs batched columns", table)
    write_table(
        "distributed_throughput",
        "Distributed map-phase throughput, scalar edge lists vs columnar batches",
        table,
        notes=[
            f"planted k-cover, n = {N}, ~{M} edges, sketch budget 6·n per machine, "
            f"'{STRATEGY}' sharding.",
            "The batched columns time a full run_from_columnar (sharding, map, "
            "merge, greedy) against the scalar map phase alone, so the reported "
            "speedups are lower bounds on the map-phase gap.",
            "The streaming columns run zero-ship ShardRecomputeJobs under a "
            "thread executor with the incremental merge-tree reduce; "
            "streaming_vs_barrier is barrier-seconds / streaming-seconds "
            "under the same executor and jobs, and peak_resident_sketches "
            "is the coordinator's sketch high-water mark (O(log machines) "
            "vs the barrier's machines).",
            "All paths are byte-identical (asserted per row and property-tested).",
        ],
    )
    peaks = table.column("peak_resident_sketches")
    merges = table.column("merge_count")
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "distributed_throughput.json").write_text(
        json.dumps(
            {
                "strategy": STRATEGY,
                "machines": list(MACHINES),
                "rows": table.rows,
                # Top-level scalars (collect_results folds these into the
                # trajectory), all at the largest machine count.
                "batched_speedup": float(table.column("speedup")[-1]),
                "streaming_vs_barrier": float(
                    table.column("streaming_vs_barrier")[-1]
                ),
                "streaming_peak_resident_sketches": int(peaks[-1]),
                "streaming_merge_count": int(merges[-1]),
                "barrier_peak_resident_sketches": int(MACHINES[-1]),
            },
            indent=2,
        ),
        encoding="utf-8",
    )
    assert table.column("speedup")[-1] >= MIN_SPEEDUP
    # The as-completed gather + merge tree must not cost map throughput
    # (same executor and jobs as the barrier twin; only the reduce varies).
    assert table.column("streaming_vs_barrier")[-1] >= MIN_STREAMING_RATIO
    # O(log M) residency: below the machine count wherever log2 can bite
    # (a binary counter over 2 leaves still holds both before carrying).
    for machines, peak, merge_count in zip(MACHINES, peaks, merges):
        assert merge_count == max(1, machines - 1)
        if machines >= 4:
            assert peak < machines, (machines, peak)
