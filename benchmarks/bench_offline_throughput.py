"""Throughput microbenchmarks for the offline reference path.

Not a paper artifact, but the harness relies on the offline greedy as its
reference on every workload, so its cost matters.  Two implementations are
timed on the same instance:

* the lazy, heap-based set greedy (:mod:`repro.offline.greedy`), and
* the vectorised packed-bitset greedy (:class:`repro.coverage.bitset`),

together with the one-off packing cost.  The quality of the two is asserted
to be identical; the timing columns in the pytest-benchmark output document
the speed-up (roughly 2x end-to-end for greedy on this workload, and far more
for sweeps that re-evaluate many families against one fixed graph).
"""

from __future__ import annotations

import pytest

from repro.coverage.bitset import BitsetCoverage
from repro.datasets import zipf_instance
from repro.offline.greedy import greedy_k_cover

K = 12


@pytest.fixture(scope="module")
def dense_instance():
    return zipf_instance(250, 4000, edges_per_set=150, k=K, seed=1400)


@pytest.mark.benchmark(group="offline-throughput")
def test_set_based_greedy_throughput(benchmark, dense_instance):
    """Baseline: the lazy heap greedy on Python sets."""
    result = benchmark(greedy_k_cover, dense_instance.graph, K)
    assert result.coverage > 0


@pytest.mark.benchmark(group="offline-throughput")
def test_bitset_greedy_throughput(benchmark, dense_instance):
    """Vectorised greedy on packed bitsets (same value, much faster)."""
    evaluator = BitsetCoverage(dense_instance.graph)
    selection, coverage = benchmark(evaluator.greedy_k_cover, K)
    assert coverage == greedy_k_cover(dense_instance.graph, K).coverage
    assert len(selection) <= K


@pytest.mark.benchmark(group="offline-throughput")
def test_bitset_construction_cost(benchmark, dense_instance):
    """One-off packing cost paid before the fast evaluations."""
    evaluator = benchmark(BitsetCoverage, dense_instance.graph)
    assert evaluator.num_sets == dense_instance.n
