"""Throughput benchmarks for the offline reference path and disk ingestion.

Not a paper artifact, but the paper's pipeline is "sketch in the stream, then
run any offline coverage algorithm on the sketch" (Theorem 2.7), so once the
streaming side is vectorised the end-to-end cost is bounded by two things
this file measures and guards:

* **Greedy k-cover kernels** — the seed implementation recomputed all ``n``
  marginal gains per step on byte-packed rows; the perf pass added a
  word-packed ``uint64`` backend (8x fewer lanes) and a CELF-style lazy
  greedy that re-evaluates only candidates whose stale upper bound still
  competes.  The benchmark times all four combinations on a size sweep and
  asserts the word-packed lazy greedy beats the seed byte-packed eager one
  by ≥ 3x on the largest instance (and that words are no slower than bytes
  at equal laziness).
* **Disk ingestion** — ``read_edge_list`` parses text into Python tuples
  before a stream ever sees an edge; the columnar loader memory-maps uint64
  columns and feeds ``EventBatch`` chunks straight into the sketch builder.
  The benchmark measures end-to-end events/sec (file on disk → built sketch)
  and asserts the columnar route wins by ≥ 5x.

Both tables land in ``benchmarks/results/offline_throughput.json`` (archived
by the CI bench-smoke job alongside ``update_time.json``).
"""

from __future__ import annotations

import json
import time

import pytest

from benchmarks.common import RESULTS_DIR, print_table, write_table
from repro.core.params import SketchParams
from repro.core.streaming_sketch import StreamingSketchBuilder
from repro.coverage.bitset import BitsetCoverage
from repro.coverage.io import columnar_from_edge_list, open_columnar, read_edge_list, write_edge_list
from repro.datasets import zipf_instance
from repro.streaming.stream import EdgeStream
from repro.utils.tables import Table

K = 16
#: (num_sets, num_elements, edges_per_set) greedy sweep; the last row is the
#: one the speedup assertions bite on.
GREEDY_SWEEP = (
    (250, 4000, 150),
    (600, 10_000, 180),
    (2000, 24_000, 260),
)
#: Minimum lazy-words over eager-bytes greedy speedup on the largest instance.
MIN_GREEDY_SPEEDUP = 3.0
#: Minimum columnar-over-text ingestion events/sec ratio.
MIN_INGEST_SPEEDUP = 5.0
INGEST_SIZES = (600, 20_000, 300)  # (n, m, edges_per_set) for the disk sweep
INGEST_BATCH = 4096


def _best_of(callable_, repeats: int = 3) -> tuple[float, object]:
    """Best-of-N wall time (seconds) plus the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def _merge_results(section: str, payload: dict) -> None:
    """Merge one section into offline_throughput.json (tests run separately)."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / "offline_throughput.json"
    document = {}
    if path.is_file():
        document = json.loads(path.read_text(encoding="utf-8"))
    document[section] = payload
    path.write_text(json.dumps(document, indent=2), encoding="utf-8")


def _greedy_table() -> Table:
    table = Table(
        [
            "n",
            "m",
            "edges",
            "pack_seconds",
            "bytes_eager_s",
            "words_eager_s",
            "bytes_lazy_s",
            "words_lazy_s",
            "speedup_lazy_words_vs_eager_bytes",
        ]
    )
    for index, (n, m, edges_per_set) in enumerate(GREEDY_SWEEP):
        instance = zipf_instance(n, m, edges_per_set=edges_per_set, k=K, seed=1400 + index)
        graph = instance.graph
        pack_start = time.perf_counter()
        byte_kernel = BitsetCoverage(graph, backend="bytes")
        word_kernel = BitsetCoverage(graph, backend="words")
        pack_seconds = time.perf_counter() - pack_start
        timings = {}
        results = {}
        for label, kernel, lazy in (
            ("bytes_eager_s", byte_kernel, False),
            ("words_eager_s", word_kernel, False),
            ("bytes_lazy_s", byte_kernel, True),
            ("words_lazy_s", word_kernel, True),
        ):
            timings[label], results[label] = _best_of(
                lambda kernel=kernel, lazy=lazy: kernel.greedy_k_cover(K, lazy=lazy)
            )
        coverages = {label: result[1] for label, result in results.items()}
        assert len(set(coverages.values())) == 1, coverages  # same quality everywhere
        table.add_row(
            n=n,
            m=m,
            edges=graph.num_edges,
            pack_seconds=pack_seconds,
            speedup_lazy_words_vs_eager_bytes=(
                timings["bytes_eager_s"] / timings["words_lazy_s"]
            ),
            **timings,
        )
    return table


@pytest.mark.benchmark(group="offline-throughput")
def test_word_packed_lazy_greedy_speedup(benchmark):
    """Lazy word-packed greedy ≥ 3x over the seed byte-packed eager greedy."""
    table = benchmark.pedantic(_greedy_table, rounds=1, iterations=1)
    print_table("Greedy k-cover kernels (backend x laziness)", table)
    write_table(
        "offline_throughput_greedy",
        "Offline greedy throughput — word-packed lanes + CELF lazy selection",
        table,
        notes=[
            f"k = {K}; zipf instances; times are best-of-3 wall clock for one "
            "full greedy_k_cover call (packing cost reported separately).",
            "All four variants achieve identical coverage (asserted).",
            "The speedup column is the seed configuration (bytes, eager) over "
            "the new default (words, lazy).",
        ],
    )
    _merge_results(
        "greedy",
        {
            "k": K,
            "min_speedup": MIN_GREEDY_SPEEDUP,
            "rows": table.rows,
        },
    )
    largest = table.rows[-1]
    # The headline: lazy + word lanes vs the seed eager byte path.
    assert largest["speedup_lazy_words_vs_eager_bytes"] >= MIN_GREEDY_SPEEDUP
    # The word backend must never lose to bytes at equal laziness (generous
    # noise margin; the lane count is 8x smaller).
    assert largest["words_eager_s"] <= 1.2 * largest["bytes_eager_s"]
    assert largest["words_lazy_s"] <= 1.2 * largest["bytes_lazy_s"]


def _build_sketch_from_text(path, params, num_sets: int) -> StreamingSketchBuilder:
    pairs = read_edge_list(path)
    edges = [(int(s), int(e)) for s, e in pairs]
    builder = StreamingSketchBuilder(params, seed=9)
    stream = EdgeStream(edges, num_sets=num_sets, order="given")
    for batch in stream.iter_batches(INGEST_BATCH):
        builder.process_batch(batch)
    return builder


def _build_sketch_from_columnar(path, params) -> StreamingSketchBuilder:
    builder = StreamingSketchBuilder(params, seed=9)
    stream = EdgeStream.from_columnar(open_columnar(path), order="given")
    for batch in stream.iter_batches(INGEST_BATCH):
        builder.process_batch(batch)
    return builder


@pytest.mark.benchmark(group="offline-throughput")
def test_columnar_ingestion_speedup(benchmark, tmp_path):
    """Disk → sketch via mmap'd columns ≥ 5x faster than read_edge_list."""
    n, m, edges_per_set = INGEST_SIZES
    instance = zipf_instance(n, m, edges_per_set=edges_per_set, k=K, seed=1900)
    graph = instance.graph
    text_path = tmp_path / "edges.tsv"
    write_edge_list(graph.edges(), text_path)
    columnar_path = tmp_path / "edges.cols"
    columnar_from_edge_list(text_path, columnar_path)
    # The sketch budget mirrors bench_update_time (6n edges): a long stream
    # against a fixed budget is the workload the paper's O~(n) space story is
    # about, and it keeps the shared sketch-admission cost from hiding the
    # ingestion gap being measured.
    params = SketchParams.explicit(
        graph.num_sets,
        max(1, graph.num_elements),
        K,
        0.2,
        edge_budget=6 * graph.num_sets,
        degree_cap=40,
    )

    def run_both():
        text_seconds, via_text = _best_of(
            lambda: _build_sketch_from_text(text_path, params, graph.num_sets), repeats=2
        )
        columnar_seconds, via_columns = _best_of(
            lambda: _build_sketch_from_columnar(columnar_path, params), repeats=2
        )
        # Same file, same order, same budgets: identical sketches.
        assert via_columns.describe() == via_text.describe()
        return text_seconds, columnar_seconds

    text_seconds, columnar_seconds = benchmark.pedantic(run_both, rounds=1, iterations=1)
    edges = graph.num_edges
    table = Table(
        [
            "n",
            "m",
            "edges",
            "text_events_per_sec",
            "columnar_events_per_sec",
            "speedup",
        ]
    )
    table.add_row(
        n=n,
        m=m,
        edges=edges,
        text_events_per_sec=edges / text_seconds,
        columnar_events_per_sec=edges / columnar_seconds,
        speedup=text_seconds / columnar_seconds,
    )
    print_table("Disk ingestion: read_edge_list vs memory-mapped columnar", table)
    write_table(
        "offline_throughput_ingestion",
        "Disk → sketch ingestion — text edge list vs memory-mapped columns",
        table,
        notes=[
            "End-to-end: open the file, build the stream, drive EventBatch "
            f"chunks of {INGEST_BATCH} through the sketch builder.",
            "Both routes produce byte-identical sketches (asserted).",
            "The text route pays line parsing plus per-edge tuple "
            "materialisation; the columnar route maps uint64 columns and "
            "slices batches straight from the page cache.",
        ],
    )
    _merge_results(
        "ingestion",
        {
            "batch_size": INGEST_BATCH,
            "min_speedup": MIN_INGEST_SPEEDUP,
            "rows": table.rows,
        },
    )
    assert text_seconds / columnar_seconds >= MIN_INGEST_SPEEDUP
