"""Merge ``benchmarks/results/*.json`` into one trajectory artifact.

Every benchmark writes its measurements to its own JSON file (update time,
offline throughput, distributed throughput, parallel scaling, serving
latency).  CI archives them individually; this script folds them into a
single ``trajectory.json`` + ``trajectory.md`` so one artifact shows the
whole performance surface of a commit — and diffs cleanly between commits.

Usage::

    PYTHONPATH=src python benchmarks/collect_results.py
    PYTHONPATH=src python benchmarks/collect_results.py --results-dir benchmarks/results

The merge is deterministic: artifacts are keyed by file stem in sorted
order, and nothing (no timestamps, no hostnames) is added beyond the files'
own contents, so two runs over the same inputs produce identical bytes.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

DEFAULT_RESULTS_DIR = Path(__file__).parent / "results"
#: The merged artifact's own outputs, excluded from the scan so repeated
#: runs do not fold the trajectory into itself.
OUTPUT_STEM = "trajectory"


def summarize_lint_report(payload: object) -> object:
    """Flatten a ``repro lint`` JSON report into trajectory-friendly scalars.

    The raw report nests findings under ``report`` and engine telemetry
    under ``stats``; the trajectory wants the headline numbers (finding
    count, files analyzed, cache hit rate, wall time) at the top level so
    they diff between commits like every other artifact.  Anything that
    does not look like a lint report passes through untouched.
    """
    if not isinstance(payload, dict) or "report" not in payload:
        return payload
    report = payload.get("report")
    if not isinstance(report, dict):
        return payload
    stats = payload.get("stats")
    stats = stats if isinstance(stats, dict) else {}
    findings = report.get("findings")
    summary: dict[str, object] = {
        "version": payload.get("version"),
        "findings": len(findings) if isinstance(findings, list) else None,
        "files_scanned": report.get("files_scanned"),
        "suppressed": report.get("suppressed"),
        "rules": len(report.get("rules", [])),
    }
    for key in ("files_analyzed", "files_from_cache", "cache_hit_rate",
                "wall_seconds", "executor", "workers"):
        if key in stats:
            summary[key] = stats[key]
    return summary


def summarize_chrome_trace(payload: object) -> object:
    """Compress a Chrome trace-event JSON into trajectory headline numbers.

    The raw trace is one event per span — megabytes on a real run and
    different every time (timestamps).  The trajectory wants the shape:
    how many spans, which lanes (coordinator + workers), which span names
    appeared, and the wall extent.  Anything without a ``traceEvents``
    list passes through untouched.
    """
    if not isinstance(payload, dict):
        return payload
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return payload
    spans = [e for e in events if isinstance(e, dict) and e.get("ph") == "X"]
    lanes = sorted(
        e.get("args", {}).get("name", "")
        for e in events
        if isinstance(e, dict) and e.get("ph") == "M"
        and e.get("name") == "thread_name"
    )
    extent = max((e.get("ts", 0) + e.get("dur", 0) for e in spans), default=0)
    return {
        "span_events": len(spans),
        "lanes": lanes,
        "span_names": sorted({e.get("name") for e in spans}),
        "extent_micros": extent,
    }


def summarize_metrics_snapshot(payload: object) -> object:
    """Flatten a ``repro.obs`` metrics snapshot into headline scalars.

    A snapshot maps instrument name to its typed state; the trajectory
    keeps counters and gauge levels as-is and reduces histograms to
    count/mean (full bucket vectors stay in the archived raw artifact).
    Anything that does not look like a snapshot passes through untouched.
    """
    if not isinstance(payload, dict) or not payload:
        return payload
    kinds = {"counter", "gauge", "histogram"}
    if not all(
        isinstance(state, dict) and state.get("kind") in kinds
        for state in payload.values()
    ):
        return payload
    summary: dict[str, object] = {}
    for name in sorted(payload):
        state = payload[name]
        if state["kind"] == "counter":
            summary[name] = state.get("value", 0)
        elif state["kind"] == "gauge":
            summary[name] = state.get("value", 0.0)
            summary[f"{name}.max"] = state.get("max", 0.0)
        else:
            count = state.get("count", 0)
            summary[f"{name}.count"] = count
            summary[f"{name}.mean"] = (
                state.get("sum", 0.0) / count if count else 0.0
            )
    return summary


def collect_results(results_dir: Path) -> dict[str, object]:
    """Parse every results JSON (except the trajectory itself), keyed by stem."""
    artifacts: dict[str, object] = {}
    skipped: list[str] = []
    for path in sorted(results_dir.glob("*.json")):
        if path.stem == OUTPUT_STEM:
            continue
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            skipped.append(f"{path.name}: {error}")
            continue
        if path.stem == "lint-report":
            payload = summarize_lint_report(payload)
        payload = summarize_chrome_trace(payload)
        payload = summarize_metrics_snapshot(payload)
        artifacts[path.stem] = payload
    return {
        "artifacts": artifacts,
        "artifact_names": sorted(artifacts),
        "skipped": skipped,
    }


def _scalar_summary(data: object, limit: int = 8) -> list[str]:
    """The top-level scalar fields of one artifact, for the Markdown digest."""
    if not isinstance(data, dict):
        return []
    lines = []
    for key in sorted(data):
        value = data[key]
        if not isinstance(value, (bool, int, float, str)):
            continue
        if isinstance(value, float):
            value = round(value, 6)
        lines.append(f"  - `{key}`: {value}")
        if len(lines) >= limit:
            break
    return lines


def render_markdown(merged: dict[str, object]) -> str:
    """A human-readable digest of the merged trajectory."""
    lines = ["### Benchmark trajectory", ""]
    artifacts = merged["artifacts"]
    if not artifacts:
        lines.append("No benchmark results found — run the `bench_*.py` suites first.")
    for name in merged["artifact_names"]:
        lines.append(f"- **{name}**")
        lines.extend(_scalar_summary(artifacts[name]))
    for note in merged["skipped"]:
        lines.append(f"- skipped (unparseable): {note}")
    lines.append("")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results-dir",
        type=Path,
        default=DEFAULT_RESULTS_DIR,
        help="directory holding the per-benchmark *.json files",
    )
    args = parser.parse_args(argv)
    results_dir = args.results_dir
    if not results_dir.is_dir():
        parser.error(f"results directory not found: {results_dir}")
    merged = collect_results(results_dir)
    json_path = results_dir / f"{OUTPUT_STEM}.json"
    md_path = results_dir / f"{OUTPUT_STEM}.md"
    json_path.write_text(json.dumps(merged, indent=2) + "\n", encoding="utf-8")
    md_path.write_text(render_markdown(merged), encoding="utf-8")
    print(f"merged {len(merged['artifact_names'])} artifact(s) -> {json_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
