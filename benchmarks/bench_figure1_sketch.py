"""Figure 1 — the H_p / H'_p construction on the worked example.

Figure 1 of the paper shows a small bipartite graph, the subgraph ``H_p``
obtained by keeping the elements whose hash falls below ``p = 0.5`` (solid
edges), and the further-thinned ``H'_p`` after the element degree cap.

This benchmark reconstructs the figure programmatically: a 4-set / 8-element
example with prescribed hash values, ``p = 0.5`` and a degree cap of 2, and
reports per-element membership in ``H_p`` / ``H'_p`` alongside the edge
counts, so the output can be compared edge-for-edge with the figure's
solid/dotted distinction.
"""

from __future__ import annotations

import pytest

from benchmarks.common import print_table, write_table
from repro.coverage.bipartite import BipartiteGraph
from repro.core.params import SketchParams
from repro.core.sketch import apply_degree_cap, build_hp
from repro.utils.tables import Table

#: Hash values in the style of the figure (the number printed under each
#: element vertex).
ELEMENT_HASHES = {0: 0.1, 1: 0.7, 2: 0.3, 3: 0.9, 4: 0.2, 5: 0.8, 6: 0.4, 7: 0.6}
P = 0.5
DEGREE_CAP = 2

MEMBERSHIPS = {
    0: [0, 1, 2, 3],
    1: [2, 3, 4, 5],
    2: [4, 5, 6, 7],
    3: [0, 3, 5, 7],
}


class _FixedHash:
    """Hash function pinned to the figure's printed values."""

    def value(self, element: int) -> float:
        return ELEMENT_HASHES[element]

    def rank(self, element: int) -> int:
        return int(ELEMENT_HASHES[element] * 2**64)


def _build() -> tuple[BipartiteGraph, BipartiteGraph, BipartiteGraph]:
    graph = BipartiteGraph(4)
    for set_id, members in MEMBERSHIPS.items():
        for element in members:
            graph.add_edge(set_id, element)
    hp = build_hp(graph, P, _FixedHash())
    hp_prime, _ = apply_degree_cap(hp, DEGREE_CAP)
    return graph, hp, hp_prime


@pytest.mark.benchmark(group="figure1")
def test_figure1_hp_and_hp_prime(benchmark):
    """Regenerate Figure 1's H_p and H'_p membership table."""
    graph, hp, hp_prime = benchmark.pedantic(_build, rounds=1, iterations=1)

    table = Table(["element", "hash", "in_Hp", "degree_G", "degree_Hp", "degree_Hp_prime"])
    for element in sorted(graph.elements()):
        table.add_row(
            element=element,
            hash=ELEMENT_HASHES[element],
            in_Hp=hp.has_element(element),
            degree_G=graph.element_degree(element),
            degree_Hp=hp.element_degree(element),
            degree_Hp_prime=hp_prime.element_degree(element),
        )
    print_table("Figure 1 — H_p and H'_p (p = 0.5, degree cap 2)", table)
    write_table(
        "figure1_sketch",
        "Figure 1 — H_p and H'_p on the worked example",
        table,
        notes=[
            f"p = {P}, degree cap = {DEGREE_CAP} "
            "(solid edges of the figure = edges kept in the sketch).",
            f"Edges: G has {graph.num_edges}, H_p has {hp.num_edges}, "
            f"H'_p has {hp_prime.num_edges}.",
        ],
    )

    # The figure's defining properties.
    kept = {e for e in graph.elements() if ELEMENT_HASHES[e] <= P}
    assert set(hp.elements()) == kept
    assert all(hp.element_degree(e) == graph.element_degree(e) for e in kept)
    assert all(hp_prime.element_degree(e) <= DEGREE_CAP for e in hp_prime.elements())
    assert hp_prime.num_edges <= hp.num_edges <= graph.num_edges


@pytest.mark.benchmark(group="figure1")
def test_figure1_definition_2_1_budget_construction(benchmark):
    """The H_{<=n} variant of the figure: admit by hash order until the budget."""
    from repro.core.sketch import build_h_leq_n

    graph = BipartiteGraph(4)
    for set_id, members in MEMBERSHIPS.items():
        for element in members:
            graph.add_edge(set_id, element)
    params = SketchParams.explicit(4, 8, 2, 0.5, edge_budget=6, degree_cap=DEGREE_CAP)

    sketch = benchmark.pedantic(
        build_h_leq_n, args=(graph, params, _FixedHash()), rounds=1, iterations=1
    )
    # Elements are admitted in hash order (0, 4, 2, 6, ...) until >= 6 edges.
    admitted = sorted(sketch.graph.elements(), key=lambda e: ELEMENT_HASHES[e])
    assert admitted[0] == 0
    assert sketch.num_edges >= 6
    assert sketch.num_edges <= 6 + DEGREE_CAP
    assert sketch.threshold <= max(ELEMENT_HASHES.values())
