"""Table 1 — k-cover rows.

Paper's claim (Table 1):

==================  ======  ============  ========  =======
algorithm           passes  approximation space     arrival
==================  ======  ============  ========  =======
Saha–Getoor [44]    1       1/4           O~(m)     set
Sieve [9]           1       1/2           O~(n+m)   set
**This paper**      1       1 − 1/e − ε   O~(n)     edge
McGregor–Vu [36]    1       1 − 1/e − ε   O~(n)     set/edge
==================  ======  ============  ========  =======

This benchmark measures all four on the same planted / Zipf / blog-watch
workloads (random edge / set order) and regenerates the table with *measured*
approximation ratios (vs. the planted optimum or greedy reference), passes
and peak stored items.  The expected shape: the sketch matches or beats the
¼ and ½ baselines on quality while storing a number of edges bounded by its
budget (independent of m), whereas the set-arrival baselines' space tracks
the ground set.
"""

from __future__ import annotations

import pytest

from benchmarks.common import print_table, suite_to_table, write_table
from repro.analysis import ExperimentSuite, run_solver_comparison
from repro.core.params import SketchParams

K = 10


def _solvers(instance):
    """Registry solver specs for the four Table 1 k-cover rows."""
    return [
        (
            "this-paper-sketch",
            "kcover/sketch",
            {"edge_budget": 6 * instance.n, "degree_cap": 40},
        ),
        ("saha-getoor-1/4", "kcover/saha-getoor"),
        ("sieve-streaming-1/2", "kcover/sieve", {"epsilon": 0.1}),
        ("mcgregor-vu", "kcover/mcgregor-vu", {"epsilon": 0.3}),
    ]


def _run_table(instances: dict[str, object], seed: int = 1) -> ExperimentSuite:
    suite = ExperimentSuite("table1-kcover")
    for name, instance in instances.items():
        run_solver_comparison(suite, instance, name, _solvers(instance), seed=seed)
    return suite


@pytest.mark.benchmark(group="table1-kcover")
def test_table1_kcover_rows(benchmark, kcover_planted, kcover_zipf, kcover_blogwatch):
    """Regenerate the k-cover rows of Table 1 (quality / passes / space)."""
    instances = {
        "planted": kcover_planted,
        "zipf": kcover_zipf,
        "blog_watch": kcover_blogwatch,
    }
    suite = benchmark.pedantic(_run_table, args=(instances,), rounds=1, iterations=1)
    table = suite_to_table(suite)
    print_table("Table 1 — k-cover (measured)", table)
    write_table(
        "table1_kcover",
        "Table 1 — k-cover rows (measured)",
        table,
        notes=[
            f"k = {K}; ratios are measured against the planted optimum (or greedy reference).",
            "Paper's claim: sketch achieves 1 − 1/e − ε in one pass with O~(n) space (edge arrival).",
        ],
    )
    # Shape assertions mirroring the paper's comparison.
    ratios = suite.aggregate("approx_ratio")
    assert ratios["this-paper-sketch"]["mean"] >= 0.80
    assert ratios["this-paper-sketch"]["mean"] >= ratios["saha-getoor-1/4"]["min"] - 0.10
    space = suite.aggregate("space_peak")
    # The sketch's space is bounded by its budget; the O~(m) baselines store more
    # on these m >> n workloads.
    assert space["this-paper-sketch"]["max"] <= space["sieve-streaming-1/2"]["mean"]


@pytest.mark.benchmark(group="table1-kcover")
def test_table1_kcover_streaming_throughput(benchmark, kcover_planted):
    """Update-time microbenchmark: edges/second through the sketch builder."""
    from repro.streaming import EdgeStream

    instance = kcover_planted
    params = SketchParams.explicit(
        instance.n, instance.m, K, 0.2, edge_budget=6 * instance.n, degree_cap=40
    )
    edges = [e.as_tuple() for e in EdgeStream.from_graph(instance.graph, order="random", seed=3)]

    def build_once():
        from repro.core import StreamingSketchBuilder

        builder = StreamingSketchBuilder(params, seed=3)
        builder.consume(edges)
        return builder.sketch()

    sketch = benchmark(build_once)
    assert sketch.num_edges <= params.edge_budget + params.eviction_slack
