"""Appendix D / Theorem D.2 — the ℓ0-sketch baseline needs O~(nk) space.

The benchmark compares, for a sweep of k:

* the per-set KMV capacity the union-bound argument of Appendix D requires
  (and hence the total words of the ℓ0 oracle), against
* the edge budget of the paper's H_{<=n} sketch (Theorem 3.1's O~(n)),

and measures the quality of greedy k-cover run over each summary.  Expected
shape: both summaries deliver near-greedy quality, but the ℓ0 route's space
grows linearly with k while the paper's sketch stays flat.
"""

from __future__ import annotations

import pytest

from benchmarks.common import print_table, write_table
from repro.core import StreamingKCover
from repro.core.l0 import L0CoverageOracle, l0_greedy_k_cover
from repro.core.params import SketchParams
from repro.datasets import planted_kcover_instance
from repro.offline.greedy import greedy_k_cover
from repro.streaming import EdgeStream, StreamingRunner
from repro.utils.tables import Table

K_SWEEP = (4, 8, 16)
EPSILON = 0.2


def _run() -> Table:
    table = Table(
        [
            "k",
            "l0_words_total",
            "l0_ratio",
            "sketch_edges_budget",
            "sketch_space_peak",
            "sketch_ratio",
        ]
    )
    for index, k in enumerate(K_SWEEP):
        instance = planted_kcover_instance(60, 3000, k=k, seed=1000 + index)
        reference = greedy_k_cover(instance.graph, k).coverage

        capacity = L0CoverageOracle.capacity_for_union_bound(instance.n, k, EPSILON)
        l0_oracle = L0CoverageOracle(instance.n, EPSILON, capacity=capacity, seed=index)
        l0_oracle.consume(instance.graph.edges())
        l0_solution, _ = l0_greedy_k_cover(l0_oracle, k)
        l0_value = instance.graph.coverage(l0_solution)

        params = SketchParams.explicit(
            instance.n, instance.m, k, EPSILON, edge_budget=6 * instance.n, degree_cap=40
        )
        sketch_algo = StreamingKCover(instance.n, instance.m, k=k, params=params, seed=index)
        sketch_report = StreamingRunner(instance.graph).run(
            sketch_algo, EdgeStream.from_graph(instance.graph, order="random", seed=index)
        )

        table.add_row(
            k=k,
            l0_words_total=l0_oracle.space.peak,
            l0_ratio=l0_value / reference,
            sketch_edges_budget=params.edge_budget,
            sketch_space_peak=sketch_report.space_peak,
            sketch_ratio=sketch_report.coverage / reference,
        )
    return table


@pytest.mark.benchmark(group="l0-baseline")
def test_l0_space_grows_with_k_but_sketch_does_not(benchmark):
    """Appendix D's O~(nk) space versus Theorem 3.1's O~(n)."""
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_table("Appendix D — ℓ0 baseline vs the paper's sketch", table)
    write_table(
        "l0_baseline",
        "Appendix D — ℓ0-sketch baseline (O~(nk)) vs H_{<=n} (O~(n))",
        table,
        notes=[
            f"ε = {EPSILON}; ℓ0 capacity includes the union-bound factor of Theorem D.2.",
        ],
    )
    l0_space = table.column("l0_words_total")
    sketch_space = table.column("sketch_space_peak")
    # ℓ0 storage grows ~linearly in k; the paper's sketch stays flat.
    assert l0_space[-1] >= 3.0 * l0_space[0]
    assert max(sketch_space) <= 1.15 * min(sketch_space)
    # Both summaries are accurate enough for near-greedy quality.
    assert min(table.column("l0_ratio")) >= 0.75
    assert min(table.column("sketch_ratio")) >= 0.8
