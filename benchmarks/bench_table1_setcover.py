"""Table 1 — set cover rows.

Paper's claim (Table 1):

=====================  ======  ==================  ======================  =======
algorithm              passes  approximation       space                   arrival
=====================  ======  ==================  ======================  =======
Demaine et al. [18]    4r      4r · log m          O~(n·m^{1/r} + m)       set
Har-Peled et al. [25]  p       O(p · log m)        O~(n·m^{O(1/p)} + m)    set
**This paper**         p       (1 + ε) · log m     O~(n·m^{O(1/p)} + m)    edge
=====================  ======  ==================  ======================  =======

This benchmark runs Algorithm 6 against the Demaine-style and Har-Peled-style
multi-pass baselines (and the offline greedy reference) on planted set cover
workloads, reporting measured cover sizes, blow-up over the planted optimum,
passes and space.  Expected shape: every algorithm reaches a full cover; the
paper's algorithm needs the fewest (or comparable) sets for the same pass
budget, and its blow-up stays near log m.
"""

from __future__ import annotations

import math

import pytest

from benchmarks.common import print_table, write_table
from repro.analysis.metrics import setcover_blowup
from repro.api import StreamSpec, solve
from repro.datasets import planted_setcover_instance
from repro.utils.tables import Table

ROUNDS = (2, 3, 4)
EPSILON = 0.5


def _run_rows() -> Table:
    table = Table(
        [
            "rounds",
            "algorithm",
            "passes",
            "cover_size",
            "size_blowup",
            "paper_bound",
            "covered_fraction",
            "space_peak",
        ]
    )
    for index, rounds in enumerate(ROUNDS):
        instance = planted_setcover_instance(80, 2500, cover_size=12, seed=300 + index)
        optimum = len(instance.planted_solution)
        stream = StreamSpec(order="random", seed=index)
        log_m_bound = (1 + EPSILON) * math.log(instance.m)

        # One solve() per Table 1 row; the registry wires constructors and streams.
        rows = [
            ("offline-greedy", "offline/greedy", {"allow_partial": False},
             math.log(instance.m)),
            ("this-paper-sketch", "setcover/sketch",
             {"epsilon": EPSILON, "rounds": rounds, "max_guesses": 14}, log_m_bound),
            ("demaine-style", "setcover/demaine", {"rounds": rounds},
             4 * rounds * math.log(instance.m)),
            ("har-peled-style", "setcover/harpeled", {"passes": 2 * rounds - 1},
             (2 * rounds - 1) * math.log(instance.m)),
        ]
        for label, solver, options, bound in rows:
            report = solve(
                instance, solver, options=options, stream=stream, seed=300 + index
            )
            table.add_row(
                rounds=rounds,
                algorithm=label,
                passes=report.passes,
                cover_size=report.solution_size,
                size_blowup=setcover_blowup(report.solution_size, optimum),
                paper_bound=bound,
                covered_fraction=report.coverage_fraction,
                space_peak=report.space_peak,
            )
    return table


@pytest.mark.benchmark(group="table1-setcover")
def test_table1_setcover_rows(benchmark):
    """Regenerate the set cover rows of Table 1."""
    table = benchmark.pedantic(_run_rows, rounds=1, iterations=1)
    print_table("Table 1 — set cover (measured)", table)
    write_table(
        "table1_setcover",
        "Table 1 — set cover (measured)",
        table,
        notes=[
            f"ε = {EPSILON}; planted minimum cover of size 12 over m = 2500 elements.",
            "Paper's claim: (1 + ε) log m blow-up in p passes; exponentially better than 4r log m.",
        ],
    )
    ours_rows = [r for r in table.rows if r["algorithm"] == "this-paper-sketch"]
    greedy_rows = [r for r in table.rows if r["algorithm"] == "offline-greedy"]
    for row in ours_rows:
        assert row["covered_fraction"] == pytest.approx(1.0)
        assert row["size_blowup"] <= row["paper_bound"]
    # Our algorithm's cover is within a small factor of the offline greedy cover.
    mean_ours = sum(r["cover_size"] for r in ours_rows) / len(ours_rows)
    mean_greedy = sum(r["cover_size"] for r in greedy_rows) / len(greedy_rows)
    assert mean_ours <= 2.5 * mean_greedy
