"""Theorem 1.3 / Appendix A — a (1 ± ε)-approximate oracle is not sufficient.

Two experiments:

1. **k-purification query counts** (Theorem A.2): for a grid of (n, k) the
   benchmark runs the natural random-subset attack with a fixed query budget
   and reports its success rate next to the theoretical lower bound
   ``(δ/2)·exp(ε²k²/(3n))``.  Expected shape: once the exponent crosses a few
   units, the attack stops succeeding within the budget.

2. **k-cover through the adversarial oracle** (the reduction): greedy driven
   by the Theorem 1.3 oracle recovers almost none of the optimum's value,
   while the same greedy with exact coverage access solves the instance —
   demonstrating that the obstacle is the oracle, not the algorithm.
"""

from __future__ import annotations

import math

import pytest

from benchmarks.common import print_table, write_table
from repro.core.oracle import (
    PurificationCoverageOracle,
    oracle_greedy_k_cover,
    purification_to_kcover_instance,
)
from repro.core.purification import (
    KPurificationInstance,
    PurificationOracle,
    query_lower_bound,
    random_subset_search,
)
from repro.offline.greedy import greedy_k_cover
from repro.utils.tables import Table

EPSILON = 0.6
QUERY_BUDGET = 400
GRID = ((200, 8), (200, 20), (200, 40), (400, 60))
TRIALS = 5


def _run_purification() -> Table:
    table = Table(
        [
            "n",
            "k",
            "exponent_eps2k2_over_3n",
            "theory_lower_bound",
            "query_budget",
            "success_rate",
            "mean_queries_when_found",
        ]
    )
    for n, k in GRID:
        successes, query_counts = 0, []
        for trial in range(TRIALS):
            instance = KPurificationInstance.random(n, k, seed=800 + trial)
            oracle = PurificationOracle(instance, epsilon=EPSILON)
            outcome = random_subset_search(
                oracle, subset_size=k, max_queries=QUERY_BUDGET, seed=800 + trial
            )
            if outcome.found:
                successes += 1
                query_counts.append(outcome.queries)
        exponent = EPSILON**2 * k**2 / (3 * n)
        table.add_row(
            n=n,
            k=k,
            exponent_eps2k2_over_3n=exponent,
            theory_lower_bound=query_lower_bound(n, k, EPSILON),
            query_budget=QUERY_BUDGET,
            success_rate=successes / TRIALS,
            mean_queries_when_found=(
                sum(query_counts) / len(query_counts) if query_counts else float("nan")
            ),
        )
    return table


def _run_reduction() -> Table:
    table = Table(
        ["oracle", "k", "selected_gold", "achieved_value", "optimum", "value_fraction"]
    )
    n, k = 90, 30
    instance = KPurificationInstance.random(n, k, seed=900)
    graph = purification_to_kcover_instance(instance)
    optimum = graph.coverage(sorted(instance.gold_items))

    # Exact-coverage greedy (what a real algorithm with data access achieves).
    exact_solution = greedy_k_cover(graph, k).selected
    table.add_row(
        oracle="exact-coverage",
        k=k,
        selected_gold=instance.gold_count(exact_solution),
        achieved_value=graph.coverage(exact_solution),
        optimum=optimum,
        value_fraction=graph.coverage(exact_solution) / optimum,
    )

    # Greedy restricted to the adversarial (1 ± ε')-approximate oracle.
    adversarial = PurificationCoverageOracle(PurificationOracle(instance, epsilon=0.5))
    oracle_solution, _ = oracle_greedy_k_cover(adversarial, k, n)
    achieved = graph.coverage(oracle_solution)
    table.add_row(
        oracle="adversarial-(1±ε)",
        k=k,
        selected_gold=instance.gold_count(oracle_solution),
        achieved_value=achieved,
        optimum=optimum,
        value_fraction=achieved / optimum,
    )
    return table


@pytest.mark.benchmark(group="oracle-hardness")
def test_purification_query_complexity(benchmark):
    """Success rate of a bounded-query attack collapses as ε²k²/n grows."""
    table = benchmark.pedantic(_run_purification, rounds=1, iterations=1)
    print_table("Appendix A — k-purification with a bounded query budget", table)
    write_table(
        "oracle_hardness_purification",
        "Theorem A.2 — k-purification query complexity",
        table,
        notes=[
            f"ε = {EPSILON}, {TRIALS} trials per point, budget {QUERY_BUDGET} queries.",
            "The theoretical lower bound is (δ/2)·exp(ε²k²/(3n)) with δ = 1/2.",
        ],
    )
    rates = table.column("success_rate")
    exponents = table.column("exponent_eps2k2_over_3n")
    # Easy regime succeeds, hard regime fails.
    assert rates[0] >= 0.6
    assert rates[-1] == 0.0
    assert exponents[-1] > exponents[0]


@pytest.mark.benchmark(group="oracle-hardness")
def test_kcover_via_oracle_reduction(benchmark):
    """Greedy through the adversarial oracle cannot approximate k-cover."""
    table = benchmark.pedantic(_run_reduction, rounds=1, iterations=1)
    print_table("Theorem 1.3 — k-cover through a (1±ε)-approximate oracle", table)
    write_table(
        "oracle_hardness_reduction",
        "Theorem 1.3 — the oracle reduction in action",
        table,
        notes=["Instance: n = 90 sets, k = 30 gold; optimum value k + n = 120."],
    )
    rows = {row["oracle"]: row for row in table.rows}
    assert rows["exact-coverage"]["value_fraction"] == pytest.approx(1.0, abs=1e-9)
    assert rows["adversarial-(1±ε)"]["value_fraction"] <= 0.8
