"""Extension — O~(1) independent sketch replicas (Section 1.3.2's amplification).

The paper's algorithms "construct O~(1) independent instances of the sketch"
to push the failure probability down to 1/n.  This benchmark quantifies the
trade: for replica counts R ∈ {1, 3, 5} it runs the ensemble k-cover on a
batch of seeded instances and reports the worst-case (minimum) and mean
approximation ratio across the batch, plus the space multiplier.  Expected
shape: the mean barely moves, but the worst case tightens as R grows, at a
linear space cost.
"""

from __future__ import annotations

import pytest

from benchmarks.common import print_table, write_table
from repro.api import StreamSpec, solve
from repro.datasets import zipf_instance
from repro.offline.greedy import greedy_k_cover
from repro.utils.tables import Table

K = 8
REPLICAS = (1, 3, 5)
BATCH = 6


def _run() -> Table:
    table = Table(["replicas", "mean_ratio", "worst_ratio", "mean_space", "space_multiplier"])
    base_space: float | None = None
    for replicas in REPLICAS:
        ratios, spaces = [], []
        for trial in range(BATCH):
            instance = zipf_instance(80, 3000, edges_per_set=60, k=K, seed=1300 + trial)
            reference = greedy_k_cover(instance.graph, K).coverage
            report = solve(
                instance,
                "kcover/ensemble",
                options={
                    "replicas": replicas,
                    "epsilon": 0.3,
                    "edge_budget": 3 * instance.n,
                    "degree_cap": 20,
                },
                stream=StreamSpec(order="random", seed=trial),
                seed=1300 + trial,
            )
            ratios.append(report.coverage / reference)
            spaces.append(report.space_peak)
        mean_space = sum(spaces) / len(spaces)
        if base_space is None:
            base_space = mean_space
        table.add_row(
            replicas=replicas,
            mean_ratio=sum(ratios) / len(ratios),
            worst_ratio=min(ratios),
            mean_space=mean_space,
            space_multiplier=mean_space / base_space,
        )
    return table


@pytest.mark.benchmark(group="ensemble")
def test_replica_amplification(benchmark):
    """More replicas: (weakly) better worst case, linearly more space."""
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_table("Ensemble — replicas vs worst-case quality", table)
    write_table(
        "ensemble",
        "Extension — O~(1) independent sketch replicas",
        table,
        notes=[f"k = {K}, {BATCH} seeded Zipf instances per replica count."],
    )
    worst = table.column("worst_ratio")
    multiplier = table.column("space_multiplier")
    assert worst[-1] >= worst[0] - 1e-9  # never worse with more replicas
    assert multiplier[-1] >= 4.0  # 5 replicas ≈ 5x the space
    assert min(table.column("mean_ratio")) >= 0.75
