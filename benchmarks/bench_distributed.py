"""Extension — distributed (MapReduce-style) coverage via composable sketches.

Section 1.3.2 and the conclusion point to the companion paper that applies
the same sketch to distributed computation.  This benchmark exercises the
two-round simulation in :mod:`repro.distributed`: machines sketch their edge
shards with a shared hash function, the coordinator merges the shard sketches
and runs greedy on the merge.

Measured: solution quality (vs. the centralised offline greedy), per-machine
load, total communication (edges shipped to the coordinator) and coordinator
memory, as the number of machines grows.  Expected shape: quality is flat in
the number of machines (composability), per-machine load drops roughly like
1/machines until it hits the sketch budget, and communication stays bounded
by machines × sketch budget — far below shipping the raw edges.
"""

from __future__ import annotations

import pytest

from benchmarks.common import print_table, write_table
from repro.core.params import SketchParams
from repro.datasets import planted_kcover_instance
from repro.distributed import DistributedKCover
from repro.offline.greedy import greedy_k_cover
from repro.utils.tables import Table

K = 10
MACHINES = (1, 2, 4, 8, 16)


def _run() -> Table:
    instance = planted_kcover_instance(120, 8000, k=K, planted_coverage=0.9, seed=1200)
    reference = greedy_k_cover(instance.graph, K).coverage
    edges = list(instance.graph.edges())
    params = SketchParams.explicit(
        instance.n, instance.m, K, 0.2, edge_budget=6 * instance.n, degree_cap=40
    )
    table = Table(
        [
            "machines",
            "approx_ratio",
            "machine_load_min",
            "machine_load_mean",
            "max_machine_load",
            "communication_edges",
            "coordinator_edges",
            "input_edges",
        ]
    )
    for machines in MACHINES:
        runner = DistributedKCover(
            instance.n, instance.m, k=K, num_machines=machines, params=params, seed=1200
        )
        report = runner.run(edges)
        achieved = instance.graph.coverage(report.solution)
        table.add_row(
            machines=machines,
            approx_ratio=achieved / reference,
            machine_load_min=report.min_machine_load,
            machine_load_mean=report.mean_machine_load,
            max_machine_load=report.max_machine_load,
            communication_edges=report.communication_edges,
            coordinator_edges=report.coordinator_edges,
            input_edges=len(edges),
        )
    return table


@pytest.mark.benchmark(group="distributed")
def test_distributed_quality_flat_in_machines(benchmark):
    """Composability: quality does not degrade as the edges are sharded."""
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_table("Distributed k-cover via composable sketches", table)
    write_table(
        "distributed",
        "Extension — distributed k-cover (companion-paper application)",
        table,
        notes=[
            f"k = {K}, planted instance with n = 120, m = 8000; two rounds per run.",
            "Communication = edges shipped from machines to the coordinator.",
        ],
    )
    ratios = table.column("approx_ratio")
    loads = table.column("max_machine_load")
    communication = table.column("communication_edges")
    input_edges = table.column("input_edges")[0]
    # Quality stays within a few percent of the single-machine run.
    assert min(ratios) >= max(ratios) - 0.05
    assert min(ratios) >= 0.85
    # Per-machine load decreases as machines are added.
    assert loads[-1] <= loads[0]
    # Communication never exceeds shipping the raw input.
    assert max(communication) <= input_edges
