"""Theorem 3.1's space claim — sketch size is O~(n), independent of m.

The benchmark sweeps the ground-set size ``m`` with ``n`` fixed and, for each
point, measures the peak number of stored edges of (a) the paper's sketch and
(b) a set-arrival baseline that keeps covered elements.  It then sweeps ``n``
with ``m`` fixed to show the sketch's space *does* grow with ``n`` (linearly,
as the bound says).  Expected shape: flat in m, linear in n.
"""

from __future__ import annotations

import pytest

from benchmarks.common import print_table, write_table
from repro.api import StreamSpec, solve
from repro.datasets import planted_kcover_instance
from repro.utils.tables import Table

K = 8
M_SWEEP = (1500, 3000, 6000, 12_000)
N_SWEEP = (40, 80, 160)


def _space_for(instance, seed: int) -> tuple[int, int]:
    stream = StreamSpec(order="random", seed=seed)
    sketch_report = solve(
        instance,
        "kcover/sketch",
        options={"edge_budget": 6 * instance.n, "degree_cap": 40},
        stream=stream,
        seed=seed,
    )
    baseline_report = solve(
        instance, "kcover/sieve", options={"epsilon": 0.2}, stream=stream, seed=seed
    )
    return sketch_report.space_peak, baseline_report.space_peak


def _run_m_sweep() -> Table:
    table = Table(["n", "m", "input_edges", "sketch_space", "baseline_space"])
    for index, m in enumerate(M_SWEEP):
        instance = planted_kcover_instance(80, m, k=K, seed=400 + index)
        sketch_space, baseline_space = _space_for(instance, seed=index)
        table.add_row(
            n=instance.n,
            m=instance.m,
            input_edges=instance.num_edges,
            sketch_space=sketch_space,
            baseline_space=baseline_space,
        )
    return table


def _run_n_sweep() -> Table:
    table = Table(["n", "m", "input_edges", "sketch_space", "sketch_space_per_n"])
    for index, n in enumerate(N_SWEEP):
        instance = planted_kcover_instance(n, 6000, k=K, seed=500 + index)
        sketch_space, _ = _space_for(instance, seed=index)
        table.add_row(
            n=instance.n,
            m=instance.m,
            input_edges=instance.num_edges,
            sketch_space=sketch_space,
            sketch_space_per_n=sketch_space / instance.n,
        )
    return table


@pytest.mark.benchmark(group="space-scaling")
def test_space_flat_in_m(benchmark):
    """Peak sketch space stays flat while m quadruples (Theorem 3.1)."""
    table = benchmark.pedantic(_run_m_sweep, rounds=1, iterations=1)
    print_table("Sketch space vs ground-set size m (n = 80 fixed)", table)
    write_table(
        "space_scaling_m",
        "Theorem 3.1 — sketch space is independent of m",
        table,
        notes=["Budget 6·n edges; the baseline stores covered elements so it tracks m."],
    )
    sketch = table.column("sketch_space")
    baseline = table.column("baseline_space")
    assert max(sketch) <= 1.1 * min(sketch)  # flat in m
    assert baseline[-1] >= 2.0 * baseline[0]  # baseline grows with m


@pytest.mark.benchmark(group="space-scaling")
def test_space_linear_in_n(benchmark):
    """Peak sketch space grows (roughly linearly) with n."""
    table = benchmark.pedantic(_run_n_sweep, rounds=1, iterations=1)
    print_table("Sketch space vs number of sets n (m = 6000 fixed)", table)
    write_table(
        "space_scaling_n",
        "Theorem 3.1 — sketch space grows linearly with n",
        table,
        notes=["The per-n normalised column should be approximately constant."],
    )
    per_n = table.column("sketch_space_per_n")
    assert max(per_n) <= 1.6 * min(per_n)
