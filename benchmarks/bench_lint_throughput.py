"""Lint engine throughput: cold vs incremental-warm vs parallel runs.

The whole-program lint engine promises that its two scaling levers are free
of semantic cost: the content-hash cache may only skip work (a warm run's
report is byte-identical to a cold run's) and the ``ParallelMapper`` fan-out
may only reorder work (a parallel run's report is byte-identical to a
serial run's).  This benchmark measures both levers over the repository's
own linted trees — the exact corpus the CI lint gate walks — and gates:

* **warm >= 5x cold** — a fully warmed cache must make the re-run at least
  ``MIN_WARM_SPEEDUP``x faster (measured ~8x on a 1-CPU sandbox: the warm
  run still reads + hashes every file and re-runs the project rules, so the
  speedup is bounded by that floor, not by parse+walk);
* **byte identity** — warm and parallel reports must equal the cold serial
  report byte-for-byte under ``render_json``.

Timings land in ``results/lint_throughput.json`` + ``.md``; the cold run's
full report (with engine stats) lands in ``results/lint-report.json`` so
``collect_results.py`` folds finding counts, cache hit rate and wall time
into the trajectory artifact.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from benchmarks.common import RESULTS_DIR, print_table, write_table
from repro.lint import lint_paths_with_stats, render_json
from repro.utils.tables import Table

REPO_ROOT = Path(__file__).resolve().parents[1]
#: The corpus: the same trees the CI lint gate and the self-lint test walk.
LINTED_TREES = ("src", "benchmarks", "tests", "examples")
#: Required cold-over-warm wall-time ratio.  ~8x on a single-CPU sandbox;
#: the warm run's floor is file hashing + cache decode + project rules.
MIN_WARM_SPEEDUP = 5.0
#: Worker cap for the parallel run (identity matters, not speed: with ~200
#: small files the pool startup can dominate on small runners).
PARALLEL_WORKERS = 4


def _paths() -> list[Path]:
    return [REPO_ROOT / tree for tree in LINTED_TREES]


def _measure(cache_dir: Path) -> dict[str, object]:
    runs: dict[str, object] = {}
    for label, kwargs in (
        ("cold", {"cache_dir": cache_dir}),
        ("warm", {"cache_dir": cache_dir}),
        ("parallel", {"executor": "process", "max_workers": PARALLEL_WORKERS}),
    ):
        start = time.perf_counter()
        report, stats = lint_paths_with_stats(_paths(), rules=["all"], **kwargs)
        runs[label] = {
            "seconds": time.perf_counter() - start,
            "report": report,
            "stats": stats,
        }
    return runs


@pytest.mark.benchmark(group="lint-throughput")
def test_warm_cache_lints_5x_faster_and_byte_identical(benchmark, tmp_path):
    """Record cold/warm/parallel wall time; gate the cache and the fan-out."""
    runs = benchmark.pedantic(
        _measure, args=(tmp_path / "lint-cache",), rounds=1, iterations=1
    )
    cold, warm, parallel = runs["cold"], runs["warm"], runs["parallel"]
    cold_json = render_json(cold["report"])

    # The cache may only skip work, never change the outcome.
    assert render_json(warm["report"]) == cold_json
    assert warm["stats"].files_analyzed == 0
    assert warm["stats"].cache_hit_rate == 1.0
    # The fan-out may only reorder work, never change the outcome.
    assert render_json(parallel["report"]) == cold_json

    speedup = cold["seconds"] / warm["seconds"]
    table = Table(
        ["phase", "executor", "files", "analyzed", "cache_hits", "seconds", "files_per_s"]
    )
    for label in ("cold", "warm", "parallel"):
        stats = runs[label]["stats"]
        seconds = runs[label]["seconds"]
        table.add_row(
            phase=label,
            executor=f"{stats.executor} x{stats.workers}",
            files=stats.files_in_scope,
            analyzed=stats.files_analyzed,
            cache_hits=stats.files_from_cache,
            seconds=seconds,
            files_per_s=stats.files_in_scope / seconds,
        )
    print_table("Lint engine — cold vs warm cache vs parallel", table)
    write_table(
        "lint_throughput",
        "Whole-program lint throughput (cold / warm cache / parallel)",
        table,
        notes=[
            f"corpus: {', '.join(LINTED_TREES)} "
            f"({cold['stats'].files_in_scope} files), all rules.",
            f"warm speedup over cold: {speedup:.1f}x "
            f"(gate: >= {MIN_WARM_SPEEDUP}x); warm and parallel reports are "
            "asserted byte-identical to the cold serial report.",
            f"parallel run used the '{parallel['stats'].executor}' backend "
            f"with {parallel['stats'].workers} worker(s).",
        ],
    )
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "lint_throughput.json").write_text(
        json.dumps(
            {
                "trees": list(LINTED_TREES),
                "min_warm_speedup": MIN_WARM_SPEEDUP,
                "warm_speedup": speedup,
                "runs": {
                    label: {
                        "seconds": runs[label]["seconds"],
                        "stats": runs[label]["stats"].to_dict(),
                    }
                    for label in ("cold", "warm", "parallel")
                },
                "findings": len(cold["report"].findings),
                "suppressed": cold["report"].suppressed,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )
    # The cold run's full report feeds collect_results.py's trajectory.
    (RESULTS_DIR / "lint-report.json").write_text(
        render_json(cold["report"], stats=cold["stats"]) + "\n", encoding="utf-8"
    )
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm lint run took {warm['seconds']:.3f}s — only {speedup:.1f}x "
        f"faster than the {cold['seconds']:.3f}s cold run (required "
        f">= {MIN_WARM_SPEEDUP}x); the incremental cache is not pulling "
        "its weight"
    )
