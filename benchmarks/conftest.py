"""Benchmark fixtures.

The benchmark instances are module-scoped so pytest-benchmark's repeated
timing rounds do not regenerate workloads, and seeded so the tables in
EXPERIMENTS.md are reproducible run to run.
"""

from __future__ import annotations

import pytest

from benchmarks.common import KCOVER_SIZES, SETCOVER_SIZES
from repro.datasets import (
    blog_watch_instance,
    planted_kcover_instance,
    planted_setcover_instance,
    zipf_instance,
)


@pytest.fixture(scope="session")
def kcover_planted():
    """Planted k-cover instance with a known optimum (Table 1 k-cover rows)."""
    return planted_kcover_instance(
        KCOVER_SIZES["n"], KCOVER_SIZES["m"], k=KCOVER_SIZES["k"], planted_coverage=0.9, seed=101
    )


@pytest.fixture(scope="session")
def kcover_zipf():
    """Heavy-tailed k-cover instance (exercises the degree cap)."""
    return zipf_instance(
        KCOVER_SIZES["n"], KCOVER_SIZES["m"], edges_per_set=80, k=KCOVER_SIZES["k"], seed=102
    )


@pytest.fixture(scope="session")
def kcover_blogwatch():
    """Blog-watch workload (the introduction's motivating application)."""
    return blog_watch_instance(
        num_blogs=KCOVER_SIZES["n"],
        num_stories=KCOVER_SIZES["m"],
        k=KCOVER_SIZES["k"],
        seed=103,
    )


@pytest.fixture(scope="session")
def setcover_planted():
    """Planted set cover instance with a known minimum cover."""
    return planted_setcover_instance(
        SETCOVER_SIZES["n"],
        SETCOVER_SIZES["m"],
        cover_size=SETCOVER_SIZES["cover_size"],
        seed=104,
    )
