"""Worker-count scaling of the distributed map phase on real cores.

The map phase is embarrassingly parallel — each simulated machine owns an
independent, memory-mapped row slice of the columnar workload — so running
the machines through the :mod:`repro.parallel` process executor should cut
wall-clock roughly by the worker count.  This benchmark measures that curve:

* **instances** — two uniform-random columnar workloads (written with
  :func:`repro.coverage.io.write_columnar_columns`, so generation stays
  whole-array even at tens of millions of edges);
* **executors** — ``serial`` (the reference), ``thread`` and ``process`` at
  worker counts {1, 2, 4}; under ``process`` every child receives only a
  :class:`~repro.distributed.worker.ColumnarSliceJob` (path + row bounds)
  and re-opens the mapped file itself, so zero edge data is pickled;
* **identity** — every cell must report exactly the serial run's solution,
  coverage estimate, merged threshold and per-machine loads (the executor
  subsystem's core contract, also property-tested in
  ``tests/property/test_parallel_executors.py``).

The CI gate: on the largest instance the process backend at 4 workers must
finish at least ``MIN_SPEEDUP``× faster than the serial loop.  The gate only
arms when the runner actually has 4 usable CPUs (a single-core sandbox
cannot overlap CPU-bound workers, so the curve is recorded but not
asserted); results land in ``results/parallel_scaling.json`` + ``.md``
either way and are archived by the bench-smoke job.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from benchmarks.common import RESULTS_DIR, parallel_sweep, print_table, write_table
from repro.core.params import SketchParams
from repro.coverage.io import write_columnar_columns
from repro.distributed import DistributedKCover
from repro.parallel import usable_cpus
from repro.utils.rng import spawn_rng
from repro.utils.tables import Table

K = 10
N = 120
M = 200_000
MACHINES = 4
SEED = 1900
#: (label, number of edges) per columnar instance, smallest first.
INSTANCES = (("small", 6_000_000), ("large", 60_000_000))
WORKER_COUNTS = (1, 2, 4)
#: Required process-over-serial wall-clock ratio on the largest instance at
#: 4 workers.  Measured ~2.5-3x on a 4-core runner; 2x is the acceptance
#: floor with CI headroom.  Only armed when >= 4 CPUs are usable.
MIN_SPEEDUP = 2.0


def _write_instance(tmp_path, label: str, num_edges: int):
    rng = spawn_rng(SEED + num_edges, "bench-parallel-scaling-instance")
    path = tmp_path / f"{label}.cols"
    write_columnar_columns(
        rng.integers(N, size=num_edges, dtype=np.uint64),
        rng.integers(M, size=num_edges, dtype=np.uint64),
        path,
        num_sets=N,
        num_elements=M,
    )
    return path


def _runner(executor: str | None, workers: int | None) -> DistributedKCover:
    params = SketchParams.explicit(N, M, K, 0.2, edge_budget=6 * N, degree_cap=40)
    return DistributedKCover(
        N, M, k=K, num_machines=MACHINES, strategy="row_range",
        params=params, seed=SEED, executor=executor, max_workers=workers,
    )


def _assert_identical(report, reference) -> None:
    assert report.solution == reference.solution
    assert report.coverage_estimate == reference.coverage_estimate
    assert report.merged_threshold == reference.merged_threshold
    assert report.machine_stored_edges == reference.machine_stored_edges
    assert report.shard_edges == reference.shard_edges


def _scaling_table(tmp_path) -> tuple[Table, dict[str, float]]:
    table = Table(
        [
            "instance",
            "input_edges",
            "executor",
            "workers",
            "seconds",
            "edges_per_sec",
            "speedup_vs_serial",
        ]
    )
    gate: dict[str, float] = {}
    for label, num_edges in INSTANCES:
        path = _write_instance(tmp_path, label, num_edges)
        start = time.perf_counter()
        reference = _runner(None, None).run_from_columnar(path)
        serial_seconds = time.perf_counter() - start
        table.add_row(
            instance=label, input_edges=num_edges, executor="serial", workers=1,
            seconds=serial_seconds, edges_per_sec=num_edges / serial_seconds,
            speedup_vs_serial=1.0,
        )
        for executor in ("thread", "process"):
            for workers in WORKER_COUNTS:
                runner = _runner(executor, workers)
                start = time.perf_counter()
                report = runner.run_from_columnar(path)
                seconds = time.perf_counter() - start
                _assert_identical(report, reference)
                assert report.executor == executor and report.map_workers == workers
                table.add_row(
                    instance=label, input_edges=num_edges, executor=executor,
                    workers=workers, seconds=seconds,
                    edges_per_sec=num_edges / seconds,
                    speedup_vs_serial=serial_seconds / seconds,
                )
                if executor == "process" and workers == max(WORKER_COUNTS):
                    gate[label] = serial_seconds / seconds
    return table, gate


@pytest.mark.benchmark(group="parallel-scaling")
def test_process_executor_scales_the_map_phase(benchmark, tmp_path):
    """Record the worker-count scaling curve; gate process >= 2x serial."""
    table, gate = benchmark.pedantic(
        _scaling_table, args=(tmp_path,), rounds=1, iterations=1
    )
    cpus = usable_cpus()
    gate_armed = cpus >= max(WORKER_COUNTS)

    # Byte-identity across executors also holds through the solve() facade
    # (executor/max_workers threaded via ProblemContext to the builder) — on
    # a small instance, since the facade materialises an evaluation graph.
    from repro.api import solve

    tiny_path = _write_instance(tmp_path, "tiny", 200_000)
    facade_reports = parallel_sweep(
        lambda executor: solve(
            tiny_path, "kcover/distributed", k=K, seed=SEED,
            executor=executor, max_workers=2,
            options={"num_machines": MACHINES, "strategy": "row_range",
                     "edge_budget": 6 * N, "degree_cap": 40},
        ),
        ["serial", "thread", "process"],
    )
    for report in facade_reports:
        assert report.solution == facade_reports[0].solution
        assert report.extra["merged_threshold"] == facade_reports[0].extra["merged_threshold"]
        assert report.extra["machine_load_max"] == facade_reports[0].extra["machine_load_max"]
    assert facade_reports[2].extra["executor"] == "process"

    print_table("Distributed map phase — executor scaling", table)
    write_table(
        "parallel_scaling",
        "Distributed map-phase wall-clock by executor backend and worker count",
        table,
        notes=[
            f"uniform-random workloads, n = {N}, m = {M}, "
            f"{MACHINES} machines, 'row_range' sharding, sketch budget 6·n.",
            f"usable CPUs at run time: {cpus}; the >= {MIN_SPEEDUP}x gate is "
            + ("armed." if gate_armed else "recorded but not armed (needs 4)."),
            "Process workers receive only (path, row bounds, params) — the "
            "children re-open the memory-mapped columns themselves.",
            "Every cell is asserted byte-identical to the serial run.",
        ],
    )
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "parallel_scaling.json").write_text(
        json.dumps(
            {
                "machines": MACHINES,
                "worker_counts": list(WORKER_COUNTS),
                "usable_cpus": cpus,
                "min_speedup": MIN_SPEEDUP,
                "gate_armed": gate_armed,
                "process_speedup_at_max_workers": gate,
                "rows": table.rows,
            },
            indent=2,
        ),
        encoding="utf-8",
    )
    if not gate_armed:
        pytest.skip(
            f"scaling gate needs {max(WORKER_COUNTS)} usable CPUs, found {cpus}; "
            "curve recorded in results/parallel_scaling.json"
        )
    largest = INSTANCES[-1][0]
    assert gate[largest] >= MIN_SPEEDUP, (
        f"process executor at {max(WORKER_COUNTS)} workers reached only "
        f"{gate[largest]:.2f}x over serial on the '{largest}' instance "
        f"(required {MIN_SPEEDUP}x)"
    )
