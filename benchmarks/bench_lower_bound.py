"""Theorem 1.2 / Appendix E — Ω(n) space is necessary for (1/2 + ε)-approximation.

A lower bound cannot be executed, but its failure mode can be exhibited: on
the set-disjointness family used in the proof, the benchmark sweeps the
memory (number of remembered set ids) of the natural bounded-memory one-pass
protocol and reports its accuracy at detecting ``Opt_1 = 2``.  Expected
shape: with memory ≈ n the protocol is perfect, and its accuracy on the
intersecting instances decays towards chance as the memory shrinks — which is
exactly why the paper's O~(n) upper bound cannot be improved below Ω(n).
"""

from __future__ import annotations

import pytest

from benchmarks.common import print_table, write_table
from repro.core.lowerbound import evaluate_bounded_memory_protocol
from repro.utils.tables import Table

NUM_SETS = 400
MEMORY_SWEEP = (400, 100, 25, 6)
TRIALS = 40
#: Alice and Bob each hold ~25% of the universe, so remembering o(n) set ids
#: genuinely loses information about Alice's set.
DENSITY = 0.25


def _run() -> Table:
    table = Table(
        [
            "num_sets",
            "memory_sets",
            "memory_fraction",
            "accuracy_intersecting",
            "accuracy_disjoint",
            "accuracy_overall",
        ]
    )
    for index, memory in enumerate(MEMORY_SWEEP):
        report = evaluate_bounded_memory_protocol(
            NUM_SETS,
            memory,
            trials=TRIALS,
            density=DENSITY,
            unique_intersection=True,
            seed=1100 + index,
        )
        table.add_row(
            num_sets=NUM_SETS,
            memory_sets=memory,
            memory_fraction=report["memory_fraction"],
            accuracy_intersecting=report["accuracy_intersecting"],
            accuracy_disjoint=report["accuracy_disjoint"],
            accuracy_overall=report["accuracy"],
        )
    return table


@pytest.mark.benchmark(group="lower-bound")
def test_disjointness_accuracy_vs_memory(benchmark):
    """Detection of Opt_1 = 2 degrades to chance as memory drops below Ω(n)."""
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_table("Appendix E — disjointness detection vs memory", table)
    write_table(
        "lower_bound",
        "Theorem 1.2 — bounded-memory protocols fail on the disjointness family",
        table,
        notes=[
            f"n = {NUM_SETS} sets, density {DENSITY}, {TRIALS} balanced trials per point, "
            "hard promise distribution (at most one common item).",
            "Accuracy on disjoint instances is always 1 (the protocol never hallucinates a witness);"
            " the intersecting column is the one that collapses.",
        ],
    )
    intersecting = table.column("accuracy_intersecting")
    assert intersecting[0] == pytest.approx(1.0)
    # Accuracy decays monotonically (weakly) and ends well below perfect.
    assert all(a >= b - 0.1 for a, b in zip(intersecting, intersecting[1:]))
    assert intersecting[-1] <= 0.6
    assert all(value == pytest.approx(1.0) for value in table.column("accuracy_disjoint"))
