"""Table 1 — set cover with outliers rows.

Paper's claim (Table 1):

=====================  ======  ==============================  =========  =======
algorithm              passes  approximation                   space      arrival
=====================  ======  ==============================  =========  =======
prior work [19, 13]    p       O(min(n^{1/(p+1)}, e^{-1/p}))   O~(m)      set
**This paper**         1       (1 + ε) log(1/λ)                O~_λ(n)    edge
=====================  ======  ==============================  =========  =======

This benchmark runs the paper's single-pass Algorithm 5 against the
multi-pass threshold baseline on planted partial-cover workloads for several
outlier rates λ, and reports measured cover-size blow-up (solution size over
the planted minimum cover), covered fraction, passes and space.  Expected
shape: the sketch reaches the 1 − λ coverage target in one pass with a
cover-size blow-up near (1+ε)·log(1/λ), while the baseline needs several
passes and O~(m) space.
"""

from __future__ import annotations

import math

import pytest

from benchmarks.common import print_table, write_table
from repro.analysis.metrics import setcover_blowup
from repro.api import StreamSpec, solve
from repro.datasets import planted_setcover_instance
from repro.utils.tables import Table

LAMBDAS = (0.05, 0.1, 0.2)
EPSILON = 0.5


def _run_rows() -> Table:
    table = Table(
        [
            "lambda",
            "algorithm",
            "passes",
            "covered_fraction",
            "target_fraction",
            "size_blowup",
            "paper_bound",
            "space_peak",
        ]
    )
    for index, lam in enumerate(LAMBDAS):
        instance = planted_setcover_instance(80, 2500, cover_size=12, seed=200 + index)
        optimum = len(instance.planted_solution)
        stream = StreamSpec(order="random", seed=index)

        rows = [
            ("this-paper-sketch", "outliers/sketch",
             {"epsilon": EPSILON, "max_guesses": 16}, (1 + EPSILON) * math.log(1 / lam)),
            ("threshold-baseline", "outliers/emek-rosen", {"passes": 3}, float("nan")),
        ]
        for label, solver, options, bound in rows:
            report = solve(
                instance, solver, problem_kind="set_cover_outliers",
                outlier_fraction=lam, options=options, stream=stream, seed=200 + index,
            )
            table.add_row(
                **{
                    "lambda": lam,
                    "algorithm": label,
                    "passes": report.passes,
                    "covered_fraction": report.coverage_fraction,
                    "target_fraction": 1 - lam,
                    "size_blowup": setcover_blowup(report.solution_size, optimum),
                    "paper_bound": bound,
                    "space_peak": report.space_peak,
                }
            )
    return table


@pytest.mark.benchmark(group="table1-setcover-outliers")
def test_table1_setcover_outliers_rows(benchmark):
    """Regenerate the set-cover-with-outliers rows of Table 1."""
    table = benchmark.pedantic(_run_rows, rounds=1, iterations=1)
    print_table("Table 1 — set cover with outliers (measured)", table)
    write_table(
        "table1_setcover_outliers",
        "Table 1 — set cover with λ outliers (measured)",
        table,
        notes=[
            f"ε = {EPSILON}; planted minimum cover of size 12 over m = 2500 elements.",
            "Paper's claim: single pass, (1 + ε) log(1/λ) blow-up, O~_λ(n) space (edge arrival).",
        ],
    )
    sketch_rows = [r for r in table.rows if r["algorithm"] == "this-paper-sketch"]
    for row in sketch_rows:
        assert row["passes"] == 1
        # Coverage reaches the 1 − λ target (small slack for scaled constants).
        assert row["covered_fraction"] >= row["target_fraction"] - 0.05
        # Size blow-up within the paper's bound (plus one set of rounding slack).
        assert row["size_blowup"] <= row["paper_bound"] + 1.0
    baseline_rows = [r for r in table.rows if r["algorithm"] == "threshold-baseline"]
    assert all(row["passes"] >= 3 for row in baseline_rows)
