"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's evaluation artifacts (see
DESIGN.md §4) on laptop-scale synthetic workloads.  The helpers here keep the
workload definitions, the algorithm factories and the result-table plumbing
in one place so each ``bench_*.py`` file reads like the experiment it
reproduces.

Results are printed (visible with ``pytest -s``) *and* written as Markdown
fragments under ``benchmarks/results/`` so EXPERIMENTS.md can be refreshed
from actual runs.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.analysis import ExperimentSuite, run_streaming_comparison
from repro.coverage.instance import CoverageInstance
from repro.parallel import ParallelMapper
from repro.utils.tables import Table

RESULTS_DIR = Path(__file__).parent / "results"

#: Benchmark-scale knobs: small enough for pytest-benchmark, large enough that
#: the space/quality trade-offs are visible.
KCOVER_SIZES = {"n": 120, "m": 6000, "k": 10}
SETCOVER_SIZES = {"n": 80, "m": 2500, "cover_size": 12}


def results_path(name: str) -> Path:
    """Path of the Markdown fragment a benchmark writes its table to."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR / f"{name}.md"


def write_table(name: str, title: str, table: Table, notes: Iterable[str] = ()) -> Path:
    """Write a result table (with title and notes) to ``benchmarks/results``."""
    lines = [f"### {title}", ""]
    lines += [f"- {note}" for note in notes]
    if notes:
        lines.append("")
    lines.append(table.to_markdown())
    lines.append("")
    path = results_path(name)
    path.write_text("\n".join(lines), encoding="utf-8")
    return path


def print_table(title: str, table: Table) -> None:
    """Print a result table to stdout (shown with ``pytest -s``)."""
    print(f"\n=== {title} ===")
    print(table.to_grid())


_Item = TypeVar("_Item")
_Row = TypeVar("_Row")


def parallel_sweep(
    fn: Callable[[_Item], _Row],
    items: Iterable[_Item],
    *,
    executor: str | None = None,
    max_workers: int | None = None,
) -> list[_Row]:
    """Map one benchmark configuration function over a sweep's rows.

    The rows of a benchmark sweep are independent by construction, so they
    can fan out over a :mod:`repro.parallel` executor backend exactly like
    the distributed map phase; results come back in item order, keeping
    result tables deterministic.  The default stays serial, and — like every
    other layer — ``max_workers`` alone implies ``executor="auto"``.
    Parallelise only sweeps whose rows do *not* time anything (concurrent
    rows would contend and corrupt wall-clock measurements).
    """
    return ParallelMapper(executor, max_workers=max_workers).map(fn, list(items))


def comparison_suite(
    name: str,
    instance: CoverageInstance,
    instance_name: str,
    algorithms: Sequence[tuple[str, Callable[[], Any]]],
    *,
    seed: int = 0,
    reference_value: float | None = None,
) -> ExperimentSuite:
    """Run a set of streaming algorithms on one instance into a fresh suite."""
    suite = ExperimentSuite(name)
    run_streaming_comparison(
        suite,
        instance,
        instance_name,
        algorithms,
        seed=seed,
        reference_value=reference_value,
    )
    return suite


def suite_to_table(
    suite: ExperimentSuite,
    columns: Sequence[str] = (
        "algorithm",
        "instance",
        "arrival_model",
        "passes",
        "approx_ratio",
        "coverage_fraction",
        "solution_size",
        "space_peak",
        "input_edges",
    ),
) -> Table:
    """Standard column selection for Table 1-style comparisons."""
    return suite.to_table(columns)
