#!/usr/bin/env python
"""Streaming dominating set / influence-style coverage on a web-like graph.

The introduction motivates coverage problems with large-graph mining.  Here a
Barabási–Albert graph stands in for a web/social graph; each vertex's closed
neighbourhood is a set, and the edge stream delivers "u links to v"
observations in arbitrary order.  Two questions are answered in one or a few
passes without ever storing the graph, each one a ``repro.solve()`` call:

1. *k-cover*: which k vertices reach the most of the network? (Algorithm 3)
2. *set cover with outliers*: how few vertices reach 95% of the network?
   (Algorithm 5)

Run with::

    python examples/dominating_set_stream.py
"""

from __future__ import annotations

import repro
from repro.api import StreamSpec
from repro.datasets import barabasi_albert_instance
from repro.utils.tables import Table

K = 12
OUTLIERS = 0.05


def main() -> None:
    instance = barabasi_albert_instance(1500, attachment=3, k=K, seed=5)
    print(
        f"graph: {instance.n} vertices, {instance.num_edges} closed-neighbourhood edges "
        f"(dominating-set view)\n"
    )

    # --- Question 1: the k most covering vertices -------------------------
    kcover_report = repro.solve(
        instance, "kcover/sketch",
        options={"epsilon": 0.3, "scale": 0.01}, seed=5,
    )
    offline = repro.solve(instance, "offline/greedy", seed=5)

    table = Table(["question", "method", "result", "space_edges", "passes"])
    table.add_row(
        question=f"best {K} hubs",
        method="streaming sketch",
        result=f"{kcover_report.coverage}/{instance.m} vertices reached",
        space_edges=kcover_report.space_peak,
        passes=kcover_report.passes,
    )
    table.add_row(
        question=f"best {K} hubs",
        method="offline greedy",
        result=f"{offline.coverage}/{instance.m} vertices reached",
        space_edges=offline.space_peak,
        passes="-",
    )

    # --- Question 2: how few vertices reach 95% of the network ------------
    partial_report = repro.solve(
        instance, "outliers/sketch",
        problem_kind="set_cover_outliers", outlier_fraction=OUTLIERS,
        options={"epsilon": 0.5, "scale": 0.02, "max_guesses": 20},
        stream=StreamSpec(order="random", seed=6), seed=5,
    )
    offline_partial = repro.solve(
        instance, "offline/greedy",
        problem_kind="set_cover_outliers", outlier_fraction=OUTLIERS, seed=5,
    )
    table.add_row(
        question=f"reach {1-OUTLIERS:.0%} of the graph",
        method="streaming sketch",
        result=(
            f"{partial_report.solution_size} vertices cover "
            f"{partial_report.coverage_fraction:.1%}"
        ),
        space_edges=partial_report.space_peak,
        passes=partial_report.passes,
    )
    table.add_row(
        question=f"reach {1-OUTLIERS:.0%} of the graph",
        method="offline greedy",
        result=f"{offline_partial.solution_size} vertices cover {1-OUTLIERS:.0%}",
        space_edges=offline_partial.space_peak,
        passes="-",
    )

    print(table.to_grid())
    print(
        f"\ntop streaming hubs: {sorted(kcover_report.solution)[:K]}\n"
        f"(the sketch held {kcover_report.space_peak} of {instance.num_edges} edges)"
    )


if __name__ == "__main__":
    main()
