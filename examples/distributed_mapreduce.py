#!/usr/bin/env python
"""Distributed coverage maximisation with composable sketches (two rounds).

The paper's conclusion points to a companion work applying the same sketch to
MapReduce-style computation.  This example simulates that pipeline:

* round 1 — the membership edges are sharded across machines; every machine
  builds the H_{<=n} sketch of its shard with a *shared* hash function;
* round 2 — the coordinator merges the shard sketches (which, by
  composability, yields a sketch of the whole input) and runs the classical
  greedy on the merge.

Run with::

    python examples/distributed_mapreduce.py
"""

from __future__ import annotations

from repro.core.params import SketchParams
from repro.datasets import blog_watch_instance
from repro.distributed import DistributedKCover
from repro.offline import greedy_k_cover
from repro.utils.tables import Table

K = 10


def main() -> None:
    instance = blog_watch_instance(num_blogs=150, num_stories=12_000, k=K, seed=13)
    edges = list(instance.graph.edges())
    reference = greedy_k_cover(instance.graph, K).coverage
    params = SketchParams.explicit(
        instance.n, instance.m, K, 0.2, edge_budget=6 * instance.n, degree_cap=40
    )
    print(
        f"workload: {instance.n} blogs x {instance.m} stories, {len(edges)} edges; "
        f"centralised greedy covers {reference}\n"
    )

    table = Table(
        ["machines", "coverage", "vs_central_greedy", "max_machine_edges", "shipped_edges"]
    )
    for machines in (1, 4, 8, 16):
        runner = DistributedKCover(
            instance.n, instance.m, k=K, num_machines=machines, params=params, seed=13
        )
        report = runner.run(edges)
        coverage = instance.graph.coverage(report.solution)
        table.add_row(
            machines=machines,
            coverage=coverage,
            vs_central_greedy=coverage / reference,
            max_machine_edges=report.max_machine_load,
            shipped_edges=report.communication_edges,
        )
    print(table.to_grid())
    print(
        "\nevery machine's memory is capped by the sketch budget regardless of its "
        "shard size, and the merged sketch keeps the solution quality flat — the "
        "composability property the companion paper builds on."
    )


if __name__ == "__main__":
    main()
