#!/usr/bin/env python
"""Quickstart: streaming k-cover with the paper's sketch in ~30 lines.

Builds a synthetic coverage instance with a planted optimum, then runs
Algorithm 3 (sketch + greedy) and the offline greedy through the unified
``repro.solve()`` facade — every algorithm in the library is one registry
name away (see ``repro.list_solvers()``).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import repro
from repro import datasets
from repro.utils.tables import Table


def main() -> None:
    # 1. A workload: 150 sets over 8000 elements, 10 planted sets covering 90%.
    instance = datasets.planted_kcover_instance(
        num_sets=150, num_elements=8000, k=10, planted_coverage=0.9, seed=42
    )
    print(f"instance: n={instance.n} sets, m={instance.m} elements, "
          f"{instance.num_edges} membership edges")

    # 2. The streaming algorithm: single pass over edge arrivals, O~(n) space.
    #    `scale` shrinks the (very conservative) worst-case edge budget so the
    #    compression is visible even on this laptop-sized instance.
    report = repro.solve(
        instance, "kcover/sketch", options={"epsilon": 0.2, "scale": 0.02}, seed=42
    )

    # 3. References: offline greedy (sees everything) and the planted optimum.
    greedy = repro.solve(instance, "offline/greedy", seed=42)

    table = Table(["solver", "coverage", "fraction_of_planted", "stored_edges", "passes"])
    table.add_row(
        solver="streaming sketch (Algorithm 3)",
        coverage=report.coverage,
        fraction_of_planted=report.coverage / instance.planted_value,
        stored_edges=report.space_peak,
        passes=report.passes,
    )
    table.add_row(
        solver="offline greedy",
        coverage=greedy.coverage,
        fraction_of_planted=greedy.coverage / instance.planted_value,
        stored_edges=greedy.space_peak,
        passes="-",
    )
    table.add_row(
        solver="planted optimum",
        coverage=instance.planted_value,
        fraction_of_planted=1.0,
        stored_edges="-",
        passes="-",
    )
    print()
    print(table.to_grid())
    print()
    print(f"chosen sets: {sorted(report.solution)}")
    print(f"sketch kept {report.space_peak} of {instance.num_edges} edges "
          f"({report.space_peak / instance.num_edges:.1%}) in a single pass")


if __name__ == "__main__":
    main()
