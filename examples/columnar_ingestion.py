"""Disk-to-solution pipeline: columnar ingestion + word-packed lazy greedy.

Demonstrates the large-workload fast path end to end:

1. generate a zipf workload and persist it as a memory-mappable columnar
   directory (uint64 set/element columns + JSON metadata),
2. stream it back with ``EdgeStream.from_columnar`` — batches are sliced
   straight from the mapped arrays, no per-edge Python tuples — into the
   paper's streaming sketch,
3. run the offline greedy on the sketch through the word-packed lazy
   coverage kernel, and compare against the full-instance reference.

Run with ``python examples/columnar_ingestion.py`` (add ``PYTHONPATH=src``
when not installed).
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.coverage.bitset import BitsetCoverage
from repro.coverage.io import open_columnar, write_columnar
from repro.core.params import SketchParams
from repro.core.streaming_sketch import StreamingSketchBuilder
from repro.datasets import zipf_instance
from repro.offline.greedy import greedy_k_cover
from repro.streaming.stream import EdgeStream

K = 10
BATCH = 4096


def main() -> None:
    instance = zipf_instance(400, 12_000, edges_per_set=150, k=K, seed=29)
    graph = instance.graph

    with tempfile.TemporaryDirectory() as tmp:
        columnar_path = Path(tmp) / "workload.cols"
        count = write_columnar(graph.edges(), columnar_path, num_sets=graph.num_sets)
        print(f"persisted {count} edges as columnar storage at {columnar_path.name}")

        columns = open_columnar(columnar_path)
        params = SketchParams.scaled(
            columns.num_sets, max(1, columns.num_elements), K, 0.2, scale=0.1
        )
        builder = StreamingSketchBuilder(params, seed=29)
        stream = EdgeStream.from_columnar(columns, order="given")
        for batch in stream.iter_batches(BATCH):
            builder.process_batch(batch)
        sketch = builder.sketch()
        print(
            f"sketch: {sketch.num_edges} edges kept of {count} "
            f"(budget {params.edge_budget}), threshold p*={sketch.threshold:.4f}"
        )

        # Offline phase on the sketch, vectorised: word-packed lanes + lazy greedy.
        sketch_kernel = BitsetCoverage(sketch.graph, backend="words")
        sketch_pick = greedy_k_cover(sketch.graph, K, kernel=sketch_kernel)

        # Reference: the same kernel greedy on the full instance.
        full_kernel = BitsetCoverage(graph, backend="words")
        reference = greedy_k_cover(graph, K, kernel=full_kernel)

        achieved = graph.coverage(sketch_pick.selected)
        print(
            f"greedy on sketch covers {achieved} of {graph.num_elements} elements "
            f"({achieved / max(1, reference.coverage):.3f} of the full-instance greedy)"
        )
        print(
            f"kernel evaluations: sketch={sketch_pick.evaluations}, "
            f"full={reference.evaluations} (eager would be {K * graph.num_sets})"
        )


if __name__ == "__main__":
    main()
