#!/usr/bin/env python
"""Blog-watch: which k blogs should an analyst follow to see the most stories?

This is the multi-topic blog-watch scenario that motivated the first
streaming max-coverage work (Saha & Getoor) and that the paper's introduction
cites as a data-mining application.  Blogs are sets, stories are elements,
and a (blog, story) edge arrives whenever a crawler discovers that a blog
covered a story — a natural *edge-arrival* stream, since one blog's stories
surface over time interleaved with everybody else's.

The example compares three single-pass algorithms on the same crawl through
one :class:`repro.Session` — each is a registry name, and the session wires
the right stream (edge vs set arrival) per solver:

* ``kcover/sketch`` — the paper's Algorithm 3 (edge arrival, O~(n) space),
* ``kcover/saha-getoor`` — swap streaming (set arrival, ¼ guarantee),
* ``kcover/sieve`` — sieve-streaming (set arrival, ½ guarantee).

Run with::

    python examples/blog_watch.py
"""

from __future__ import annotations

import repro
from repro.datasets import blog_watch_instance, labeled_blog_watch_system
from repro.utils.tables import Table

K = 8


def main() -> None:
    instance = blog_watch_instance(num_blogs=200, num_stories=10_000, k=K, seed=7)
    print(
        f"crawl: {instance.n} blogs, {instance.m} stories, "
        f"{instance.num_edges} (blog, story) observations\n"
    )

    reference = repro.solve(instance, "offline/greedy", seed=7).coverage

    session = repro.Session(
        instance, instance_name="blog_watch", seed=7, reference_value=reference
    )
    labels = {
        "kcover/sketch": "sketch (this paper)",
        "kcover/saha-getoor": "Saha-Getoor swap",
        "kcover/sieve": "sieve-streaming",
    }
    table = Table(
        ["algorithm", "arrival", "stories_covered", "vs_offline_greedy", "stored_items", "passes"]
    )
    for solver, label in labels.items():
        options = {"epsilon": 0.2} if solver == "kcover/sketch" else (
            {"epsilon": 0.1} if solver == "kcover/sieve" else None
        )
        report = session.run(solver, label=label, options=options)
        table.add_row(
            algorithm=label,
            arrival=report.arrival_model,
            stories_covered=report.coverage,
            vs_offline_greedy=report.coverage / reference,
            stored_items=report.space_peak,
            passes=report.passes,
        )

    print(table.to_grid())

    # A small labelled run so the output names actual blogs.
    system = labeled_blog_watch_system(num_blogs=40, num_stories=600, seed=11)
    graph = system.to_graph()
    labelled_report = repro.solve(
        graph, "kcover/sketch", k=5, options={"epsilon": 0.3}, seed=11
    )
    picks = system.labels_for(labelled_report.solution)
    print("\nsmall labelled crawl — follow these blogs:")
    for label in picks:
        covered = len(system.members(label))
        print(f"  {label}  ({covered} stories on its own)")
    print(
        f"together they cover {labelled_report.coverage} of {system.m} stories "
        f"({labelled_report.coverage_fraction:.0%})"
    )


if __name__ == "__main__":
    main()
