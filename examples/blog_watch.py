#!/usr/bin/env python
"""Blog-watch: which k blogs should an analyst follow to see the most stories?

This is the multi-topic blog-watch scenario that motivated the first
streaming max-coverage work (Saha & Getoor) and that the paper's introduction
cites as a data-mining application.  Blogs are sets, stories are elements,
and a (blog, story) edge arrives whenever a crawler discovers that a blog
covered a story — a natural *edge-arrival* stream, since one blog's stories
surface over time interleaved with everybody else's.

The example compares three single-pass algorithms on the same crawl:

* the paper's sketch-based Algorithm 3 (edge arrival, O~(n) space),
* Saha–Getoor swap streaming (set arrival, ¼ guarantee, O~(m) space),
* sieve-streaming (set arrival, ½ guarantee).

Run with::

    python examples/blog_watch.py
"""

from __future__ import annotations

from repro import EdgeStream, SetStream, StreamingKCover, StreamingRunner
from repro.baselines import SahaGetoorKCover, SieveStreamingKCover
from repro.datasets import blog_watch_instance, labeled_blog_watch_system
from repro.offline import greedy_k_cover
from repro.utils.tables import Table

K = 8


def main() -> None:
    instance = blog_watch_instance(num_blogs=200, num_stories=10_000, k=K, seed=7)
    print(
        f"crawl: {instance.n} blogs, {instance.m} stories, "
        f"{instance.num_edges} (blog, story) observations\n"
    )

    runner = StreamingRunner(instance.graph)
    reference = greedy_k_cover(instance.graph, K).coverage

    table = Table(
        ["algorithm", "arrival", "stories_covered", "vs_offline_greedy", "stored_items", "passes"]
    )

    sketch = StreamingKCover(instance.n, instance.m, k=K, epsilon=0.2, seed=7)
    sketch_report = runner.run(
        sketch, EdgeStream.from_graph(instance.graph, order="random", seed=7)
    )
    table.add_row(
        algorithm="sketch (this paper)",
        arrival="edge",
        stories_covered=sketch_report.coverage,
        vs_offline_greedy=sketch_report.coverage / reference,
        stored_items=sketch_report.space_peak,
        passes=sketch_report.passes,
    )

    saha = SahaGetoorKCover(k=K)
    saha_report = runner.run(saha, SetStream.from_graph(instance.graph, order="random", seed=7))
    table.add_row(
        algorithm="Saha-Getoor swap",
        arrival="set",
        stories_covered=saha_report.coverage,
        vs_offline_greedy=saha_report.coverage / reference,
        stored_items=saha_report.space_peak,
        passes=saha_report.passes,
    )

    sieve = SieveStreamingKCover(k=K, epsilon=0.1)
    sieve_report = runner.run(sieve, SetStream.from_graph(instance.graph, order="random", seed=7))
    table.add_row(
        algorithm="sieve-streaming",
        arrival="set",
        stories_covered=sieve_report.coverage,
        vs_offline_greedy=sieve_report.coverage / reference,
        stored_items=sieve_report.space_peak,
        passes=sieve_report.passes,
    )

    print(table.to_grid())

    # A small labelled run so the output names actual blogs.
    system = labeled_blog_watch_system(num_blogs=40, num_stories=600, seed=11)
    graph = system.to_graph()
    labelled_algo = StreamingKCover(system.n, system.m, k=5, epsilon=0.3, seed=11)
    labelled_report = StreamingRunner(graph).run(
        labelled_algo, EdgeStream.from_graph(graph, order="random", seed=11)
    )
    picks = system.labels_for(labelled_report.solution)
    print("\nsmall labelled crawl — follow these blogs:")
    for label in picks:
        covered = len(system.members(label))
        print(f"  {label}  ({covered} stories on its own)")
    print(
        f"together they cover {labelled_report.coverage} of {system.m} stories "
        f"({labelled_report.coverage_fraction:.0%})"
    )


if __name__ == "__main__":
    main()
