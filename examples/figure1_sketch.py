#!/usr/bin/env python
"""Reproduce Figure 1: the H_p and H'_p sketches on a worked example.

Prints which element vertices survive the hash threshold ``p = 0.5`` (the
solid edges of the figure's left panel) and which edges additionally survive
the degree cap (right panel), exactly as in the paper's illustration.

Run with::

    python examples/figure1_sketch.py
"""

from __future__ import annotations

from repro.coverage.bipartite import BipartiteGraph
from repro.core.sketch import apply_degree_cap, build_hp
from repro.utils.tables import Table

MEMBERSHIPS = {0: [0, 1, 2, 3], 1: [2, 3, 4, 5], 2: [4, 5, 6, 7], 3: [0, 3, 5, 7]}
HASHES = {0: 0.1, 1: 0.7, 2: 0.3, 3: 0.9, 4: 0.2, 5: 0.8, 6: 0.4, 7: 0.6}
P = 0.5
CAP = 2


class FixedHash:
    """Hash function pinned to the values printed under Figure 1's vertices."""

    def value(self, element: int) -> float:
        return HASHES[element]

    def rank(self, element: int) -> int:
        return int(HASHES[element] * 2**64)


def main() -> None:
    graph = BipartiteGraph(4)
    for set_id, members in MEMBERSHIPS.items():
        for element in members:
            graph.add_edge(set_id, element)

    hp = build_hp(graph, P, FixedHash())
    hp_prime, truncated = apply_degree_cap(hp, CAP)

    print(f"G: {graph.num_edges} edges | H_p (p={P}): {hp.num_edges} edges | "
          f"H'_p (cap={CAP}): {hp_prime.num_edges} edges\n")

    table = Table(["element", "hash", "kept_in_Hp", "edges_in_G", "edges_in_Hp", "edges_in_Hp'"])
    for element in sorted(graph.elements()):
        table.add_row(
            element=element,
            hash=HASHES[element],
            kept_in_Hp=hp.has_element(element),
            edges_in_G=graph.element_degree(element),
            edges_in_Hp=hp.element_degree(element),
            **{"edges_in_Hp'": hp_prime.element_degree(element)},
        )
    print(table.to_grid())

    print("\nsolid edges of the figure (kept in H'_p):")
    for set_id, element in sorted(hp_prime.edges()):
        print(f"  set {set_id} — element {element}")
    if truncated:
        print(f"\nelements that lost edges to the degree cap: {sorted(truncated)}")


if __name__ == "__main__":
    main()
