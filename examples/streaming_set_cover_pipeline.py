#!/usr/bin/env python
"""Multi-pass streaming set cover over an edge-list file.

This example shows the full production-style pipeline:

1. a workload is generated and written to disk as a ``set<TAB>element`` edge
   list (the natural on-disk form of an edge-arrival stream);
2. the file is replayed as an :class:`EdgeStream` — once per pass — through
   Algorithm 6 (multi-pass set cover) for several pass budgets ``r``;
3. the resulting cover sizes, pass counts and peak space are compared against
   the offline greedy and the planted minimum cover.

Run with::

    python examples/streaming_set_cover_pipeline.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import EdgeStream, StreamingRunner
from repro.core import StreamingSetCover
from repro.coverage.io import read_edge_list, write_edge_list
from repro.datasets import planted_setcover_instance
from repro.offline import greedy_set_cover
from repro.utils.tables import Table


def main() -> None:
    # 1. Generate and persist the workload.
    instance = planted_setcover_instance(120, 4000, cover_size=15, seed=21)
    workdir = Path(tempfile.mkdtemp(prefix="repro_setcover_"))
    edge_file = workdir / "memberships.tsv"
    write_edge_list(
        ((set_id, element) for set_id, element in instance.graph.edges()), edge_file
    )
    print(
        f"wrote {instance.num_edges} membership edges for n={instance.n}, m={instance.m} "
        f"to {edge_file}"
    )
    print(f"planted minimum cover: {len(instance.planted_solution)} sets\n")

    # 2. Replay the file as an edge stream (one replay per pass).
    edges = [(int(s), int(e)) for s, e in read_edge_list(edge_file)]

    runner = StreamingRunner(instance.graph)
    table = Table(["method", "rounds_r", "passes", "cover_size", "covered", "space_edges"])

    offline = greedy_set_cover(instance.graph)
    table.add_row(
        method="offline greedy",
        rounds_r="-",
        passes="-",
        cover_size=offline.size,
        covered="100%",
        space_edges=instance.num_edges,
    )

    for rounds in (2, 3, 4):
        stream = EdgeStream(
            edges, num_sets=instance.n, num_elements_hint=instance.m, order="random", seed=rounds
        )
        algorithm = StreamingSetCover(
            instance.n, instance.m, epsilon=0.5, rounds=rounds, seed=rounds, max_guesses=14
        )
        report = runner.run(algorithm, stream)
        table.add_row(
            method="Algorithm 6 (sketch)",
            rounds_r=rounds,
            passes=report.passes,
            cover_size=report.solution_size,
            covered=f"{report.coverage_fraction:.1%}",
            space_edges=report.space_peak,
        )

    print(table.to_grid())
    print(
        "\nmore rounds = more passes but smaller per-pass sketches; "
        "all configurations finish with a complete cover."
    )


if __name__ == "__main__":
    main()
