"""Property tests for the coverage-kernel backends and the columnar format.

Three contracts from the perf pass:

* the ``words`` and ``bytes`` backends are bit-for-bit identical on every
  query (coverage, marginal gains, subset gains, greedy) on random *and*
  adversarial instances;
* the lazy (CELF) greedy matches the eager full-rescan greedy — on one fixed
  kernel the two select identical sequences, because a fresh heap top
  dominates every stale upper bound;
* a columnar round-trip preserves an edge list exactly (same pairs, same
  order), including through the text edge-list format.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coverage.bipartite import BipartiteGraph
from repro.coverage.bitset import BitsetCoverage
from repro.coverage.io import (
    columnar_from_edge_list,
    open_columnar,
    read_edge_list,
    write_columnar,
    write_edge_list,
)
from repro.datasets.adversarial import uniform_sampling_trap
from repro.datasets.random_instances import planted_kcover_instance

set_systems = st.lists(
    st.frozensets(st.integers(min_value=0, max_value=80), max_size=16),
    min_size=1,
    max_size=12,
)

families = st.lists(st.integers(min_value=0, max_value=11), max_size=10)


def _graph(sets) -> BipartiteGraph:
    return BipartiteGraph.from_sets([list(s) for s in sets])


def _adversarial_graphs():
    yield uniform_sampling_trap(num_sets=12, big_set_size=300, seed=4).graph
    yield planted_kcover_instance(30, 500, k=5, seed=6).graph


@given(sets=set_systems, family=families)
@settings(max_examples=60, deadline=None)
def test_backends_bit_identical_on_queries(sets, family):
    graph = _graph(sets)
    byte_eval = BitsetCoverage(graph, backend="bytes")
    word_eval = BitsetCoverage(graph, backend="words")
    family = np.array([f % len(sets) for f in family], dtype=np.intp)
    assert byte_eval.coverage(family) == word_eval.coverage(family)
    byte_bits = byte_eval.union_bits(family)
    word_bits = word_eval.union_bits(family)
    assert (
        byte_eval.marginal_gains(byte_bits).tolist()
        == word_eval.marginal_gains(word_bits).tolist()
    )
    subset = np.arange(graph.num_sets, dtype=np.intp)[::2]
    assert (
        byte_eval.gains_for(subset, byte_bits).tolist()
        == word_eval.gains_for(subset, word_bits).tolist()
    )


@given(sets=set_systems, k=st.integers(min_value=1, max_value=5))
@settings(max_examples=50, deadline=None)
def test_backends_select_identical_greedy_solutions(sets, k):
    graph = _graph(sets)
    byte_eval = BitsetCoverage(graph, backend="bytes")
    word_eval = BitsetCoverage(graph, backend="words")
    assert byte_eval.greedy_k_cover(k) == word_eval.greedy_k_cover(k)


@given(sets=set_systems, k=st.integers(min_value=1, max_value=5))
@settings(max_examples=50, deadline=None)
def test_lazy_greedy_matches_eager_greedy(sets, k):
    graph = _graph(sets)
    for backend in ("bytes", "words"):
        kernel = BitsetCoverage(graph, backend=backend)
        lazy_sel, lazy_cov = kernel.greedy_k_cover(k, lazy=True)
        eager_sel, eager_cov = kernel.greedy_k_cover(k, lazy=False)
        # A fresh heap top dominates every remaining upper bound, so lazy
        # resolves ties exactly like argmax: identical selections, not just
        # identical coverage.
        assert lazy_sel == eager_sel
        assert lazy_cov == eager_cov
        assert graph.coverage(lazy_sel) == lazy_cov


@pytest.mark.parametrize("k", [1, 3, 6])
def test_backends_agree_on_adversarial_instances(k):
    for graph in _adversarial_graphs():
        byte_eval = BitsetCoverage(graph, backend="bytes")
        word_eval = BitsetCoverage(graph, backend="words")
        assert byte_eval.greedy_k_cover(k) == word_eval.greedy_k_cover(k)
        assert byte_eval.greedy_k_cover(k, lazy=False) == word_eval.greedy_k_cover(
            k, lazy=False
        )
        bits_b = byte_eval.empty_bits()
        bits_w = word_eval.empty_bits()
        assert (
            byte_eval.marginal_gains(bits_b).tolist()
            == word_eval.marginal_gains(bits_w).tolist()
        )


edge_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=30), st.integers(min_value=0, max_value=200)
    ),
    max_size=60,
)


@given(edges=edge_lists)
@settings(max_examples=40, deadline=None)
def test_columnar_round_trip_preserves_pairs(edges, tmp_path_factory):
    path = tmp_path_factory.mktemp("columnar") / "cols"
    write_columnar(edges, path)
    columns = open_columnar(path)
    assert list(columns.pairs()) == [(int(s), int(e)) for s, e in edges]
    assert columns.num_edges == len(edges)


@given(edges=edge_lists)
@settings(max_examples=40, deadline=None)
def test_columnar_conversion_equals_read_edge_list(edges, tmp_path_factory):
    base = tmp_path_factory.mktemp("roundtrip")
    text = base / "edges.tsv"
    write_edge_list(edges, text)
    columnar_from_edge_list(text, base / "cols")
    columns = open_columnar(base / "cols")
    assert list(columns.labelled_pairs()) == read_edge_list(text)
