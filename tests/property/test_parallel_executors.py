"""Executor-invariance properties of the parallel runtime.

The core contract of :mod:`repro.parallel` is that the executor backend is a
*performance* knob, never a semantics knob: serial, thread and process runs
of any fan-out consumer must be byte-identical.  Pinned here on random
instances for

1. the distributed pipeline (solution, coverage estimate, merged threshold,
   per-machine loads — in-memory and columnar drive modes alike),
2. the columnar ``row_range`` path, where process workers re-open the mapped
   file from only (path, row bounds) — the zero-pickled-edge-data protocol,
3. the ensemble's best-of-R selection, and
4. the ``solve()`` facade with ``executor=`` threaded through a spec.
"""

from __future__ import annotations

import pytest

from repro.api import ProblemSpec, solve
from repro.core.ensemble import SketchEnsemble
from repro.core.params import SketchParams
from repro.coverage.io import write_columnar
from repro.datasets import planted_kcover_instance, zipf_instance
from repro.distributed import DistributedKCover

EXECUTORS = ("serial", "thread", "process")
K = 4
SEEDS = (11, 47)


def _instances(seed):
    yield planted_kcover_instance(40, 900, k=K, planted_coverage=0.85, seed=seed)
    yield zipf_instance(36, 700, edges_per_set=60, k=K, seed=seed)


def _params(instance) -> SketchParams:
    return SketchParams.explicit(
        instance.n, instance.m, K, 0.2, edge_budget=350, degree_cap=15
    )


def _run_key(report):
    return (
        report.solution,
        report.coverage_estimate,
        report.merged_threshold,
        report.shard_edges,
        report.machine_stored_edges,
        report.coordinator_edges,
    )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("strategy", ["random", "by_set", "round_robin"])
def test_distributed_run_is_executor_invariant(seed, strategy):
    for instance in _instances(seed):
        edges = list(instance.graph.edges())
        reports = {
            executor: DistributedKCover(
                instance.n, instance.m, k=K, num_machines=3, strategy=strategy,
                params=_params(instance), seed=seed,
                executor=executor, max_workers=3,
            ).run(edges)
            for executor in EXECUTORS
        }
        for executor in EXECUTORS[1:]:
            assert _run_key(reports[executor]) == _run_key(reports["serial"]), (
                f"{executor} diverged from serial under '{strategy}' sharding"
            )
            assert reports[executor].executor == executor


@pytest.mark.parametrize("seed", SEEDS)
def test_columnar_row_range_is_executor_invariant(seed, tmp_path):
    """The zero-copy job protocol: children re-open the file and agree."""
    instance = planted_kcover_instance(40, 900, k=K, planted_coverage=0.85, seed=seed)
    path = tmp_path / f"w{seed}.cols"
    write_columnar(instance.graph.edges(), path, num_sets=instance.n)
    reports = {
        executor: DistributedKCover(
            instance.n, instance.m, k=K, num_machines=3, strategy="row_range",
            params=_params(instance), seed=seed,
            executor=executor, max_workers=3,
        ).run_from_columnar(path)
        for executor in EXECUTORS
    }
    for executor in EXECUTORS[1:]:
        assert _run_key(reports[executor]) == _run_key(reports["serial"])
    assert reports["process"].map_workers == 3


@pytest.mark.parametrize("executor", EXECUTORS[1:])
def test_ensemble_best_of_r_is_executor_invariant(executor):
    instance = planted_kcover_instance(40, 900, k=K, planted_coverage=0.85, seed=5)
    results = []
    for backend in ("serial", executor):
        ensemble = SketchEnsemble(
            _params(instance), replicas=4, seed=5, executor=backend, max_workers=4
        )
        ensemble.consume(instance.graph.edges())
        results.append(ensemble.best_k_cover(K))
    assert results[0] == results[1]


@pytest.mark.parametrize("executor", EXECUTORS)
def test_solve_facade_threads_executor_through(executor):
    instance = planted_kcover_instance(40, 900, k=K, planted_coverage=0.85, seed=9)
    report = solve(
        instance,
        "kcover/distributed",
        k=K,
        seed=9,
        executor=executor,
        max_workers=2,
        options={"num_machines": 3, "edge_budget": 350, "degree_cap": 15},
    )
    assert report.extra["executor"] == executor
    reference = solve(
        instance,
        "kcover/distributed",
        k=K,
        seed=9,
        options={"num_machines": 3, "edge_budget": 350, "degree_cap": 15},
    )
    assert report.solution == reference.solution
    assert report.extra["merged_threshold"] == reference.extra["merged_threshold"]
    assert report.extra["machine_load_max"] == reference.extra["machine_load_max"]


def test_spec_executor_round_trips_and_drives_solve():
    spec = ProblemSpec(
        problem="k_cover",
        k=K,
        dataset="planted_kcover",
        dataset_args={"num_sets": 40, "num_elements": 900, "k": K, "seed": 3},
        executor="thread",
        map_workers=2,
    )
    assert ProblemSpec.from_dict(spec.to_dict()) == spec
    report = solve(
        spec,
        "kcover/distributed",
        options={"num_machines": 3, "edge_budget": 350, "degree_cap": 15},
    )
    assert report.extra["executor"] == "thread"
    assert report.extra["map_workers"] == 2
