"""Property-based tests for the offline algorithms (hypothesis)."""

from __future__ import annotations

from itertools import combinations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coverage.bipartite import BipartiteGraph
from repro.offline.exact import exact_k_cover, exact_set_cover
from repro.offline.greedy import greedy_k_cover, greedy_set_cover

set_systems = st.lists(
    st.frozensets(st.integers(min_value=0, max_value=25), min_size=0, max_size=8),
    min_size=2,
    max_size=8,
)


def _graph(sets) -> BipartiteGraph:
    return BipartiteGraph.from_sets([list(s) for s in sets])


@given(sets=set_systems, k=st.integers(min_value=1, max_value=4))
@settings(max_examples=50, deadline=None)
def test_greedy_never_beats_exact_and_respects_ratio(sets, k):
    graph = _graph(sets)
    greedy = greedy_k_cover(graph, k)
    _, optimum = exact_k_cover(graph, k)
    assert greedy.coverage <= optimum
    assert greedy.coverage >= (1 - 1 / 2.718281828) * optimum - 1e-9


@given(sets=set_systems, k=st.integers(min_value=1, max_value=4))
@settings(max_examples=50, deadline=None)
def test_greedy_selection_is_feasible(sets, k):
    graph = _graph(sets)
    result = greedy_k_cover(graph, k)
    assert len(result.selected) <= k
    assert len(set(result.selected)) == len(result.selected)
    assert graph.coverage(result.selected) == result.coverage


@given(sets=set_systems)
@settings(max_examples=50, deadline=None)
def test_greedy_set_cover_feasible_and_exact_not_larger(sets):
    graph = _graph(sets)
    if graph.num_elements == 0:
        return
    greedy = greedy_set_cover(graph, allow_partial=True)
    assert graph.coverage(greedy.selected) == graph.num_elements
    exact = exact_set_cover(graph)
    assert len(exact) <= greedy.size


@given(sets=set_systems, k=st.integers(min_value=1, max_value=3))
@settings(max_examples=30, deadline=None)
def test_exact_k_cover_is_truly_optimal(sets, k):
    graph = _graph(sets)
    _, value = exact_k_cover(graph, k)
    n = graph.num_sets
    brute = max(
        (graph.coverage(c) for c in combinations(range(n), min(k, n))), default=0
    )
    assert value == brute
