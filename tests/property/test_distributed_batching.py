"""Property tests for the batched distributed pipeline.

Three invariants pin the distributed family to the scalar semantics:

1. **Sharding** — for every partition strategy, routing the edges batch by
   batch through :class:`EdgePartitioner` produces exactly the shards of the
   flat :func:`partition_edges` call, whatever the batch boundaries (the
   ``random`` strategy's generator consumes its bit stream identically
   either way).
2. **Pipeline** — a full distributed run is byte-identical (solution,
   coverage estimate, merged threshold, loads) whether the edges arrive as
   one in-memory list, as arbitrary batch chunks, or memory-mapped from a
   columnar directory.
3. **Composability** — under ``round_robin`` sharding, a run over 1, 2 or 8
   machines reports the same solution and coverage as a single-machine
   streaming run: the merge of the shard sketches *is* the streaming sketch
   of the whole input.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hashing import UniformHash
from repro.core.params import SketchParams
from repro.core.streaming_sketch import StreamingSketchBuilder
from repro.coverage.io import write_columnar
from repro.datasets import planted_kcover_instance
from repro.distributed import (
    PARTITION_STRATEGIES,
    DistributedKCover,
    EdgePartitioner,
    partition_edges,
)
from repro.offline.greedy import greedy_k_cover
from repro.streaming.batches import EventBatch

K = 4
SEED = 29


@pytest.fixture(scope="module")
def instance():
    return planted_kcover_instance(50, 1100, k=K, planted_coverage=0.85, seed=SEED)


@pytest.fixture(scope="module")
def edges(instance):
    return list(instance.graph.edges())


def _params(instance, budget=450, cap=20) -> SketchParams:
    return SketchParams.explicit(
        instance.n, instance.m, K, 0.2, edge_budget=budget, degree_cap=cap
    )


@pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
@pytest.mark.parametrize("batch_size", [1, 7, 1024])
def test_batched_sharding_equals_scalar(edges, strategy, batch_size):
    flat = partition_edges(edges, 4, strategy=strategy, seed=3)
    partitioner = EdgePartitioner(
        4, strategy=strategy, seed=3, total_edges=len(edges)
    )
    streamed: list[list[tuple[int, int]]] = [[] for _ in range(4)]
    for start in range(0, len(edges), batch_size):
        batch = EventBatch.from_edges(edges[start : start + batch_size])
        for machine, piece in enumerate(partitioner.split(batch)):
            streamed[machine].extend(
                zip(piece.set_ids.tolist(), piece.elements.tolist())
            )
    assert streamed == flat


@pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
def test_pipeline_identical_across_drive_modes(instance, edges, strategy, tmp_path):
    """run / run_batched / run_from_columnar: byte-identical reports."""
    write_columnar(edges, tmp_path / "w.cols", num_sets=instance.n)
    runner = DistributedKCover(
        instance.n, instance.m, k=K, num_machines=3, strategy=strategy,
        params=_params(instance), seed=SEED, batch_size=97,
    )
    reference = runner.run(edges)
    assert reference.merged_threshold < 1.0  # the budget truncates the merge

    columns = EventBatch.from_edges(edges)
    chunks = [
        columns.take(np.arange(start, min(start + 131, len(columns))))
        for start in range(0, len(columns), 131)
    ]
    batched = runner.run_batched(chunks, total_edges=len(columns))
    on_disk = runner.run_from_columnar(tmp_path / "w.cols")
    for candidate in (batched, on_disk):
        assert candidate.solution == reference.solution
        assert candidate.coverage_estimate == reference.coverage_estimate
        assert candidate.merged_threshold == reference.merged_threshold
        assert candidate.shard_edges == reference.shard_edges
        assert candidate.machine_stored_edges == reference.machine_stored_edges


@pytest.mark.parametrize("machines", [1, 2, 8])
def test_round_robin_matches_single_machine_streaming(instance, edges, machines):
    """Composability: distributing the stream does not change the answer.

    The merged coordinator sketch re-runs Algorithm 1 on the union, so a
    round-robin run over any number of machines must report the same
    solution — and the same coverage on the input graph — as one streaming
    pass over the whole input.  (The raw streaming sketch may retain up to
    ``eviction_slack`` edges beyond the budget that the strict offline
    re-trim discards, so graph-level equality is up to that slack; the
    greedy answers must agree.)
    """
    params = _params(instance)
    builder = StreamingSketchBuilder(params, hash_fn=UniformHash(SEED))
    builder.consume(edges)
    sketch = builder.sketch()
    streaming_solution = greedy_k_cover(sketch.graph, K).selected
    report = DistributedKCover(
        instance.n, instance.m, k=K, num_machines=machines,
        strategy="round_robin", params=params, seed=SEED,
    ).run(edges)
    assert report.solution == streaming_solution
    assert instance.graph.coverage(report.solution) == instance.graph.coverage(
        streaming_solution
    )


def test_round_robin_reports_identical_across_machine_counts(instance, edges):
    """The coordinator's merged sketch does not depend on the machine count."""
    params = _params(instance)
    reports = [
        DistributedKCover(
            instance.n, instance.m, k=K, num_machines=machines,
            strategy="round_robin", params=params, seed=SEED,
        ).run(edges)
        for machines in (1, 2, 8)
    ]
    first = reports[0]
    for other in reports[1:]:
        assert other.solution == first.solution
        assert other.coverage_estimate == first.coverage_estimate
        assert other.merged_threshold == first.merged_threshold
        assert other.coordinator_edges == first.coordinator_edges
