"""Batched-vs-scalar equivalence across the whole solver registry.

The batched streaming engine's contract is that driving any registered
streaming solver with columnar batches — native ``process_batch`` or the
unrolling shim alike — produces a report byte-identical to the scalar event
path: same solution, coverage, pass count and space peak.  This property is
what lets benchmarks use batches while every correctness claim is made about
the scalar reference semantics.
"""

from __future__ import annotations

import pytest

import repro.api  # noqa: F401 - populates the solver registry
from repro.api import StreamSpec, list_solvers, solve
from repro.datasets import planted_kcover_instance, planted_setcover_instance

BATCH_SIZES = (1, 7, 1024)
SEEDS = (0, 3)

#: Per-problem workload plus solve() kwargs keeping multi-pass solvers fast.
_PROBLEM_SETUP = {
    "k_cover": (lambda: planted_kcover_instance(40, 900, k=6, seed=21), {}),
    "set_cover": (
        lambda: planted_setcover_instance(30, 500, cover_size=6, seed=22),
        {"max_passes": 60},
    ),
    "set_cover_outliers": (
        lambda: planted_setcover_instance(30, 500, cover_size=6, seed=23),
        {"max_passes": 80, "outlier_fraction": 0.1},
    ),
}


def _report_key(report):
    """The fields the equivalence contract covers (timings naturally differ)."""
    return (
        report.solution,
        report.coverage,
        report.coverage_fraction,
        report.solution_size,
        report.passes,
        report.space_peak,
        report.space_budget,
        report.stream_events,
    )


def _cases():
    for problem, (build, kwargs) in _PROBLEM_SETUP.items():
        for name in list_solvers(problem=problem, kind="streaming"):
            yield pytest.param(problem, name, build, kwargs, id=f"{problem}:{name}")


@pytest.mark.parametrize("problem,name,build,kwargs", list(_cases()))
def test_every_streaming_solver_is_batch_invariant(problem, name, build, kwargs):
    instance = build()
    for seed in SEEDS:
        scalar = solve(
            instance,
            name,
            problem_kind=problem,
            stream=StreamSpec(order="random", seed=seed),
            seed=seed,
            **kwargs,
        )
        for batch_size in BATCH_SIZES:
            batched = solve(
                instance,
                name,
                problem_kind=problem,
                stream=StreamSpec(order="random", seed=seed, batch_size=batch_size),
                seed=seed,
                **kwargs,
            )
            assert _report_key(batched) == _report_key(scalar), (
                f"{name} diverged from the scalar path at batch_size={batch_size}, "
                f"seed={seed}"
            )


def test_registry_covers_all_three_problems():
    """The sweep above must actually exercise every streaming solver."""
    swept = {
        name
        for problem in _PROBLEM_SETUP
        for name in list_solvers(problem=problem, kind="streaming")
    }
    assert swept == set(list_solvers(kind="streaming"))
