"""Property-based tests for the KMV (ℓ0) sketch (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.l0 import KMVSketch

item_sets = st.frozensets(st.integers(min_value=0, max_value=10_000), max_size=300)


@given(items=item_sets, capacity=st.integers(min_value=8, max_value=64), seed=st.integers(0, 5))
@settings(max_examples=60, deadline=None)
def test_insertion_order_irrelevant(items, capacity, seed):
    a = KMVSketch(capacity, seed=seed)
    b = KMVSketch(capacity, seed=seed)
    a.update_many(sorted(items))
    b.update_many(sorted(items, reverse=True))
    assert sorted(a.values()) == sorted(b.values())
    assert a.estimate() == b.estimate()


@given(items=item_sets, capacity=st.integers(min_value=8, max_value=64), seed=st.integers(0, 5))
@settings(max_examples=60, deadline=None)
def test_exact_when_under_capacity(items, capacity, seed):
    sketch = KMVSketch(capacity, seed=seed)
    sketch.update_many(items)
    if len(items) < capacity:
        # Strictly under capacity the sketch has seen every distinct item and
        # knows it (once full it must fall back to the order-statistic estimate).
        assert sketch.estimate() == float(len(items))
    assert sketch.size <= capacity


@given(
    left=item_sets,
    right=item_sets,
    capacity=st.integers(min_value=8, max_value=64),
    seed=st.integers(0, 5),
)
@settings(max_examples=60, deadline=None)
def test_merge_equals_inserting_union(left, right, capacity, seed):
    a = KMVSketch(capacity, seed=seed)
    b = KMVSketch(capacity, seed=seed)
    a.update_many(left)
    b.update_many(right)
    merged = a.merge(b)
    direct = KMVSketch(capacity, seed=seed)
    direct.update_many(left | right)
    assert sorted(merged.values()) == sorted(direct.values())
    assert merged.estimate() == direct.estimate()


@given(items=item_sets, seed=st.integers(0, 5))
@settings(max_examples=40, deadline=None)
def test_estimate_never_negative_and_zero_for_empty(items, seed):
    sketch = KMVSketch(16, seed=seed)
    assert sketch.estimate() == 0.0
    sketch.update_many(items)
    assert sketch.estimate() >= 0.0
