"""Property-based tests for the sketch invariants (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coverage.bipartite import BipartiteGraph
from repro.core.hashing import UniformHash
from repro.core.params import SketchParams
from repro.core.sketch import apply_degree_cap, build_h_leq_n, build_hp
from repro.core.streaming_sketch import StreamingSketchBuilder
from repro.utils.rng import random_permutation, spawn_rng

set_systems = st.lists(
    st.frozensets(st.integers(min_value=0, max_value=40), min_size=0, max_size=12),
    min_size=2,
    max_size=10,
)


def _graph(sets) -> BipartiteGraph:
    graph = BipartiteGraph.from_sets([list(s) for s in sets])
    return graph


@given(sets=set_systems, p=st.floats(min_value=0.05, max_value=1.0), seed=st.integers(0, 10))
@settings(max_examples=60, deadline=None)
def test_hp_is_element_induced_subgraph(sets, p, seed):
    graph = _graph(sets)
    hash_fn = UniformHash(seed)
    hp = build_hp(graph, p, hash_fn)
    # Every kept element hashes below p and keeps its full edge set.
    for element in hp.elements():
        assert hash_fn.value(element) <= p
        assert hp.sets_of(element) == graph.sets_of(element)
    # Every dropped element hashes above p.
    for element in graph.elements():
        if not hp.has_element(element):
            assert hash_fn.value(element) > p


@given(sets=set_systems, cap=st.integers(min_value=1, max_value=6))
@settings(max_examples=60, deadline=None)
def test_degree_cap_invariants(sets, cap):
    graph = _graph(sets)
    capped, truncated = apply_degree_cap(graph, cap)
    for element in graph.elements():
        original = graph.element_degree(element)
        new = capped.element_degree(element)
        assert new == min(original, cap)
        assert (element in truncated) == (original > cap)
    # The cap never adds edges.
    assert set(capped.edges()) <= set(graph.edges())


@given(
    sets=set_systems,
    budget=st.integers(min_value=4, max_value=60),
    cap=st.integers(min_value=1, max_value=8),
    seed=st.integers(0, 5),
)
@settings(max_examples=60, deadline=None)
def test_offline_h_leq_n_respects_budgets(sets, budget, cap, seed):
    graph = _graph(sets)
    if graph.num_elements == 0:
        return
    params = SketchParams.explicit(
        graph.num_sets, max(1, graph.num_elements), 2, 0.5, edge_budget=budget, degree_cap=cap
    )
    sketch = build_h_leq_n(graph, params, UniformHash(seed))
    # Degree cap holds everywhere; the budget is exceeded by at most one
    # element's capped degree (the admission that crossed the line).
    assert all(sketch.graph.element_degree(e) <= cap for e in sketch.graph.elements())
    assert sketch.num_edges <= budget + cap
    # Threshold consistency: kept elements hash at or below the threshold.
    for element, value in sketch.element_hashes.items():
        assert value <= sketch.threshold + 1e-12


@given(
    sets=set_systems,
    budget=st.integers(min_value=4, max_value=60),
    cap=st.integers(min_value=1, max_value=8),
    seed=st.integers(0, 5),
    order_seed=st.integers(0, 3),
)
@settings(max_examples=60, deadline=None)
def test_streaming_sketch_invariants(sets, budget, cap, seed, order_seed):
    graph = _graph(sets)
    if graph.num_elements == 0:
        return
    params = SketchParams.explicit(
        graph.num_sets, max(1, graph.num_elements), 2, 0.5, edge_budget=budget, degree_cap=cap
    )
    hash_fn = UniformHash(seed)
    builder = StreamingSketchBuilder(params, hash_fn=hash_fn)
    # Deterministic shuffle by order_seed, through the library's own RNG.
    edges = random_permutation(
        sorted(graph.edges()), spawn_rng(order_seed, "sketch-property-order")
    )
    builder.consume(edges)
    sketch = builder.sketch()
    # 1. Degree cap everywhere.
    assert all(sketch.graph.element_degree(e) <= cap for e in sketch.graph.elements())
    # 2. Bounded storage.
    assert sketch.num_edges <= params.edge_budget + params.eviction_slack
    # 3. Kept elements hash strictly below the admission threshold history.
    for element in sketch.graph.elements():
        assert hash_fn.value(element) < builder.admission_threshold or builder.evictions == 0
    # 4. Elements strictly below the final retained maximum keep min(deg, cap) edges.
    if sketch.element_hashes:
        threshold = max(sketch.element_hashes.values())
        for element in sketch.graph.elements():
            if hash_fn.value(element) < threshold:
                assert sketch.graph.element_degree(element) == min(
                    graph.element_degree(element), cap
                )
    # 5. Conservation: every seen edge was either stored now, discarded, or evicted.
    assert builder.edges_seen == len(edges)


@given(sets=set_systems, seed=st.integers(0, 5))
@settings(max_examples=40, deadline=None)
def test_streaming_equals_offline_when_budget_is_large(sets, seed):
    graph = _graph(sets)
    if graph.num_elements == 0:
        return
    params = SketchParams.explicit(
        graph.num_sets,
        max(1, graph.num_elements),
        2,
        0.5,
        edge_budget=10_000,
        degree_cap=10_000,
    )
    hash_fn = UniformHash(seed)
    offline = build_h_leq_n(graph, params, hash_fn)
    builder = StreamingSketchBuilder(params, hash_fn=hash_fn)
    builder.consume(graph.edges())
    assert builder.sketch().graph == offline.graph == graph
