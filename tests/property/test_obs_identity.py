"""Observability is free: tracing must never change a solver's answer.

The hard contract of :mod:`repro.obs` is that the switch is invisible to
results.  Pinned here two ways:

1. **Byte-identity** — for every solver family (streaming sketch, set
   cover, outliers, offline, distributed) and for the distributed pipeline
   under thread and process executors, a run with tracing enabled matches
   the untraced run on everything except timings and the documented ``obs``
   extra block.
2. **Stitching determinism** — the span tree a process-pool run assembles
   from shipped-home worker captures has exactly the serial run's shape:
   same names, same attributes, same nesting.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.api import solve
from repro.datasets import planted_kcover_instance, planted_setcover_instance

DIST_OPTIONS = {"num_machines": 3, "edge_budget": 350, "degree_cap": 15}

#: One representative per solver family archetype.
FAMILIES = [
    ("kcover/sketch", "kcover", {"options": {"scale": 0.2}}),
    ("kcover/ensemble", "kcover", {"options": {"scale": 0.2, "replicas": 2}}),
    ("offline/greedy", "kcover", {}),
    ("kcover/distributed", "kcover", {"options": dict(DIST_OPTIONS)}),
    (
        "setcover/sketch",
        "setcover",
        {"options": {"epsilon": 0.5, "rounds": 2, "max_guesses": 12}},
    ),
    (
        "outliers/sketch",
        "setcover",
        {
            "problem_kind": "set_cover_outliers",
            "outlier_fraction": 0.1,
            "options": {"max_guesses": 12},
        },
    ),
]


@pytest.fixture(scope="module")
def instances():
    return {
        "kcover": planted_kcover_instance(40, 800, k=4, planted_coverage=0.9, seed=13),
        "setcover": planted_setcover_instance(30, 400, cover_size=6, seed=17),
    }


def _identity_key(report):
    """Everything but timings (real clock) and the documented obs block."""
    extra = {k: v for k, v in report.extra.items() if k != "obs"}
    return (
        report.algorithm,
        report.arrival_model,
        report.solution,
        report.coverage,
        report.coverage_fraction,
        report.solution_size,
        report.passes,
        report.space_peak,
        report.space_budget,
        report.stream_events,
        extra,
    )


class TestTracingByteIdentity:
    @pytest.mark.parametrize(
        "solver, instance_key, kwargs",
        FAMILIES,
        ids=[solver for solver, _, _ in FAMILIES],
    )
    def test_every_family_is_tracing_invariant(
        self, instances, solver, instance_key, kwargs
    ):
        instance = instances[instance_key]
        plain = solve(instance, solver, seed=13, **kwargs)
        with obs.tracing():
            traced = solve(instance, solver, seed=13, **kwargs)
        assert _identity_key(traced) == _identity_key(plain)
        assert "obs" not in plain.extra
        assert traced.extra["obs"]["spans"] >= 1
        assert "main" in traced.extra["obs"]["lanes"]

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_distributed_executors_are_tracing_invariant(self, instances, executor):
        instance = instances["kcover"]
        kwargs = dict(
            seed=13, executor=executor, max_workers=3, options=dict(DIST_OPTIONS)
        )
        plain = solve(instance, "kcover/distributed", **kwargs)
        with obs.tracing():
            traced = solve(instance, "kcover/distributed", **kwargs)
        assert _identity_key(traced) == _identity_key(plain)

    def test_repeated_traced_runs_agree(self, instances):
        instance = instances["kcover"]
        runs = []
        for _ in range(2):
            with obs.tracing():
                runs.append(
                    solve(instance, "kcover/distributed", seed=13,
                          options=dict(DIST_OPTIONS))
                )
        assert _identity_key(runs[0]) == _identity_key(runs[1])
        assert runs[0].extra["obs"] == runs[1].extra["obs"]


class TestProcessStitching:
    def _traced_tree(self, instance, executor):
        with obs.tracing() as tracer:
            solve(
                instance,
                "kcover/distributed",
                seed=13,
                executor=executor,
                max_workers=3,
                options=dict(DIST_OPTIONS),
            )
        return obs.span_tree(tracer.records())

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_worker_spans_stitch_to_the_serial_tree(self, instances, executor):
        instance = instances["kcover"]
        serial = self._traced_tree(instance, "serial")
        parallel = self._traced_tree(instance, executor)
        assert parallel == serial

    def test_one_stitched_trace_covers_map_reduce_and_greedy(self, instances):
        tree = self._traced_tree(instances["kcover"], "process")
        assert [node["name"] for node in tree] == ["solve"]

        def names(nodes):
            collected = set()
            for node in nodes:
                collected.add(node["name"])
                collected |= names(node["children"])
            return collected

        seen = names(tree)
        assert {"map.machine", "reduce.fold", "distributed.greedy"} <= seen
