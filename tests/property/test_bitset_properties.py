"""Property-based tests: the bitset evaluator agrees with the set-based graph."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coverage.bipartite import BipartiteGraph
from repro.coverage.bitset import BitsetCoverage

set_systems = st.lists(
    st.frozensets(st.integers(min_value=0, max_value=40), max_size=12),
    min_size=1,
    max_size=10,
)

families = st.lists(st.integers(min_value=0, max_value=9), max_size=10)


def _graph(sets) -> BipartiteGraph:
    return BipartiteGraph.from_sets([list(s) for s in sets])


@given(sets=set_systems, family=families)
@settings(max_examples=80, deadline=None)
def test_coverage_agrees_with_graph(sets, family):
    graph = _graph(sets)
    fast = BitsetCoverage(graph)
    family = [f % len(sets) for f in family]
    assert fast.coverage(family) == graph.coverage(family)
    assert fast.coverage_fraction(family) == graph.coverage_fraction(family) or (
        graph.num_elements == 0
    )


@given(sets=set_systems, covered=families)
@settings(max_examples=60, deadline=None)
def test_marginal_gains_agree_with_graph(sets, covered):
    graph = _graph(sets)
    fast = BitsetCoverage(graph)
    covered = [c % len(sets) for c in covered]
    covered_elements = graph.neighbors(covered)
    gains = fast.marginal_gains(fast.union_bits(covered))
    for set_id in range(graph.num_sets):
        assert gains[set_id] == len(graph.elements_of(set_id) - covered_elements)


@given(sets=set_systems, k=st.integers(min_value=1, max_value=4))
@settings(max_examples=50, deadline=None)
def test_vectorised_greedy_satisfies_greedy_guarantee(sets, k):
    # Different (equally valid) tie-breaking can make the two greedy
    # implementations end at different values, so the shared invariant is the
    # 1 − 1/e guarantee against the true optimum, plus feasibility.
    from repro.offline.exact import exact_k_cover

    graph = _graph(sets)
    fast = BitsetCoverage(graph)
    selection, coverage = fast.greedy_k_cover(k)
    assert graph.coverage(selection) == coverage
    assert len(selection) <= k
    _, optimum = exact_k_cover(graph, k)
    assert coverage >= (1 - 1 / 2.718281828) * optimum - 1e-9
