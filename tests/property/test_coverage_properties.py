"""Property-based tests for the coverage substrate (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coverage.bipartite import BipartiteGraph
from repro.coverage.coverage_fn import CoverageFunction

# Strategy: a small random set system as a list of frozensets of element ids.
set_systems = st.lists(
    st.frozensets(st.integers(min_value=0, max_value=30), max_size=10),
    min_size=1,
    max_size=8,
)

families = st.lists(st.integers(min_value=0, max_value=7), max_size=8)


def _graph(sets: list[frozenset[int]]) -> BipartiteGraph:
    return BipartiteGraph.from_sets([list(s) for s in sets])


@given(sets=set_systems)
@settings(max_examples=60, deadline=None)
def test_edge_count_is_sum_of_set_sizes(sets):
    graph = _graph(sets)
    assert graph.num_edges == sum(len(s) for s in sets)
    assert graph.num_elements == len(set().union(*sets)) if any(sets) else True


@given(sets=set_systems, family=families)
@settings(max_examples=60, deadline=None)
def test_coverage_equals_union_size(sets, family):
    graph = _graph(sets)
    family = [f % len(sets) for f in family]
    expected = len(set().union(*(sets[f] for f in family))) if family else 0
    assert graph.coverage(family) == expected


@given(sets=set_systems, family=families)
@settings(max_examples=60, deadline=None)
def test_monotonicity_of_coverage(sets, family):
    graph = _graph(sets)
    family = [f % len(sets) for f in family]
    for cut in range(len(family) + 1):
        assert graph.coverage(family[:cut]) <= graph.coverage(family)


@given(sets=set_systems, family=families, extra=st.integers(min_value=0, max_value=7))
@settings(max_examples=60, deadline=None)
def test_submodularity_of_marginal_gains(sets, family, extra):
    graph = _graph(sets)
    cover = CoverageFunction(graph)
    family = [f % len(sets) for f in family]
    extra = extra % len(sets)
    prefix = family[: len(family) // 2]
    # Diminishing returns: gain on the prefix >= gain on the full family.
    assert cover.marginal_gain(prefix, extra) >= cover.marginal_gain(family, extra)


@given(sets=set_systems)
@settings(max_examples=40, deadline=None)
def test_induced_plus_removed_partition_edges(sets):
    graph = _graph(sets)
    elements = list(graph.elements())
    keep = elements[::2]
    kept = graph.induced_on_elements(keep)
    dropped = graph.without_elements(keep)
    assert kept.num_edges + dropped.num_edges == graph.num_edges


@given(sets=set_systems)
@settings(max_examples=40, deadline=None)
def test_copy_equality_roundtrip(sets):
    graph = _graph(sets)
    assert graph.copy() == graph
