"""Properties of the streaming reduce and the zero-ship recompute map jobs.

Two contracts pinned here:

1. **Reduce-mode invariance** — the streaming merge tree is a *performance*
   knob, never a semantics knob: for every executor backend, partition
   strategy, machine count and (adversarial) arrival order, the streaming
   reduce produces the byte-identical run a barrier reduce produces —
   solution, coverage estimate, merged threshold, per-machine loads, the
   merged sketch's edges, element hashes and truncation flags.  On top of
   that the binary-counter tree keeps only O(log machines) sketches
   resident while the barrier holds all of them.

2. **Zero-ship map jobs** — for every non-contiguous partition strategy, a
   columnar run under a parallel executor ships
   :class:`~repro.distributed.worker.ShardRecomputeJob` descriptions whose
   pickled payload is a small constant independent of the edge count (no
   edge columns cross the process boundary), and the recomputed shards
   yield the byte-identical run the shipped-columns path yields.
"""

from __future__ import annotations

import math
import pickle

import pytest

from repro.api import ProblemSpec, solve
from repro.core.params import SketchParams
from repro.coverage.io import open_columnar, write_columnar
from repro.datasets import planted_kcover_instance
from repro.distributed import (
    DistributedKCover,
    ShardRecomputeJob,
    StreamingMergeTree,
    build_machine_sketch,
    merge_machine_sketches,
)

EXECUTORS = ("serial", "thread", "process")
NONCONTIGUOUS = ("random", "by_set", "by_element", "round_robin")
K = 4


def _instance(seed=11):
    return planted_kcover_instance(40, 900, k=K, planted_coverage=0.85, seed=seed)


def _params(instance) -> SketchParams:
    return SketchParams.explicit(
        instance.n, instance.m, K, 0.2, edge_budget=350, degree_cap=15
    )


def _run_key(report):
    return (
        report.solution,
        report.coverage_estimate,
        report.merged_threshold,
        report.shard_edges,
        report.machine_stored_edges,
        report.coordinator_edges,
    )


def _sketch_key(sketch):
    return (
        sorted(sketch.graph.edges()),
        sketch.threshold,
        sketch.element_hashes,
        sketch.truncated_elements,
    )


def _kcover(instance, *, machines, strategy="random", executor=None, reduce, seed=11):
    return DistributedKCover(
        instance.n, instance.m, k=K, num_machines=machines, strategy=strategy,
        params=_params(instance), seed=seed, executor=executor,
        max_workers=3, reduce=reduce,
    )


class TestReduceModeInvariance:
    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("strategy", ["random", "by_set", "round_robin"])
    def test_streaming_equals_barrier(self, executor, strategy):
        instance = _instance()
        edges = list(instance.graph.edges())
        reports = {
            reduce: _kcover(
                instance, machines=3, strategy=strategy,
                executor=executor, reduce=reduce,
            ).run(edges)
            for reduce in ("barrier", "streaming")
        }
        assert _run_key(reports["streaming"]) == _run_key(reports["barrier"])
        assert reports["streaming"].reduce_mode == "streaming"
        assert reports["barrier"].reduce_mode == "barrier"

    @pytest.mark.parametrize("machines", [1, 2, 5, 8])
    def test_resident_sketches_logarithmic(self, machines):
        instance = _instance()
        edges = list(instance.graph.edges())
        streaming = _kcover(instance, machines=machines, reduce="streaming").run(edges)
        barrier = _kcover(instance, machines=machines, reduce="barrier").run(edges)
        assert _run_key(streaming) == _run_key(barrier)
        # Binary-counter bound: at most floor(log2(M)) + 1 resident subtrees
        # (plus the one being sifted in); the barrier holds all M.
        assert streaming.peak_resident_sketches <= int(math.log2(machines)) + 2
        assert streaming.merge_count == max(1, machines - 1)
        assert barrier.peak_resident_sketches == machines
        assert barrier.merge_count == 1
        if machines >= 4:
            assert streaming.peak_resident_sketches < machines

    def test_default_reduce_is_streaming(self):
        instance = _instance()
        algo = DistributedKCover(instance.n, instance.m, k=K)
        assert algo.reduce == "streaming"

    def test_unknown_reduce_rejected(self):
        with pytest.raises(ValueError, match="reduce mode"):
            DistributedKCover(10, 100, k=2, reduce="bogus")


class TestMergeTreeArrivalOrders:
    """The tree result is independent of the order sketches arrive in."""

    def _machine_sketches(self, machines, seed=11):
        instance = _instance(seed)
        params = _params(instance)
        edges = list(instance.graph.edges())
        shards = [edges[i::machines] for i in range(machines)]
        return params, [
            build_machine_sketch(i, shard, params, hash_seed=seed)
            for i, shard in enumerate(shards)
        ]

    @pytest.mark.parametrize("machines", [1, 2, 3, 8])
    def test_adversarial_orders_match_barrier(self, machines):
        params, sketches = self._machine_sketches(machines)
        barrier = merge_machine_sketches(sketches, params, hash_seed=11)
        orders = {
            "in_order": list(range(machines)),
            "reversed": list(reversed(range(machines))),
            "interleaved": [
                index
                for pair in zip(
                    range(machines), reversed(range(machines))
                )
                for index in pair
            ][:machines],
        }
        for name, order in orders.items():
            tree = StreamingMergeTree(params, hash_seed=11)
            for index in dict.fromkeys(order):
                tree.add(sketches[index])
            merged = tree.result()
            assert _sketch_key(merged) == _sketch_key(barrier), name
            assert tree.merge_count == max(1, machines - 1), name
            assert tree.peak_resident <= int(math.log2(machines)) + 2, name

    def test_empty_tree_rejected(self):
        instance = _instance()
        tree = StreamingMergeTree(_params(instance))
        with pytest.raises(ValueError, match="no machine sketches"):
            tree.result()


class TestShardRecomputeJobs:
    @pytest.fixture()
    def columnar(self, tmp_path):
        instance = _instance()
        path = tmp_path / "w.cols"
        write_columnar(instance.graph.edges(), path, num_sets=instance.n)
        return instance, path

    @pytest.mark.parametrize("strategy", NONCONTIGUOUS)
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_recompute_matches_serial_barrier(self, columnar, strategy, executor):
        instance, path = columnar
        reference = _kcover(
            instance, machines=3, strategy=strategy, reduce="barrier"
        ).run_from_columnar(path)
        recomputed = _kcover(
            instance, machines=3, strategy=strategy,
            executor=executor, reduce="streaming",
        ).run_from_columnar(path)
        assert _run_key(recomputed) == _run_key(reference)

    @pytest.mark.parametrize("strategy", NONCONTIGUOUS)
    def test_pickled_job_ships_no_edge_bytes(self, columnar, tmp_path, strategy):
        """The job payload is a small constant, independent of edge count."""
        instance, path = columnar
        columns = open_columnar(path)
        big_path = tmp_path / "big.cols"
        write_columnar(
            (edge for _ in range(10) for edge in instance.graph.edges()),
            big_path, num_sets=instance.n,
        )
        sizes = {}
        for source in (path, big_path):
            job = ShardRecomputeJob(
                machine_id=0,
                path=str(source),
                strategy=strategy,
                seed=11,
                num_machines=3,
                params=_params(instance),
            )
            sizes[source] = len(pickle.dumps(job))
        assert columns.num_edges > 500  # the payload bound is not vacuous
        for source, size in sizes.items():
            assert size < 1024, (strategy, source, size)
        # 10x the edges moves the payload only by the path-string length.
        assert abs(sizes[big_path] - sizes[path]) <= len(str(big_path))

    def test_serial_mapper_keeps_single_scan_path(self, columnar):
        """A serial mapper routes once instead of scanning per machine."""
        instance, path = columnar
        algo = _kcover(instance, machines=3, reduce="streaming")
        columnar_report = algo.run_from_columnar(path)
        stream_order_edges = list(
            zip(
                open_columnar(path).set_ids.tolist(),
                open_columnar(path).elements.tolist(),
            )
        )
        in_memory = _kcover(instance, machines=3, reduce="streaming").run(
            stream_order_edges
        )
        assert _run_key(columnar_report) == _run_key(in_memory)


class TestReduceKnobPlumbing:
    def test_solve_threads_reduce_through(self):
        instance = _instance(seed=9)
        reports = {
            reduce: solve(
                instance, "kcover/distributed", k=K, seed=9, reduce=reduce,
                options={"num_machines": 5, "edge_budget": 350, "degree_cap": 15},
            )
            for reduce in ("barrier", "streaming")
        }
        assert reports["streaming"].solution == reports["barrier"].solution
        assert (
            reports["streaming"].extra["merged_threshold"]
            == reports["barrier"].extra["merged_threshold"]
        )
        assert reports["streaming"].extra["reduce_mode"] == "streaming"
        assert reports["barrier"].extra["peak_resident_sketches"] == 5
        assert reports["streaming"].extra["peak_resident_sketches"] < 5
        assert reports["streaming"].extra["merge_count"] == 4

    def test_spec_reduce_round_trips_and_drives_solve(self):
        spec = ProblemSpec(
            problem="k_cover",
            k=K,
            dataset="planted_kcover",
            dataset_args={"num_sets": 40, "num_elements": 900, "k": K, "seed": 3},
            reduce="barrier",
        )
        assert ProblemSpec.from_dict(spec.to_dict()) == spec
        report = solve(
            spec,
            "kcover/distributed",
            options={"num_machines": 3, "edge_budget": 350, "degree_cap": 15},
        )
        assert report.extra["reduce_mode"] == "barrier"

    def test_spec_rejects_unknown_reduce(self):
        from repro.errors import SpecError

        with pytest.raises(SpecError, match="reduce"):
            ProblemSpec(problem="k_cover", k=K, dataset="planted_kcover",
                        reduce="bogus")
