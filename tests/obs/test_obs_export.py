"""Exporters: Chrome trace JSON, text tree and Prometheus exposition."""

from __future__ import annotations

import json

from repro import obs
from repro.obs import (
    MetricsRegistry,
    Tracer,
    chrome_trace,
    render_prometheus,
    render_span_tree,
    write_metrics,
    write_trace,
)
from repro.obs.clock import fake_clock


def _sample_records():
    with fake_clock(tick=1.0):
        tracer = Tracer()
        with obs.tracing(tracer):
            with obs.span("solve", problem="k_cover"):
                with obs.capture(lane="machine-0") as captured:
                    with obs.span("map.machine", machine=0):
                        pass
                tracer.adopt(captured.records(), lane="worker-0")
    return tracer.records()


def _sample_snapshot():
    registry = MetricsRegistry()
    registry.counter("serve.store.hits").inc(3)
    gauge = registry.gauge("store.entries")
    gauge.set(5)
    gauge.set(2)
    histogram = registry.histogram("query_seconds", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 2.0):
        histogram.observe(value)
    return registry.snapshot()


class TestChromeTrace:
    def test_events_cover_metadata_and_every_span(self):
        payload = chrome_trace(_sample_records())
        events = payload["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in meta} == {"process_name", "thread_name"}
        assert sorted(e["name"] for e in spans) == ["map.machine", "solve"]
        assert payload["displayTimeUnit"] == "ms"

    def test_main_lane_gets_thread_zero(self):
        events = chrome_trace(_sample_records())["traceEvents"]
        lanes = {
            e["args"]["name"]: e["tid"] for e in events if e["name"] == "thread_name"
        }
        assert lanes["main"] == 0
        assert lanes["worker-0"] == 1

    def test_timestamps_are_microseconds(self):
        events = chrome_trace(_sample_records())["traceEvents"]
        solve = next(e for e in events if e["name"] == "solve")
        # fake clock ticks are whole seconds, so ts/dur are whole millions.
        assert solve["ts"] % 1e6 == 0
        assert solve["dur"] >= 1e6
        assert solve["args"] == {"problem": "k_cover"}


class TestTextTree:
    def test_renders_nesting_durations_and_lanes(self):
        text = render_span_tree(_sample_records())
        lines = text.splitlines()
        assert lines[0].startswith("solve")
        assert "[main]" in lines[0] and "{problem='k_cover'}" in lines[0]
        assert lines[1].startswith("  map.machine")
        assert "[worker-0]" in lines[1]
        assert "1000.000ms" in lines[1]

    def test_empty_forest_renders_empty(self):
        assert render_span_tree([]) == ""


class TestPrometheus:
    def test_exposition_covers_every_instrument_kind(self):
        text = render_prometheus(_sample_snapshot())
        assert "# TYPE repro_serve_store_hits counter" in text
        assert "repro_serve_store_hits 3" in text
        assert "repro_store_entries 2" in text
        assert "repro_store_entries_max 5" in text
        assert 'repro_query_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_query_seconds_bucket{le="1"} 2' in text
        assert 'repro_query_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_query_seconds_sum 2.55" in text
        assert "repro_query_seconds_count 3" in text

    def test_exposition_is_deterministic(self):
        assert render_prometheus(_sample_snapshot()) == render_prometheus(
            _sample_snapshot()
        )


class TestFileWriters:
    def test_write_trace_produces_loadable_json(self, tmp_path):
        target = write_trace(tmp_path / "trace.json", _sample_records())
        payload = json.loads(target.read_text())
        assert any(e["ph"] == "X" for e in payload["traceEvents"])

    def test_write_metrics_json_by_default(self, tmp_path):
        target = write_metrics(tmp_path / "metrics.json", _sample_snapshot())
        payload = json.loads(target.read_text())
        assert payload["serve.store.hits"] == {"kind": "counter", "value": 3}

    def test_write_metrics_prometheus_for_prom_suffix(self, tmp_path):
        target = write_metrics(tmp_path / "metrics.prom", _sample_snapshot())
        assert target.read_text().startswith("# TYPE ")
