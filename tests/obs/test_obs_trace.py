"""Span mechanics: the global switch, nesting, capture and adoption."""

from __future__ import annotations

import pickle

from repro import obs
from repro.obs import Span, SpanRecord, Tracer, span_tree
from repro.obs.clock import fake_clock


def _names(records):
    return [record.name for record in records]


class TestGlobalSwitch:
    def test_starts_disabled(self):
        assert not obs.enabled()
        assert obs.current_tracer() is None

    def test_enable_installs_and_disable_removes(self):
        tracer = obs.enable()
        assert obs.enabled()
        assert obs.current_tracer() is tracer
        obs.disable()
        assert not obs.enabled()

    def test_enable_accepts_an_existing_tracer(self):
        mine = Tracer()
        assert obs.enable(mine) is mine
        assert obs.current_tracer() is mine

    def test_disabled_span_is_the_shared_null_object(self):
        first = obs.span("anything", k=1)
        second = obs.span("else")
        assert first is second  # one reusable no-op, zero allocation
        with first as opened:
            assert opened.set(extra=1) is opened

    def test_tracing_scope_restores_previous_state(self):
        with obs.tracing() as tracer:
            assert obs.current_tracer() is tracer
            with obs.tracing() as inner:
                assert obs.current_tracer() is inner
            assert obs.current_tracer() is tracer
        assert not obs.enabled()


class TestSpansAndRecords:
    def test_spans_nest_and_time_deterministically(self):
        with fake_clock(tick=1.0):
            tracer = Tracer()  # epoch = 0
            with obs.tracing(tracer):
                with obs.span("outer", phase="map") as outer:
                    assert isinstance(outer, Span)
                    with obs.span("inner"):
                        pass
        inner, outer = sorted(tracer.records(), key=lambda r: r.name)
        assert isinstance(outer, SpanRecord)
        assert outer.parent_id == -1 and inner.parent_id == outer.span_id
        # Reads: outer-enter(1), inner-enter(2), inner-exit(3), outer-exit(4).
        assert (outer.start, outer.duration) == (1.0, 3.0)
        assert (inner.start, inner.duration) == (2.0, 1.0)
        assert outer.attrs_dict() == {"phase": "map"}

    def test_set_attaches_attributes_to_the_open_span(self):
        tracer = Tracer()
        with obs.tracing(tracer):
            with obs.span("work") as span:
                span.set(results=7)
        (record,) = tracer.records()
        assert record.attrs_dict() == {"results": 7}

    def test_records_are_plain_picklable_data(self):
        tracer = Tracer(lane="machine-2")
        with obs.tracing(tracer):
            with obs.span("map.shard", machine=2):
                pass
        records = tracer.records()
        assert pickle.loads(pickle.dumps(records)) == records
        assert records[0].lane == "machine-2"


class TestCaptureAndAdopt:
    def _worker_records(self):
        """What a process worker ships home: captured spans, global off."""
        with obs.capture(lane="machine-0") as captured:
            with obs.span("map.machine", machine=0):
                with obs.span("shard.read"):
                    pass
        return captured.records()

    def test_capture_collects_even_when_global_switch_is_off(self):
        assert not obs.enabled()
        records = self._worker_records()
        assert _names(records) == ["map.machine", "shard.read"]
        assert not obs.enabled()  # capture uninstalled its temporary switch

    def test_capture_overrides_the_thread_tracer(self):
        with obs.tracing() as coordinator:
            with obs.capture(lane="w") as captured:
                assert obs.current_tracer() is captured
                with obs.span("inside"):
                    pass
            assert obs.current_tracer() is coordinator
        assert _names(captured.records()) == ["inside"]
        assert coordinator.records() == []

    def test_adopt_stitches_worker_records_under_the_open_span(self):
        worker = self._worker_records()
        with obs.tracing() as tracer:
            with obs.span("solve"):
                assert obs.adopt(worker, lane="worker-0") == 2
        tree = span_tree(tracer.records())
        assert [node["name"] for node in tree] == ["solve"]
        (machine,) = tree[0]["children"]
        assert machine["name"] == "map.machine"
        assert [child["name"] for child in machine["children"]] == ["shard.read"]
        lanes = {record.lane for record in tracer.records()}
        assert lanes == {"main", "worker-0"}

    def test_adopt_is_a_no_op_when_disabled(self):
        worker = self._worker_records()
        assert not obs.enabled()
        assert obs.adopt(worker) == 0
        assert obs.adopt([]) == 0

    def test_adopted_subtree_ends_at_arrival_time(self):
        with fake_clock(tick=1.0):
            with obs.capture(lane="w") as captured:
                with obs.span("job"):
                    pass
            worker = captured.records()
            tracer = Tracer()
            with obs.tracing(tracer):
                with obs.span("solve"):
                    tracer.adopt(worker, lane="w")
        solve, job = sorted(tracer.records(), key=lambda r: r.name, reverse=True)
        arrival = job.start + job.duration
        assert arrival <= solve.start + solve.duration
        assert job.duration == 1.0  # the worker-side measurement is preserved


class TestSpanTreeAndSummary:
    def test_tree_is_timing_independent(self):
        def build(tick):
            with fake_clock(tick=tick):
                tracer = Tracer()
                with obs.tracing(tracer):
                    with obs.span("solve"):
                        for machine in (1, 0):
                            with obs.span("map.machine", machine=machine):
                                pass
            return span_tree(tracer.records())

        fast, slow = build(0.001), build(5.0)
        assert fast == slow
        children = fast[0]["children"]
        # Siblings sort by (name, attrs), not by start time.
        assert [c["attrs"]["machine"] for c in children] == [0, 1]

    def test_summary_reports_span_count_and_lanes(self):
        assert obs.summary() == {}
        with obs.tracing() as tracer:
            with obs.span("solve"):
                pass
            tracer.adopt(
                self_records := [
                    SpanRecord(0, -1, "map.machine", 0.0, 1.0, "machine-0", ())
                ],
                lane="worker-0",
            )
            assert obs.summary() == {"spans": 2, "lanes": ["main", "worker-0"]}
        assert self_records  # keeps the walrus obvious under linting

    def test_global_metrics_is_one_process_wide_registry(self):
        assert obs.global_metrics() is obs.global_metrics()
        handle = obs.global_metrics().counter("test.obs.trace_counter")
        assert obs.global_metrics().get("test.obs.trace_counter") is handle
