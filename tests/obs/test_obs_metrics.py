"""Instrument semantics: counters, gauges, histograms and their registry."""

from __future__ import annotations

import math

import pytest

from repro.obs import (
    LATENCY_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)


class TestPercentile:
    def test_nearest_rank_on_small_samples(self):
        sample = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert percentile(sample, 50) == 3.0
        assert percentile(sample, 99) == 5.0
        assert percentile(sample, 0) == 1.0

    def test_single_observation_is_every_percentile(self):
        assert percentile([42.0], 1) == percentile([42.0], 99) == 42.0

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestCounter:
    def test_increments_accumulate(self):
        counter = Counter("hits")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert counter.snapshot() == {"kind": "counter", "value": 5}

    def test_cannot_decrease(self):
        with pytest.raises(ValueError):
            Counter("hits").inc(-1)

    def test_reset_zeroes_in_place(self):
        counter = Counter("hits")
        counter.inc(3)
        counter.reset()
        assert counter.value == 0


class TestGauge:
    def test_tracks_level_and_high_water_mark(self):
        gauge = Gauge("resident")
        gauge.set(4)
        gauge.set(9)
        gauge.set(2)
        assert gauge.value == 2
        assert gauge.max_seen == 9
        assert gauge.snapshot() == {"kind": "gauge", "value": 2, "max": 9}

    def test_reset_clears_the_mark_too(self):
        gauge = Gauge("resident")
        gauge.set(9)
        gauge.reset()
        assert gauge.value == 0.0
        assert gauge.max_seen == 0.0


class TestHistogram:
    def test_bucket_assignment_and_totals(self):
        histogram = Histogram("lat", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == 55.5
        assert histogram.mean == 18.5
        snap = histogram.snapshot()
        assert snap["buckets"] == [[1.0, 1], [10.0, 1]]
        assert snap["overflow"] == 1

    def test_quantile_from_bucket_bounds(self):
        histogram = Histogram("lat", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 0.6, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.quantile(50) == 1.0  # rank 2 lands in the first bucket
        assert histogram.quantile(99) == 100.0

    def test_quantile_exact_with_retained_samples(self):
        histogram = Histogram("lat", buckets=(100.0,), track_samples=True)
        for value in (3.0, 1.0, 2.0):
            histogram.observe(value)
        assert histogram.samples == [3.0, 1.0, 2.0]
        assert histogram.quantile(50) == 2.0
        assert histogram.quantile(99) == 3.0

    def test_overflow_quantile_is_infinite(self):
        histogram = Histogram("lat", buckets=(1.0,))
        histogram.observe(5.0)
        assert histogram.quantile(99) == math.inf

    def test_empty_quantile_rejected(self):
        with pytest.raises(ValueError):
            Histogram("lat").quantile(50)

    def test_reset_keeps_bounds_and_sampling_mode(self):
        histogram = Histogram("lat", buckets=(1.0,), track_samples=True)
        histogram.observe(0.5)
        histogram.reset()
        assert histogram.count == 0
        assert histogram.samples == []
        histogram.observe(0.25)
        assert histogram.samples == [0.25]

    def test_malformed_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("lat", buckets=())
        with pytest.raises(ValueError):
            Histogram("lat", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("lat", buckets=(2.0, 1.0))


class TestSharedBuckets:
    def test_latency_buckets_strictly_increase_across_decades(self):
        assert list(LATENCY_BUCKETS) == sorted(set(LATENCY_BUCKETS))
        assert LATENCY_BUCKETS[0] == 1e-6
        assert LATENCY_BUCKETS[-1] >= 100.0

    def test_size_buckets_are_powers_of_two(self):
        assert list(SIZE_BUCKETS) == [float(2**e) for e in range(len(SIZE_BUCKETS))]
        assert SIZE_BUCKETS[-1] >= 1e6


class TestMetricsRegistry:
    def test_get_or_create_returns_the_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("hits", help="cache hits")
        assert registry.counter("hits") is first
        assert registry.get("hits") is first
        assert registry.get("absent") is None

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("hits")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("hits")

    def test_names_and_instruments_sorted(self):
        registry = MetricsRegistry()
        registry.gauge("b")
        registry.counter("a")
        assert registry.names() == ["a", "b"]
        assert [i.name for i in registry.instruments()] == ["a", "b"]

    def test_reset_zeroes_without_orphaning_handles(self):
        registry = MetricsRegistry()
        handle = registry.counter("hits")
        handle.inc(7)
        registry.reset()
        # The module-level handle keeps recording into the same instrument.
        handle.inc()
        assert registry.get("hits").value == 1

    def test_snapshot_merges_extra_registries_self_wins(self):
        main, private = MetricsRegistry(), MetricsRegistry()
        main.counter("shared").inc(1)
        private.counter("shared").inc(99)
        private.counter("private.only").inc(2)
        snap = main.snapshot(extra=(private,))
        assert snap["shared"]["value"] == 1
        assert snap["private.only"]["value"] == 2
        assert list(snap) == sorted(snap)
