"""The fakeable clock indirection every library timing read goes through."""

from __future__ import annotations

import pytest

from repro.obs.clock import FakeClock, fake_clock, perf_counter, wall_time


class TestFakeClock:
    def test_reads_advance_by_tick(self):
        clock = FakeClock(start=10.0, tick=0.5)
        assert (clock(), clock()) == (10.0, 10.5)

    def test_advance_moves_time_without_a_read(self):
        clock = FakeClock(start=1.0, tick=0.0)
        clock.advance(2.5)
        assert clock() == 3.5

    def test_zero_tick_clock_is_frozen(self):
        clock = FakeClock(start=7.0)
        assert clock() == clock() == 7.0


class TestFakeClockContext:
    def test_routes_both_sources_through_one_clock(self):
        with fake_clock(start=5.0, tick=1.0):
            # perf_counter and wall_time consume reads from the same fake.
            assert perf_counter() == 5.0
            assert wall_time() == 6.0
            assert perf_counter() == 7.0

    def test_accepts_a_preconfigured_instance(self):
        mine = FakeClock(start=100.0, tick=0.25)
        with fake_clock(mine) as installed:
            assert installed is mine
            assert perf_counter() == 100.0
        assert mine.now == 100.25  # the read consumed one tick

    def test_restores_the_real_sources_on_exit(self):
        with fake_clock(start=0.0):
            assert perf_counter() == 0.0
        # Back on the real clocks: monotonic moves, wall time is epoch-scale.
        first = perf_counter()
        assert perf_counter() >= first
        assert wall_time() > 1e9

    def test_restores_even_when_the_body_raises(self):
        with pytest.raises(RuntimeError):
            with fake_clock(start=3.0):
                raise RuntimeError("boom")
        assert wall_time() > 1e9
