"""Shared obs-test hygiene: every test starts and ends with tracing off.

The switch is process-global state; a test that enabled tracing and died
mid-assert must not leak an installed tracer into the next test (or into
other test modules running in the same process).
"""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def obs_switch_off():
    obs.disable()
    yield
    obs.disable()
