"""Integration tests for the space / pass accounting claims of Table 1."""

from __future__ import annotations

import pytest

from repro.baselines import (
    DemaineSetCover,
    HarPeledSetCover,
    SahaGetoorKCover,
    SieveStreamingKCover,
)
from repro.core import StreamingKCover, StreamingSetCover, StreamingSetCoverOutliers
from repro.core.params import SketchParams
from repro.datasets import planted_kcover_instance, planted_setcover_instance
from repro.streaming import EdgeStream, SetStream, StreamingRunner


class TestSpaceScalingShape:
    def test_sketch_space_flat_in_m_but_baseline_grows(self):
        """The central Table 1 distinction: O~(n) vs O~(m) space."""
        sketch_peaks, baseline_peaks = [], []
        for m in (1500, 6000):
            instance = planted_kcover_instance(50, m, k=5, seed=21)
            params = SketchParams.explicit(instance.n, instance.m, 5, 0.2,
                                           edge_budget=700, degree_cap=25)
            sketch_algo = StreamingKCover(instance.n, instance.m, k=5, params=params, seed=21)
            sketch_report = StreamingRunner(instance.graph).run(
                sketch_algo, EdgeStream.from_graph(instance.graph, order="random", seed=21)
            )
            saha = SahaGetoorKCover(k=5)
            saha_report = StreamingRunner(instance.graph).run(
                saha, SetStream.from_graph(instance.graph, order="random", seed=21)
            )
            sketch_peaks.append(sketch_report.space_peak)
            baseline_peaks.append(saha_report.space_peak)
        # Quadrupling m leaves the sketch's space unchanged (budget-bound)...
        assert sketch_peaks[1] <= sketch_peaks[0] * 1.05
        # ...while the set-arrival baseline's space grows with the ground set.
        assert baseline_peaks[1] >= 2.5 * baseline_peaks[0]

    def test_sieve_space_grows_with_m(self):
        peaks = []
        for m in (1500, 6000):
            instance = planted_kcover_instance(50, m, k=5, seed=22)
            algo = SieveStreamingKCover(k=5, epsilon=0.2)
            report = StreamingRunner(instance.graph).run(
                algo, SetStream.from_graph(instance.graph, order="random", seed=22)
            )
            peaks.append(report.space_peak)
        assert peaks[1] >= 2.0 * peaks[0]


class TestPassAccounting:
    def test_single_pass_algorithms(self, planted_kcover):
        for factory, stream in [
            (
                lambda: StreamingKCover(planted_kcover.n, planted_kcover.m, k=4, seed=1),
                EdgeStream.from_graph(planted_kcover.graph, order="random", seed=1),
            ),
            (
                lambda: SahaGetoorKCover(k=4),
                SetStream.from_graph(planted_kcover.graph, order="random", seed=1),
            ),
            (
                lambda: SieveStreamingKCover(k=4),
                SetStream.from_graph(planted_kcover.graph, order="random", seed=1),
            ),
        ]:
            report = StreamingRunner(planted_kcover.graph).run(factory(), stream)
            assert report.passes == 1

    def test_multi_pass_counts(self, planted_setcover):
        cases = [
            (
                StreamingSetCover(
                    planted_setcover.n, planted_setcover.m, rounds=3, max_guesses=8, seed=2
                ),
                EdgeStream.from_graph(planted_setcover.graph, order="random", seed=2),
                5,
            ),
            (
                DemaineSetCover(planted_setcover.m, rounds=3),
                SetStream.from_graph(planted_setcover.graph, order="random", seed=2),
                4,
            ),
            (
                HarPeledSetCover(planted_setcover.m, passes=4),
                SetStream.from_graph(planted_setcover.graph, order="random", seed=2),
                4,
            ),
        ]
        for algo, stream, expected_passes in cases:
            report = StreamingRunner(planted_setcover.graph).run(algo, stream)
            assert report.passes == expected_passes
            assert report.coverage_fraction == pytest.approx(1.0)

    def test_outliers_is_single_pass_despite_many_guesses(self, planted_setcover):
        algo = StreamingSetCoverOutliers(
            planted_setcover.n, planted_setcover.m, outlier_fraction=0.1, epsilon=0.4, seed=3
        )
        report = StreamingRunner(planted_setcover.graph).run(
            algo, EdgeStream.from_graph(planted_setcover.graph, order="random", seed=3)
        )
        assert report.passes == 1
        assert len(algo.guesses()) > 1
