"""Integration tests checking Theorem 2.7's composition property in practice:

running an offline α-approximation on the sketch is nearly as good as running
it on the full input — for greedy, local search and the exact solver alike.
"""

from __future__ import annotations

import math

import pytest

from repro.core.params import SketchParams
from repro.core.sketch import build_h_leq_n
from repro.core.streaming_sketch import StreamingSketchBuilder
from repro.datasets import planted_kcover_instance, zipf_instance
from repro.offline.exact import exact_k_cover
from repro.offline.greedy import greedy_k_cover
from repro.offline.local_search import local_search_k_cover


@pytest.fixture(scope="module")
def medium_instance():
    return planted_kcover_instance(70, 3000, k=5, planted_coverage=0.9, seed=13)


def _sketch(instance, budget, cap, seed=1):
    params = SketchParams.explicit(
        instance.n, instance.m, instance.k, 0.2, edge_budget=budget, degree_cap=cap
    )
    builder = StreamingSketchBuilder(params, seed=seed)
    builder.consume(instance.graph.edges())
    return builder.sketch()


class TestCompositionProperty:
    def test_greedy_on_sketch_close_to_greedy_on_input(self, medium_instance):
        sketch = _sketch(medium_instance, budget=1200, cap=40)
        on_sketch = greedy_k_cover(sketch.graph, 5).selected
        on_input = greedy_k_cover(medium_instance.graph, 5).coverage
        achieved = medium_instance.graph.coverage(on_sketch)
        assert achieved >= 0.85 * on_input

    def test_local_search_on_sketch(self, medium_instance):
        sketch = _sketch(medium_instance, budget=1200, cap=40)
        solution = local_search_k_cover(sketch.graph, 5, seed=2).selected
        achieved = medium_instance.graph.coverage(solution)
        reference = greedy_k_cover(medium_instance.graph, 5).coverage
        assert achieved >= 0.5 * reference

    def test_exact_on_sketch_of_small_instance(self):
        instance = planted_kcover_instance(14, 400, k=3, seed=17)
        sketch = _sketch(instance, budget=250, cap=10, seed=3)
        solution, _ = exact_k_cover(sketch.graph, 3)
        achieved = instance.graph.coverage(solution)
        _, optimum = exact_k_cover(instance.graph, 3)
        assert achieved >= (1 - 0.35) * optimum

    def test_estimator_accuracy_across_solutions(self, medium_instance):
        """Lemma 2.2: 1/p |Γ(H_p, S)| approximates C(S) for many families."""
        sketch = _sketch(medium_instance, budget=1500, cap=40, seed=4)
        rng_families = [
            list(range(i, i + 5)) for i in range(0, 50, 5)
        ]
        errors = []
        for family in rng_families:
            truth = medium_instance.graph.coverage(family)
            estimate = sketch.estimate_coverage(family)
            if truth:
                errors.append(abs(estimate - truth) / medium_instance.planted_value)
        assert max(errors) < 0.25

    def test_offline_and_streaming_sketch_give_similar_quality(self, medium_instance):
        params = SketchParams.explicit(
            medium_instance.n, medium_instance.m, 5, 0.2, edge_budget=1000, degree_cap=30
        )
        offline = build_h_leq_n(medium_instance.graph, params, seed=5)
        builder = StreamingSketchBuilder(params, seed=5)
        builder.consume(medium_instance.graph.edges())
        streaming = builder.sketch()
        value_offline = medium_instance.graph.coverage(greedy_k_cover(offline.graph, 5).selected)
        value_streaming = medium_instance.graph.coverage(
            greedy_k_cover(streaming.graph, 5).selected
        )
        assert abs(value_offline - value_streaming) <= 0.1 * medium_instance.planted_value

    def test_quality_improves_with_budget(self):
        instance = zipf_instance(60, 2500, edges_per_set=50, k=5, seed=19)
        reference = greedy_k_cover(instance.graph, 5).coverage
        qualities = []
        for budget in (150, 600, 2400):
            sketch = _sketch(instance.with_kind(instance.kind, k=5), budget=budget, cap=25, seed=7)
            solution = greedy_k_cover(sketch.graph, 5).selected
            qualities.append(instance.graph.coverage(solution) / reference)
        # Larger budgets should never hurt much and the largest should be best.
        assert qualities[-1] >= qualities[0] - 0.02
        assert qualities[-1] >= 0.9

    def test_epsilon_guarantee_shape(self, medium_instance):
        """The (1 − 1/e − ε) end-to-end bound of Theorem 3.1 holds with room."""
        sketch = _sketch(medium_instance, budget=900, cap=30, seed=8)
        solution = greedy_k_cover(sketch.graph, 5).selected
        achieved = medium_instance.graph.coverage(solution)
        _, reference = exact_k_cover(medium_instance.graph, 5) if medium_instance.n <= 20 else (
            None,
            medium_instance.planted_value,
        )
        assert achieved >= (1 - 1 / math.e - 0.2) * reference
