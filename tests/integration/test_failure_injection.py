"""Failure-injection tests: budget violations surface as the right exceptions.

The space/pass meters are not just bookkeeping — when an experiment *enforces*
a budget (as the lower-bound harness does), algorithms that would exceed it
must fail loudly with the dedicated exception types rather than silently
degrade.
"""

from __future__ import annotations

import pytest

from repro.core import StreamingKCover, StreamingSketchBuilder
from repro.core.params import SketchParams
from repro.errors import PassBudgetExceeded, SpaceBudgetExceeded
from repro.streaming import EdgeStream, SetStream, SpaceMeter, StreamingRunner
from repro.streaming.passes import MultiPassDriver


class TestSpaceBudgetEnforcement:
    def test_builder_with_enforcing_meter_raises_when_budget_too_small(self, planted_kcover):
        params = SketchParams.explicit(
            planted_kcover.n, planted_kcover.m, 4, 0.2, edge_budget=200, degree_cap=10
        )
        # An external meter stricter than the sketch's own limits must trip.
        meter = SpaceMeter(budget=50, enforce=True, unit="edges")
        builder = StreamingSketchBuilder(params, seed=1, space=meter)
        with pytest.raises(SpaceBudgetExceeded) as excinfo:
            builder.consume(planted_kcover.graph.edges())
        assert excinfo.value.budget == 50
        assert excinfo.value.used == 51

    def test_builder_with_adequate_budget_does_not_raise(self, planted_kcover):
        params = SketchParams.explicit(
            planted_kcover.n, planted_kcover.m, 4, 0.2, edge_budget=200, degree_cap=10
        )
        meter = SpaceMeter(budget=params.max_stored_edges + 1, enforce=True, unit="edges")
        builder = StreamingSketchBuilder(params, seed=1, space=meter)
        builder.consume(planted_kcover.graph.edges())
        assert meter.within_budget

    def test_non_enforcing_meter_records_violations(self, planted_kcover):
        params = SketchParams.explicit(
            planted_kcover.n, planted_kcover.m, 4, 0.2, edge_budget=400, degree_cap=20
        )
        meter = SpaceMeter(budget=100, enforce=False, unit="edges")
        builder = StreamingSketchBuilder(params, seed=2, space=meter)
        builder.consume(planted_kcover.graph.edges())
        assert meter.violations > 0
        assert not meter.within_budget


class TestPassBudgetEnforcement:
    def test_runner_max_passes_zero_like_budget(self, planted_kcover):
        algo = StreamingKCover(planted_kcover.n, planted_kcover.m, k=3, seed=1)
        runner = StreamingRunner(planted_kcover.graph)
        # A single-pass algorithm under a 1-pass budget is fine.
        report = runner.run(
            algo,
            EdgeStream.from_graph(planted_kcover.graph, order="random", seed=1),
            max_passes=1,
        )
        assert report.passes == 1

    def test_multipass_algorithm_rejected_by_small_budget(self, planted_setcover):
        from repro.baselines import DemaineSetCover

        algo = DemaineSetCover(planted_setcover.m, rounds=3)  # needs 4 passes
        runner = StreamingRunner(planted_setcover.graph)
        with pytest.raises(PassBudgetExceeded):
            runner.run(
                algo,
                SetStream.from_graph(planted_setcover.graph, order="random", seed=1),
                max_passes=2,
            )

    def test_driver_reports_exact_violation(self, planted_kcover):
        driver = MultiPassDriver(
            EdgeStream.from_graph(planted_kcover.graph, order="given"), max_passes=1
        )
        list(driver.new_pass())
        with pytest.raises(PassBudgetExceeded) as excinfo:
            driver.new_pass()
        assert excinfo.value.budget == 1
        assert excinfo.value.used == 2
