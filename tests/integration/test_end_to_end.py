"""End-to-end integration tests: generators → streams → algorithms → metrics."""

from __future__ import annotations

import math

import pytest

from repro.analysis import ExperimentSuite, run_streaming_comparison
from repro.baselines import SahaGetoorKCover, SieveStreamingKCover
from repro.core import StreamingKCover, StreamingSetCover, StreamingSetCoverOutliers
from repro.core.params import SketchParams
from repro.datasets import (
    barabasi_albert_instance,
    blog_watch_instance,
    planted_setcover_instance,
)
from repro.offline.greedy import greedy_k_cover, greedy_set_cover
from repro.streaming import EdgeStream, StreamingRunner


class TestKCoverPipeline:
    def test_blog_watch_comparison_table(self):
        instance = blog_watch_instance(num_blogs=80, num_stories=2500, k=8, seed=1)
        suite = ExperimentSuite("kcover-blogwatch")
        params = SketchParams.explicit(
            instance.n, instance.m, 8, 0.2, edge_budget=2000, degree_cap=30
        )
        rows = run_streaming_comparison(
            suite,
            instance,
            "blog_watch",
            [
                (
                    "sketch",
                    lambda: StreamingKCover(instance.n, instance.m, k=8, params=params, seed=1),
                ),
                ("saha-getoor", lambda: SahaGetoorKCover(k=8)),
                ("sieve", lambda: SieveStreamingKCover(k=8, epsilon=0.1)),
            ],
            seed=1,
        )
        ratios = {row.algorithm: row.metrics["approx_ratio"] for row in rows}
        # The paper's algorithm should not trail the ¼-guarantee baseline and
        # should be close to greedy (ratio vs greedy reference >= 0.75).
        assert ratios["sketch"] >= 0.75
        assert ratios["sketch"] >= ratios["saha-getoor"] - 0.05
        # And it must do so with far fewer stored edges than the input.
        sketch_row = next(r for r in rows if r.algorithm == "sketch")
        assert sketch_row.metrics["space_peak"] < instance.num_edges

    def test_dominating_set_scenario(self):
        instance = barabasi_albert_instance(250, attachment=3, k=10, seed=2)
        algo = StreamingKCover(instance.n, instance.m, k=10, epsilon=0.4, scale=0.3, seed=2)
        report = StreamingRunner(instance.graph).run(
            algo, EdgeStream.from_graph(instance.graph, order="random", seed=2)
        )
        greedy = greedy_k_cover(instance.graph, 10)
        assert report.coverage >= (1 - 1 / math.e - 0.4) * greedy.coverage
        assert report.passes == 1


class TestSetCoverPipeline:
    def test_full_stack_setcover(self):
        instance = planted_setcover_instance(50, 900, cover_size=9, seed=3)
        algo = StreamingSetCover(
            instance.n, instance.m, epsilon=0.5, rounds=3, seed=3, max_guesses=10
        )
        report = StreamingRunner(instance.graph).run(
            algo, EdgeStream.from_graph(instance.graph, order="random", seed=3)
        )
        greedy = greedy_set_cover(instance.graph)
        assert report.coverage_fraction == pytest.approx(1.0)
        assert report.solution_size <= (1 + 0.5) * math.log(instance.m) * 9
        assert report.solution_size <= 3 * max(greedy.size, 9)

    def test_outliers_pipeline_on_adversarial_order(self):
        instance = planted_setcover_instance(40, 700, cover_size=7, seed=4)
        algo = StreamingSetCoverOutliers(
            instance.n, instance.m, outlier_fraction=0.1, epsilon=0.5, seed=4, max_guesses=12
        )
        stream = EdgeStream.from_graph(
            instance.graph, order="adversarial_tail", seed=4, favored_sets=[0, 1]
        )
        report = StreamingRunner(instance.graph).run(algo, stream)
        assert report.coverage_fraction >= 1 - 0.1 - 0.05
        assert report.passes == 1


class TestStreamOrderRobustness:
    @pytest.mark.parametrize(
        "order", ["random", "set_grouped", "element_grouped", "adversarial_tail"]
    )
    def test_kcover_quality_independent_of_order(self, planted_kcover, order):
        params = SketchParams.explicit(
            planted_kcover.n, planted_kcover.m, 4, 0.2, edge_budget=600, degree_cap=30
        )
        algo = StreamingKCover(planted_kcover.n, planted_kcover.m, k=4, params=params, seed=5)
        stream = EdgeStream.from_graph(planted_kcover.graph, order=order, seed=5)
        report = StreamingRunner(planted_kcover.graph).run(algo, stream)
        greedy = greedy_k_cover(planted_kcover.graph, 4)
        assert report.coverage >= 0.8 * greedy.coverage
