"""Unit tests for the repro.parallel executor registry and mapper."""

from __future__ import annotations

import time

import pytest

from repro.errors import SpecError
from repro.parallel import (
    ExecutorBackend,
    ParallelMapper,
    as_mapper,
    executor_choices,
    get_executor,
    list_executors,
    register_executor,
    resolve_executor,
    unregister_executor,
    usable_cpus,
)


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert list_executors() == ["process", "serial", "thread"]

    def test_choices_lead_with_auto(self):
        assert executor_choices() == ("auto", "process", "serial", "thread")

    def test_unknown_backend_raises_with_hint(self):
        with pytest.raises(SpecError, match="procss.*did you mean.*process"):
            get_executor("procss")

    def test_auto_is_not_a_concrete_backend(self):
        with pytest.raises(SpecError):
            get_executor("auto")

    def test_duplicate_registration_rejected(self):
        backend = ExecutorBackend(
            name="serial", parallel=False, requires_pickling=False,
            summary="dup", make_pool=None,
        )
        with pytest.raises(SpecError, match="already registered"):
            register_executor(backend)

    def test_auto_name_is_reserved(self):
        backend = ExecutorBackend(
            name="auto", parallel=False, requires_pickling=False,
            summary="nope", make_pool=None,
        )
        with pytest.raises(SpecError, match="reserved"):
            register_executor(backend)

    def test_plugin_backend_registers_and_unregisters(self):
        backend = ExecutorBackend(
            name="plugin-test", parallel=False, requires_pickling=False,
            summary="test-only", make_pool=None,
        )
        register_executor(backend)
        try:
            assert resolve_executor("plugin-test") is backend
            assert "plugin-test" in executor_choices()
        finally:
            unregister_executor("plugin-test")
        assert "plugin-test" not in list_executors()


class TestResolution:
    def test_none_resolves_to_serial(self):
        assert resolve_executor(None).name == "serial"

    def test_instance_passes_through(self):
        backend = get_executor("thread")
        assert resolve_executor(backend) is backend

    def test_auto_matches_cpu_availability(self):
        expected = "process" if usable_cpus() > 1 else "serial"
        assert resolve_executor("auto").name == expected


class TestParallelMapper:
    @pytest.mark.parametrize("bad", [0, -1, True])
    def test_max_workers_must_be_positive_int(self, bad):
        with pytest.raises((TypeError, ValueError)):
            ParallelMapper("serial", max_workers=bad)

    def test_workers_never_exceed_jobs_or_cap(self):
        mapper = ParallelMapper("thread", max_workers=3)
        assert mapper.workers_for(0) == 1
        assert mapper.workers_for(1) == 1
        assert mapper.workers_for(2) == 2
        assert mapper.workers_for(10) == 3

    def test_serial_mapper_runs_inline(self):
        mapper = ParallelMapper("serial")
        assert mapper.is_serial
        assert mapper.workers_for(100) == 1
        # repro-lint: disable=picklable-jobs -- serial backend runs inline; the lambda never meets a pickle
        assert mapper.map(lambda x: x * x, range(5)) == [0, 1, 4, 9, 16]

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_results_come_back_in_input_order(self, executor):
        # Later jobs finish first under a parallel backend (reverse sleeps),
        # so preserved ordering is the gather discipline, not luck.
        mapper = ParallelMapper(executor, max_workers=4)
        jobs = [0.03, 0.02, 0.01, 0.0]
        assert mapper.map(_sleep_and_echo, jobs) == jobs

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_job_exceptions_propagate(self, executor):
        mapper = ParallelMapper(executor, max_workers=2)
        with pytest.raises(ValueError, match="boom 3"):
            mapper.map(_raise_on_three, [1, 2, 3, 4])

    def test_job_oserror_is_not_mistaken_for_pool_breakage(self):
        # A job raising OSError must propagate as-is, NOT trigger the
        # sandbox fallback's serial rerun of the whole job list.
        import threading

        calls = []
        last_job_started = threading.Event()

        def job(value):
            calls.append(value)
            if value == 3:
                last_job_started.set()
            if value == 2:
                # Hold the failure until every job has started, so none can
                # be cancelled by the gather unwinding early.
                last_job_started.wait(timeout=10)
                raise FileNotFoundError("gone")
            return value

        mapper = ParallelMapper("thread", max_workers=3)
        with pytest.raises(FileNotFoundError, match="gone"):
            # repro-lint: disable=picklable-jobs -- thread backend shares memory; the closure over `calls` is the point of the test
            mapper.map(job, [1, 2, 3])
        assert sorted(calls) == [1, 2, 3]  # each job ran exactly once

    def test_max_workers_alone_implies_auto(self):
        from repro.parallel import usable_cpus

        implied = ParallelMapper(None, max_workers=4)
        expected = "process" if usable_cpus() > 1 else "serial"
        assert implied.backend.name == expected
        # Without a worker count, None still means the serial loop.
        assert ParallelMapper(None).backend.name == "serial"

    def test_describe_reports_backend(self):
        info = ParallelMapper("thread", max_workers=2).describe()
        assert info["executor"] == "thread"
        assert info["max_workers"] == 2


class TestAsMapper:
    def test_passthrough_keeps_mapper(self):
        mapper = ParallelMapper("thread", max_workers=2)
        assert as_mapper(mapper) is mapper
        assert as_mapper(mapper, 2) is mapper

    def test_conflicting_max_workers_rejected(self):
        mapper = ParallelMapper("thread", max_workers=2)
        with pytest.raises(ValueError, match="max_workers"):
            as_mapper(mapper, 4)

    def test_name_builds_mapper(self):
        mapper = as_mapper("process", 3)
        assert mapper.backend.name == "process"
        assert mapper.max_workers == 3


def _sleep_and_echo(delay: float) -> float:
    time.sleep(delay)
    return delay


def _raise_on_three(value: int) -> int:
    if value == 3:
        raise ValueError(f"boom {value}")
    return value


class TestLastExecution:
    def test_records_the_plan_when_the_pool_works(self):
        mapper = ParallelMapper("thread", max_workers=2)
        mapper.map(_sleep_and_echo, [0.0, 0.0, 0.0])
        assert mapper.last_execution == ("thread", 2)

    def test_degenerate_single_job_runs_inline(self):
        mapper = ParallelMapper("process", max_workers=4)
        mapper.map(_sleep_and_echo, [0.0])
        assert mapper.last_execution == ("process", 1)

    def test_fallback_is_recorded_as_serial(self):
        def broken_pool(max_workers):
            raise OSError("no fork for you")

        backend = ExecutorBackend(
            name="broken-test", parallel=True, requires_pickling=False,
            summary="always fails", make_pool=broken_pool,
        )
        register_executor(backend)
        try:
            mapper = ParallelMapper("broken-test", max_workers=2)
            assert mapper.map(_sleep_and_echo, [0.0, 0.0]) == [0.0, 0.0]
            assert mapper.last_execution == ("serial", 1)
        finally:
            unregister_executor("broken-test")
