"""Unit tests for ParallelMapper.map_unordered and pool_scope."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.parallel import ExecutorBackend, ParallelMapper


def _square(x: int) -> int:
    return x * x


def _boom(x: int) -> int:
    if x == 3:
        raise ValueError("job 3 failed")
    return x


def _counting_thread_backend(counter: list[int]) -> ExecutorBackend:
    """A thread backend whose pool creations are counted (for scope tests)."""

    def make_pool(max_workers: int):
        counter.append(max_workers)
        return ThreadPoolExecutor(max_workers=max_workers)

    return ExecutorBackend(
        name="thread",
        parallel=True,
        requires_pickling=False,
        summary="counting test backend",
        make_pool=make_pool,
    )


class TestMapUnordered:
    def test_serial_yields_in_input_order(self):
        mapper = ParallelMapper("serial")
        pairs = list(mapper.map_unordered(_square, range(6)))
        assert pairs == [(i, i * i) for i in range(6)]
        assert mapper.last_execution == ("serial", 1)

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_pair_set_matches_ordered_map(self, executor):
        mapper = ParallelMapper(executor, max_workers=3)
        jobs = list(range(8))
        unordered = set(mapper.map_unordered(_square, jobs))
        ordered = set(enumerate(mapper.map(_square, jobs)))
        assert unordered == ordered
        assert len(unordered) == len(jobs)

    def test_parallel_records_last_execution(self):
        mapper = ParallelMapper("thread", max_workers=2)
        list(mapper.map_unordered(_square, range(4)))
        assert mapper.last_execution == ("thread", 2)

    def test_single_job_runs_inline(self):
        mapper = ParallelMapper("thread", max_workers=4)
        assert list(mapper.map_unordered(_square, [5])) == [(0, 25)]
        assert mapper.last_execution == ("thread", 1)

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_job_exceptions_propagate(self, executor):
        mapper = ParallelMapper(executor, max_workers=2)
        with pytest.raises(ValueError, match="job 3 failed"):
            list(mapper.map_unordered(_boom, range(6)))

    def test_abandoning_generator_releases_pool(self):
        counter: list[int] = []
        mapper = ParallelMapper(_counting_thread_backend(counter), max_workers=2)
        gen = mapper.map_unordered(_square, range(6))
        next(gen)
        gen.close()
        assert counter  # a pool was created...
        # ...and a fresh map works afterwards (nothing left broken).
        assert sorted(mapper.map_unordered(_square, range(3))) == [
            (0, 0), (1, 1), (2, 4),
        ]


class TestPoolScope:
    def test_scope_reuses_one_pool_across_maps(self):
        counter: list[int] = []
        mapper = ParallelMapper(_counting_thread_backend(counter), max_workers=2)
        with mapper.pool_scope():
            mapper.map(_square, range(4))
            list(mapper.map_unordered(_square, range(4)))
            mapper.map(_square, range(4))
        assert len(counter) == 1

    def test_without_scope_each_map_owns_a_pool(self):
        counter: list[int] = []
        mapper = ParallelMapper(_counting_thread_backend(counter), max_workers=2)
        mapper.map(_square, range(4))
        mapper.map(_square, range(4))
        assert len(counter) == 2

    def test_nested_scopes_share_the_outer_pool(self):
        counter: list[int] = []
        mapper = ParallelMapper(_counting_thread_backend(counter), max_workers=2)
        with mapper.pool_scope():
            mapper.map(_square, range(4))
            with mapper.pool_scope():
                mapper.map(_square, range(4))
            mapper.map(_square, range(4))
        assert len(counter) == 1

    def test_scope_exit_resets_state(self):
        counter: list[int] = []
        mapper = ParallelMapper(_counting_thread_backend(counter), max_workers=2)
        with mapper.pool_scope():
            mapper.map(_square, range(4))
        with mapper.pool_scope():
            mapper.map(_square, range(4))
        assert len(counter) == 2
        assert mapper._scope_pool is None
        assert mapper._scope_depth == 0

    def test_serial_mapper_passes_through(self):
        mapper = ParallelMapper("serial")
        with mapper.pool_scope() as scoped:
            assert scoped is mapper
            assert scoped.map(_square, range(3)) == [0, 1, 4]

    def test_results_identical_inside_and_outside_scope(self):
        mapper = ParallelMapper("thread", max_workers=2)
        outside = mapper.map(_square, range(10))
        with mapper.pool_scope():
            inside = mapper.map(_square, range(10))
        assert inside == outside == [i * i for i in range(10)]
