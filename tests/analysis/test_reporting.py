"""Unit tests for repro.analysis.reporting."""

from __future__ import annotations

from repro.analysis.experiments import ExperimentRow, ExperimentSuite
from repro.analysis.reporting import render_comparison, render_suite_markdown, write_report


def _suite() -> ExperimentSuite:
    suite = ExperimentSuite("table1-kcover")
    suite.add(ExperimentRow("table1-kcover", "sketch", "zipf", {"ratio": 0.97, "space": 900}))
    suite.add(ExperimentRow("table1-kcover", "saha", "zipf", {"ratio": 0.81, "space": 4000}))
    return suite


class TestRenderSuite:
    def test_contains_title_and_rows(self):
        text = render_suite_markdown(_suite(), title="Table 1 (k-cover)", notes=["note a"])
        assert "### Table 1 (k-cover)" in text
        assert "- note a" in text
        assert "sketch" in text and "saha" in text

    def test_column_selection(self):
        text = render_suite_markdown(_suite(), columns=["algorithm", "ratio"])
        assert "space" not in text.splitlines()[2]


class TestRenderComparison:
    def test_grouped_stats(self):
        text = render_comparison(_suite(), "ratio")
        assert "mean" in text
        assert "sketch" in text and "saha" in text


class TestWriteReport:
    def test_writes_file(self, tmp_path):
        path = write_report(
            tmp_path / "report.md", ["### a\n", "### b\n"], header="# Experiments"
        )
        content = path.read_text()
        assert content.startswith("# Experiments")
        assert "### a" in content and "### b" in content
