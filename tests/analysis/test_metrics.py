"""Unit tests for repro.analysis.metrics."""

from __future__ import annotations

import math

import pytest

from repro.analysis.metrics import (
    approximation_ratio,
    coverage_shortfall,
    kcover_reference_value,
    setcover_blowup,
    summarize,
)
from repro.offline.greedy import greedy_k_cover


class TestApproximationRatio:
    def test_basic(self):
        assert approximation_ratio(90, 100) == pytest.approx(0.9)

    def test_zero_reference(self):
        assert approximation_ratio(0, 0) == 1.0
        assert approximation_ratio(5, 0) == math.inf


class TestReferenceValue:
    def test_uses_planted_when_available(self, planted_kcover):
        assert kcover_reference_value(planted_kcover) == planted_kcover.planted_value

    def test_falls_back_to_greedy(self, planted_kcover):
        value = kcover_reference_value(planted_kcover, use_planted=False)
        assert value == greedy_k_cover(planted_kcover.graph, planted_kcover.k).coverage


class TestSetCoverBlowup:
    def test_basic(self):
        assert setcover_blowup(12, 6) == 2.0

    def test_zero_reference(self):
        assert setcover_blowup(0, 0) == 1.0
        assert setcover_blowup(3, 0) == math.inf


class TestCoverageShortfall:
    def test_met_target(self, tiny_graph):
        assert coverage_shortfall(tiny_graph, [0, 2], 0.9) == 0.0

    def test_missed_target(self, tiny_graph):
        shortfall = coverage_shortfall(tiny_graph, [3], 0.9)
        assert shortfall == pytest.approx(0.9 - 1 / 6)


class TestSummarize:
    def test_statistics(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == 2.5
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.stdev == pytest.approx(math.sqrt(1.25))

    def test_single_value(self):
        stats = summarize([7.0])
        assert stats.stdev == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_as_dict(self):
        assert set(summarize([1.0]).as_dict()) == {"count", "mean", "min", "max", "stdev"}
