"""Unit tests for repro.analysis.experiments."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import ExperimentRow, ExperimentSuite, run_streaming_comparison
from repro.baselines import SahaGetoorKCover
from repro.core import StreamingKCover
from repro.datasets import planted_kcover_instance


@pytest.fixture
def instance():
    return planted_kcover_instance(40, 600, k=3, seed=1)


class TestSuite:
    def test_add_and_filter(self):
        suite = ExperimentSuite("demo")
        suite.add(ExperimentRow("demo", "a", "i1", {"ratio": 0.9}))
        suite.add(ExperimentRow("demo", "b", "i1", {"ratio": 0.5}))
        assert len(suite) == 2
        assert suite.algorithms() == ["a", "b"]
        assert len(suite.filter(algorithm="a")) == 1

    def test_aggregate(self):
        suite = ExperimentSuite("demo")
        for ratio in (0.8, 1.0):
            suite.add(ExperimentRow("demo", "a", "i", {"ratio": ratio}))
        stats = suite.aggregate("ratio")["a"]
        assert stats["mean"] == pytest.approx(0.9)
        assert stats["count"] == 2

    def test_aggregate_skips_missing_metric(self):
        suite = ExperimentSuite("demo")
        suite.add(ExperimentRow("demo", "a", "i", {"other": 1}))
        assert suite.aggregate("ratio") == {}

    def test_to_table_infers_columns(self):
        suite = ExperimentSuite("demo")
        suite.add(ExperimentRow("demo", "a", "i", {"x": 1}))
        table = suite.to_table()
        assert "x" in table.columns
        assert len(table) == 1

    def test_row_as_dict(self):
        row = ExperimentRow("e", "algo", "inst", {"m": 2})
        flat = row.as_dict()
        assert flat == {"experiment": "e", "algorithm": "algo", "instance": "inst", "m": 2}


class TestRunStreamingComparison:
    def test_runs_both_arrival_models(self, instance):
        suite = ExperimentSuite("compare")
        rows = run_streaming_comparison(
            suite,
            instance,
            "planted",
            [
                ("sketch", lambda: StreamingKCover(instance.n, instance.m, k=3, seed=1)),
                ("saha-getoor", lambda: SahaGetoorKCover(k=3)),
            ],
            seed=1,
        )
        assert len(rows) == 2
        assert len(suite) == 2
        for row in rows:
            flat = row.as_dict()
            assert flat["coverage"] > 0
            assert 0 < flat["approx_ratio"] <= 1.5
            assert flat["n"] == instance.n

    def test_reference_value_override(self, instance):
        suite = ExperimentSuite("compare")
        rows = run_streaming_comparison(
            suite,
            instance,
            "planted",
            [("sketch", lambda: StreamingKCover(instance.n, instance.m, k=3, seed=2))],
            reference_value=instance.m,
            seed=2,
        )
        assert rows[0].metrics["reference_value"] == instance.m
