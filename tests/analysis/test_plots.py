"""Unit tests for repro.analysis.plots."""

from __future__ import annotations

import pytest

from repro.analysis.plots import bar_chart, labeled_sparkline, sparkline


class TestSparkline:
    def test_monotone_values(self):
        line = sparkline([1, 2, 3, 4])
        assert line[0] == "▁" and line[-1] == "█"
        # Monotone input gives (weakly) monotone glyph levels.
        levels = ["▁▂▃▄▅▆▇█".index(ch) for ch in line]
        assert levels == sorted(levels)

    def test_constant_values(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_length_matches_input(self):
        assert len(sparkline(range(17))) == 17

    def test_extremes_map_to_extremes(self):
        line = sparkline([0, 10, 5])
        assert line[0] == "▁" and line[1] == "█"


class TestLabeledSparkline:
    def test_contains_label_and_range(self):
        line = labeled_sparkline("space", [10, 20, 30])
        assert line.startswith("space")
        assert "[10 .. 30]" in line

    def test_empty_values(self):
        assert "(no data)" in labeled_sparkline("x", [])


class TestBarChart:
    def test_bars_scale_to_peak(self):
        chart = bar_chart([("a", 10), ("b", 5)], width=10)
        lines = chart.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_zero_values_allowed(self):
        chart = bar_chart([("a", 0.0), ("b", 0.0)])
        assert "a" in chart and "b" in chart

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bar_chart([("a", -1.0)])

    def test_empty(self):
        assert bar_chart([]) == ""
