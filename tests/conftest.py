"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coverage.bipartite import BipartiteGraph
from repro.datasets import planted_kcover_instance, planted_setcover_instance
from repro.utils.rng import spawn_rng


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic numpy generator for sampled checks."""
    return spawn_rng(12345, "test-suite-fixture")


@pytest.fixture
def tiny_graph() -> BipartiteGraph:
    """A 4-set, 6-element graph small enough to reason about by hand.

    sets: 0 -> {0,1,2}, 1 -> {2,3}, 2 -> {3,4,5}, 3 -> {5}
    """
    graph = BipartiteGraph(4)
    for set_id, members in enumerate([(0, 1, 2), (2, 3), (3, 4, 5), (5,)]):
        for element in members:
            graph.add_edge(set_id, element)
    return graph


@pytest.fixture
def figure1_graph() -> BipartiteGraph:
    """The style of example in the paper's Figure 1: 4 sets over 8 elements."""
    graph = BipartiteGraph(4)
    memberships = {
        0: [0, 1, 2, 3],
        1: [2, 3, 4, 5],
        2: [4, 5, 6, 7],
        3: [0, 3, 5, 7],
    }
    for set_id, members in memberships.items():
        for element in members:
            graph.add_edge(set_id, element)
    return graph


@pytest.fixture
def planted_kcover():
    """A moderate planted k-cover instance with a known optimum."""
    return planted_kcover_instance(60, 1200, k=4, planted_coverage=0.85, seed=7)


@pytest.fixture
def planted_setcover():
    """A moderate planted set cover instance with a known minimum cover."""
    return planted_setcover_instance(40, 600, cover_size=6, seed=11)
