"""Unit tests for the solver registry (repro.api.registry)."""

from __future__ import annotations

import pytest

from repro.api import (
    ProblemContext,
    get_solver,
    iter_solvers,
    list_solvers,
    register_solver,
    unregister_solver,
)
from repro.errors import SpecError, UnknownSolverError

#: Every solver family the tentpole requires to be registered out of the box.
EXPECTED_SOLVERS = {
    "kcover/sketch",
    "kcover/ensemble",
    "kcover/distributed",
    "kcover/saha-getoor",
    "kcover/sieve",
    "kcover/mcgregor-vu",
    "setcover/sketch",
    "setcover/demaine",
    "setcover/harpeled",
    "outliers/sketch",
    "outliers/emek-rosen",
    "offline/greedy",
    "offline/local-search",
}


class TestBuiltinRegistry:
    def test_all_families_registered(self):
        assert EXPECTED_SOLVERS <= set(list_solvers())

    def test_filter_by_problem(self):
        kcover = list_solvers(problem="k_cover")
        assert "kcover/sketch" in kcover
        assert "setcover/sketch" not in kcover
        assert "offline/greedy" in kcover  # solves all three problems

    def test_filter_by_kind(self):
        offline = list_solvers(kind="offline")
        assert offline == ["offline/greedy", "offline/local-search"]

    def test_iter_solvers_sorted_and_described(self):
        infos = iter_solvers()
        assert [i.name for i in infos] == sorted(i.name for i in infos)
        for info in infos:
            caps = info.capabilities()
            assert caps["name"] == info.name
            assert caps["kind"] in ("streaming", "offline", "distributed")

    def test_solver_info_metadata(self):
        info = get_solver("kcover/sketch")
        assert info.arrival == "edge"
        assert info.passes == "1"
        assert info.solves("k_cover")
        assert not info.solves("set_cover")
        assert info.family == "kcover"

    def test_unknown_solver_suggests_close_match(self):
        with pytest.raises(UnknownSolverError, match="kcover/sketch"):
            get_solver("kcover/sketchy")

    def test_unknown_solver_is_value_error(self):
        with pytest.raises(ValueError):
            get_solver("no/such-solver")


class TestRegistration:
    def test_register_and_unregister(self):
        @register_solver(
            "test/dummy",
            kind="streaming",
            problems=("k_cover",),
            arrival="edge",
            summary="test-only",
        )
        def _build(ctx: ProblemContext, **options):  # pragma: no cover - lookup only
            raise NotImplementedError

        try:
            assert "test/dummy" in list_solvers()
            assert get_solver("test/dummy").builder is _build
        finally:
            unregister_solver("test/dummy")
        assert "test/dummy" not in list_solvers()

    def test_duplicate_registration_rejected(self):
        with pytest.raises(SpecError):
            register_solver(
                "kcover/sketch", problems=("k_cover",), arrival="edge"
            )(lambda ctx: None)

    def test_streaming_solver_requires_arrival(self):
        with pytest.raises(SpecError):
            register_solver("test/no-arrival", problems=("k_cover",))(lambda ctx: None)

    def test_rejects_unknown_kind(self):
        with pytest.raises(SpecError):
            register_solver(
                "test/bad-kind", kind="quantum", problems=("k_cover",), arrival="edge"
            )(lambda ctx: None)

    def test_rejects_empty_problems(self):
        with pytest.raises(SpecError):
            register_solver("test/no-problems", problems=(), arrival="edge")(
                lambda ctx: None
            )


class TestProblemContext:
    def test_m_floor_matches_historical_call_sites(self, tiny_graph):
        ctx = ProblemContext(graph=tiny_graph)
        assert ctx.n == tiny_graph.num_sets
        assert ctx.m == tiny_graph.num_elements
        from repro.coverage.bipartite import BipartiteGraph

        empty = ProblemContext(graph=BipartiteGraph(1))
        assert empty.m == 1
