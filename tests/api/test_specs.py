"""Unit tests for the serializable run specs (repro.api.specs)."""

from __future__ import annotations

import json

import pytest

from repro.api import ProblemSpec, QuerySpec, RunSpec, SolverSpec, StreamSpec
from repro.errors import SpecError


class TestProblemSpec:
    def test_round_trip(self):
        spec = ProblemSpec(
            problem="k_cover",
            k=5,
            dataset="planted_kcover",
            dataset_args={"num_sets": 30, "num_elements": 300, "k": 5, "seed": 3},
        )
        data = spec.to_dict()
        json.dumps(data)  # JSON-serializable end to end
        assert ProblemSpec.from_dict(data) == spec

    def test_rejects_unknown_problem(self):
        with pytest.raises(SpecError):
            ProblemSpec(problem="vertex_cover")

    def test_rejects_bad_k(self):
        with pytest.raises(SpecError):
            ProblemSpec(k=0)
        with pytest.raises(SpecError):
            ProblemSpec(k=True)

    def test_rejects_bad_outlier_fraction(self):
        with pytest.raises(SpecError):
            ProblemSpec(problem="set_cover_outliers", outlier_fraction=1.5)

    def test_outliers_requires_fraction(self):
        with pytest.raises(SpecError):
            ProblemSpec(problem="set_cover_outliers")

    def test_rejects_unknown_keys(self):
        with pytest.raises(SpecError):
            ProblemSpec.from_dict({"problem": "k_cover", "budget": 3})

    def test_rejects_non_serializable_dataset_args(self):
        with pytest.raises(SpecError):
            ProblemSpec(dataset="zipf", dataset_args={"rng": object()})

    def test_for_instance(self, planted_kcover):
        spec = ProblemSpec.for_instance(planted_kcover)
        assert spec.problem == "k_cover"
        assert spec.k == planted_kcover.k

    def test_build_instance_from_registry(self):
        spec = ProblemSpec(
            problem="k_cover",
            k=3,
            dataset="planted_kcover",
            dataset_args={"num_sets": 20, "num_elements": 200, "k": 3, "seed": 1},
        )
        instance = spec.build_instance()
        assert instance.n == 20
        assert instance.k == 3

    def test_build_instance_without_dataset_fails(self):
        with pytest.raises(SpecError):
            ProblemSpec().build_instance()


class TestSolverSpec:
    def test_round_trip(self):
        spec = SolverSpec("kcover/sketch", {"epsilon": 0.2, "scale": 0.1})
        assert SolverSpec.from_dict(spec.to_dict()) == spec

    def test_rejects_empty_name(self):
        with pytest.raises(SpecError):
            SolverSpec("")

    def test_rejects_non_mapping_options(self):
        with pytest.raises(SpecError):
            SolverSpec("kcover/sketch", options=[1, 2])

    def test_rejects_non_serializable_option(self):
        with pytest.raises(SpecError):
            SolverSpec("kcover/sketch", {"hash_fn": lambda x: x})


class TestStreamSpec:
    def test_round_trip(self):
        spec = StreamSpec(order="set_grouped", seed=9, arrival="edge")
        assert StreamSpec.from_dict(spec.to_dict()) == spec

    def test_rejects_unknown_order(self):
        with pytest.raises(SpecError):
            StreamSpec(order="sorted")

    def test_rejects_bad_arrival(self):
        with pytest.raises(SpecError):
            StreamSpec(arrival="batch")

    def test_set_order_degrades_to_random(self):
        assert StreamSpec(order="adversarial_tail").set_order == "random"
        assert StreamSpec(order="given").set_order == "given"

    def test_batch_size_round_trip(self):
        spec = StreamSpec(order="random", seed=1, batch_size=256)
        assert spec.to_dict()["batch_size"] == 256
        assert StreamSpec.from_dict(spec.to_dict()) == spec
        assert StreamSpec().batch_size is None

    def test_rejects_bad_batch_size(self):
        for bad in (0, -4, True, 2.5):
            with pytest.raises(SpecError, match="batch_size"):
                StreamSpec(batch_size=bad)


class TestRunSpec:
    def _spec(self) -> RunSpec:
        return RunSpec(
            problem=ProblemSpec(problem="k_cover", k=4),
            solver=SolverSpec("kcover/sketch", {"scale": 0.1}),
            stream=StreamSpec(order="random", seed=2),
            max_passes=3,
            repetitions=2,
            label="run",
        )

    def test_round_trip(self):
        spec = self._spec()
        data = spec.to_dict()
        json.dumps(data)
        assert RunSpec.from_dict(data) == spec

    def test_json_round_trip(self):
        spec = self._spec()
        assert RunSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    def test_rejects_invalid_nested_field(self):
        data = self._spec().to_dict()
        data["problem"]["problem"] = "magic"
        with pytest.raises(SpecError):
            RunSpec.from_dict(data)

    def test_rejects_unknown_keys(self):
        data = self._spec().to_dict()
        data["budget"] = 10
        with pytest.raises(SpecError):
            RunSpec.from_dict(data)

    def test_rejects_bad_repetitions(self):
        with pytest.raises(SpecError):
            RunSpec(
                problem=ProblemSpec(), solver=SolverSpec("kcover/sketch"), repetitions=0
            )

    def test_rejects_bad_max_passes(self):
        with pytest.raises(SpecError):
            RunSpec(
                problem=ProblemSpec(), solver=SolverSpec("kcover/sketch"), max_passes=-1
            )

    def test_requires_spec_types(self):
        with pytest.raises(SpecError):
            RunSpec(problem={"problem": "k_cover"}, solver=SolverSpec("kcover/sketch"))


class TestQuerySpec:
    def test_round_trip(self):
        spec = QuerySpec(
            problem="k_cover",
            k=5,
            forbidden=(3, 1),
            options={"scale": 0.1},
            coverage_backend="bytes",
        )
        data = spec.to_dict()
        json.dumps(data)
        assert QuerySpec.from_dict(data) == spec

    def test_forbidden_normalized_sorted_deduped(self):
        spec = QuerySpec(problem="k_cover", k=2, forbidden=[5, 1, 5, 3])
        assert spec.forbidden == (1, 3, 5)

    def test_kcover_requires_k(self):
        with pytest.raises(SpecError, match="k"):
            QuerySpec(problem="k_cover")
        with pytest.raises(SpecError):
            QuerySpec(problem="k_cover", k=0)

    def test_outliers_requires_fraction(self):
        with pytest.raises(SpecError, match="outlier_fraction"):
            QuerySpec(problem="set_cover_outliers")
        with pytest.raises(SpecError):
            QuerySpec(problem="set_cover_outliers", outlier_fraction=1.5)

    def test_rejects_unknown_problem(self):
        with pytest.raises(SpecError):
            QuerySpec(problem="vertex_cover")

    def test_rejects_unknown_backend(self):
        with pytest.raises(SpecError, match="coverage_backend"):
            QuerySpec(problem="set_cover", coverage_backend="trits")

    def test_rejects_unknown_keys(self):
        with pytest.raises(SpecError):
            QuerySpec.from_dict({"problem": "set_cover", "budget": 3})

    def test_rejects_non_serializable_options(self):
        with pytest.raises(SpecError):
            QuerySpec(problem="set_cover", options={"fn": lambda x: x})


class TestCoverageBackendField:
    def test_round_trip(self):
        spec = ProblemSpec(problem="k_cover", k=3, coverage_backend="words")
        data = spec.to_dict()
        assert data["coverage_backend"] == "words"
        assert ProblemSpec.from_dict(data) == spec

    def test_defaults_to_none(self):
        assert ProblemSpec(problem="set_cover").coverage_backend is None
        assert ProblemSpec.from_dict({"problem": "set_cover"}).coverage_backend is None

    def test_accepts_every_registered_choice(self):
        from repro.coverage.kernels import kernel_backend_choices

        for choice in kernel_backend_choices():
            assert ProblemSpec(problem="k_cover", k=1, coverage_backend=choice)

    def test_rejects_unknown_backend(self):
        with pytest.raises(SpecError, match="coverage_backend"):
            ProblemSpec(problem="k_cover", k=1, coverage_backend="trits")


class TestExecutorFields:
    def test_round_trip(self):
        spec = ProblemSpec(problem="k_cover", k=3, executor="process", map_workers=4)
        data = spec.to_dict()
        assert data["executor"] == "process"
        assert data["map_workers"] == 4
        assert ProblemSpec.from_dict(data) == spec

    def test_defaults_to_none(self):
        spec = ProblemSpec(problem="set_cover")
        assert spec.executor is None and spec.map_workers is None

    def test_accepts_every_registered_choice(self):
        from repro.parallel import executor_choices

        for choice in executor_choices():
            assert ProblemSpec(problem="k_cover", k=1, executor=choice)

    def test_rejects_unknown_executor(self):
        with pytest.raises(SpecError, match="executor"):
            ProblemSpec(problem="k_cover", k=1, executor="gpu-cluster")

    @pytest.mark.parametrize("bad", [0, -2, True, 1.5, "four"])
    def test_rejects_bad_map_workers(self, bad):
        with pytest.raises(SpecError, match="map_workers"):
            ProblemSpec(problem="k_cover", k=1, map_workers=bad)
