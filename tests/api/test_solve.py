"""Integration tests: repro.solve() runs every registered solver family."""

from __future__ import annotations

import pytest

from repro.api import (
    ProblemSpec,
    RunSpec,
    Session,
    SolverSpec,
    StreamSpec,
    register_solver,
    run,
    solve,
    unregister_solver,
)
from repro.datasets import planted_kcover_instance, planted_setcover_instance
from repro.errors import SpaceBudgetExceeded, SpecError
from repro.streaming import SetStream, SpaceMeter, StreamingReport

KCOVER_SOLVERS = [
    ("kcover/sketch", {"scale": 0.2}),
    ("kcover/ensemble", {"scale": 0.2, "replicas": 2}),
    ("kcover/saha-getoor", {}),
    ("kcover/sieve", {"epsilon": 0.1}),
    ("kcover/mcgregor-vu", {"epsilon": 0.3}),
    ("kcover/distributed", {"scale": 0.3, "num_machines": 3}),
    ("offline/greedy", {}),
    ("offline/local-search", {}),
]

SETCOVER_SOLVERS = [
    ("setcover/sketch", {"epsilon": 0.5, "rounds": 2, "max_guesses": 12}),
    ("setcover/demaine", {"rounds": 2}),
    ("setcover/harpeled", {"passes": 3}),
    ("offline/greedy", {"allow_partial": False}),
]

OUTLIER_SOLVERS = [
    ("outliers/sketch", {"epsilon": 0.5, "max_guesses": 12}),
    ("outliers/emek-rosen", {"passes": 3}),
    ("offline/greedy", {}),
]


@pytest.fixture(scope="module")
def kcover_instance():
    return planted_kcover_instance(40, 800, k=4, planted_coverage=0.9, seed=13)


@pytest.fixture(scope="module")
def setcover_instance():
    return planted_setcover_instance(30, 400, cover_size=6, seed=17)


class TestEverySolverFamily:
    @pytest.mark.parametrize("solver,options", KCOVER_SOLVERS)
    def test_kcover_family(self, kcover_instance, solver, options):
        report = solve(kcover_instance, solver, options=options, seed=13)
        assert isinstance(report, StreamingReport)
        assert report.coverage > 0
        assert report.solution_size <= kcover_instance.k
        assert 0.0 < report.coverage_fraction <= 1.0

    @pytest.mark.parametrize("solver,options", SETCOVER_SOLVERS)
    def test_setcover_family(self, setcover_instance, solver, options):
        report = solve(setcover_instance, solver, options=options, seed=17)
        assert report.solution_size >= 1
        assert report.coverage_fraction > 0.5

    @pytest.mark.parametrize("solver,options", OUTLIER_SOLVERS)
    def test_outliers_family(self, setcover_instance, solver, options):
        report = solve(
            setcover_instance,
            solver,
            problem_kind="set_cover_outliers",
            outlier_fraction=0.1,
            options=options,
            seed=17,
        )
        assert report.solution_size >= 1
        assert report.coverage_fraction >= 0.5

    def test_offline_report_shape(self, kcover_instance):
        report = solve(kcover_instance, "offline/greedy")
        assert report.arrival_model == "offline"
        assert report.passes == 0
        assert report.space_peak == kcover_instance.num_edges
        assert "solve" in report.timings

    def test_distributed_report_shape(self, kcover_instance):
        report = solve(
            kcover_instance, "kcover/distributed", options={"num_machines": 3, "scale": 0.3}
        )
        assert report.arrival_model == "distributed"
        assert report.passes == 2  # two MapReduce rounds
        assert report.extra["num_machines"] == 3
        assert report.extra["communication_edges"] > 0

    def test_solver_spec_and_options_merge(self, kcover_instance):
        spec = SolverSpec("kcover/sketch", {"scale": 0.5})
        report = solve(kcover_instance, spec, options={"scale": 0.2}, seed=13)
        direct = solve(kcover_instance, "kcover/sketch", options={"scale": 0.2}, seed=13)
        assert report.solution == direct.solution
        assert report.space_peak == direct.space_peak


class TestSolveOnGraphAndSpecs:
    def test_bare_graph(self, tiny_graph):
        report = solve(tiny_graph, "kcover/sketch", k=2, options={"scale": 1.0}, seed=0)
        assert report.solution_size <= 2

    def test_problem_spec_with_dataset(self):
        spec = ProblemSpec(
            problem="k_cover",
            k=3,
            dataset="planted_kcover",
            dataset_args={"num_sets": 20, "num_elements": 200, "k": 3, "seed": 5},
        )
        report = solve(spec, "kcover/sketch", options={"scale": 0.5}, seed=5)
        assert report.solution_size <= 3

    def test_run_spec_repetitions_are_seeded(self):
        spec = RunSpec(
            problem=ProblemSpec(
                problem="k_cover",
                k=3,
                dataset="planted_kcover",
                dataset_args={"num_sets": 20, "num_elements": 200, "k": 3, "seed": 5},
            ),
            solver=SolverSpec("kcover/sketch", {"scale": 0.5}),
            stream=StreamSpec(order="random", seed=1),
            repetitions=2,
        )
        reports = run(spec)
        assert len(reports) == 2
        assert all(r.coverage > 0 for r in reports)

    def test_run_spec_round_trips_through_dict(self):
        spec = RunSpec(
            problem=ProblemSpec(
                problem="k_cover",
                k=3,
                dataset="planted_kcover",
                dataset_args={"num_sets": 20, "num_elements": 200, "k": 3, "seed": 5},
            ),
            solver=SolverSpec("kcover/sketch", {"scale": 0.5}),
        )
        replayed = run(RunSpec.from_dict(spec.to_dict()))[0]
        original = run(spec)[0]
        assert replayed.solution == original.solution

    def test_rejects_unknown_problem_type(self):
        with pytest.raises(SpecError):
            solve({"edges": []}, "kcover/sketch")

    def test_bare_graph_kcover_requires_k(self, tiny_graph):
        with pytest.raises(SpecError, match="requires k"):
            solve(tiny_graph, "kcover/sketch", problem_kind="k_cover")

    def test_rejects_unrecognized_stream_type(self, tiny_graph):
        with pytest.raises(SpecError, match="StreamSpec"):
            solve(tiny_graph, "kcover/sketch", k=2, stream={"order": "given"})

    def test_run_spec_label_recorded_on_reports(self):
        spec = RunSpec(
            problem=ProblemSpec(
                problem="k_cover",
                k=3,
                dataset="planted_kcover",
                dataset_args={"num_sets": 20, "num_elements": 200, "k": 3, "seed": 5},
            ),
            solver=SolverSpec("kcover/sketch", {"scale": 0.5}),
            label="my-run",
        )
        report = run(spec)[0]
        assert report.extra["label"] == "my-run"


class TestErrorPaths:
    def test_problem_solver_mismatch(self, kcover_instance):
        with pytest.raises(SpecError, match="setcover/sketch"):
            solve(kcover_instance, "setcover/sketch")

    def test_arrival_model_mismatch_surfaces_check_model(self, kcover_instance):
        # Forcing a set stream onto the edge-arrival sketch must trip the
        # runner's _check_model, not silently feed wrong events.
        with pytest.raises(TypeError, match="edge arrivals"):
            solve(
                kcover_instance,
                "kcover/sketch",
                options={"scale": 0.2},
                stream=StreamSpec(arrival="set"),
            )

    def test_explicit_stream_object_mismatch(self, kcover_instance):
        stream = SetStream.from_graph(kcover_instance.graph)
        with pytest.raises(TypeError):
            solve(kcover_instance, "kcover/sketch", options={"scale": 0.2}, stream=stream)

    def test_offline_solver_rejects_max_passes(self, kcover_instance):
        with pytest.raises(SpecError, match="max_passes"):
            solve(kcover_instance, "offline/greedy", max_passes=1)

    def test_offline_solver_rejects_batch_size(self, kcover_instance):
        with pytest.raises(SpecError, match="batch_size"):
            solve(kcover_instance, "offline/greedy", batch_size=64)

    def test_offline_solver_ignores_spec_batch_size(self, kcover_instance):
        # Mixed comparisons share one StreamSpec; offline solvers ignore it.
        report = solve(
            kcover_instance, "offline/greedy", stream=StreamSpec(seed=3, batch_size=64)
        )
        assert report.arrival_model == "offline"

    def test_batch_size_recorded_and_equivalent(self, kcover_instance):
        scalar = solve(kcover_instance, "kcover/sketch", stream=StreamSpec(seed=3))
        batched = solve(
            kcover_instance, "kcover/sketch", stream=StreamSpec(seed=3, batch_size=128)
        )
        assert batched.extra["batch_size"] == 128
        assert batched.solution == scalar.solution
        assert batched.space_peak == scalar.space_peak

    def test_explicit_batch_size_overrides_spec(self, kcover_instance):
        report = solve(
            kcover_instance,
            "kcover/sketch",
            stream=StreamSpec(seed=3, batch_size=8),
            batch_size=256,
        )
        assert report.extra["batch_size"] == 256

    def test_non_streaming_solver_rejects_stream_object(self, kcover_instance):
        stream = SetStream.from_graph(kcover_instance.graph)
        with pytest.raises(SpecError, match="stream object"):
            solve(kcover_instance, "offline/greedy", stream=stream)

    def test_non_streaming_solver_tolerates_shared_stream_spec(self, kcover_instance):
        # Mixed comparisons share one StreamSpec; offline solvers ignore it.
        report = solve(kcover_instance, "offline/greedy", stream=StreamSpec(seed=3))
        assert report.arrival_model == "offline"

    def test_outlier_solver_requires_fraction(self, setcover_instance):
        with pytest.raises(SpecError, match="outlier_fraction"):
            solve(setcover_instance, "outliers/sketch", problem_kind="set_cover_outliers")

    def test_space_budget_exceeded_propagates(self, kcover_instance):
        class HoardingAlgorithm:
            def __init__(self) -> None:
                self.name = "hoarder"
                self.arrival_model = "edge"
                self.space = SpaceMeter(unit="edges", budget=3)

            def start_pass(self, pass_index):
                pass

            def process(self, event):
                self.space.charge(1)

            def finish_pass(self, pass_index):
                pass

            def wants_another_pass(self):
                return False

            def result(self):
                return []

        @register_solver(
            "test/hoarder",
            kind="streaming",
            problems=("k_cover",),
            arrival="edge",
            summary="test-only: overruns its space budget",
        )
        def _build(ctx, **options):
            return HoardingAlgorithm()

        try:
            with pytest.raises(SpaceBudgetExceeded):
                solve(kcover_instance, "test/hoarder")
        finally:
            unregister_solver("test/hoarder")


class TestSession:
    def test_compare_aggregates_rows(self, kcover_instance):
        session = Session(kcover_instance, instance_name="planted", seed=13)
        reports = session.compare(
            [
                ("sketch", "kcover/sketch", {"scale": 0.2}),
                ("sieve", "kcover/sieve"),
                "offline/greedy",
            ]
        )
        assert len(reports) == 3
        assert len(session.suite) == 3
        assert session.suite.algorithms() == ["sketch", "sieve", "offline-greedy"]
        row = session.suite.rows[0].as_dict()
        assert row["approx_ratio"] > 0.5
        assert row["input_edges"] == kcover_instance.num_edges
        table = session.to_table(["algorithm", "coverage", "approx_ratio"])
        assert "sketch" in table.to_grid()

    def test_reference_value_defaults_to_planted(self, kcover_instance):
        session = Session(kcover_instance)
        assert session.reference_value == kcover_instance.planted_value

    def test_no_kcover_reference_on_setcover_sessions(self, setcover_instance):
        # A k-cover Opt_k reference is meaningless for set cover: rows must
        # not carry an approx_ratio unless the caller supplies a reference.
        session = Session(setcover_instance, seed=17)
        session.run("setcover/sketch", options={"rounds": 2, "max_guesses": 12})
        assert session.reference_value is None
        assert "approx_ratio" not in session.suite.rows[0].as_dict()

    def test_aggregate(self, kcover_instance):
        session = Session(kcover_instance, seed=13)
        session.run("kcover/sketch", options={"scale": 0.2})
        session.run("kcover/sketch", options={"scale": 0.2}, seed=14)
        stats = session.aggregate("coverage")
        assert "bateni-sketch-kcover" in stats

    def test_compare_rejects_malformed_entry(self, kcover_instance):
        session = Session(kcover_instance)
        with pytest.raises(SpecError):
            session.compare([("label", "kcover/sketch", {}, "extra")])

    def test_session_on_bare_graph(self, tiny_graph):
        session = Session(tiny_graph, k=2, problem_kind="k_cover")
        report = session.run("kcover/sketch", options={"scale": 1.0})
        assert report.solution_size <= 2
        assert session.suite.rows[0].as_dict()["n"] == tiny_graph.num_sets


class TestCoverageBackendPlumbing:
    """coverage_backend reaches the offline kernels through every entry."""

    def test_offline_greedy_on_kernel_matches_default(self, kcover_instance):
        default = solve(kcover_instance, "offline/greedy", seed=13)
        for backend in ("auto", "bytes", "words"):
            fast = solve(
                kcover_instance, "offline/greedy", seed=13, coverage_backend=backend
            )
            assert fast.coverage == default.coverage
            assert fast.extra["coverage_backend"] in ("bytes", "words")
        assert "coverage_backend" not in default.extra

    def test_offline_local_search_accepts_backend(self, kcover_instance):
        report = solve(
            kcover_instance,
            "offline/local-search",
            seed=13,
            options={"start_from_greedy": True},
            coverage_backend="words",
        )
        assert report.extra["coverage_backend"] == "words"
        assert report.coverage > 0

    def test_problem_spec_carries_backend(self):
        spec = ProblemSpec(
            problem="k_cover",
            k=4,
            dataset="planted_kcover",
            dataset_args={"num_sets": 25, "num_elements": 300, "k": 4, "seed": 3},
            coverage_backend="words",
        )
        report = solve(spec, "offline/greedy", seed=3)
        assert report.extra["coverage_backend"] == "words"
        # Round-trips through RunSpec execution too.
        reports = run(RunSpec(problem=spec, solver=SolverSpec("offline/greedy")))
        assert reports[0].extra["coverage_backend"] == "words"

    def test_explicit_backend_overrides_spec(self):
        spec = ProblemSpec(
            problem="k_cover",
            k=4,
            dataset="planted_kcover",
            dataset_args={"num_sets": 25, "num_elements": 300, "k": 4, "seed": 3},
            coverage_backend="bytes",
        )
        report = solve(spec, "offline/greedy", seed=3, coverage_backend="words")
        assert report.extra["coverage_backend"] == "words"

    def test_spec_rejects_unknown_backend(self):
        with pytest.raises(SpecError, match="coverage_backend"):
            ProblemSpec(problem="k_cover", k=4, coverage_backend="nibbles")

    def test_streaming_solvers_ignore_backend(self, kcover_instance):
        plain = solve(kcover_instance, "kcover/sketch", seed=13, options={"scale": 0.2})
        kernelled = solve(
            kcover_instance,
            "kcover/sketch",
            seed=13,
            options={"scale": 0.2},
            coverage_backend="words",
        )
        assert kernelled.solution == plain.solution

    def test_session_backend_matches_default_reference(self, kcover_instance):
        fast = Session(kcover_instance, seed=13, coverage_backend="words")
        slow = Session(kcover_instance, seed=13)
        assert fast.reference_value == slow.reference_value
        report = fast.run("offline/greedy")
        assert report.extra["coverage_backend"] == "words"

    def test_session_packs_the_kernel_once(self, kcover_instance, monkeypatch):
        import repro.coverage.bitset as bitset_module

        calls = []
        original_init = bitset_module.BitsetCoverage.__init__

        def counting_init(self, graph, *, backend="auto"):
            calls.append(backend)
            original_init(self, graph, backend=backend)

        monkeypatch.setattr(bitset_module.BitsetCoverage, "__init__", counting_init)
        session = Session(kcover_instance, seed=13, coverage_backend="words")
        session.run("offline/greedy")
        session.run("offline/local-search")
        session.run("offline/greedy", seed=14)
        assert len(calls) == 1  # one packing serves every offline run
        # A streaming run packs its own *sketch* (a different graph) once;
        # the session's problem-graph kernel is still not re-packed.
        session.run("kcover/sketch", options={"scale": 0.2})
        assert len(calls) == 2
        session.run("offline/greedy", seed=15)
        assert len(calls) == 2


class TestColumnarProblems:
    """solve() accepts columnar workloads and keeps them column-backed."""

    DIST_OPTIONS = {
        "num_machines": 3,
        "edge_budget": 300,
        "degree_cap": 15,
        "strategy": "row_range",
    }

    @pytest.fixture(scope="class")
    def columnar_dir(self, kcover_instance, tmp_path_factory):
        from repro.coverage.io import write_columnar

        path = tmp_path_factory.mktemp("workload") / "edges.cols"
        write_columnar(
            kcover_instance.graph.edges(), path, num_sets=kcover_instance.n
        )
        return path

    def test_distributed_columnar_matches_graph_run(self, kcover_instance, columnar_dir):
        """The column-backed map phase reports exactly the in-memory run."""
        from_graph = solve(
            kcover_instance.graph, "kcover/distributed", k=4, seed=13,
            options=self.DIST_OPTIONS,
        )
        for problem in (columnar_dir, str(columnar_dir)):
            from_columns = solve(
                problem, "kcover/distributed", k=4, seed=13, options=self.DIST_OPTIONS
            )
            assert from_columns.solution == from_graph.solution
            assert from_columns.coverage == from_graph.coverage
            assert (
                from_columns.extra["merged_threshold"]
                == from_graph.extra["merged_threshold"]
            )

    def test_distributed_report_carries_load_balance(self, kcover_instance):
        report = solve(
            kcover_instance, "kcover/distributed", seed=13, options=self.DIST_OPTIONS
        )
        assert (
            report.extra["machine_load_min"]
            <= report.extra["machine_load_mean"]
            <= report.extra["machine_load_max"]
        )
        assert 0.0 < report.extra["merged_threshold"] <= 1.0

    def test_distributed_coverage_backend_via_spec_kwarg(self, kcover_instance):
        plain = solve(
            kcover_instance, "kcover/distributed", seed=13, options=self.DIST_OPTIONS
        )
        kernelled = solve(
            kcover_instance, "kcover/distributed", seed=13,
            options=self.DIST_OPTIONS, coverage_backend="words",
        )
        assert kernelled.solution == plain.solution
        assert kernelled.coverage == plain.coverage

    def test_streaming_solver_on_columnar_problem(self, kcover_instance, columnar_dir):
        from_graph = solve(
            kcover_instance.graph, "kcover/sketch", k=4, seed=13,
            options={"scale": 0.2},
        )
        from_columns = solve(
            columnar_dir, "kcover/sketch", k=4, seed=13, options={"scale": 0.2}
        )
        assert from_columns.solution == from_graph.solution

    def test_non_columnar_path_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            solve(tmp_path / "missing", "kcover/sketch", k=2)


class TestStreamingKernelPostProcessing:
    """coverage_backend reaches the streaming family's offline phase."""

    @pytest.fixture(scope="class")
    def kcover_instance(self):
        from repro.datasets import planted_kcover_instance

        return planted_kcover_instance(40, 900, k=5, planted_coverage=0.85, seed=31)

    @pytest.mark.parametrize(
        "solver,kwargs",
        [
            ("kcover/sketch", {"options": {"scale": 0.3}}),
            ("kcover/ensemble", {"options": {"scale": 0.3, "replicas": 3}}),
            ("setcover/sketch", {"problem_kind": "set_cover",
                                 "options": {"rounds": 2, "max_guesses": 6},
                                 "max_passes": 40}),
            ("outliers/sketch", {"problem_kind": "set_cover_outliers",
                                 "outlier_fraction": 0.1,
                                 "options": {"max_guesses": 6}}),
        ],
    )
    def test_kernel_backed_result_matches_set_based(self, kcover_instance, solver, kwargs):
        from repro.api import StreamSpec

        stream = StreamSpec(order="random", seed=7)
        plain = solve(kcover_instance, solver, seed=7, stream=stream, **kwargs)
        kernelled = solve(
            kcover_instance, solver, seed=7, stream=stream,
            coverage_backend="words", **kwargs,
        )
        assert kernelled.solution == plain.solution
        assert kernelled.coverage == plain.coverage
        assert kernelled.space_peak == plain.space_peak

    def test_streaming_kcover_records_backend(self, kcover_instance):
        from repro.core.kcover import StreamingKCover

        algo = StreamingKCover(
            kcover_instance.n, kcover_instance.m, k=5, coverage_backend="words"
        )
        assert algo.describe()["coverage_backend"] == "words"

    def test_explicit_solver_bypasses_the_kernel(self, kcover_instance):
        from repro.core.kcover import StreamingKCover
        from repro.streaming.events import EdgeArrival

        calls = []
        algo = StreamingKCover(
            kcover_instance.n, kcover_instance.m, k=5,
            coverage_backend="words",
            solver=lambda graph, k: calls.append(k) or [0, 1],
        )
        for set_id, element in kcover_instance.graph.edges():
            algo.process(EdgeArrival(set_id, element))
        assert algo.result() == [0, 1]
        assert calls == [5]
