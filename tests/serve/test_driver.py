"""Unit tests for the concurrent query driver (repro.serve.driver)."""

from __future__ import annotations

import pytest

from repro.api import QuerySpec
from repro.datasets import planted_kcover_instance
from repro.errors import SpecError
from repro.serve import QueryEngine, drive_queries
from repro.serve.driver import LoadReport, percentile


@pytest.fixture(scope="module")
def engine():
    instance = planted_kcover_instance(40, 800, k=5, seed=17)
    return QueryEngine(instance.graph, seed=0, batch_size=256)


def _specs(count: int) -> list[QuerySpec]:
    return [
        QuerySpec(problem="k_cover", k=1 + (i % 4), options={"scale": 0.1})
        for i in range(count)
    ]


class TestPercentile:
    def test_nearest_rank(self):
        values = [0.1, 0.2, 0.3, 0.4, 0.5]
        assert percentile(values, 50) == 0.3
        assert percentile(values, 99) == 0.5
        assert percentile([0.7], 50) == 0.7

    def test_order_independent(self):
        assert percentile([0.5, 0.1, 0.3], 50) == 0.3

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestDriveQueries:
    def test_results_are_input_ordered_and_identical(self, engine):
        specs = _specs(12)
        sequential = [engine.query(spec) for spec in specs]
        load = drive_queries(engine, specs, clients=4, executor="thread")
        assert load.num_queries == 12
        assert [r.solution for r in load.reports] == [
            r.solution for r in sequential
        ]
        assert len(load.latencies) == 12
        assert all(latency >= 0.0 for latency in load.latencies)

    def test_accepts_dict_specs(self, engine):
        specs = [
            {"problem": "k_cover", "k": 2, "options": {"scale": 0.1}},
            QuerySpec(problem="k_cover", k=3, options={"scale": 0.1}),
        ]
        load = drive_queries(engine, specs, clients=2, executor="serial")
        assert load.num_queries == 2
        assert load.executor == "serial"

    def test_rejects_process_executors(self, engine):
        # A process pool would pickle private engine copies and benchmark
        # cold caches — the driver only accepts shared-memory executors.
        with pytest.raises(SpecError, match="thread"):
            drive_queries(engine, _specs(2), executor="process")

    def test_load_report_dict(self):
        report = LoadReport(
            clients=2,
            executor="thread",
            workers=2,
            latencies=[0.010, 0.020],
            reports=[],
            wall_seconds=0.5,
        )
        data = report.as_dict()
        assert data["clients"] == 2
        assert data["num_queries"] == 2
        assert data["p50_seconds"] == 0.010
        assert data["p99_seconds"] == 0.020
        assert data["qps"] == pytest.approx(4.0)

    def test_thread_load_records_execution(self, engine):
        load = drive_queries(engine, _specs(8), clients=8, executor="thread")
        assert load.clients == 8
        assert load.executor in ("thread", "serial")  # serial under sandbox
        assert load.workers >= 1
