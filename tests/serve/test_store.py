"""Unit tests for the LRU sketch store (repro.serve.store)."""

from __future__ import annotations

import threading

import pytest

from repro.serve import SketchKey, SketchStore


def _key(tag: str) -> SketchKey:
    return SketchKey(fingerprint="deadbeef", family="kcover", config=(tag,))


class TestSketchStore:
    def test_get_or_build_builds_once(self):
        store = SketchStore(capacity=4)
        calls = []

        def build():
            calls.append(1)
            return "sketch"

        entry, hit = store.get_or_build(_key("a"), build)
        assert (entry, hit) == ("sketch", False)
        entry, hit = store.get_or_build(_key("a"), build)
        assert (entry, hit) == ("sketch", True)
        assert len(calls) == 1

    def test_lru_evicts_least_recently_used(self):
        store = SketchStore(capacity=2)
        store.get_or_build(_key("a"), lambda: "A")
        store.get_or_build(_key("b"), lambda: "B")
        # Touch "a" so "b" becomes the eviction victim.
        store.get_or_build(_key("a"), lambda: "never")
        store.get_or_build(_key("c"), lambda: "C")
        assert _key("b") not in store.keys()
        assert set(store.keys()) == {_key("a"), _key("c")}

    def test_explicit_evict_and_clear(self):
        store = SketchStore(capacity=4)
        store.get_or_build(_key("a"), lambda: "A")
        store.get_or_build(_key("b"), lambda: "B")
        assert store.evict(_key("a")) is True
        assert store.evict(_key("a")) is False
        assert store.clear() == 1
        assert len(store) == 0

    def test_stats_counters(self):
        store = SketchStore(capacity=1)
        store.get_or_build(_key("a"), lambda: "A")
        store.get_or_build(_key("a"), lambda: "A")
        store.get_or_build(_key("b"), lambda: "B")  # evicts "a"
        stats = store.stats()
        assert stats["entries"] == 1
        assert stats["capacity"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 2
        assert stats["builds"] == 2
        assert stats["evictions"] == 1

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            SketchStore(capacity=0)

    def test_concurrent_gets_build_once(self):
        store = SketchStore(capacity=4)
        builds = []
        barrier = threading.Barrier(8)

        def build():
            builds.append(1)
            return "sketch"

        def worker():
            barrier.wait()
            entry, _ = store.get_or_build(_key("hot"), build)
            assert entry == "sketch"

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # The lock is held across lookup+build, so racing readers serialize
        # behind one build instead of duplicating it.
        assert len(builds) == 1
        assert store.stats()["hits"] == 7
