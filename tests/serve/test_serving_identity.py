"""Property tests: served answers are byte-identical to fresh ``solve()``.

The serving layer's whole contract is that the cache is invisible: for every
query shape — k sweeps, varying budgets, forbidden sets, every registered
kernel backend, and after eviction + re-admission — the report a
:class:`~repro.serve.QueryEngine` returns must match a from-scratch
``solve()`` with the engine's stream settings on everything except timings
and the serve markers.
"""

from __future__ import annotations

import pytest

from repro.api import QuerySpec, Session, StreamSpec, solve
from repro.coverage.kernels import kernel_backend_choices
from repro.datasets import planted_kcover_instance, planted_setcover_instance
from repro.errors import SpecError
from repro.serve import SERVE_EXTRA_KEYS, QueryEngine, SketchStore

#: Every registered kernel backend plus the set-based default path.
BACKENDS = (None,) + tuple(kernel_backend_choices())

SEED = 0
BATCH = 256
KCOVER_OPTIONS = {"scale": 0.1}


def _identity_key(report):
    """Everything the served-vs-fresh contract covers.

    Timings differ by construction; the serve markers are additions the
    engine documents; ``batch_size`` is recorded only when a drive is
    batched and batch-invariance is property-tested separately.
    """
    stripped = ("batch_size",) + SERVE_EXTRA_KEYS
    extra = {k: v for k, v in report.extra.items() if k not in stripped}
    return (
        report.algorithm,
        report.arrival_model,
        report.solution,
        report.coverage,
        report.coverage_fraction,
        report.solution_size,
        report.passes,
        report.space_peak,
        report.space_budget,
        report.stream_events,
        extra,
    )


@pytest.fixture(scope="module")
def kcover_instance():
    return planted_kcover_instance(50, 1200, k=6, seed=11)


@pytest.fixture(scope="module")
def setcover_instance():
    return planted_setcover_instance(30, 500, cover_size=6, seed=22)


def _fresh(instance, solver, *, batch_size=BATCH, **kwargs):
    return solve(
        instance.graph,
        solver,
        seed=SEED,
        stream=StreamSpec(order="random", seed=SEED, batch_size=batch_size),
        **kwargs,
    )


class TestKCoverServing:
    def test_every_query_shape_matches_fresh_solve(self, kcover_instance):
        engine = QueryEngine(kcover_instance.graph, seed=SEED, batch_size=BATCH)
        for k in (2, 5, 8):
            for forbidden in ((), (1, 3)):
                for backend in BACKENDS:
                    served = engine.query(
                        QuerySpec(
                            problem="k_cover",
                            k=k,
                            forbidden=forbidden,
                            options=dict(KCOVER_OPTIONS),
                            coverage_backend=backend,
                        )
                    )
                    fresh = _fresh(
                        kcover_instance,
                        "kcover/sketch",
                        problem_kind="k_cover",
                        k=k,
                        coverage_backend=backend,
                        options={**KCOVER_OPTIONS, "forbidden": list(forbidden)},
                    )
                    assert _identity_key(served) == _identity_key(fresh), (
                        k,
                        forbidden,
                        backend,
                    )
        # The k sweep shares nothing by accident: distinct k derive distinct
        # degree caps here, so each k built its own entry — but backends and
        # forbidden sets were answered from those three builds alone.
        assert engine.store.stats()["builds"] == 3

    def test_varying_budgets_key_separate_entries(self, kcover_instance):
        engine = QueryEngine(kcover_instance.graph, seed=SEED, batch_size=BATCH)
        first = engine.query(
            QuerySpec(problem="k_cover", k=4, options={"scale": 0.1})
        )
        second = engine.query(
            QuerySpec(problem="k_cover", k=4, options={"scale": 0.2})
        )
        assert engine.store.stats()["builds"] == 2
        for served, scale in ((first, 0.1), (second, 0.2)):
            fresh = _fresh(
                kcover_instance,
                "kcover/sketch",
                problem_kind="k_cover",
                k=4,
                options={"scale": scale},
            )
            assert _identity_key(served) == _identity_key(fresh)

    def test_eviction_and_readmission_are_invisible(self, kcover_instance):
        store = SketchStore(capacity=1)
        engine = QueryEngine(
            kcover_instance.graph, store=store, seed=SEED, batch_size=BATCH
        )
        spec = QuerySpec(problem="k_cover", k=5, options=dict(KCOVER_OPTIONS))
        first = engine.query(spec)
        # Displace the entry, then come back: the rebuild must be invisible.
        engine.query(QuerySpec(problem="k_cover", k=5, options={"scale": 0.3}))
        assert store.stats()["evictions"] >= 1
        readmitted = engine.query(spec)
        assert readmitted.extra["cache_hit"] is False
        assert _identity_key(readmitted) == _identity_key(first)

    def test_explicit_eviction_matches_lru(self, kcover_instance):
        engine = QueryEngine(kcover_instance.graph, seed=SEED, batch_size=BATCH)
        spec = QuerySpec(problem="k_cover", k=3, options=dict(KCOVER_OPTIONS))
        first = engine.query(spec)
        (key,) = engine.store.keys()
        assert engine.store.evict(key) is True
        rebuilt = engine.query(spec)
        assert rebuilt.extra["cache_hit"] is False
        assert _identity_key(rebuilt) == _identity_key(first)

    def test_reserved_options_are_rejected(self, kcover_instance):
        engine = QueryEngine(kcover_instance.graph, seed=SEED)
        with pytest.raises(SpecError):
            engine.query(
                QuerySpec(problem="k_cover", k=3, options={"forbidden": [1]})
            )
        with pytest.raises(SpecError):
            engine.query(
                QuerySpec(
                    problem="k_cover", k=3, options={"coverage_backend": "auto"}
                )
            )

    def test_dict_form_queries_are_accepted(self, kcover_instance):
        engine = QueryEngine(kcover_instance.graph, seed=SEED, batch_size=BATCH)
        spec = QuerySpec(problem="k_cover", k=4, options=dict(KCOVER_OPTIONS))
        from_spec = engine.query(spec)
        from_dict = engine.query(spec.to_dict())
        assert _identity_key(from_spec) == _identity_key(from_dict)


class TestSetCoverServing:
    OPTIONS = {"scale": 0.1, "rounds": 2, "max_guesses": 8}

    @pytest.mark.parametrize("forbidden", ((), (0, 2)))
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_served_matches_fresh(self, setcover_instance, forbidden, backend):
        engine = QueryEngine(setcover_instance.graph, seed=SEED, batch_size=BATCH)
        served = engine.query(
            QuerySpec(
                problem="set_cover",
                forbidden=forbidden,
                options=dict(self.OPTIONS),
                coverage_backend=backend,
            )
        )
        fresh = _fresh(
            setcover_instance,
            "setcover/sketch",
            problem_kind="set_cover",
            coverage_backend=backend,
            options={**self.OPTIONS, "forbidden": list(forbidden)},
        )
        assert _identity_key(served) == _identity_key(fresh)

    def test_repeat_queries_hit_the_memoized_run(self, setcover_instance):
        engine = QueryEngine(setcover_instance.graph, seed=SEED, batch_size=BATCH)
        spec = QuerySpec(problem="set_cover", options=dict(self.OPTIONS))
        first = engine.query(spec)
        second = engine.query(spec)
        assert second.extra["cache_hit"] is True
        assert _identity_key(first) == _identity_key(second)
        # Backend variation reuses the same run: selections are
        # backend-invariant (enforced above), so no rebuild happens.
        engine.query(
            QuerySpec(
                problem="set_cover",
                options=dict(self.OPTIONS),
                coverage_backend="words",
            )
        )
        assert engine.store.stats()["builds"] == 1


class TestOutliersServing:
    OPTIONS = {"scale": 0.1, "max_guesses": 8}
    FRACTION = 0.1

    @pytest.mark.parametrize("forbidden", ((), (0,)))
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_served_matches_fresh(self, setcover_instance, forbidden, backend):
        engine = QueryEngine(setcover_instance.graph, seed=SEED, batch_size=BATCH)
        served = engine.query(
            QuerySpec(
                problem="set_cover_outliers",
                outlier_fraction=self.FRACTION,
                forbidden=forbidden,
                options=dict(self.OPTIONS),
                coverage_backend=backend,
            )
        )
        fresh = _fresh(
            setcover_instance,
            "outliers/sketch",
            problem_kind="set_cover_outliers",
            outlier_fraction=self.FRACTION,
            coverage_backend=backend,
            options={**self.OPTIONS, "forbidden": list(forbidden)},
        )
        assert _identity_key(served) == _identity_key(fresh)

    def test_forbidden_variants_share_one_build(self, setcover_instance):
        engine = QueryEngine(setcover_instance.graph, seed=SEED, batch_size=BATCH)
        for forbidden in ((), (0,), (1, 2)):
            engine.query(
                QuerySpec(
                    problem="set_cover_outliers",
                    outlier_fraction=self.FRACTION,
                    forbidden=forbidden,
                    options=dict(self.OPTIONS),
                )
            )
        assert engine.store.stats()["builds"] == 1


class TestSessionServing:
    def test_session_query_matches_session_run(self, kcover_instance):
        run_session = Session(kcover_instance, k=5, seed=SEED)
        fresh = run_session.run("kcover/sketch", options=dict(KCOVER_OPTIONS))
        serve_session = Session(kcover_instance, k=5, seed=SEED)
        served = serve_session.query(
            QuerySpec(problem="k_cover", k=5, options=dict(KCOVER_OPTIONS)),
            label="served",
        )
        assert _identity_key(served) == _identity_key(fresh)
        assert len(serve_session.suite) == 1

    def test_shared_store_keeps_datasets_apart(self, kcover_instance):
        other = planted_kcover_instance(50, 1200, k=6, seed=12)
        store = SketchStore()
        first = QueryEngine(
            kcover_instance.graph, store=store, seed=SEED, batch_size=BATCH
        )
        second = QueryEngine(other.graph, store=store, seed=SEED, batch_size=BATCH)
        assert first.fingerprint != second.fingerprint
        spec = QuerySpec(problem="k_cover", k=4, options=dict(KCOVER_OPTIONS))
        first.query(spec)
        report = second.query(spec)
        # Same spec, different dataset: the second engine must not see the
        # first engine's entry.
        assert report.extra["cache_hit"] is False
        assert store.stats()["builds"] == 2
