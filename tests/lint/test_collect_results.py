"""``collect_results.py`` folds lint/obs artifacts into the trajectory."""

from __future__ import annotations

import json

from benchmarks.collect_results import (
    collect_results,
    summarize_chrome_trace,
    summarize_lint_report,
    summarize_metrics_snapshot,
)

from repro import obs
from repro.lint import lint_paths_with_stats, render_json


def make_report_json(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("import random\nx = random.random()\n", encoding="utf-8")
    report, stats = lint_paths_with_stats([target])
    return render_json(report, stats=stats)


def test_lint_report_is_flattened_to_scalars(tmp_path):
    payload = json.loads(make_report_json(tmp_path))
    summary = summarize_lint_report(payload)
    assert summary["findings"] == 1
    assert summary["files_scanned"] == 1
    assert summary["files_analyzed"] == 1
    assert summary["cache_hit_rate"] == 0.0
    assert summary["wall_seconds"] > 0
    assert summary["version"] == 1


def test_non_lint_payloads_pass_through_unchanged():
    for payload in ({"speedup": 2.0}, [1, 2], "text", {"report": 3}):
        assert summarize_lint_report(payload) == payload


def test_merge_picks_up_the_lint_report_by_stem(tmp_path):
    results = tmp_path / "results"
    results.mkdir()
    (results / "lint-report.json").write_text(
        make_report_json(tmp_path), encoding="utf-8"
    )
    (results / "other_bench.json").write_text('{"speedup": 3.5}', encoding="utf-8")
    (results / "broken.json").write_text("{ nope", encoding="utf-8")
    merged = collect_results(results)
    assert merged["artifact_names"] == ["lint-report", "other_bench"]
    assert merged["artifacts"]["lint-report"]["findings"] == 1
    assert merged["artifacts"]["other_bench"] == {"speedup": 3.5}
    assert len(merged["skipped"]) == 1 and "broken.json" in merged["skipped"][0]


def make_obs_artifacts(tmp_path):
    """Real obs exporter outputs: a small traced run + a metrics snapshot."""
    with obs.tracing() as tracer:
        with obs.span("solve"):
            with obs.span("map.machine", machine=0):
                pass
    trace_path = obs.write_trace(tmp_path / "run_trace.json", tracer.records())
    registry = obs.MetricsRegistry()
    registry.counter("serve.store.hits").inc(7)
    registry.gauge("distributed.resident_sketches").set(3)
    registry.histogram("parallel.execute_seconds").observe(0.5)
    metrics_path = obs.write_metrics(
        tmp_path / "run_metrics.json", registry.snapshot()
    )
    obs.disable()
    return trace_path, metrics_path


def test_chrome_trace_summarized_to_headline_shape(tmp_path):
    trace_path, _ = make_obs_artifacts(tmp_path)
    summary = summarize_chrome_trace(json.loads(trace_path.read_text()))
    assert summary["span_events"] == 2
    assert summary["lanes"] == ["main"]
    assert summary["span_names"] == ["map.machine", "solve"]
    assert summary["extent_micros"] > 0


def test_metrics_snapshot_flattened_to_headline_scalars(tmp_path):
    _, metrics_path = make_obs_artifacts(tmp_path)
    summary = summarize_metrics_snapshot(json.loads(metrics_path.read_text()))
    assert summary["serve.store.hits"] == 7
    assert summary["distributed.resident_sketches"] == 3
    assert summary["distributed.resident_sketches.max"] == 3
    assert summary["parallel.execute_seconds.count"] == 1
    assert summary["parallel.execute_seconds.mean"] == 0.5


def test_non_obs_payloads_pass_through_unchanged():
    for payload in ({"speedup": 2.0}, [1, 2], "text", {}, {"a": {"kind": "x"}}):
        assert summarize_chrome_trace(payload) == payload
        assert summarize_metrics_snapshot(payload) == payload


def test_merge_summarizes_obs_artifacts_by_content(tmp_path):
    results = tmp_path / "results"
    results.mkdir()
    trace_path, metrics_path = make_obs_artifacts(tmp_path)
    (results / "distributed_trace.json").write_text(trace_path.read_text())
    (results / "distributed_metrics.json").write_text(metrics_path.read_text())
    merged = collect_results(results)
    assert merged["artifacts"]["distributed_trace"]["span_events"] == 2
    assert merged["artifacts"]["distributed_metrics"]["serve.store.hits"] == 7
