"""``collect_results.py`` folds the lint report into the trajectory artifact."""

from __future__ import annotations

import json

from benchmarks.collect_results import collect_results, summarize_lint_report

from repro.lint import lint_paths_with_stats, render_json


def make_report_json(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("import random\nx = random.random()\n", encoding="utf-8")
    report, stats = lint_paths_with_stats([target])
    return render_json(report, stats=stats)


def test_lint_report_is_flattened_to_scalars(tmp_path):
    payload = json.loads(make_report_json(tmp_path))
    summary = summarize_lint_report(payload)
    assert summary["findings"] == 1
    assert summary["files_scanned"] == 1
    assert summary["files_analyzed"] == 1
    assert summary["cache_hit_rate"] == 0.0
    assert summary["wall_seconds"] > 0
    assert summary["version"] == 1


def test_non_lint_payloads_pass_through_unchanged():
    for payload in ({"speedup": 2.0}, [1, 2], "text", {"report": 3}):
        assert summarize_lint_report(payload) == payload


def test_merge_picks_up_the_lint_report_by_stem(tmp_path):
    results = tmp_path / "results"
    results.mkdir()
    (results / "lint-report.json").write_text(
        make_report_json(tmp_path), encoding="utf-8"
    )
    (results / "other_bench.json").write_text('{"speedup": 3.5}', encoding="utf-8")
    (results / "broken.json").write_text("{ nope", encoding="utf-8")
    merged = collect_results(results)
    assert merged["artifact_names"] == ["lint-report", "other_bench"]
    assert merged["artifacts"]["lint-report"]["findings"] == 1
    assert merged["artifacts"]["other_bench"] == {"speedup": 3.5}
    assert len(merged["skipped"]) == 1 and "broken.json" in merged["skipped"][0]
