"""The four cross-module rules, each against a seeded synthetic violation.

Every test builds a miniature project tree under ``tmp_path`` (the same
``src/<pkg>/...`` layout the real repo uses, so module names resolve), lints
it with exactly the project rule under test, and asserts the seeded drift is
caught — then that the repaired variant is clean, so the rules cannot pass
by firing on everything.
"""

from __future__ import annotations

import ast
import textwrap

import pytest

from repro.lint import lint_paths
from repro.lint.project import (
    CallArgRef,
    CallableResolution,
    DataclassFacts,
    FunctionFacts,
    ImportRecord,
    JobCallableRef,
    ModuleFacts,
    ProjectIndex,
    RegistrationRecord,
    collect_facts,
)


def write_tree(root, files):
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")


def lint_tree(tmp_path, monkeypatch, rule, *paths):
    monkeypatch.chdir(tmp_path)
    return lint_paths(list(paths) or ["src"], rules=[rule])


SPECS_MODULE = """\
    from dataclasses import dataclass


    @dataclass(frozen=True)
    class ProblemSpec:
        k: int = 1
        reduce: str | None = None
"""

FACADE_MODULE = """\
    def solve(problem, *, k=None, reduce=None):
        return (problem, k, reduce)


    class Session:
        def __init__(self, *, k=None, reduce=None):
            self.k = k
            self.reduce = reduce
"""

CLI_WITHOUT_REDUCE = """\
    import argparse


    def build_parser():
        parser = argparse.ArgumentParser()
        parser.add_argument("--k", type=int)
        return parser
"""

CLI_WITH_REDUCE = CLI_WITHOUT_REDUCE.replace(
    'parser.add_argument("--k", type=int)',
    'parser.add_argument("--k", type=int)\n'
    '        parser.add_argument("--reduce", default=None)',
)


class TestKnobDrift:
    def test_knob_missing_from_exactly_one_layer_is_caught(self, tmp_path, monkeypatch):
        write_tree(tmp_path, {
            "src/app/api/specs.py": SPECS_MODULE,
            "src/app/api/facade.py": FACADE_MODULE,
            "src/app/cli.py": CLI_WITHOUT_REDUCE,
        })
        report = lint_tree(tmp_path, monkeypatch, "knob-drift")
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.path == "src/app/api/specs.py"
        assert "ProblemSpec.reduce" in finding.message
        assert "CLI flag" in finding.message  # names the missing layer

    def test_threaded_knob_is_clean(self, tmp_path, monkeypatch):
        write_tree(tmp_path, {
            "src/app/api/specs.py": SPECS_MODULE,
            "src/app/api/facade.py": FACADE_MODULE,
            "src/app/cli.py": CLI_WITH_REDUCE,
        })
        report = lint_tree(tmp_path, monkeypatch, "knob-drift")
        assert report.clean

    def test_facade_knob_without_spec_field_is_caught(self, tmp_path, monkeypatch):
        write_tree(tmp_path, {
            "src/app/api/specs.py": SPECS_MODULE,
            "src/app/api/facade.py": FACADE_MODULE.replace(
                "def solve(problem, *, k=None, reduce=None):",
                "def solve(problem, *, k=None, reduce=None, turbo=False):",
            ),
            "src/app/cli.py": CLI_WITH_REDUCE,
        })
        report = lint_tree(tmp_path, monkeypatch, "knob-drift")
        assert [f.path for f in report.findings] == ["src/app/api/facade.py"]
        assert "'turbo'" in report.findings[0].message

    def test_tree_without_spec_layer_is_silent(self, tmp_path, monkeypatch):
        write_tree(tmp_path, {"src/app/util.py": "def helper():\n    return 1\n"})
        report = lint_tree(tmp_path, monkeypatch, "knob-drift")
        assert report.clean


FACTORY_MODULE = """\
    def make_handler():
        def inner(job):
            return job
        return inner


    handler = make_handler()
"""

RUNNER_MODULE = """\
    from app.work import handler


    def run(mapper, jobs):
        return mapper.map(handler, jobs)
"""


class TestTransitivePicklability:
    def test_closure_reached_through_helper_module_is_caught(self, tmp_path, monkeypatch):
        write_tree(tmp_path, {
            "src/app/work.py": FACTORY_MODULE,
            "src/app/runner.py": RUNNER_MODULE,
        })
        report = lint_tree(tmp_path, monkeypatch, "transitive-picklability")
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.path == "src/app/runner.py"
        assert "make_handler" in finding.message
        assert "nested function" in finding.message

    def test_module_level_def_through_same_chain_is_clean(self, tmp_path, monkeypatch):
        write_tree(tmp_path, {
            "src/app/work.py": "def handler(job):\n    return job\n",
            "src/app/runner.py": RUNNER_MODULE,
        })
        report = lint_tree(tmp_path, monkeypatch, "transitive-picklability")
        assert report.clean

    def test_module_level_lambda_alias_is_caught(self, tmp_path, monkeypatch):
        write_tree(tmp_path, {
            "src/app/work.py": "handler = lambda job: job\n",
            "src/app/runner.py": RUNNER_MODULE,
        })
        report = lint_tree(tmp_path, monkeypatch, "transitive-picklability")
        assert len(report.findings) == 1
        assert "lambda" in report.findings[0].message

    def test_lambda_into_job_dataclass_field_is_caught(self, tmp_path, monkeypatch):
        write_tree(tmp_path, {
            "src/app/jobs.py": """\
                from dataclasses import dataclass


                @dataclass(frozen=True)
                class ShardJob:
                    path: str


                def build():
                    return ShardJob(path=lambda: "nope")
            """,
        })
        report = lint_tree(tmp_path, monkeypatch, "transitive-picklability")
        assert len(report.findings) == 1
        assert "ShardJob" in report.findings[0].message


README_WITH_TABLE = """\
    # demo

    | solver | what it is |
    | --- | --- |
    | `alpha/one` | the first |
"""

SOLVER_MODULE = """\
    def register_solver(name, cls):
        return cls


    register_solver("alpha/one", object)
    register_solver("alpha/two", object)
"""


class TestRegistryDocsSync:
    def test_registered_name_absent_from_readme_is_caught(self, tmp_path, monkeypatch):
        write_tree(tmp_path, {
            "src/app/solvers.py": SOLVER_MODULE,
            "README.md": README_WITH_TABLE,
        })
        report = lint_tree(tmp_path, monkeypatch, "registry-docs-sync")
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.path == "src/app/solvers.py"
        assert "'alpha/two'" in finding.message

    def test_documented_name_without_registration_is_caught(self, tmp_path, monkeypatch):
        write_tree(tmp_path, {
            "src/app/solvers.py": SOLVER_MODULE.replace(
                'register_solver("alpha/two", object)\n', ""
            ),
            "README.md": README_WITH_TABLE + "| `alpha/ghost` | vanished |\n",
        })
        report = lint_tree(tmp_path, monkeypatch, "registry-docs-sync")
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.path.endswith("README.md")
        assert "'alpha/ghost'" in finding.message
        assert finding.line == 6  # the ghost row's line in README.md

    def test_synced_table_is_clean(self, tmp_path, monkeypatch):
        write_tree(tmp_path, {
            "src/app/solvers.py": SOLVER_MODULE,
            "README.md": README_WITH_TABLE + "| `alpha/two` | the second |\n",
        })
        report = lint_tree(tmp_path, monkeypatch, "registry-docs-sync")
        assert report.clean

    def test_registrations_without_any_table_are_caught(self, tmp_path, monkeypatch):
        write_tree(tmp_path, {
            "src/app/solvers.py": SOLVER_MODULE,
            "README.md": "# demo\n\nno tables here\n",
        })
        report = lint_tree(tmp_path, monkeypatch, "registry-docs-sync")
        assert len(report.findings) == 1
        assert "no solver table" in report.findings[0].message

    def test_test_tree_registrations_do_not_count(self, tmp_path, monkeypatch):
        write_tree(tmp_path, {
            "tests/test_fixture.py": SOLVER_MODULE,  # not under src/
            "src/app/core.py": "def noop():\n    return None\n",
            "README.md": "# demo\n",
        })
        monkeypatch.chdir(tmp_path)
        report = lint_paths(["src", "tests"], rules=["registry-docs-sync"])
        assert report.clean


class TestExportHygiene:
    def test_phantom_dunder_all_export_is_caught(self, tmp_path, monkeypatch):
        write_tree(tmp_path, {
            "src/app/mod.py": """\
                __all__ = ["real", "phantom"]


                def real():
                    return 1
            """,
        })
        report = lint_tree(tmp_path, monkeypatch, "export-hygiene")
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert "'phantom'" in finding.message
        assert finding.line == 1

    def test_broken_reexport_is_caught(self, tmp_path, monkeypatch):
        write_tree(tmp_path, {
            "src/app/__init__.py": "from app.mod import missing\n",
            "src/app/mod.py": "def present():\n    return 1\n",
        })
        report = lint_tree(tmp_path, monkeypatch, "export-hygiene")
        assert len(report.findings) == 1
        assert "app.mod import missing" in report.findings[0].message

    def test_submodule_import_is_not_a_broken_reexport(self, tmp_path, monkeypatch):
        write_tree(tmp_path, {
            "src/app/__init__.py": "from app import mod\n",
            "src/app/mod.py": "def present():\n    return 1\n",
        })
        report = lint_tree(tmp_path, monkeypatch, "export-hygiene")
        assert report.clean

    def test_dead_export_needs_non_src_scope_and_is_caught(self, tmp_path, monkeypatch):
        files = {
            "src/app/mod.py": """\
                __all__ = ["used", "unused"]


                def used():
                    return 1


                def unused():
                    return 2
            """,
            "tests/test_mod.py": """\
                from app.mod import used


                def test_used():
                    assert used() == 1
            """,
        }
        write_tree(tmp_path, files)
        monkeypatch.chdir(tmp_path)
        # src alone: "imported nowhere" is undecidable, the check stays off.
        assert lint_paths(["src"], rules=["export-hygiene"]).clean
        report = lint_paths(["src", "tests"], rules=["export-hygiene"])
        assert len(report.findings) == 1
        assert "'unused'" in report.findings[0].message

    def test_package_submodule_listing_is_not_dead(self, tmp_path, monkeypatch):
        write_tree(tmp_path, {
            "src/app/__init__.py": "from app import mod\n\n__all__ = [\"mod\"]\n",
            "src/app/mod.py": "def present():\n    return 1\n",
            "tests/test_nothing.py": "def test_nothing():\n    assert True\n",
        })
        monkeypatch.chdir(tmp_path)
        report = lint_paths(["src", "tests"], rules=["export-hygiene"])
        assert report.clean


class TestProjectIndexFacts:
    """The facts layer itself: what one parse distills for the project rules."""

    def test_collect_facts_distills_the_module(self):
        source = textwrap.dedent("""\
            from dataclasses import dataclass
            from app.work import handler as h

            def register_solver(name, cls):
                return cls

            @dataclass(frozen=True)
            class ShardJob:
                path: str

            def make():
                def inner():
                    return 1
                return inner

            register_solver("alpha/one", ShardJob)

            def run(mapper, jobs):
                return mapper.map(h, jobs)
        """)
        facts = collect_facts(ast.parse(source), "src/app/demo.py")
        assert facts.module == "app.demo"
        assert ImportRecord(module="app.work", name="handler", alias="h", line=2) in facts.imports
        assert isinstance(facts.functions["make"], FunctionFacts)
        assert facts.functions["make"].returns_nested
        assert facts.dataclasses["ShardJob"] == DataclassFacts(
            name="ShardJob", line=8, fields=("path",), field_lines={"path": 9}
        )
        assert RegistrationRecord(kind="solver", name="alpha/one", line=16, col=0) in facts.registrations
        assert any(
            isinstance(ref, CallArgRef) and ref.target == "h"
            for ref in facts.mapper_calls
        )
        roundtrip = ModuleFacts.from_dict(facts.to_dict())
        assert roundtrip == facts

    def test_resolver_classifies_across_modules(self):
        work = collect_facts(
            ast.parse("handler = lambda job: job\n"), "src/app/work.py"
        )
        runner = collect_facts(
            ast.parse("from app.work import handler\n"), "src/app/runner.py"
        )
        index = ProjectIndex([work, runner])
        resolution = index.resolve_callable(runner, "handler")
        assert isinstance(resolution, CallableResolution)
        assert resolution.is_violation
        assert "lambda" in resolution.detail

    def test_job_refs_round_trip(self):
        source = textwrap.dedent("""\
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class PackJob:
                path: str

            job = PackJob(path=lambda: "x")
        """)
        facts = collect_facts(ast.parse(source), "src/app/jobs.py")
        lambdas = [ref for ref in facts.job_refs if ref.is_lambda]
        assert lambdas and isinstance(lambdas[0], JobCallableRef)
        assert JobCallableRef.from_dict(lambdas[0].to_dict()) == lambdas[0]

    def test_dependents_follow_reverse_imports(self):
        a = collect_facts(ast.parse("def alpha():\n    return 1\n"), "src/app/a.py")
        b = collect_facts(ast.parse("from app.a import alpha\n"), "src/app/b.py")
        c = collect_facts(ast.parse("from app.b import alpha\n"), "src/app/c.py")
        index = ProjectIndex([a, b, c])
        assert index.dependents_of({"src/app/a.py"}) == {"src/app/b.py", "src/app/c.py"}
        assert index.imported_paths("src/app/b.py") == ("src/app/a.py",)


@pytest.mark.parametrize("rule", [
    "knob-drift", "transitive-picklability", "registry-docs-sync", "export-hygiene",
])
def test_project_rules_skip_per_file_runs(rule):
    # lint_source has no whole-tree index; project rules must not crash it.
    from repro.lint import lint_source

    findings, suppressed = lint_source("x = 1\n", rules=[rule])
    assert findings == [] and suppressed == 0
