"""Engine-level tests: suppression parsing, file collection, rule registry."""

from __future__ import annotations

import pytest

from repro.errors import SpecError
from repro.lint import (
    Rule,
    RuleMeta,
    collect_files,
    get_rule,
    lint_paths,
    lint_source,
    list_rules,
    register_rule,
    unregister_rule,
)
from repro.lint.engine import parse_suppressions

RNG_VIOLATION = "import numpy as np\nrng = np.random.default_rng()\n"


class TestParseSuppressions:
    def test_trailing_comment_with_justification(self):
        lines = ["x = f()  # repro-lint: disable=no-raw-rng -- fixture only"]
        parsed = parse_suppressions(lines)
        assert set(parsed) == {1}
        suppression = parsed[1]
        assert suppression.rules == frozenset({"no-raw-rng"})
        assert suppression.justification == "fixture only"
        assert not suppression.standalone

    def test_standalone_comment_detected(self):
        parsed = parse_suppressions(["    # repro-lint: disable=no-raw-rng -- why"])
        assert parsed[1].standalone

    def test_comma_separated_rule_list(self):
        parsed = parse_suppressions(
            ["# repro-lint: disable=no-raw-rng, hot-path-hygiene -- both hold"]
        )
        assert parsed[1].rules == frozenset({"no-raw-rng", "hot-path-hygiene"})

    def test_missing_justification_is_none(self):
        # Assembled at runtime so this file's own source stays hygiene-clean.
        line = "x = 1  # repro-lint" + ": disable=no-raw-rng"
        parsed = parse_suppressions([line])
        assert parsed[1].justification is None

    def test_unrelated_comments_ignored(self):
        assert parse_suppressions(["x = 1  # plain comment", "y = 2"]) == {}


class TestSuppressionPlacement:
    def test_standalone_comment_covers_next_line(self):
        source = (
            "import numpy as np\n"
            "# repro-lint: disable=no-raw-rng -- fixture stream\n"
            "rng = np.random.default_rng()\n"
        )
        findings, suppressed = lint_source(source, rules=["no-raw-rng"])
        assert findings == []
        assert suppressed == 1

    def test_trailing_comment_does_not_cover_next_line(self):
        source = (
            "import numpy as np\n"
            "x = 1  # repro-lint: disable=no-raw-rng -- wrong line\n"
            "rng = np.random.default_rng()\n"
        )
        findings, _ = lint_source(source, rules=["no-raw-rng"])
        assert [f.rule for f in findings] == ["no-raw-rng"]

    def test_suppression_only_covers_named_rules(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng()  # repro-lint: disable=hot-path-hygiene -- wrong rule\n"
        )
        findings, suppressed = lint_source(source, rules=["no-raw-rng"])
        assert [f.rule for f in findings] == ["no-raw-rng"]
        assert suppressed == 0

    def test_disable_all_covers_any_suppressable_rule(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng()  # repro-lint: disable=all -- scratch script\n"
        )
        findings, suppressed = lint_source(source, rules=["no-raw-rng"])
        assert findings == []
        assert suppressed == 1


class TestLintSource:
    def test_syntax_error_becomes_a_finding(self):
        findings, suppressed = lint_source("def broken(:\n", "bad.py")
        assert len(findings) == 1
        assert findings[0].rule == "syntax-error"
        assert findings[0].path == "bad.py"
        assert suppressed == 0

    def test_findings_sorted_by_location(self):
        source = (
            "import random\n"
            "import numpy as np\n"
            "def f():\n"
            "    return np.random.default_rng()\n"
        )
        findings, _ = lint_source(source, rules=["no-raw-rng"])
        assert [f.line for f in findings] == sorted(f.line for f in findings)

    def test_unknown_rule_selection_raises(self):
        with pytest.raises(SpecError, match="no-raw-rgn"):
            lint_source("x = 1\n", rules=["no-raw-rgn"])

    def test_empty_rule_selection_raises(self):
        with pytest.raises(SpecError, match="no lint rules"):
            lint_source("x = 1\n", rules=[])


class TestCollectFiles:
    def test_directories_expand_sorted_and_deduplicated(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1\n")
        (tmp_path / "a.py").write_text("x = 1\n")
        sub = tmp_path / "sub"
        sub.mkdir()
        (sub / "c.py").write_text("x = 1\n")
        (tmp_path / "notes.txt").write_text("not python\n")
        files = collect_files([tmp_path, tmp_path / "a.py"])
        assert [f.name for f in files] == ["a.py", "b.py", "c.py"]

    def test_explicit_non_python_file_rejected(self, tmp_path):
        target = tmp_path / "notes.txt"
        target.write_text("hello\n")
        with pytest.raises(SpecError, match="not a Python file"):
            collect_files([target])

    def test_missing_path_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            collect_files([tmp_path / "nowhere"])

    def test_overlapping_arguments_yield_each_file_exactly_once(self, tmp_path):
        # Regression: a nested dir named alongside its parent (or a file
        # alongside a dir containing it) must not double-lint anything.
        sub = tmp_path / "pkg" / "sub"
        sub.mkdir(parents=True)
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        (sub / "b.py").write_text("x = 1\n")
        files = collect_files(
            [tmp_path / "pkg", sub, sub / "b.py", tmp_path / "pkg" / "a.py"]
        )
        assert [f.name for f in files] == ["a.py", "b.py"]
        assert len(files) == len(set(files))

    def test_argument_order_does_not_change_the_output(self, tmp_path):
        (tmp_path / "z.py").write_text("x = 1\n")
        nested = tmp_path / "deep"
        nested.mkdir()
        (nested / "a.py").write_text("x = 1\n")
        forward = collect_files([tmp_path / "z.py", nested])
        backward = collect_files([nested, tmp_path / "z.py"])
        assert forward == backward


class TestLintPaths:
    def test_report_counts_and_determinism(self, tmp_path):
        (tmp_path / "dirty.py").write_text(RNG_VIOLATION)
        (tmp_path / "clean.py").write_text("x = 1\n")
        first = lint_paths([tmp_path])
        second = lint_paths([tmp_path])
        assert first == second
        assert first.files_scanned == 2
        assert not first.clean
        assert first.exit_code() == 1
        assert first.by_rule() == {"no-raw-rng": 1}
        assert first.rules == tuple(list_rules())

    def test_filtered_run_records_its_rule_subset(self, tmp_path):
        (tmp_path / "dirty.py").write_text(RNG_VIOLATION)
        report = lint_paths([tmp_path], rules=["no-silent-except"])
        assert report.clean
        assert report.rules == ("no-silent-except",)


class TestRuleRegistry:
    def test_rules_register_like_every_other_registry(self):
        class _ProbeRule(Rule):
            meta = RuleMeta(
                name="probe-test-rule",
                summary="test-only probe",
                rationale="registry smoke test",
                example_bad="bad",
                example_good="good",
            )

        register_rule(_ProbeRule)
        try:
            assert get_rule("probe-test-rule") is _ProbeRule
            assert "probe-test-rule" in list_rules()
        finally:
            unregister_rule("probe-test-rule")
        assert "probe-test-rule" not in list_rules()

    def test_the_name_all_is_reserved(self):
        class _AllRule(Rule):
            meta = RuleMeta(
                name="all",
                summary="nope",
                rationale="reserved for blanket suppressions",
                example_bad="bad",
                example_good="good",
            )

        with pytest.raises(SpecError, match="reserved"):
            register_rule(_AllRule)

    def test_rule_without_meta_rejected(self):
        class _Bare(Rule):
            pass

        with pytest.raises(SpecError, match="meta"):
            register_rule(_Bare)

    def test_unknown_rule_lookup_has_did_you_mean_hint(self):
        with pytest.raises(SpecError, match="did you mean.*no-raw-rng"):
            get_rule("no-raw-rgn")
