"""Parallel lint must be invisible: same report, byte for byte, as serial.

The engine fans the per-file parse+walk over ``ParallelMapper``; nothing
about backend choice, worker count or completion order may leak into the
report.  ``render_json(report)`` is the canonical byte form, so equality of
those strings is the whole contract.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.lint import lint_paths_with_stats, render_json
from repro.lint.engine import FileLintJob, execute_lint_job

REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro" / "lint"

#: Snippet pool for the property test: clean code, per-file violations,
#: suppressed violations, and a syntax error — every per-file outcome.
SNIPPETS = (
    "def ok():\n    return 1\n",
    "import random\n\n\ndef roll():\n    return random.random()\n",
    "import random\n# repro-lint: disable=no-raw-rng -- test fixture\nr = random.random()\n",
    "def broken(:\n",
    "try:\n    x = 1\nexcept Exception:\n    pass\n",
    "__all__ = ['ghost']\n",
    "from app.elsewhere import something\n",
)


def lint_both_ways(paths, executor, **kwargs):
    serial_report, serial_stats = lint_paths_with_stats(paths, executor=None)
    parallel_report, parallel_stats = lint_paths_with_stats(
        paths, executor=executor, **kwargs
    )
    return serial_report, serial_stats, parallel_report, parallel_stats


def test_thread_backend_is_byte_identical_on_the_real_tree():
    serial_report, _, parallel_report, parallel_stats = lint_both_ways(
        [REPO_SRC], "thread", max_workers=4
    )
    assert parallel_stats.executor == "thread"
    assert parallel_stats.workers > 1
    assert render_json(parallel_report) == render_json(serial_report)


def test_process_backend_is_byte_identical_on_the_real_tree():
    # Sandboxed environments can force a serial fallback; the contract —
    # identical bytes — holds either way, so no skip.
    serial_report, _, parallel_report, parallel_stats = lint_both_ways(
        [REPO_SRC], "process", max_workers=2
    )
    assert parallel_stats.executor in ("process", "serial")
    assert render_json(parallel_report) == render_json(serial_report)


def test_jobs_pickle_and_execute_standalone():
    import pickle

    source = "import random\nx = random.random()\n"
    job = FileLintJob(
        path="src/app/mod.py",
        display_path="src/app/mod.py",
        source=source,
        digest="unused",
        rule_names=("no-raw-rng",),
    )
    clone = pickle.loads(pickle.dumps(job))
    analysis = execute_lint_job(clone)
    assert [finding.rule for finding in analysis.findings] == ["no-raw-rng"]
    assert analysis.facts.module == "app.mod"


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    picks=st.lists(
        st.sampled_from(range(len(SNIPPETS))), min_size=1, max_size=8
    )
)
def test_parallel_report_equals_serial_for_arbitrary_trees(tmp_path, picks):
    # Distinct per-example directories: hypothesis reuses tmp_path across
    # examples, and the engine must not care about leftovers from others.
    root = tmp_path / ("case-" + "-".join(map(str, picks)))
    for index, pick in enumerate(picks):
        target = root / "src" / "app" / f"mod_{index}.py"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(SNIPPETS[pick]), encoding="utf-8")
    serial_report, _ = lint_paths_with_stats([root])
    parallel_report, _ = lint_paths_with_stats(
        [root], executor="thread", max_workers=3
    )
    assert render_json(parallel_report) == render_json(serial_report)
