"""Tier-1 dogfood test: the repository lints itself clean.

Every contract the rules defend (determinism, picklability, spec
round-trips, hot-path vectorisation, registry hygiene) is enforced over the
entire tree — any new violation, or any suppression without a justification,
fails this test.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import iter_rule_metas, lint_paths, render_text

REPO_ROOT = Path(__file__).resolve().parents[2]
LINTED_TREES = ("src", "benchmarks", "tests", "examples")


def test_repository_lints_clean():
    report = lint_paths([REPO_ROOT / tree for tree in LINTED_TREES], rules=["all"])
    assert report.clean, "\n" + render_text(report)
    # Sanity: the walk really covered the tree, with every rule active —
    # the per-file seven plus the four cross-module project rules.
    assert report.files_scanned > 100
    assert len(report.rules) >= 11


def test_readme_documents_every_rule():
    # The README rule table is generated from the same metadata as
    # --list-rules; a rule missing from the docs fails here.
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for meta in iter_rule_metas():
        assert f"`{meta.name}`" in readme, (
            f"rule '{meta.name}' is not documented in README.md; "
            "regenerate the Static analysis section"
        )
        assert meta.summary in readme, (
            f"rule '{meta.name}' summary drifted from README.md; "
            "regenerate the Static analysis section"
        )
    assert "repro-lint: disable=" in readme  # suppression syntax documented
