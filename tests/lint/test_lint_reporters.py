"""Reporter tests: text rendering and the lossless JSON round-trip."""

from __future__ import annotations

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SpecError
from repro.lint import Finding, LintReport, render_json, render_text, report_from_json
from repro.lint.reporters import REPORT_VERSION

nonempty_text = st.text(min_size=1, max_size=40)

findings = st.builds(
    Finding,
    path=nonempty_text,
    line=st.integers(min_value=1, max_value=10_000),
    col=st.integers(min_value=0, max_value=200),
    rule=nonempty_text,
    message=nonempty_text,
)

reports = st.builds(
    LintReport,
    findings=st.tuples() | st.lists(findings, max_size=6).map(tuple),
    files_scanned=st.integers(min_value=0, max_value=5_000),
    suppressed=st.integers(min_value=0, max_value=500),
    rules=st.lists(nonempty_text, max_size=8).map(tuple),
)


class TestJsonRoundTrip:
    @given(report=reports)
    def test_render_then_parse_is_lossless(self, report):
        assert report_from_json(render_json(report)) == report

    @given(report=reports)
    def test_json_output_is_valid_versioned_json(self, report):
        payload = json.loads(render_json(report))
        assert payload["version"] == REPORT_VERSION
        assert set(payload) == {"version", "report"}

    def test_rendering_is_deterministic(self):
        report = LintReport(
            findings=(Finding("a.py", 3, 0, "no-raw-rng", "boom"),),
            files_scanned=1,
            rules=("no-raw-rng",),
        )
        assert render_json(report) == render_json(report)


class TestReportFromJsonErrors:
    def test_invalid_json_rejected(self):
        with pytest.raises(SpecError, match="not valid JSON"):
            report_from_json("{nope")

    def test_missing_report_key_rejected(self):
        with pytest.raises(SpecError, match="'report' key"):
            report_from_json(json.dumps({"version": REPORT_VERSION}))

    def test_wrong_version_rejected(self):
        with pytest.raises(SpecError, match="version"):
            report_from_json(json.dumps({"version": 999, "report": {}}))

    def test_unknown_report_field_rejected(self):
        payload = {"version": REPORT_VERSION, "report": {"bogus": 1}}
        with pytest.raises(SpecError, match="bogus"):
            report_from_json(json.dumps(payload))

    def test_unknown_finding_field_rejected(self):
        finding = Finding("a.py", 1, 0, "r", "m").to_dict()
        finding["extra"] = True
        payload = {"version": REPORT_VERSION, "report": {"findings": [finding]}}
        with pytest.raises(SpecError, match="extra"):
            report_from_json(json.dumps(payload))


class TestTextReport:
    def test_one_line_per_finding_plus_summary(self):
        report = LintReport(
            findings=(
                Finding("a.py", 3, 4, "no-raw-rng", "raw stream"),
                Finding("b.py", 9, 0, "no-silent-except", "swallowed"),
            ),
            files_scanned=12,
            suppressed=2,
            rules=("no-raw-rng", "no-silent-except"),
        )
        lines = render_text(report).splitlines()
        assert lines[0] == "a.py:3:4: no-raw-rng: raw stream"
        assert lines[1] == "b.py:9:0: no-silent-except: swallowed"
        assert lines[2] == (
            "2 findings (no-raw-rng: 1, no-silent-except: 1), "
            "2 suppressed, 12 files scanned"
        )

    def test_clean_report_renders_summary_only(self):
        report = LintReport(files_scanned=5, rules=("no-raw-rng",))
        assert render_text(report) == "0 findings, 0 suppressed, 5 files scanned"

    def test_singular_noun_for_one_finding(self):
        report = LintReport(
            findings=(Finding("a.py", 1, 0, "no-raw-rng", "x"),), files_scanned=1
        )
        assert "1 finding (no-raw-rng: 1)" in render_text(report)
