"""Per-rule tests: each rule catches its planted violation, passes the
compliant version, and honours a justified inline suppression."""

from __future__ import annotations

import pytest

import lint_fixtures as fx
from repro.lint import lint_source

#: A path that triggers none of the path-scoped special cases.
NEUTRAL_PATH = "src/repro/example.py"


def run_rule(source: str, rule: str, display_path: str = NEUTRAL_PATH):
    """Lint one snippet with one rule; returns (findings, suppressed)."""
    return lint_source(source, display_path, rules=[rule])


def assert_flags(source: str, rule: str, display_path: str = NEUTRAL_PATH, count: int = 1):
    findings, _ = run_rule(source, rule, display_path)
    assert [f.rule for f in findings] == [rule] * count, findings
    return findings


def assert_clean(source: str, rule: str, display_path: str = NEUTRAL_PATH):
    findings, _ = run_rule(source, rule, display_path)
    assert findings == [], findings


def assert_suppressed(source: str, rule: str, display_path: str = NEUTRAL_PATH):
    findings, suppressed = run_rule(source, rule, display_path)
    assert findings == [], findings
    assert suppressed == 1


class TestNoRawRng:
    @pytest.mark.parametrize(
        "source, count",
        [
            (fx.BAD_RAW_RNG, 1),
            (fx.BAD_RAW_RNG_STDLIB, 1),
            (fx.BAD_RAW_RNG_TIME_SEED, 1),
            # Both the import line and the bare default_rng() call flag.
            (fx.BAD_RAW_RNG_IMPORT_FROM, 2),
        ],
        ids=["numpy-constructor", "stdlib-import", "time-seed", "import-from"],
    )
    def test_bad_variants_flagged(self, source, count):
        assert_flags(source, "no-raw-rng", count=count)

    def test_good_snippet_clean(self):
        assert_clean(fx.GOOD_RAW_RNG, "no-raw-rng")

    def test_rng_home_module_is_exempt(self):
        # repro/utils/rng.py is the one module allowed to build raw streams.
        assert_clean(fx.BAD_RAW_RNG, "no-raw-rng", "src/repro/utils/rng.py")

    def test_suppression_honoured(self):
        assert_suppressed(fx.SUPPRESSED_RAW_RNG, "no-raw-rng")

    def test_finding_message_points_at_spawn_rng(self):
        (finding,) = assert_flags(fx.BAD_RAW_RNG, "no-raw-rng")
        assert "spawn_rng" in finding.message


class TestRawTiming:
    @pytest.mark.parametrize(
        "source, count",
        [
            (fx.BAD_RAW_TIMING, 2),
            (fx.BAD_RAW_TIMING_WALL, 1),
            (fx.BAD_RAW_TIMING_IMPORT_FROM, 1),
        ],
        ids=["perf-counter", "wall-time", "import-from"],
    )
    def test_bad_variants_flagged(self, source, count):
        assert_flags(source, "raw-timing", count=count)

    def test_clock_indirection_clean(self):
        # time.sleep stays legal; only clock *reads* must go through obs.
        assert_clean(fx.GOOD_RAW_TIMING, "raw-timing")

    @pytest.mark.parametrize(
        "display_path",
        ["benchmarks/bench_example.py", "tests/streaming/test_example.py"],
        ids=["benchmarks", "tests"],
    )
    def test_non_library_code_exempt(self, display_path):
        # Benchmarks and tests measure the real world on purpose.
        assert_clean(fx.BAD_RAW_TIMING, "raw-timing", display_path)

    def test_suppression_honoured(self):
        assert_suppressed(fx.SUPPRESSED_RAW_TIMING, "raw-timing")

    def test_finding_message_points_at_clock(self):
        (finding,) = assert_flags(fx.BAD_RAW_TIMING_WALL, "raw-timing")
        assert "repro.obs.clock" in finding.message


class TestPicklableJobs:
    @pytest.mark.parametrize(
        "source",
        [
            fx.BAD_PICKLABLE_LAMBDA,
            fx.BAD_PICKLABLE_CLOSURE,
            fx.BAD_PICKLABLE_BOUND_METHOD,
            fx.BAD_PICKLABLE_SUBMIT,
        ],
        ids=["lambda", "closure", "bound-method", "submit-lambda"],
    )
    def test_bad_callables_flagged(self, source):
        assert_flags(source, "picklable-jobs")

    def test_unpicklable_job_field_flagged_in_distributed(self):
        assert_flags(
            fx.BAD_PICKLABLE_JOB_FIELD,
            "picklable-jobs",
            "src/repro/distributed/jobs.py",
        )

    def test_job_field_rule_scoped_to_distributed(self):
        # The same class outside repro/distributed/ is someone else's concern.
        assert_clean(fx.BAD_PICKLABLE_JOB_FIELD, "picklable-jobs")

    def test_module_level_function_clean(self):
        assert_clean(fx.GOOD_PICKLABLE, "picklable-jobs")

    def test_plain_data_job_clean(self):
        assert_clean(
            fx.GOOD_PICKLABLE_JOB_FIELD,
            "picklable-jobs",
            "src/repro/distributed/jobs.py",
        )

    def test_suppression_honoured(self):
        assert_suppressed(fx.SUPPRESSED_PICKLABLE, "picklable-jobs")


class TestSpecRoundtrip:
    def test_to_dict_dropping_a_field_flagged(self):
        (finding,) = assert_flags(fx.BAD_SPEC_DROPPED_FIELD, "spec-roundtrip")
        assert "beta" in finding.message and "to_dict" in finding.message

    def test_one_directional_serialization_flagged(self):
        (finding,) = assert_flags(fx.BAD_SPEC_ONE_DIRECTION, "spec-roundtrip")
        assert "from_dict" in finding.message

    def test_from_dict_missing_a_field_flagged(self):
        (finding,) = assert_flags(fx.BAD_SPEC_FROM_DICT_MISSES, "spec-roundtrip")
        assert "beta" in finding.message and "from_dict" in finding.message

    def test_kwargs_splat_accepts_every_field(self):
        assert_clean(fx.GOOD_SPEC, "spec-roundtrip")

    def test_suppression_honoured(self):
        assert_suppressed(fx.SUPPRESSED_SPEC, "spec-roundtrip")


class TestHotPathHygiene:
    def test_whole_column_tolist_flagged(self):
        assert_flags(fx.BAD_HOT_PATH_TOLIST, "hot-path-hygiene")

    def test_per_row_loop_flagged(self):
        assert_flags(fx.BAD_HOT_PATH_LOOP, "hot-path-hygiene")

    def test_filtered_selection_allowed(self):
        assert_clean(fx.GOOD_HOT_PATH, "hot-path-hygiene")

    def test_rule_scoped_to_hot_functions(self):
        assert_clean(fx.GOOD_HOT_PATH_OUTSIDE, "hot-path-hygiene")

    def test_kernel_modules_are_hot_everywhere(self):
        # In a kernel-backend module even top-level helpers are hot path.
        assert_flags(
            fx.GOOD_HOT_PATH_OUTSIDE,
            "hot-path-hygiene",
            "src/repro/coverage/kernels.py",
        )

    def test_suppression_honoured(self):
        assert_suppressed(fx.SUPPRESSED_HOT_PATH, "hot-path-hygiene")


class TestRegistryLiteralNames:
    def test_computed_name_flagged(self):
        (finding,) = assert_flags(fx.BAD_REGISTRY_COMPUTED, "registry-literal-names")
        assert "string literal" in finding.message

    def test_whitespace_name_flagged(self):
        (finding,) = assert_flags(fx.BAD_REGISTRY_WHITESPACE, "registry-literal-names")
        assert "whitespace" in finding.message

    def test_computed_entry_name_flagged(self):
        assert_flags(fx.BAD_REGISTRY_ENTRY_NAME, "registry-literal-names")

    def test_literal_names_clean(self):
        assert_clean(fx.GOOD_REGISTRY, "registry-literal-names")

    def test_prebuilt_entry_variable_not_audited(self):
        assert_clean(fx.GOOD_REGISTRY_PREBUILT_VARIABLE, "registry-literal-names")

    def test_suppression_honoured(self):
        assert_suppressed(fx.SUPPRESSED_REGISTRY, "registry-literal-names")


class TestNoSilentExcept:
    def test_bare_except_flagged(self):
        (finding,) = assert_flags(fx.BAD_SILENT_BARE, "no-silent-except")
        assert "KeyboardInterrupt" in finding.message

    def test_except_pass_flagged(self):
        (finding,) = assert_flags(fx.BAD_SILENT_PASS, "no-silent-except")
        assert "OSError" in finding.message

    def test_handler_with_fallback_clean(self):
        assert_clean(fx.GOOD_SILENT, "no-silent-except")

    def test_suppression_honoured(self):
        assert_suppressed(fx.SUPPRESSED_SILENT, "no-silent-except")


class TestSuppressionHygiene:
    def run_all(self, source: str):
        return lint_source(source, NEUTRAL_PATH)

    def test_unjustified_suppression_flagged(self):
        findings, suppressed = self.run_all(fx.BAD_SUPPRESSION_NO_REASON)
        assert [f.rule for f in findings] == ["suppression-hygiene"]
        assert "justification" in findings[0].message
        # The unjustified comment still silences its target rule...
        assert suppressed == 1
        # ...but the hygiene finding keeps the report non-clean.

    def test_unknown_rule_name_flagged(self):
        findings, _ = self.run_all(fx.BAD_SUPPRESSION_UNKNOWN_RULE)
        assert [f.rule for f in findings] == ["suppression-hygiene"]
        assert "no-raw-rgn" in findings[0].message

    def test_justified_suppression_clean(self):
        findings, suppressed = self.run_all(fx.GOOD_SUPPRESSION)
        assert findings == []
        assert suppressed == 1

    def test_hygiene_findings_cannot_be_suppressed(self):
        # Even disable=all cannot silence the rule that audits suppressions.
        # (Assembled at runtime: a literal unjustified directive here would
        # trip the tree-wide self-lint on this very file.)
        source = "x = compute()  # repro-lint" + ": disable=all\n"
        findings, suppressed = self.run_all(source)
        assert [f.rule for f in findings] == ["suppression-hygiene"]
        assert suppressed == 0


class TestRuleMetadata:
    def test_every_rule_has_complete_metadata(self):
        from repro.lint import iter_rule_metas

        metas = iter_rule_metas()
        assert len(metas) >= 7
        for meta in metas:
            assert meta.name and " " not in meta.name
            assert meta.summary and meta.rationale
            assert meta.example_bad and meta.example_good

    def test_meta_round_trips_through_dict(self):
        from repro.lint import RuleMeta, iter_rule_metas

        for meta in iter_rule_metas():
            assert RuleMeta.from_dict(meta.to_dict()) == meta
