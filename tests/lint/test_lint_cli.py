"""CLI tests for ``repro lint``: exit codes 0/1/2 and the output formats."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main
from repro.lint import list_rules, report_from_json

CLEAN_SOURCE = "def identity(x):\n    return x\n"
DIRTY_SOURCE = "import numpy as np\nrng = np.random.default_rng()\n"


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.py"
    path.write_text(CLEAN_SOURCE)
    return path


@pytest.fixture
def dirty_file(tmp_path):
    path = tmp_path / "dirty.py"
    path.write_text(DIRTY_SOURCE)
    return path


def run_cli(*argv):
    out = io.StringIO()
    code = main([str(arg) for arg in argv], out=out)
    return code, out.getvalue()


class TestExitCodes:
    def test_clean_tree_exits_zero(self, clean_file):
        code, output = run_cli("lint", clean_file)
        assert code == 0
        assert "0 findings" in output

    def test_findings_exit_one(self, dirty_file):
        code, output = run_cli("lint", dirty_file)
        assert code == 1
        assert "no-raw-rng" in output

    def test_no_paths_is_a_usage_error(self):
        code, _ = run_cli("lint")
        assert code == 2

    def test_unknown_rule_is_a_usage_error(self, clean_file):
        code, _ = run_cli("lint", clean_file, "--rules", "no-such-rule")
        assert code == 2

    def test_missing_path_is_a_usage_error(self, tmp_path):
        code, _ = run_cli("lint", tmp_path / "nowhere")
        assert code == 2

    def test_empty_rules_option_is_a_usage_error(self, clean_file):
        code, _ = run_cli("lint", clean_file, "--rules", " , ")
        assert code == 2


class TestRuleSelection:
    def test_rules_subset_runs_only_those(self, dirty_file):
        # The violation is an RNG one; a silent-except-only run is clean.
        code, output = run_cli("lint", dirty_file, "--rules", "no-silent-except")
        assert code == 0
        assert "0 findings" in output

    def test_list_rules_names_every_registered_rule(self):
        code, output = run_cli("lint", "--list-rules")
        assert code == 0
        for name in list_rules():
            assert name in output

    def test_list_rules_json_is_the_metadata_dump(self):
        code, output = run_cli("lint", "--list-rules", "--format", "json")
        assert code == 0
        metas = json.loads(output)
        assert sorted(meta["name"] for meta in metas) == list_rules()
        for meta in metas:
            assert set(meta) == {
                "name", "summary", "rationale", "example_bad", "example_good",
            }


class TestEngineFlags:
    def test_rules_all_selects_everything(self, clean_file):
        code, output = run_cli("lint", clean_file, "--rules", "all", "--format", "json")
        assert code == 0
        report = report_from_json(output)
        assert list(report.rules) == list_rules()

    def test_jobs_zero_is_a_usage_error(self, clean_file):
        code, _ = run_cli("lint", clean_file, "--jobs", "0")
        assert code == 2

    def test_jobs_fans_out_without_changing_the_report(self, tmp_path):
        for index in range(4):
            (tmp_path / f"mod_{index}.py").write_text(DIRTY_SOURCE)
        serial_code, serial_output = run_cli("lint", tmp_path, "--format", "json")
        parallel_code, parallel_output = run_cli(
            "lint", tmp_path, "--format", "json", "--jobs", "3"
        )
        assert (serial_code, serial_output) == (parallel_code, parallel_output)

    def test_cache_warms_across_invocations(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "mod.py").write_text(CLEAN_SOURCE)
        first_code, _ = run_cli("lint", "mod.py", "--cache")
        assert first_code == 0
        assert (tmp_path / ".repro-lint-cache" / "cache.json").exists()
        artifact = tmp_path / "out.json"
        second_code, _ = run_cli("lint", "mod.py", "--cache", "--output", artifact)
        assert second_code == 0
        stats = json.loads(artifact.read_text())["stats"]
        assert stats["files_from_cache"] == 1
        assert stats["cache_hit_rate"] == 1.0

    def test_changed_against_bad_base_is_a_usage_error(self, clean_file):
        code, _ = run_cli("lint", clean_file, "--changed", "no-such-ref^^")
        assert code == 2


class TestJsonOutput:
    def test_format_json_round_trips(self, dirty_file):
        code, output = run_cli("lint", dirty_file, "--format", "json")
        assert code == 1
        report = report_from_json(output)
        assert report.by_rule() == {"no-raw-rng": 1}
        assert report.files_scanned == 1

    def test_output_file_written_even_in_text_mode(self, dirty_file, tmp_path):
        artifact = tmp_path / "reports" / "lint.json"
        code, output = run_cli("lint", dirty_file, "--output", artifact)
        assert code == 1
        assert "no-raw-rng" in output  # text on stdout
        report = report_from_json(artifact.read_text())
        assert not report.clean
