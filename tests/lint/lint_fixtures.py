"""Fixture snippets for the lint rule tests.

Each rule gets a BAD_* snippet (planted violation), a GOOD_* snippet (the
compliant way to write the same thing) and a SUPPRESSED_* snippet (the
violation silenced by a justified inline suppression).  The snippets live as
string constants so the tree-wide self-lint test never sees them as code.
"""

from __future__ import annotations

import textwrap


def clean(snippet: str) -> str:
    """Dedent a fixture snippet."""
    return textwrap.dedent(snippet).lstrip("\n")


# --------------------------------------------------------------------- #
# no-raw-rng
# --------------------------------------------------------------------- #
BAD_RAW_RNG = clean(
    """
    import numpy as np

    def make_stream():
        return np.random.default_rng()
    """
)

BAD_RAW_RNG_STDLIB = clean(
    """
    import random

    def shuffle(items):
        random.shuffle(items)
    """
)

BAD_RAW_RNG_TIME_SEED = clean(
    """
    import time

    def build(builder):
        return builder(seed=int(time.time()))
    """
)

BAD_RAW_RNG_IMPORT_FROM = clean(
    """
    from numpy.random import default_rng

    def make_stream():
        return default_rng(3)
    """
)

GOOD_RAW_RNG = clean(
    """
    from repro.utils.rng import spawn_rng

    def make_stream(master_seed):
        return spawn_rng(master_seed, "my-subsystem")
    """
)

SUPPRESSED_RAW_RNG = clean(
    """
    import numpy as np

    def make_stream():
        return np.random.default_rng(7)  # repro-lint: disable=no-raw-rng -- literal seed, scratch analysis only
    """
)


# --------------------------------------------------------------------- #
# raw-timing
# --------------------------------------------------------------------- #
BAD_RAW_TIMING = clean(
    """
    import time

    def measure(fn):
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start
    """
)

BAD_RAW_TIMING_WALL = clean(
    """
    import time

    def stamp():
        return time.time()
    """
)

BAD_RAW_TIMING_IMPORT_FROM = clean(
    """
    from time import monotonic

    def measure():
        return monotonic()
    """
)

GOOD_RAW_TIMING = clean(
    """
    import time

    from repro.obs import clock

    def measure(fn):
        start = clock.perf_counter()
        fn()
        time.sleep(0.0)
        return clock.perf_counter() - start
    """
)

SUPPRESSED_RAW_TIMING = clean(
    """
    import time

    def measure():
        # repro-lint: disable=raw-timing -- calibrates the fake clock against the real one
        return time.perf_counter()
    """
)


# --------------------------------------------------------------------- #
# picklable-jobs
# --------------------------------------------------------------------- #
BAD_PICKLABLE_LAMBDA = clean(
    """
    def fan_out(mapper, jobs):
        return mapper.map(lambda job: job.run(), jobs)
    """
)

BAD_PICKLABLE_CLOSURE = clean(
    """
    def fan_out(mapper, jobs):
        def helper(job):
            return job.run()

        return mapper.map(helper, jobs)
    """
)

BAD_PICKLABLE_BOUND_METHOD = clean(
    """
    class Coordinator:
        def fan_out(self, mapper, jobs):
            return mapper.map(self.execute, jobs)
    """
)

BAD_PICKLABLE_SUBMIT = clean(
    """
    def fan_out(pool, jobs):
        return [pool.submit(lambda: job.run()) for job in jobs]
    """
)

BAD_PICKLABLE_JOB_FIELD = clean(
    """
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class LeakyShardJob:
        machine_id: int
        stream: EdgeStream
    """
)

GOOD_PICKLABLE = clean(
    """
    def execute_map_job(job):
        return job.run()

    def fan_out(mapper, jobs):
        return mapper.map(execute_map_job, jobs)
    """
)

GOOD_PICKLABLE_JOB_FIELD = clean(
    """
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class SliceJob:
        machine_id: int
        path: str
        row_start: int
        row_stop: int
    """
)

SUPPRESSED_PICKLABLE = clean(
    """
    def fan_out(mapper, jobs):
        # repro-lint: disable=picklable-jobs -- serial-only helper, never reaches a process pool
        return mapper.map(lambda job: job.run(), jobs)
    """
)


# --------------------------------------------------------------------- #
# spec-roundtrip
# --------------------------------------------------------------------- #
BAD_SPEC_DROPPED_FIELD = clean(
    """
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class MiniSpec:
        alpha: int
        beta: int

        def to_dict(self):
            return {"alpha": self.alpha}

        @classmethod
        def from_dict(cls, data):
            return cls(alpha=data["alpha"], beta=data["beta"])
    """
)

BAD_SPEC_ONE_DIRECTION = clean(
    """
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class MiniSpec:
        alpha: int

        def to_dict(self):
            return {"alpha": self.alpha}
    """
)

BAD_SPEC_FROM_DICT_MISSES = clean(
    """
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class MiniSpec:
        alpha: int
        beta: int

        def to_dict(self):
            return {"alpha": self.alpha, "beta": self.beta}

        @classmethod
        def from_dict(cls, data):
            return cls(alpha=data["alpha"])
    """
)

GOOD_SPEC = clean(
    """
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class MiniSpec:
        alpha: int
        beta: int

        def to_dict(self):
            return {"alpha": self.alpha, "beta": self.beta}

        @classmethod
        def from_dict(cls, data):
            return cls(**data)
    """
)

SUPPRESSED_SPEC = clean(
    """
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class MiniSpec:
        alpha: int
        beta: int

        # repro-lint: disable=spec-roundtrip -- beta is derived, reconstructed by __post_init__
        def to_dict(self):
            return {"alpha": self.alpha}

        @classmethod
        def from_dict(cls, data):
            return cls(**data)
    """
)


# --------------------------------------------------------------------- #
# hot-path-hygiene
# --------------------------------------------------------------------- #
BAD_HOT_PATH_TOLIST = clean(
    """
    class Algo:
        def process_batch(self, batch):
            for element in batch.elements.tolist():
                self._admit(element)
    """
)

BAD_HOT_PATH_LOOP = clean(
    """
    class Algo:
        def process_batch(self, batch):
            for set_id in batch.set_ids:
                self._offer(int(set_id))
    """
)

GOOD_HOT_PATH = clean(
    """
    class Algo:
        def process_batch(self, batch):
            survivors = self._ranks(batch) < self._threshold
            for element in batch.elements[survivors].tolist():
                self._admit(element)
    """
)

GOOD_HOT_PATH_OUTSIDE = clean(
    """
    def debug_dump(batch):
        return batch.elements.tolist()
    """
)

SUPPRESSED_HOT_PATH = clean(
    """
    class Algo:
        def process_batch(self, batch):
            # repro-lint: disable=hot-path-hygiene -- admission is sequential and data-dependent
            for element in batch.elements.tolist():
                self._admit(element)
    """
)


# --------------------------------------------------------------------- #
# registry-literal-names
# --------------------------------------------------------------------- #
BAD_REGISTRY_COMPUTED = clean(
    """
    PREFIX = "kcover"

    @register_solver(PREFIX + "/mine", problems=("k_cover",), arrival="edge")
    def _build(ctx):
        return None
    """
)

BAD_REGISTRY_WHITESPACE = clean(
    """
    @register_solver("kcover/my solver", problems=("k_cover",), arrival="edge")
    def _build(ctx):
        return None
    """
)

BAD_REGISTRY_ENTRY_NAME = clean(
    """
    NAME = "plugin"

    register_executor(ExecutorBackend(name=NAME, parallel=False))
    """
)

GOOD_REGISTRY = clean(
    """
    @register_solver("kcover/mine", problems=("k_cover",), arrival="edge")
    def _build(ctx):
        return None

    register_executor(ExecutorBackend(name="plugin", parallel=False))
    """
)

GOOD_REGISTRY_PREBUILT_VARIABLE = clean(
    """
    backend = make_backend()
    register_executor(backend)
    """
)

SUPPRESSED_REGISTRY = clean(
    """
    @register_solver(PREFIX + "/mine", problems=("k_cover",), arrival="edge")  # repro-lint: disable=registry-literal-names -- plugin namespace computed at import, validated by its own tests
    def _build(ctx):
        return None
    """
)


# --------------------------------------------------------------------- #
# no-silent-except
# --------------------------------------------------------------------- #
BAD_SILENT_BARE = clean(
    """
    def load(path):
        try:
            return open_columnar(path)
        except:
            return None
    """
)

BAD_SILENT_PASS = clean(
    """
    def drain(pool, jobs):
        try:
            return [job.result() for job in jobs]
        except OSError:
            pass
    """
)

GOOD_SILENT = clean(
    """
    def drain(pool, jobs):
        try:
            return [job.result() for job in jobs]
        except OSError:
            return fallback(jobs)
    """
)

SUPPRESSED_SILENT = clean(
    """
    def drain(pool, jobs):
        try:
            return [job.result() for job in jobs]
        # repro-lint: disable=no-silent-except -- fallthrough to the recorded rescue below
        except OSError:
            pass
        return fallback(jobs)
    """
)


# --------------------------------------------------------------------- #
# suppression-hygiene
# --------------------------------------------------------------------- #
# These two snippets contain *malformed* suppression comments.  The engine
# scans raw source lines for suppressions (it cannot know a line sits inside
# a string literal), so spelling them out verbatim here would make this
# fixture module itself flunk the tree-wide self-lint.  The placeholder is
# swapped for the real directive at runtime instead.
_DIRECTIVE = "repro-lint" + ":"

BAD_SUPPRESSION_NO_REASON = clean(
    """
    import numpy as np

    def make_stream():
        return np.random.default_rng(7)  # LINT-DIRECTIVE disable=no-raw-rng
    """
).replace("LINT-DIRECTIVE", _DIRECTIVE)

BAD_SUPPRESSION_UNKNOWN_RULE = clean(
    """
    def f():
        return 1  # LINT-DIRECTIVE disable=no-raw-rgn -- typo in the rule name
    """
).replace("LINT-DIRECTIVE", _DIRECTIVE)

GOOD_SUPPRESSION = SUPPRESSED_RAW_RNG
