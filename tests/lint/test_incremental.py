"""The incremental engine: content-hash cache, dependents, ``--changed``.

The cache is an optimization with a hard contract: a warm run's *report* is
byte-identical to a cold run's, only the stats differ; any defect in the
cache (corrupt file, wrong version, one malformed entry) degrades to a
miss, never an error.  These tests pin both halves — the speedup's
accounting (what got re-analyzed) and the degradation paths.
"""

from __future__ import annotations

import json
import subprocess
import textwrap

import pytest

from repro.lint import lint_paths_with_stats, render_json
from repro.lint.cache import CACHE_FILENAME, CACHE_VERSION, LintCache, load_cache
from repro.lint.engine import Suppression

TREE = {
    "src/app/__init__.py": "",
    "src/app/a.py": "def alpha():\n    return 1\n",
    "src/app/b.py": "from app.a import alpha\n\n\ndef beta():\n    return alpha()\n",
    "src/app/c.py": "def gamma():\n    return 3\n",
}


@pytest.fixture
def tree(tmp_path, monkeypatch):
    for rel, text in TREE.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")
    monkeypatch.chdir(tmp_path)
    return tmp_path


def run(cache_dir=None, **kwargs):
    return lint_paths_with_stats(["src"], cache_dir=cache_dir, **kwargs)


class TestWarmRuns:
    def test_second_run_is_all_cache_hits_and_byte_identical(self, tree):
        cold_report, cold_stats = run(cache_dir=".cache")
        assert cold_stats.files_analyzed == 4
        assert cold_stats.files_from_cache == 0
        assert cold_stats.cache_hit_rate == 0.0

        warm_report, warm_stats = run(cache_dir=".cache")
        assert warm_stats.files_analyzed == 0
        assert warm_stats.files_from_cache == 4
        assert warm_stats.cache_hit_rate == 1.0
        assert warm_stats.project_rules_ran  # project phase never comes from cache
        assert render_json(warm_report) == render_json(cold_report)

    def test_touching_a_leaf_reanalyzes_it_and_its_dependents_only(self, tree):
        run(cache_dir=".cache")
        a = tree / "src/app/a.py"
        a.write_text(a.read_text() + "\n\ndef alpha_prime():\n    return 11\n")

        report, stats = run(cache_dir=".cache")
        # b.py imports a.py, so it re-walks too; c.py and __init__ stay cached.
        assert stats.analyzed_paths == ("src/app/a.py", "src/app/b.py")
        assert stats.files_analyzed == 2
        assert stats.files_from_cache == 2

        cold_report, _ = run()  # no cache at all
        assert render_json(report) == render_json(cold_report)

    def test_rule_set_change_invalidates_the_cache(self, tree):
        run(cache_dir=".cache", rules=["no-raw-rng"])
        _, stats = run(cache_dir=".cache", rules=["no-raw-rng", "no-silent-except"])
        assert stats.files_from_cache == 0
        assert stats.files_analyzed == 4

    def test_same_content_at_new_mtime_still_hits(self, tree):
        run(cache_dir=".cache")
        a = tree / "src/app/a.py"
        a.write_text(a.read_text())  # rewrite identical bytes
        _, stats = run(cache_dir=".cache")
        assert stats.files_from_cache == 4  # keyed by content hash, not mtime


class TestCacheDegradation:
    def test_corrupt_cache_file_is_discarded_not_fatal(self, tree):
        run(cache_dir=".cache")
        (tree / ".cache" / CACHE_FILENAME).write_text("{ not json", encoding="utf-8")
        report, stats = run(cache_dir=".cache")
        assert stats.files_analyzed == 4  # rebuilt from scratch
        cold_report, _ = run()
        assert render_json(report) == render_json(cold_report)

    def test_version_mismatch_is_discarded_with_reason(self, tree):
        run(cache_dir=".cache")
        target = tree / ".cache" / CACHE_FILENAME
        payload = json.loads(target.read_text(encoding="utf-8"))
        payload["version"] = CACHE_VERSION + 999
        target.write_text(json.dumps(payload), encoding="utf-8")
        cache = load_cache(tree / ".cache")
        assert cache.entries == {}
        assert "version" in (cache.discard_reason or "")
        _, stats = run(cache_dir=".cache")
        assert stats.files_analyzed == 4

    def test_one_malformed_entry_is_a_miss_for_that_file_only(self, tree):
        run(cache_dir=".cache")
        target = tree / ".cache" / CACHE_FILENAME
        payload = json.loads(target.read_text(encoding="utf-8"))
        payload["entries"]["src/app/c.py"] = {"garbage": True}
        target.write_text(json.dumps(payload), encoding="utf-8")
        _, stats = run(cache_dir=".cache")
        assert stats.analyzed_paths == ("src/app/c.py",)
        assert stats.files_from_cache == 3

    def test_missing_directory_means_cold_run(self, tree):
        cache = load_cache(tree / "never-created")
        assert cache.enabled and cache.entries == {} and cache.discard_reason is None

    def test_disabled_cache_never_persists(self, tree):
        cache = LintCache(None)
        cache.put("x.py", {"digest": "d"})
        cache.save()
        assert not cache.enabled
        assert not (tree / CACHE_FILENAME).exists()


class TestSuppressionRoundTrip:
    def test_to_dict_from_dict_is_identity(self):
        suppression = Suppression(
            line=7,
            rules=frozenset({"no-raw-rng", "knob-drift"}),
            justification="test double",
            standalone=True,
        )
        assert Suppression.from_dict(suppression.to_dict()) == suppression
        assert suppression.to_dict()["rules"] == ["knob-drift", "no-raw-rng"]


def git(*argv, cwd):
    subprocess.run(
        ["git", *argv], cwd=cwd, check=True, capture_output=True, text=True,
        env={"GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t", "HOME": str(cwd),
             "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t",
             "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )


class TestChangedFastPath:
    def test_only_dirty_files_and_dependents_get_the_walk(self, tree):
        git("init", "-q", cwd=tree)
        git("add", ".", cwd=tree)
        git("commit", "-q", "-m", "seed", cwd=tree)
        a = tree / "src/app/a.py"
        a.write_text(a.read_text() + "\n\ndef alpha_prime():\n    return 11\n")

        report, stats = run(changed_base="HEAD")
        assert stats.changed_base == "HEAD"
        assert stats.analyzed_paths == ("src/app/a.py", "src/app/b.py")
        # with no cache, the whole tree contributes facts (for the import
        # graph and project rules) before the two selected files get walked
        assert stats.files_facts_only == 4
        assert report.files_scanned == 2

    def test_clean_worktree_walks_nothing(self, tree):
        git("init", "-q", cwd=tree)
        git("add", ".", cwd=tree)
        git("commit", "-q", "-m", "seed", cwd=tree)
        report, stats = run(changed_base="HEAD")
        assert stats.analyzed_paths == ()
        assert report.files_scanned == 0
        assert report.clean

    def test_bad_base_is_a_spec_error(self, tree):
        from repro.errors import SpecError

        git("init", "-q", cwd=tree)
        git("add", ".", cwd=tree)
        git("commit", "-q", "-m", "seed", cwd=tree)
        with pytest.raises(SpecError, match="--changed could not diff"):
            run(changed_base="no-such-ref")
