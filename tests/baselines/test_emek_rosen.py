"""Unit tests for repro.baselines.emek_rosen."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.emek_rosen import ThresholdPartialSetCover
from repro.coverage.bipartite import BipartiteGraph
from repro.streaming.batches import EventBatch
from repro.streaming.runner import StreamingRunner
from repro.streaming.stream import SetStream


class TestThresholdPartialSetCover:
    def test_reaches_outlier_target(self, planted_setcover):
        algo = ThresholdPartialSetCover(planted_setcover.m, outlier_fraction=0.1, passes=3)
        report = StreamingRunner(planted_setcover.graph).run(
            algo, SetStream.from_graph(planted_setcover.graph, order="random", seed=1)
        )
        assert report.coverage_fraction >= 1 - 0.1 - 1e-9
        assert report.passes == 3

    def test_zero_outliers_gives_full_cover(self, planted_setcover):
        algo = ThresholdPartialSetCover(planted_setcover.m, outlier_fraction=0.0, passes=3)
        report = StreamingRunner(planted_setcover.graph).run(
            algo, SetStream.from_graph(planted_setcover.graph, order="random", seed=2)
        )
        assert report.coverage_fraction == pytest.approx(1.0)

    def test_single_pass_variant(self, planted_setcover):
        algo = ThresholdPartialSetCover(planted_setcover.m, outlier_fraction=0.2, passes=1)
        report = StreamingRunner(planted_setcover.graph).run(
            algo, SetStream.from_graph(planted_setcover.graph, order="random", seed=3)
        )
        assert report.passes == 1
        assert report.coverage_fraction >= 1 - 0.2 - 1e-9

    def test_space_tracks_ground_set(self, planted_setcover):
        algo = ThresholdPartialSetCover(planted_setcover.m, outlier_fraction=0.1, passes=2)
        report = StreamingRunner(planted_setcover.graph).run(
            algo, SetStream.from_graph(planted_setcover.graph, order="random", seed=4)
        )
        # O~(m) behaviour: it stores at least the whole universe.
        assert report.space_peak >= planted_setcover.m

    def test_threshold_schedule_decreasing(self):
        algo = ThresholdPartialSetCover(1000, outlier_fraction=0.1, passes=4)
        thresholds = [algo._threshold(j) for j in range(4)]
        assert all(a >= b for a, b in zip(thresholds, thresholds[1:]))
        assert thresholds[-1] >= 1.0

    def test_no_duplicate_selections(self, planted_setcover):
        algo = ThresholdPartialSetCover(planted_setcover.m, outlier_fraction=0.05, passes=3)
        report = StreamingRunner(planted_setcover.graph).run(
            algo, SetStream.from_graph(planted_setcover.graph, order="random", seed=5)
        )
        assert len(report.solution) == len(set(report.solution))

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            ThresholdPartialSetCover(0, 0.1)
        with pytest.raises(ValueError):
            ThresholdPartialSetCover(10, 1.5)
        with pytest.raises(ValueError):
            ThresholdPartialSetCover(10, 0.1, passes=0)

    def test_describe(self):
        algo = ThresholdPartialSetCover(100, 0.1, passes=2)
        info = algo.describe()
        assert info["algorithm"] == "threshold-partial-cover"
        assert info["passes"] == 2


def _witness_heavy_graph() -> BipartiteGraph:
    """A graph engineered so the outcome hinges on witness bookkeeping.

    One giant set clears every threshold; a tail of tiny overlapping sets
    never does, so the final cover must be patched from witnesses — the
    exact state the batched observe path maintains vectorised.  The tiny
    sets overlap pairwise, making the patch sensitive to *which* set each
    element witnessed first.
    """
    graph = BipartiteGraph(12)
    for element in range(40):
        graph.add_edge(0, element)
    # Tiny sets: set 1+i holds elements {40+i, 41+i, 42+i} — heavy overlap.
    for i in range(11):
        for offset in range(3):
            graph.add_edge(1 + i, 40 + i + offset)
    return graph


class TestProcessBatchEquivalence:
    """Hostile cases for the native CSR threshold prefilter."""

    def _run(self, graph, batch_size, *, passes=3, outlier_fraction=0.05, seed=7):
        algo = ThresholdPartialSetCover(
            max(1, graph.num_elements), outlier_fraction, passes=passes
        )
        stream = SetStream.from_graph(graph, order="random", seed=seed)
        report = StreamingRunner(graph).run(algo, stream, batch_size=batch_size)
        return report, algo

    def test_rejects_edge_batches(self):
        algo = ThresholdPartialSetCover(10, 0.1)
        edge_batch = EventBatch(set_ids=np.array([0]), elements=np.array([1]))
        with pytest.raises(TypeError):
            algo.process_batch(edge_batch)

    @pytest.mark.parametrize("batch_size", (1, 7, 1024))
    def test_witness_state_matches_scalar(self, batch_size):
        """Internal state (not just the report) is byte-identical."""
        graph = _witness_heavy_graph()
        scalar_report, scalar_algo = self._run(graph, None)
        batched_report, batched_algo = self._run(graph, batch_size)
        assert batched_report.solution == scalar_report.solution
        assert batched_report.coverage == scalar_report.coverage
        assert batched_report.space_peak == scalar_report.space_peak
        assert batched_algo._witness == scalar_algo._witness
        assert batched_algo._covered == scalar_algo._covered
        assert batched_algo._universe == scalar_algo._universe

    @pytest.mark.parametrize("batch_size", (1, 7, 1024))
    def test_all_below_threshold_single_pass(self, batch_size):
        """A batch that is one long skipped run still observes everything."""
        graph = BipartiteGraph(8)
        for set_id in range(8):
            graph.add_edge(set_id, set_id)
            graph.add_edge(set_id, (set_id + 1) % 8)
        scalar_report, scalar_algo = self._run(
            graph, None, passes=1, outlier_fraction=0.5
        )
        batched_report, batched_algo = self._run(
            graph, batch_size, passes=1, outlier_fraction=0.5
        )
        assert batched_report.solution == scalar_report.solution
        assert batched_algo._witness == scalar_algo._witness
        assert batched_report.space_peak == scalar_report.space_peak

    def test_prefilter_never_skips_acceptable_sets(self):
        """Every set at/above the threshold goes through the exact path."""
        graph = _witness_heavy_graph()
        for batch_size in (1, 7, 1024):
            batched_report, _ = self._run(graph, batch_size)
            scalar_report, _ = self._run(graph, None)
            # The giant set must be selected under both drive modes.
            assert 0 in batched_report.solution
            assert batched_report.solution == scalar_report.solution
