"""Unit tests for repro.baselines.emek_rosen."""

from __future__ import annotations

import pytest

from repro.baselines.emek_rosen import ThresholdPartialSetCover
from repro.streaming.runner import StreamingRunner
from repro.streaming.stream import SetStream


class TestThresholdPartialSetCover:
    def test_reaches_outlier_target(self, planted_setcover):
        algo = ThresholdPartialSetCover(planted_setcover.m, outlier_fraction=0.1, passes=3)
        report = StreamingRunner(planted_setcover.graph).run(
            algo, SetStream.from_graph(planted_setcover.graph, order="random", seed=1)
        )
        assert report.coverage_fraction >= 1 - 0.1 - 1e-9
        assert report.passes == 3

    def test_zero_outliers_gives_full_cover(self, planted_setcover):
        algo = ThresholdPartialSetCover(planted_setcover.m, outlier_fraction=0.0, passes=3)
        report = StreamingRunner(planted_setcover.graph).run(
            algo, SetStream.from_graph(planted_setcover.graph, order="random", seed=2)
        )
        assert report.coverage_fraction == pytest.approx(1.0)

    def test_single_pass_variant(self, planted_setcover):
        algo = ThresholdPartialSetCover(planted_setcover.m, outlier_fraction=0.2, passes=1)
        report = StreamingRunner(planted_setcover.graph).run(
            algo, SetStream.from_graph(planted_setcover.graph, order="random", seed=3)
        )
        assert report.passes == 1
        assert report.coverage_fraction >= 1 - 0.2 - 1e-9

    def test_space_tracks_ground_set(self, planted_setcover):
        algo = ThresholdPartialSetCover(planted_setcover.m, outlier_fraction=0.1, passes=2)
        report = StreamingRunner(planted_setcover.graph).run(
            algo, SetStream.from_graph(planted_setcover.graph, order="random", seed=4)
        )
        # O~(m) behaviour: it stores at least the whole universe.
        assert report.space_peak >= planted_setcover.m

    def test_threshold_schedule_decreasing(self):
        algo = ThresholdPartialSetCover(1000, outlier_fraction=0.1, passes=4)
        thresholds = [algo._threshold(j) for j in range(4)]
        assert all(a >= b for a, b in zip(thresholds, thresholds[1:]))
        assert thresholds[-1] >= 1.0

    def test_no_duplicate_selections(self, planted_setcover):
        algo = ThresholdPartialSetCover(planted_setcover.m, outlier_fraction=0.05, passes=3)
        report = StreamingRunner(planted_setcover.graph).run(
            algo, SetStream.from_graph(planted_setcover.graph, order="random", seed=5)
        )
        assert len(report.solution) == len(set(report.solution))

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            ThresholdPartialSetCover(0, 0.1)
        with pytest.raises(ValueError):
            ThresholdPartialSetCover(10, 1.5)
        with pytest.raises(ValueError):
            ThresholdPartialSetCover(10, 0.1, passes=0)

    def test_describe(self):
        algo = ThresholdPartialSetCover(100, 0.1, passes=2)
        info = algo.describe()
        assert info["algorithm"] == "threshold-partial-cover"
        assert info["passes"] == 2
