"""Unit tests for repro.baselines.harpeled."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.harpeled import HarPeledSetCover
from repro.coverage.bipartite import BipartiteGraph
from repro.streaming.batches import EventBatch
from repro.streaming.runner import StreamingRunner
from repro.streaming.stream import SetStream


class TestHarPeledSetCover:
    def test_produces_full_cover(self, planted_setcover):
        algo = HarPeledSetCover(planted_setcover.m, passes=4)
        report = StreamingRunner(planted_setcover.graph).run(
            algo, SetStream.from_graph(planted_setcover.graph, order="random", seed=1)
        )
        assert report.coverage_fraction == pytest.approx(1.0)

    def test_pass_count_respected(self, planted_setcover):
        for passes in (2, 3, 5):
            algo = HarPeledSetCover(planted_setcover.m, passes=passes)
            report = StreamingRunner(planted_setcover.graph).run(
                algo, SetStream.from_graph(planted_setcover.graph, order="random", seed=2)
            )
            assert report.passes == passes

    def test_guess_doubles_when_progress_stalls(self, planted_setcover):
        algo = HarPeledSetCover(planted_setcover.m, passes=4, initial_guess=1)
        StreamingRunner(planted_setcover.graph).run(
            algo, SetStream.from_graph(planted_setcover.graph, order="random", seed=3)
        )
        assert algo.describe()["final_guess"] >= 1

    def test_solution_size_reasonable(self, planted_setcover):
        import math

        optimum = len(planted_setcover.planted_solution)
        algo = HarPeledSetCover(planted_setcover.m, passes=4)
        report = StreamingRunner(planted_setcover.graph).run(
            algo, SetStream.from_graph(planted_setcover.graph, order="random", seed=4)
        )
        assert report.solution_size <= 4 * math.log(planted_setcover.m) * optimum + 4

    def test_space_includes_ground_set(self, planted_setcover):
        algo = HarPeledSetCover(planted_setcover.m, passes=3)
        report = StreamingRunner(planted_setcover.graph).run(
            algo, SetStream.from_graph(planted_setcover.graph, order="random", seed=5)
        )
        assert report.space_peak >= planted_setcover.m * 0.9

    def test_no_duplicates(self, planted_setcover):
        algo = HarPeledSetCover(planted_setcover.m, passes=3)
        report = StreamingRunner(planted_setcover.graph).run(
            algo, SetStream.from_graph(planted_setcover.graph, order="random", seed=6)
        )
        assert len(report.solution) == len(set(report.solution))

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            HarPeledSetCover(0)
        with pytest.raises(ValueError):
            HarPeledSetCover(10, passes=0)
        with pytest.raises(ValueError):
            HarPeledSetCover(10, passes=2, initial_guess=0)


def _witness_heavy_graph() -> BipartiteGraph:
    """A graph whose final patch pass hinges on witness bookkeeping.

    One giant set clears every threshold; a tail of tiny overlapping sets
    never does, so the final cover must be patched from witnesses — the
    exact state the batched observe path maintains vectorised.  The tiny
    sets overlap pairwise, making the patch sensitive to *which* set each
    element witnessed first.
    """
    graph = BipartiteGraph(12)
    for element in range(40):
        graph.add_edge(0, element)
    for i in range(11):
        for offset in range(3):
            graph.add_edge(1 + i, 40 + i + offset)
    return graph


class TestProcessBatchEquivalence:
    """Hostile cases for the native CSR threshold prefilter."""

    def _run(self, graph, batch_size, *, passes=4, seed=7):
        algo = HarPeledSetCover(max(1, graph.num_elements), passes=passes)
        stream = SetStream.from_graph(graph, order="random", seed=seed)
        report = StreamingRunner(graph).run(algo, stream, batch_size=batch_size)
        return report, algo

    def test_rejects_edge_batches(self):
        algo = HarPeledSetCover(10)
        edge_batch = EventBatch(set_ids=np.array([0]), elements=np.array([1]))
        with pytest.raises(TypeError):
            algo.process_batch(edge_batch)

    @pytest.mark.parametrize("batch_size", (1, 7, 1024))
    def test_internal_state_matches_scalar(self, batch_size, planted_setcover):
        """Internal state (not just the report) is byte-identical."""
        graph = planted_setcover.graph
        scalar_report, scalar_algo = self._run(graph, None)
        batched_report, batched_algo = self._run(graph, batch_size)
        assert batched_report.solution == scalar_report.solution
        assert batched_report.coverage == scalar_report.coverage
        assert batched_report.space_peak == scalar_report.space_peak
        assert batched_algo._witness == scalar_algo._witness
        assert batched_algo._covered == scalar_algo._covered
        assert batched_algo._universe == scalar_algo._universe
        assert batched_algo._guess == scalar_algo._guess
        assert batched_algo._selected == scalar_algo._selected
        assert batched_algo.describe() == scalar_algo.describe()

    @pytest.mark.parametrize("batch_size", (1, 7, 1024))
    def test_witness_patch_matches_scalar(self, batch_size):
        """The final-pass witness collapse records first-event-wins owners."""
        graph = _witness_heavy_graph()
        scalar_report, scalar_algo = self._run(graph, None)
        batched_report, batched_algo = self._run(graph, batch_size)
        assert batched_report.solution == scalar_report.solution
        assert batched_algo._witness == scalar_algo._witness
        assert batched_report.space_peak == scalar_report.space_peak

    @pytest.mark.parametrize("batch_size", (1, 7, 1024))
    def test_single_pass_collapses_to_one_observation(self, batch_size):
        """passes=1 makes every batch a pure witness/universe observation."""
        graph = _witness_heavy_graph()
        scalar_report, scalar_algo = self._run(graph, None, passes=1)
        batched_report, batched_algo = self._run(graph, batch_size, passes=1)
        assert batched_report.solution == scalar_report.solution
        assert batched_algo._witness == scalar_algo._witness
        assert batched_algo._universe == scalar_algo._universe

    def test_prefilter_never_skips_acceptable_sets(self):
        """Every set at/above the threshold goes through the exact path."""
        graph = _witness_heavy_graph()
        scalar_report, _ = self._run(graph, None)
        for batch_size in (1, 7, 1024):
            batched_report, _ = self._run(graph, batch_size)
            # The giant set must be selected under both drive modes.
            assert 0 in batched_report.solution
            assert batched_report.solution == scalar_report.solution
