"""Unit tests for repro.baselines.harpeled."""

from __future__ import annotations

import pytest

from repro.baselines.harpeled import HarPeledSetCover
from repro.streaming.runner import StreamingRunner
from repro.streaming.stream import SetStream


class TestHarPeledSetCover:
    def test_produces_full_cover(self, planted_setcover):
        algo = HarPeledSetCover(planted_setcover.m, passes=4)
        report = StreamingRunner(planted_setcover.graph).run(
            algo, SetStream.from_graph(planted_setcover.graph, order="random", seed=1)
        )
        assert report.coverage_fraction == pytest.approx(1.0)

    def test_pass_count_respected(self, planted_setcover):
        for passes in (2, 3, 5):
            algo = HarPeledSetCover(planted_setcover.m, passes=passes)
            report = StreamingRunner(planted_setcover.graph).run(
                algo, SetStream.from_graph(planted_setcover.graph, order="random", seed=2)
            )
            assert report.passes == passes

    def test_guess_doubles_when_progress_stalls(self, planted_setcover):
        algo = HarPeledSetCover(planted_setcover.m, passes=4, initial_guess=1)
        StreamingRunner(planted_setcover.graph).run(
            algo, SetStream.from_graph(planted_setcover.graph, order="random", seed=3)
        )
        assert algo.describe()["final_guess"] >= 1

    def test_solution_size_reasonable(self, planted_setcover):
        import math

        optimum = len(planted_setcover.planted_solution)
        algo = HarPeledSetCover(planted_setcover.m, passes=4)
        report = StreamingRunner(planted_setcover.graph).run(
            algo, SetStream.from_graph(planted_setcover.graph, order="random", seed=4)
        )
        assert report.solution_size <= 4 * math.log(planted_setcover.m) * optimum + 4

    def test_space_includes_ground_set(self, planted_setcover):
        algo = HarPeledSetCover(planted_setcover.m, passes=3)
        report = StreamingRunner(planted_setcover.graph).run(
            algo, SetStream.from_graph(planted_setcover.graph, order="random", seed=5)
        )
        assert report.space_peak >= planted_setcover.m * 0.9

    def test_no_duplicates(self, planted_setcover):
        algo = HarPeledSetCover(planted_setcover.m, passes=3)
        report = StreamingRunner(planted_setcover.graph).run(
            algo, SetStream.from_graph(planted_setcover.graph, order="random", seed=6)
        )
        assert len(report.solution) == len(set(report.solution))

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            HarPeledSetCover(0)
        with pytest.raises(ValueError):
            HarPeledSetCover(10, passes=0)
        with pytest.raises(ValueError):
            HarPeledSetCover(10, passes=2, initial_guess=0)
