"""Unit tests for repro.baselines.demaine."""

from __future__ import annotations

import math

import pytest

from repro.baselines.demaine import DemaineSetCover
from repro.streaming.runner import StreamingRunner
from repro.streaming.stream import SetStream


class TestDemaineSetCover:
    def test_produces_full_cover(self, planted_setcover):
        algo = DemaineSetCover(planted_setcover.m, rounds=3)
        report = StreamingRunner(planted_setcover.graph).run(
            algo, SetStream.from_graph(planted_setcover.graph, order="random", seed=1)
        )
        assert report.coverage_fraction == pytest.approx(1.0)

    def test_pass_count_is_rounds_plus_one(self, planted_setcover):
        for rounds in (2, 3, 4):
            algo = DemaineSetCover(planted_setcover.m, rounds=rounds)
            report = StreamingRunner(planted_setcover.graph).run(
                algo, SetStream.from_graph(planted_setcover.graph, order="random", seed=2)
            )
            assert report.passes == rounds + 1

    def test_thresholds_follow_m_pow_1_over_r(self):
        algo = DemaineSetCover(num_elements_hint=10_000, rounds=4)
        factor = 10_000 ** (1 / 4)
        assert algo._threshold(0) == pytest.approx(10_000 / factor)
        assert algo._threshold(1) == pytest.approx(10_000 / factor**2)
        assert algo._threshold(3) == pytest.approx(1.0)

    def test_solution_size_reasonable_vs_optimum(self, planted_setcover):
        optimum = len(planted_setcover.planted_solution)
        algo = DemaineSetCover(planted_setcover.m, rounds=3)
        report = StreamingRunner(planted_setcover.graph).run(
            algo, SetStream.from_graph(planted_setcover.graph, order="random", seed=3)
        )
        # The guarantee is O(r log m) * optimum; assert with that slack.
        assert report.solution_size <= 4 * 3 * math.log(planted_setcover.m) * optimum

    def test_space_includes_ground_set(self, planted_setcover):
        algo = DemaineSetCover(planted_setcover.m, rounds=2)
        report = StreamingRunner(planted_setcover.graph).run(
            algo, SetStream.from_graph(planted_setcover.graph, order="random", seed=4)
        )
        assert report.space_peak >= planted_setcover.m * 0.9

    def test_no_duplicates(self, planted_setcover):
        algo = DemaineSetCover(planted_setcover.m, rounds=3)
        report = StreamingRunner(planted_setcover.graph).run(
            algo, SetStream.from_graph(planted_setcover.graph, order="random", seed=5)
        )
        assert len(report.solution) == len(set(report.solution))

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            DemaineSetCover(0, rounds=2)
        with pytest.raises(ValueError):
            DemaineSetCover(10, rounds=0)

    def test_describe(self):
        algo = DemaineSetCover(500, rounds=3)
        info = algo.describe()
        assert info["total_passes"] == 4
