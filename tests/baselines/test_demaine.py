"""Unit tests for repro.baselines.demaine."""

from __future__ import annotations

import math

import pytest

from repro.baselines.demaine import DemaineSetCover
from repro.streaming.events import SetArrival
from repro.streaming.runner import StreamingRunner
from repro.streaming.stream import SetStream


class TestDemaineSetCover:
    def test_produces_full_cover(self, planted_setcover):
        algo = DemaineSetCover(planted_setcover.m, rounds=3)
        report = StreamingRunner(planted_setcover.graph).run(
            algo, SetStream.from_graph(planted_setcover.graph, order="random", seed=1)
        )
        assert report.coverage_fraction == pytest.approx(1.0)

    def test_pass_count_is_rounds_plus_one(self, planted_setcover):
        for rounds in (2, 3, 4):
            algo = DemaineSetCover(planted_setcover.m, rounds=rounds)
            report = StreamingRunner(planted_setcover.graph).run(
                algo, SetStream.from_graph(planted_setcover.graph, order="random", seed=2)
            )
            assert report.passes == rounds + 1

    def test_thresholds_follow_m_pow_1_over_r(self):
        algo = DemaineSetCover(num_elements_hint=10_000, rounds=4)
        factor = 10_000 ** (1 / 4)
        assert algo._threshold(0) == pytest.approx(10_000 / factor)
        assert algo._threshold(1) == pytest.approx(10_000 / factor**2)
        assert algo._threshold(3) == pytest.approx(1.0)

    def test_solution_size_reasonable_vs_optimum(self, planted_setcover):
        optimum = len(planted_setcover.planted_solution)
        algo = DemaineSetCover(planted_setcover.m, rounds=3)
        report = StreamingRunner(planted_setcover.graph).run(
            algo, SetStream.from_graph(planted_setcover.graph, order="random", seed=3)
        )
        # The guarantee is O(r log m) * optimum; assert with that slack.
        assert report.solution_size <= 4 * 3 * math.log(planted_setcover.m) * optimum

    def test_space_includes_ground_set(self, planted_setcover):
        algo = DemaineSetCover(planted_setcover.m, rounds=2)
        report = StreamingRunner(planted_setcover.graph).run(
            algo, SetStream.from_graph(planted_setcover.graph, order="random", seed=4)
        )
        assert report.space_peak >= planted_setcover.m * 0.9

    def test_no_duplicates(self, planted_setcover):
        algo = DemaineSetCover(planted_setcover.m, rounds=3)
        report = StreamingRunner(planted_setcover.graph).run(
            algo, SetStream.from_graph(planted_setcover.graph, order="random", seed=5)
        )
        assert len(report.solution) == len(set(report.solution))

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            DemaineSetCover(0, rounds=2)
        with pytest.raises(ValueError):
            DemaineSetCover(10, rounds=0)

    def test_describe(self):
        algo = DemaineSetCover(500, rounds=3)
        info = algo.describe()
        assert info["total_passes"] == 4


class TestDemaineBatchedPath:
    """The native process_batch is byte-identical to the scalar feed."""

    def _family(self):
        # Deliberately hostile: duplicate members inside a set, empty sets,
        # repeated elements across sets, and a gap in the set ids.
        return {
            0: [1, 2, 3, 3],
            1: [3, 4],
            2: [],
            4: [0, 9, 9, 1],
            7: [5, 6, 7, 8, 0],
        }

    def _run(self, batch_size):
        sets = self._family()
        stream = SetStream(sets, order="random", seed=13)
        algo = DemaineSetCover(10, rounds=2)
        report = StreamingRunner(stream.to_graph()).run(
            algo, SetStream(sets, order="random", seed=13), batch_size=batch_size
        )
        return (
            report.solution,
            report.coverage,
            report.space_peak,
            report.passes,
            dict(algo._witness),
            sorted(algo._uncovered_known),
            sorted(algo._covered),
        )

    @pytest.mark.parametrize("batch_size", [1, 3, 7, 1024])
    def test_identical_to_scalar_feed(self, batch_size):
        assert self._run(batch_size) == self._run(None)

    def test_planted_instance_identical_across_batch_sizes(self, planted_setcover):
        reports = []
        for batch_size in (None, 1, 7, 1024):
            algo = DemaineSetCover(planted_setcover.m, rounds=3)
            report = StreamingRunner(planted_setcover.graph).run(
                algo,
                SetStream.from_graph(planted_setcover.graph, order="random", seed=6),
                batch_size=batch_size,
            )
            reports.append(
                (report.solution, report.coverage, report.space_peak, report.passes)
            )
        assert all(row == reports[0] for row in reports[1:])

    def test_batch_path_rejects_edge_batches(self):
        from repro.streaming.batches import EventBatch

        algo = DemaineSetCover(10, rounds=2)
        with pytest.raises(TypeError, match="set batches"):
            algo.process_batch(EventBatch.from_edges([(0, 1)]))


class TestDemaineSparseIds:
    """Huge sparse element ids stay O(distinct) memory, scalar and batched."""

    def _family(self):
        # Ids far beyond any sane dense range (the pre-flag-array code
        # handled these with Python sets; the flag cache must not try to
        # allocate O(max id) memory for them), including ids >= 2**63 that
        # an int64 conversion would overflow (scalar) or wrap negative and
        # alias real flag slots (batched).
        huge = 3_000_000_000_000
        top = 2**64 - 1
        return {
            0: [1, 2, huge],
            1: [huge, huge + 7, 2**63],
            2: [3, huge + 7, top],
            3: [999],
        }

    def _run(self, batch_size):
        sets = self._family()
        algo = DemaineSetCover(10, rounds=2)
        report = StreamingRunner(SetStream(sets).to_graph()).run(
            algo, SetStream(sets, order="random", seed=2), batch_size=batch_size
        )
        assert algo._flags.nbytes < 10_000_000  # bounded despite huge ids
        return (report.solution, report.coverage, report.space_peak,
                report.coverage_fraction)

    @pytest.mark.parametrize("batch_size", [1, 2, 1024])
    def test_runs_and_is_batch_invariant(self, batch_size):
        reference = self._run(None)
        assert self._run(batch_size) == reference
        assert reference[-1] == pytest.approx(1.0)

    def test_scalar_path_accepts_ids_beyond_int64(self):
        algo = DemaineSetCover(4, rounds=1)
        algo.start_pass(0)
        algo.process(SetArrival(set_id=0, elements=(2**63, 1)))
        assert 2**63 in algo._uncovered_known or 2**63 in algo._covered

    def test_wraparound_id_does_not_alias_dense_flags(self):
        # 2**64 - 1 cast to int64 is -1; a negative fancy index would mark
        # the *last* dense element as known and corrupt its accounting.
        # rounds=2 makes the pass-0 threshold 10, so a singleton set is
        # *skipped* and goes through the vectorised observe path.
        from repro.streaming.batches import EventBatch

        algo = DemaineSetCover(100, rounds=2)
        algo.start_pass(0)
        algo.process_batch(EventBatch.from_sets([(0, [2**64 - 1])]))
        assert 2**64 - 1 in algo._uncovered_known
        assert not algo._flags.any()  # no dense slot was touched
