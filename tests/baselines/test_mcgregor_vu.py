"""Unit tests for repro.baselines.mcgregor_vu."""

from __future__ import annotations

import math

import pytest

from repro.baselines.mcgregor_vu import McGregorVuKCover
from repro.datasets import planted_kcover_instance
from repro.offline.greedy import greedy_k_cover
from repro.streaming.runner import StreamingRunner
from repro.streaming.stream import EdgeStream


class TestMcGregorVu:
    def test_single_pass_edge_arrival(self, planted_kcover):
        algo = McGregorVuKCover(planted_kcover.n, planted_kcover.m, k=4, epsilon=0.2, seed=1)
        report = StreamingRunner(planted_kcover.graph).run(
            algo, EdgeStream.from_graph(planted_kcover.graph, order="random", seed=1)
        )
        assert report.passes == 1
        assert report.arrival_model == "edge"
        assert report.solution_size <= 4

    def test_quality_close_to_greedy(self):
        instance = planted_kcover_instance(60, 3000, k=5, seed=2)
        algo = McGregorVuKCover(instance.n, instance.m, k=5, epsilon=0.3, seed=2)
        report = StreamingRunner(instance.graph).run(
            algo, EdgeStream.from_graph(instance.graph, order="random", seed=2)
        )
        reference = greedy_k_cover(instance.graph, 5).coverage
        assert report.coverage >= (1 - 1 / math.e - 0.3) * reference

    def test_number_of_guesses_logarithmic_in_m(self):
        algo = McGregorVuKCover(50, 10_000, k=3, epsilon=0.2)
        assert algo.num_guesses() <= math.ceil(math.log2(10_000)) + 2

    def test_result_cached(self, planted_kcover):
        algo = McGregorVuKCover(planted_kcover.n, planted_kcover.m, k=3, seed=3)
        for event in EdgeStream.from_graph(planted_kcover.graph, order="random", seed=3):
            algo.process(event)
        assert algo.result() is algo.result()

    def test_space_charged(self, planted_kcover):
        algo = McGregorVuKCover(planted_kcover.n, planted_kcover.m, k=3, seed=4)
        report = StreamingRunner(planted_kcover.graph).run(
            algo, EdgeStream.from_graph(planted_kcover.graph, order="random", seed=4)
        )
        assert report.space_peak > 0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            McGregorVuKCover(0, 10, 2)
        with pytest.raises(ValueError):
            McGregorVuKCover(10, 10, 0)
        with pytest.raises(ValueError):
            McGregorVuKCover(10, 10, 2, epsilon=0.0)

    def test_describe(self):
        algo = McGregorVuKCover(10, 100, 2, seed=1)
        info = algo.describe()
        assert info["algorithm"] == "mcgregor-vu-sampling"
        assert info["guesses"] == algo.num_guesses()


class TestNativeBatchPath:
    """process_batch (value_many-prefiltered sampling test) equals scalar."""

    @pytest.mark.parametrize("batch_size", [1, 7, 256])
    def test_batched_run_is_byte_identical(self, planted_kcover, batch_size):
        def run(batch):
            algo = McGregorVuKCover(planted_kcover.n, planted_kcover.m, k=4, seed=2)
            report = StreamingRunner(planted_kcover.graph).run(
                algo,
                EdgeStream.from_graph(planted_kcover.graph, order="random", seed=3),
                batch_size=batch,
            )
            return report, algo

        scalar_report, scalar_algo = run(None)
        batched_report, batched_algo = run(batch_size)
        assert batched_report.solution == scalar_report.solution
        assert batched_report.space_peak == scalar_report.space_peak
        assert [s.graph.num_edges for s in batched_algo._guesses] == [
            s.graph.num_edges for s in scalar_algo._guesses
        ]
        assert [s.overflowed for s in batched_algo._guesses] == [
            s.overflowed for s in scalar_algo._guesses
        ]

    def test_rejects_set_batches(self):
        from repro.streaming.batches import EventBatch

        algo = McGregorVuKCover(4, 10, k=2)
        with pytest.raises(TypeError, match="edge batches"):
            algo.process_batch(EventBatch.from_sets([(0, (1, 2))]))
