"""Unit tests for repro.baselines.sieve_streaming."""

from __future__ import annotations

import pytest

from repro.baselines.sieve_streaming import SieveStreamingKCover
from repro.datasets import uniform_random_instance
from repro.offline.exact import exact_k_cover
from repro.streaming.runner import StreamingRunner
from repro.streaming.stream import SetStream


class TestSieveStreaming:
    def test_single_pass_solution_within_k(self, planted_kcover):
        algo = SieveStreamingKCover(k=4, epsilon=0.2)
        report = StreamingRunner(planted_kcover.graph).run(
            algo, SetStream.from_graph(planted_kcover.graph, order="random", seed=1)
        )
        assert report.passes == 1
        assert report.solution_size <= 4

    def test_half_guarantee_on_random_instances(self):
        for seed in range(4):
            instance = uniform_random_instance(12, 60, density=0.15, seed=seed)
            _, optimum = exact_k_cover(instance.graph, 3)
            algo = SieveStreamingKCover(k=3, epsilon=0.1)
            report = StreamingRunner(instance.graph).run(
                algo, SetStream.from_graph(instance.graph, order="random", seed=seed)
            )
            assert report.coverage >= (0.5 - 0.1) * optimum - 1e-9

    def test_thresholds_cover_right_range(self, tiny_graph):
        algo = SieveStreamingKCover(k=2, epsilon=0.5)
        for event in SetStream.from_graph(tiny_graph, order="given"):
            algo.process(event)
        assert algo.num_candidates() > 0
        thresholds = [c.threshold for c in algo._candidates.values()]
        assert min(thresholds) <= 3.0  # v_max = 3 (largest singleton)
        assert max(thresholds) >= 3.0

    def test_empty_result_before_stream(self):
        algo = SieveStreamingKCover(k=2)
        assert algo.result() == []

    def test_candidates_bounded_by_log_range(self, planted_kcover):
        algo = SieveStreamingKCover(k=5, epsilon=0.3)
        for event in SetStream.from_graph(planted_kcover.graph, order="random", seed=4):
            algo.process(event)
        import math

        bound = math.log(2 * 5, 1.3) + 3
        assert algo.num_candidates() <= bound

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            SieveStreamingKCover(k=0)
        with pytest.raises(ValueError):
            SieveStreamingKCover(k=2, epsilon=0.0)

    def test_describe(self):
        algo = SieveStreamingKCover(k=2, epsilon=0.2)
        assert algo.describe()["algorithm"] == "sieve-streaming"
