"""Unit tests for repro.baselines.saha_getoor."""

from __future__ import annotations

import pytest

from repro.baselines.saha_getoor import SahaGetoorKCover
from repro.offline.exact import exact_k_cover
from repro.datasets import uniform_random_instance
from repro.streaming.runner import StreamingRunner
from repro.streaming.stream import SetStream


class TestSahaGetoor:
    def test_fills_slots_first(self, tiny_graph):
        algo = SahaGetoorKCover(k=2)
        report = StreamingRunner(tiny_graph).run(
            algo, SetStream.from_graph(tiny_graph, order="given")
        )
        assert report.solution_size <= 2
        assert report.passes == 1
        assert report.arrival_model == "set"

    def test_internal_coverage_lower_bounds_solution(self, planted_kcover):
        # The swap bookkeeping is conservative: after a swap the victim's
        # charged elements are dropped even when another kept set still covers
        # them, so the tracked value never exceeds the real coverage.
        algo = SahaGetoorKCover(k=4)
        report = StreamingRunner(planted_kcover.graph).run(
            algo, SetStream.from_graph(planted_kcover.graph, order="random", seed=1)
        )
        actual = planted_kcover.graph.coverage(report.solution)
        assert algo.current_coverage() <= actual
        assert algo.current_coverage() >= 0.8 * actual

    def test_quarter_guarantee_on_random_instances(self):
        for seed in range(4):
            instance = uniform_random_instance(12, 60, density=0.15, seed=seed)
            _, optimum = exact_k_cover(instance.graph, 3)
            algo = SahaGetoorKCover(k=3)
            report = StreamingRunner(instance.graph).run(
                algo, SetStream.from_graph(instance.graph, order="random", seed=seed)
            )
            assert report.coverage >= 0.25 * optimum - 1e-9

    def test_space_scales_with_covered_elements(self, planted_kcover):
        algo = SahaGetoorKCover(k=4)
        report = StreamingRunner(planted_kcover.graph).run(
            algo, SetStream.from_graph(planted_kcover.graph, order="random", seed=2)
        )
        # Stores ~the covered elements: between coverage and coverage + k slots.
        assert report.space_peak >= report.coverage * 0.5
        assert report.space_peak <= planted_kcover.m + 2 * 4 + report.coverage

    def test_swap_improves_on_adversarial_order(self, tiny_graph):
        # Small sets first, then the big ones: swaps must kick in.
        algo = SahaGetoorKCover(k=1)
        stream = SetStream(
            {3: [5], 1: [2, 3], 0: [0, 1, 2], 2: [3, 4, 5]}, order="given"
        )
        report = StreamingRunner(tiny_graph).run(algo, stream)
        assert report.coverage >= 3

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            SahaGetoorKCover(k=0)
        with pytest.raises(ValueError):
            SahaGetoorKCover(k=2, swap_factor=1.0)

    def test_describe(self):
        algo = SahaGetoorKCover(k=3)
        info = algo.describe()
        assert info["algorithm"] == "saha-getoor-swap"
        assert info["k"] == 3


class TestNativeBatchPath:
    """process_batch (CSR-direct, count-prefiltered) equals the scalar path."""

    @pytest.mark.parametrize("batch_size", [1, 3, 64])
    @pytest.mark.parametrize("seed", [0, 4])
    def test_batched_run_is_byte_identical(self, batch_size, seed):
        instance = uniform_random_instance(25, 150, density=0.12, seed=seed)
        scalar = StreamingRunner(instance.graph).run(
            SahaGetoorKCover(k=5),
            SetStream.from_graph(instance.graph, order="random", seed=seed),
        )
        batched = StreamingRunner(instance.graph).run(
            SahaGetoorKCover(k=5),
            SetStream.from_graph(instance.graph, order="random", seed=seed),
            batch_size=batch_size,
        )
        assert batched.solution == scalar.solution
        assert batched.coverage == scalar.coverage
        assert batched.space_peak == scalar.space_peak

    def test_prefilter_skips_small_sets_once_full(self):
        from repro.streaming.batches import EventBatch

        algo = SahaGetoorKCover(k=1)
        algo.process_batch(EventBatch.from_sets([(0, (0, 1, 2, 3))]))
        assert algo.result() == [0]
        # A tiny set cannot reach 2x the minimum charge: skipped, no change.
        algo.process_batch(EventBatch.from_sets([(1, (9,)), (2, tuple(range(10, 19)))]))
        assert algo.result() == [2]  # the big set swapped in, the tiny one did not

    def test_rejects_edge_batches(self):
        from repro.streaming.batches import EventBatch

        with pytest.raises(TypeError, match="set batches"):
            SahaGetoorKCover(k=2).process_batch(EventBatch.from_edges([(0, 1)]))
