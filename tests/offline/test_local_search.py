"""Unit tests for repro.offline.local_search."""

from __future__ import annotations

import pytest

from repro.datasets import uniform_random_instance
from repro.offline.exact import exact_k_cover
from repro.offline.greedy import greedy_k_cover
from repro.offline.local_search import local_search_k_cover


class TestLocalSearch:
    def test_never_worse_than_initial(self, planted_kcover):
        result = local_search_k_cover(planted_kcover.graph, 4, seed=3)
        assert result.coverage >= result.improved_from

    def test_respects_k(self, planted_kcover):
        result = local_search_k_cover(planted_kcover.graph, 4, seed=3)
        assert len(result.selected) == 4
        assert len(set(result.selected)) == 4

    def test_explicit_initial_solution(self, tiny_graph):
        result = local_search_k_cover(tiny_graph, 2, initial=[1, 3])
        assert result.coverage == 6  # local search fixes the bad start

    def test_start_from_greedy_is_local_optimum(self, tiny_graph):
        result = local_search_k_cover(tiny_graph, 2, start_from_greedy=True)
        assert result.coverage == greedy_k_cover(tiny_graph, 2).coverage
        assert result.iterations == 0

    def test_half_guarantee_on_small_instances(self):
        for seed in range(3):
            instance = uniform_random_instance(10, 40, density=0.15, seed=seed)
            _, optimum = exact_k_cover(instance.graph, 3)
            result = local_search_k_cover(instance.graph, 3, seed=seed)
            assert result.coverage >= 0.5 * optimum - 1e-9

    def test_invalid_k(self, tiny_graph):
        with pytest.raises(ValueError):
            local_search_k_cover(tiny_graph, 0)

    def test_k_capped_at_n(self, tiny_graph):
        result = local_search_k_cover(tiny_graph, 10, seed=1)
        assert len(result.selected) <= tiny_graph.num_sets
