"""Unit tests for repro.offline.ilp (MILP reference solvers)."""

from __future__ import annotations

import pytest

from repro.datasets import planted_setcover_instance, uniform_random_instance
from repro.offline.exact import exact_k_cover, exact_partial_cover, exact_set_cover
from repro.offline.greedy import greedy_k_cover, greedy_set_cover
from repro.offline.ilp import ilp_k_cover, ilp_partial_cover, ilp_set_cover


class TestIlpSetCover:
    def test_matches_bruteforce_on_small_instances(self):
        for seed in range(3):
            instance = uniform_random_instance(10, 40, density=0.2, seed=seed)
            ilp = ilp_set_cover(instance.graph)
            brute = exact_set_cover(instance.graph)
            assert ilp.optimal
            assert len(ilp.selected) == len(brute)
            assert instance.graph.coverage(ilp.selected) == instance.m

    def test_tiny_graph(self, tiny_graph):
        result = ilp_set_cover(tiny_graph)
        assert len(result.selected) == 2
        assert tiny_graph.coverage(result.selected) == 6

    def test_planted_medium_instance(self):
        instance = planted_setcover_instance(60, 900, cover_size=9, seed=4)
        result = ilp_set_cover(instance.graph)
        assert result.optimal
        assert len(result.selected) == 9
        assert instance.graph.coverage(result.selected) == instance.m

    def test_never_larger_than_greedy(self, planted_setcover):
        ilp = ilp_set_cover(planted_setcover.graph)
        greedy = greedy_set_cover(planted_setcover.graph)
        assert len(ilp.selected) <= greedy.size


class TestIlpKCover:
    def test_matches_bruteforce_on_small_instances(self):
        for seed in range(3):
            instance = uniform_random_instance(10, 40, density=0.2, seed=seed)
            ilp = ilp_k_cover(instance.graph, 3)
            _, brute = exact_k_cover(instance.graph, 3)
            assert ilp.objective == brute
            assert instance.graph.coverage(ilp.selected) == brute

    def test_at_least_greedy_on_medium(self, planted_kcover):
        ilp = ilp_k_cover(planted_kcover.graph, 4)
        greedy = greedy_k_cover(planted_kcover.graph, 4)
        assert ilp.objective >= greedy.coverage
        assert len(ilp.selected) <= 4

    def test_invalid_k(self, tiny_graph):
        with pytest.raises(ValueError):
            ilp_k_cover(tiny_graph, 0)


class TestIlpPartialCover:
    def test_matches_bruteforce_on_small_instances(self):
        for seed in range(3):
            instance = uniform_random_instance(9, 30, density=0.25, seed=seed)
            ilp = ilp_partial_cover(instance.graph, 0.2)
            brute = exact_partial_cover(instance.graph, 0.2)
            assert len(ilp.selected) == len(brute)
            assert instance.graph.coverage_fraction(ilp.selected) >= 0.8 - 1e-9

    def test_zero_outliers_equals_set_cover(self, tiny_graph):
        assert len(ilp_partial_cover(tiny_graph, 0.0).selected) == len(
            ilp_set_cover(tiny_graph).selected
        )

    def test_all_outliers_is_empty(self, tiny_graph):
        assert ilp_partial_cover(tiny_graph, 1.0).selected == []

    def test_partial_not_larger_than_full(self, planted_setcover):
        full = ilp_set_cover(planted_setcover.graph)
        partial = ilp_partial_cover(planted_setcover.graph, 0.15)
        assert len(partial.selected) <= len(full.selected)

    def test_invalid_fraction(self, tiny_graph):
        with pytest.raises(ValueError):
            ilp_partial_cover(tiny_graph, 1.5)
