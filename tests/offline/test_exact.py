"""Unit tests for repro.offline.exact."""

from __future__ import annotations

from itertools import combinations

import pytest

from repro.coverage.bipartite import BipartiteGraph
from repro.datasets import uniform_random_instance
from repro.errors import InfeasibleError
from repro.offline.exact import (
    exact_k_cover,
    exact_partial_cover,
    exact_set_cover,
    optimum_k_cover_value,
)


class TestExactKCover:
    def test_matches_bruteforce_on_random(self):
        for seed in range(4):
            instance = uniform_random_instance(10, 30, density=0.2, seed=seed)
            graph = instance.graph
            solution, value = exact_k_cover(graph, 3)
            brute = max(
                graph.coverage(c) for c in combinations(range(graph.num_sets), 3)
            )
            assert value == brute
            assert graph.coverage(solution) == value

    def test_tiny_graph_optimum(self, tiny_graph):
        solution, value = exact_k_cover(tiny_graph, 2)
        assert value == 6
        assert set(solution) == {0, 2}

    def test_k_greater_than_n(self, tiny_graph):
        solution, value = exact_k_cover(tiny_graph, 10)
        assert value == 6
        assert len(solution) <= 4

    def test_invalid_k(self, tiny_graph):
        with pytest.raises(ValueError):
            exact_k_cover(tiny_graph, 0)

    def test_value_helper(self, tiny_graph):
        assert optimum_k_cover_value(tiny_graph, 1) == 3


class TestExactSetCover:
    def test_tiny_graph(self, tiny_graph):
        cover = exact_set_cover(tiny_graph)
        assert len(cover) == 2
        assert tiny_graph.coverage(cover) == 6

    def test_planted_cover_found(self):
        graph = BipartiteGraph(6)
        # Planted partition of 9 elements into 3 sets plus noise subsets.
        for set_id, members in enumerate([(0, 1, 2), (3, 4, 5), (6, 7, 8)]):
            for element in members:
                graph.add_edge(set_id, element)
        graph.add_edge(3, 0)
        graph.add_edge(4, 3)
        graph.add_edge(5, 6)
        cover = exact_set_cover(graph)
        assert len(cover) == 3
        assert graph.coverage(cover) == 9

    def test_infeasible_with_max_size(self, tiny_graph):
        with pytest.raises(InfeasibleError):
            exact_set_cover(tiny_graph, max_size=1)

    def test_empty_universe(self):
        graph = BipartiteGraph(2)
        assert exact_set_cover(graph) == []


class TestExactPartialCover:
    def test_partial_smaller_than_full(self, tiny_graph):
        full = exact_set_cover(tiny_graph)
        partial = exact_partial_cover(tiny_graph, 0.4)
        assert len(partial) <= len(full)
        assert tiny_graph.coverage_fraction(partial) >= 0.6 - 1e-12

    def test_zero_outliers_equals_set_cover_size(self, tiny_graph):
        assert len(exact_partial_cover(tiny_graph, 0.0)) == len(exact_set_cover(tiny_graph))

    def test_all_outliers_allowed(self, tiny_graph):
        assert exact_partial_cover(tiny_graph, 1.0) == []

    def test_infeasible_with_max_size(self, tiny_graph):
        with pytest.raises(InfeasibleError):
            exact_partial_cover(tiny_graph, 0.0, max_size=1)
