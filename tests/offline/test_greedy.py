"""Unit tests for repro.offline.greedy."""

from __future__ import annotations

import pytest

from repro.coverage.bipartite import BipartiteGraph
from repro.offline.exact import exact_k_cover
from repro.offline.greedy import (
    greedy_k_cover,
    greedy_order,
    greedy_partial_cover,
    greedy_set_cover,
)


class TestGreedyKCover:
    def test_picks_best_pair(self, tiny_graph):
        result = greedy_k_cover(tiny_graph, 2)
        assert result.coverage == 6
        assert set(result.selected) == {0, 2}
        assert result.gains == [3, 3]

    def test_k_one(self, tiny_graph):
        result = greedy_k_cover(tiny_graph, 1)
        assert result.coverage == 3
        assert result.selected[0] in (0, 2)

    def test_k_larger_than_needed_stops_at_saturation(self, tiny_graph):
        result = greedy_k_cover(tiny_graph, 4)
        assert result.coverage == 6
        assert result.size <= 3  # sets 1 and 3 add nothing once 0, 2 chosen

    def test_forbidden_sets_excluded(self, tiny_graph):
        result = greedy_k_cover(tiny_graph, 2, forbidden=[0])
        assert 0 not in result.selected

    def test_invalid_k(self, tiny_graph):
        with pytest.raises(ValueError):
            greedy_k_cover(tiny_graph, 0)

    def test_guarantee_against_exact_on_random_instances(self):
        # 1 - 1/e guarantee (with slack for ties): check on several instances.
        from repro.datasets import uniform_random_instance

        for seed in range(5):
            instance = uniform_random_instance(12, 40, density=0.15, k=3, seed=seed)
            greedy = greedy_k_cover(instance.graph, 3)
            _, optimum = exact_k_cover(instance.graph, 3)
            assert greedy.coverage >= (1 - 1 / 2.718281828) * optimum - 1e-9

    def test_gains_are_non_increasing(self, planted_kcover):
        result = greedy_k_cover(planted_kcover.graph, 8)
        assert all(a >= b for a, b in zip(result.gains, result.gains[1:]))

    def test_coverage_equals_sum_of_gains(self, planted_kcover):
        result = greedy_k_cover(planted_kcover.graph, 6)
        assert result.coverage == sum(result.gains)

    def test_selected_are_distinct(self, planted_kcover):
        result = greedy_k_cover(planted_kcover.graph, 10)
        assert len(result.selected) == len(set(result.selected))


class TestGreedySetCover:
    def test_covers_everything(self, tiny_graph):
        result = greedy_set_cover(tiny_graph)
        assert tiny_graph.coverage(result.selected) == tiny_graph.num_elements

    def test_minimal_on_tiny(self, tiny_graph):
        result = greedy_set_cover(tiny_graph)
        assert result.size == 2  # {0, 2} covers all six elements

    def test_allow_partial_on_fully_coverable_graph(self):
        graph = BipartiteGraph(2)
        graph.add_edge(0, 0)
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        result = greedy_set_cover(graph, allow_partial=True)
        assert result.coverage == graph.num_elements
        assert set(result.selected) == {0, 1}

    def test_ln_m_guarantee_on_planted(self, planted_setcover):
        result = greedy_set_cover(planted_setcover.graph)
        import math

        optimum = len(planted_setcover.planted_solution)
        assert result.size <= optimum * (math.log(planted_setcover.m) + 1)


class TestGreedyPartialCover:
    def test_reaches_target_fraction(self, planted_setcover):
        result = greedy_partial_cover(planted_setcover.graph, 0.9)
        assert planted_setcover.graph.coverage_fraction(result.selected) >= 0.9

    def test_zero_target_returns_empty(self, tiny_graph):
        result = greedy_partial_cover(tiny_graph, 0.0)
        assert result.selected == []

    def test_full_target_equals_set_cover(self, tiny_graph):
        partial = greedy_partial_cover(tiny_graph, 1.0)
        full = greedy_set_cover(tiny_graph)
        assert partial.coverage == full.coverage

    def test_partial_cover_uses_fewer_sets(self, planted_setcover):
        partial = greedy_partial_cover(planted_setcover.graph, 0.6)
        full = greedy_set_cover(planted_setcover.graph)
        assert partial.size <= full.size

    def test_invalid_fraction(self, tiny_graph):
        with pytest.raises(ValueError):
            greedy_partial_cover(tiny_graph, 1.5)


class TestGreedyOrder:
    def test_order_covers_all_coverable(self, tiny_graph):
        order = greedy_order(tiny_graph)
        assert tiny_graph.coverage(order) == tiny_graph.num_elements

    def test_order_prefix_matches_k_cover(self, tiny_graph):
        order = greedy_order(tiny_graph)
        k2 = greedy_k_cover(tiny_graph, 2)
        assert order[:2] == k2.selected


class TestKernelPath:
    """Every greedy entry point accepts a packed-bitset kernel."""

    def _kernel(self, graph, backend="words"):
        from repro.coverage.bitset import BitsetCoverage

        return BitsetCoverage(graph, backend=backend)

    def test_k_cover_matches(self, tiny_graph):
        kernel = self._kernel(tiny_graph)
        plain = greedy_k_cover(tiny_graph, 2)
        fast = greedy_k_cover(tiny_graph, 2, kernel=kernel)
        assert fast.coverage == plain.coverage
        assert tiny_graph.coverage(fast.selected) == fast.coverage
        assert fast.gains and fast.evaluations > 0

    def test_k_cover_forbidden(self, tiny_graph):
        kernel = self._kernel(tiny_graph)
        fast = greedy_k_cover(tiny_graph, 3, forbidden=[0], kernel=kernel)
        assert 0 not in fast.selected

    def test_set_cover_matches(self, tiny_graph):
        kernel = self._kernel(tiny_graph)
        plain = greedy_set_cover(tiny_graph)
        fast = greedy_set_cover(tiny_graph, kernel=kernel)
        assert fast.coverage == plain.coverage == tiny_graph.num_elements

    def test_partial_cover_matches(self, tiny_graph):
        kernel = self._kernel(tiny_graph)
        plain = greedy_partial_cover(tiny_graph, 0.5)
        fast = greedy_partial_cover(tiny_graph, 0.5, kernel=kernel)
        assert fast.coverage >= 3
        assert plain.coverage >= 3

    def test_greedy_order_matches_positive_gain_prefix(self, tiny_graph):
        kernel = self._kernel(tiny_graph)
        assert set(greedy_order(tiny_graph, kernel=kernel)) == set(greedy_order(tiny_graph))

    def test_kernel_and_graph_greedy_agree_on_tie_heavy_instances(self):
        # Regression: tie-breaking must not depend on which implementation
        # evaluates the greedy — this seed hits a consequential step-4 tie.
        from repro.datasets import zipf_instance

        for seed in (6, 0, 3, 11):
            graph = zipf_instance(40, 500, edges_per_set=30, k=6, seed=seed).graph
            plain = greedy_k_cover(graph, 6)
            for backend in ("bytes", "words"):
                kernel_result = greedy_k_cover(
                    graph, 6, kernel=self._kernel(graph, backend=backend)
                )
                assert kernel_result.selected == plain.selected
                assert kernel_result.coverage == plain.coverage
                assert kernel_result.gains == plain.gains
