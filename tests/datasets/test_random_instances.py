"""Unit tests for repro.datasets.random_instances."""

from __future__ import annotations

import pytest

from repro.coverage.instance import ProblemKind
from repro.datasets.random_instances import (
    planted_kcover_instance,
    planted_setcover_instance,
    uniform_random_instance,
    zipf_instance,
)
from repro.offline.greedy import greedy_k_cover


class TestUniform:
    def test_sizes(self):
        instance = uniform_random_instance(30, 200, density=0.1, k=3, seed=1)
        assert instance.n == 30
        assert instance.m == 200
        assert instance.kind is ProblemKind.K_COVER

    def test_no_isolated_elements(self):
        instance = uniform_random_instance(10, 300, density=0.01, seed=2)
        assert instance.m == 300  # every element attached somewhere

    def test_deterministic_in_seed(self):
        a = uniform_random_instance(10, 50, density=0.2, seed=3)
        b = uniform_random_instance(10, 50, density=0.2, seed=3)
        assert a.graph == b.graph

    def test_density_controls_edges(self):
        sparse = uniform_random_instance(20, 200, density=0.02, seed=4)
        dense = uniform_random_instance(20, 200, density=0.2, seed=4)
        assert dense.num_edges > sparse.num_edges

    def test_invalid_density(self):
        with pytest.raises(ValueError):
            uniform_random_instance(10, 10, density=0.0)


class TestZipf:
    def test_sizes_and_metadata(self):
        instance = zipf_instance(25, 400, edges_per_set=30, k=4, seed=5)
        assert instance.n == 25
        assert instance.m == 400
        assert instance.metadata["generator"] == "zipf"

    def test_heavy_tail_degrees(self):
        instance = zipf_instance(40, 500, edges_per_set=40, zipf_exponent=1.3, seed=6)
        degrees = sorted(
            (instance.graph.element_degree(e) for e in instance.graph.elements()), reverse=True
        )
        # The most popular element should be in far more sets than the median.
        median = degrees[len(degrees) // 2]
        assert degrees[0] >= max(4 * max(median, 1), 8)

    def test_invalid_exponent(self):
        with pytest.raises(ValueError):
            zipf_instance(10, 100, zipf_exponent=0.0)


class TestPlantedKCover:
    def test_planted_solution_recorded(self):
        instance = planted_kcover_instance(50, 1000, k=5, seed=7)
        assert instance.planted_solution == tuple(range(5))
        assert instance.planted_value == instance.graph.coverage(range(5))

    def test_planted_value_close_to_target_coverage(self):
        instance = planted_kcover_instance(50, 1000, k=5, planted_coverage=0.8, seed=8)
        assert instance.planted_value >= 0.75 * 1000
        assert instance.planted_value <= 0.85 * 1000

    def test_planted_is_near_optimal_for_greedy(self):
        instance = planted_kcover_instance(40, 800, k=4, seed=9)
        greedy = greedy_k_cover(instance.graph, 4)
        # Greedy cannot beat the planted union by much (noise sets are tiny).
        assert greedy.coverage <= instance.planted_value * 1.15

    def test_k_larger_than_n_rejected(self):
        from repro.errors import InvalidInstanceError

        with pytest.raises(InvalidInstanceError):
            planted_kcover_instance(3, 100, k=5)


class TestPlantedSetCover:
    def test_planted_cover_is_full(self):
        instance = planted_setcover_instance(30, 500, cover_size=6, seed=10)
        assert instance.graph.coverage(instance.planted_solution) == instance.m
        assert instance.kind is ProblemKind.SET_COVER

    def test_outlier_variant_kind(self):
        instance = planted_setcover_instance(30, 500, cover_size=6, outlier_fraction=0.1, seed=10)
        assert instance.kind is ProblemKind.SET_COVER_OUTLIERS
        assert instance.outlier_fraction == 0.1

    def test_noise_sets_do_not_shrink_cover(self):
        instance = planted_setcover_instance(30, 400, cover_size=5, seed=11)
        # No single noise set covers the whole ground set.
        for set_id in range(5, 30):
            assert instance.graph.set_degree(set_id) < instance.m

    def test_cover_size_larger_than_n_rejected(self):
        from repro.errors import InvalidInstanceError

        with pytest.raises(InvalidInstanceError):
            planted_setcover_instance(3, 100, cover_size=10)
