"""Unit tests for repro.datasets.adversarial."""

from __future__ import annotations

import pytest

from repro.datasets.adversarial import (
    disjointness_family,
    purification_family,
    uniform_sampling_trap,
)
from repro.offline.greedy import greedy_k_cover


class TestDisjointnessFamily:
    def test_balanced_family(self):
        family = disjointness_family(40, count=10, seed=1)
        assert len(family) == 10
        intersecting = sum(1 for inst in family if inst.intersects)
        assert intersecting == 5

    def test_sizes(self):
        family = disjointness_family(25, count=4, seed=2)
        assert all(inst.num_sets == 25 for inst in family)


class TestPurificationFamily:
    def test_pairs_are_consistent(self):
        family = purification_family(20, 4, count=3, seed=3)
        assert len(family) == 3
        for instance, graph in family:
            assert graph.num_sets == 20
            gold = sorted(instance.gold_items)
            assert graph.coverage(gold) == 4 + 4 * (20 // 4)


class TestSamplingTrap:
    def test_planted_optimum_is_big_set(self):
        instance = uniform_sampling_trap(num_sets=30, big_set_size=500, seed=4)
        assert instance.planted_solution == (0,)
        best = greedy_k_cover(instance.graph, 1)
        assert best.selected == [0]
        assert instance.graph.set_degree(0) == 500

    def test_decoys_share_popular_block(self):
        instance = uniform_sampling_trap(
            num_sets=10, big_set_size=100, decoy_popular_elements=5, seed=5
        )
        popular = set(instance.graph.elements_of(1)) & set(instance.graph.elements_of(2))
        assert len(popular) >= 5

    def test_sampling_rate_must_respect_lemma_2_2(self):
        """Sampling far below ~1/Opt loses the optimum's signal entirely.

        Lemma 2.2 requires the sampling probability p to be at least of order
        1/Opt_k (times log factors).  On the trap instance an aggressive
        subsample leaves the planted optimum with zero sampled elements —
        indistinguishable from the decoys — while a rate above the lemma's
        threshold ranks it first.
        """
        from repro.core.hashing import UniformHash
        from repro.core.sketch import build_hp

        instance = uniform_sampling_trap(
            num_sets=40, big_set_size=1000, decoy_popular_elements=12, seed=6
        )
        hash_fn = UniformHash(5)
        # Rate far below 1/Opt = 1/1000 scaled by the realised hash draws.
        starved = build_hp(instance.graph, 0.002, hash_fn)
        assert starved.set_degree(0) == 0
        # Rate comfortably above the threshold recovers the right ranking.
        healthy = build_hp(instance.graph, 0.05, hash_fn)
        assert healthy.set_degree(0) == max(
            healthy.set_degree(s) for s in range(instance.n)
        )

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            uniform_sampling_trap(num_sets=0)
