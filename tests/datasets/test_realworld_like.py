"""Unit tests for repro.datasets.realworld_like."""

from __future__ import annotations

import pytest

from repro.datasets.realworld_like import (
    blog_watch_instance,
    data_summarization_instance,
    labeled_blog_watch_system,
)


class TestBlogWatch:
    def test_sizes(self):
        instance = blog_watch_instance(num_blogs=50, num_stories=800, k=5, seed=1)
        assert instance.n == 50
        assert instance.m == 800
        assert instance.k == 5

    def test_hubs_are_larger_than_niche_blogs(self):
        instance = blog_watch_instance(
            num_blogs=100, num_stories=2000, hub_fraction=0.05, hub_coverage=0.1, seed=2
        )
        num_hubs = instance.metadata["num_hubs"]
        hub_sizes = [instance.graph.set_degree(s) for s in range(num_hubs)]
        niche_sizes = [instance.graph.set_degree(s) for s in range(num_hubs, 100)]
        assert min(hub_sizes) > 2 * (sum(niche_sizes) / len(niche_sizes))

    def test_no_isolated_stories(self):
        instance = blog_watch_instance(num_blogs=20, num_stories=500, seed=3)
        assert instance.m == 500

    def test_deterministic(self):
        a = blog_watch_instance(num_blogs=20, num_stories=200, seed=4)
        b = blog_watch_instance(num_blogs=20, num_stories=200, seed=4)
        assert a.graph == b.graph

    def test_invalid(self):
        with pytest.raises(ValueError):
            blog_watch_instance(num_blogs=0)


class TestLabeledSystem:
    def test_labels_format(self):
        system = labeled_blog_watch_system(num_blogs=10, num_stories=100, seed=5)
        assert system.n == 10
        assert all(label.startswith("blog_") for label in system.set_labels())
        assert all(label.startswith("story_") for label in system.element_labels())


class TestDataSummarization:
    def test_sizes(self):
        instance = data_summarization_instance(num_documents=60, vocabulary=2000, k=8, seed=6)
        assert instance.n == 60
        assert instance.m <= 2000
        assert instance.k == 8

    def test_topic_structure_rewards_diversity(self):
        instance = data_summarization_instance(
            num_documents=80, vocabulary=3000, topic_count=8, terms_per_document=100, seed=7
        )
        from repro.offline.greedy import greedy_k_cover

        greedy = greedy_k_cover(instance.graph, 8)
        # Selecting 8 documents should beat 8x a single document's coverage
        # only if they span topics; sanity-check the gain structure.
        single = max(instance.graph.set_degree(s) for s in range(instance.n))
        assert greedy.coverage > 3 * single

    def test_invalid(self):
        with pytest.raises(ValueError):
            data_summarization_instance(num_documents=0)
