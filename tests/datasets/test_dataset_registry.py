"""Unit tests for the dataset registry (repro.datasets.registry)."""

from __future__ import annotations

import pytest

from repro.coverage.instance import CoverageInstance
from repro.datasets import (
    get_dataset,
    iter_datasets,
    list_datasets,
    register_dataset,
    unregister_dataset,
)
from repro.errors import SpecError, UnknownDatasetError

EXPECTED_DATASETS = {
    "planted_kcover",
    "planted_setcover",
    "uniform",
    "zipf",
    "blog_watch",
    "data_summarization",
    "barabasi_albert",
    "erdos_renyi",
    "watts_strogatz",
}


class TestBuiltinDatasets:
    def test_all_builtins_registered(self):
        assert EXPECTED_DATASETS <= set(list_datasets())

    def test_iter_datasets_described(self):
        for info in iter_datasets():
            described = info.describe()
            assert described["name"] == info.name
            assert described["summary"]

    @pytest.mark.parametrize("name", sorted(EXPECTED_DATASETS))
    def test_every_builtin_builds_an_instance(self, name):
        instance = get_dataset(name).build(20, 150, k=3, density=0.05, seed=2)
        assert isinstance(instance, CoverageInstance)
        assert instance.graph.num_edges > 0

    def test_planted_setcover_maps_k_to_cover_size(self):
        instance = get_dataset("planted_setcover").build(20, 150, k=4, seed=2)
        assert len(instance.planted_solution) == 4

    def test_unknown_dataset_suggests_close_match(self):
        with pytest.raises(UnknownDatasetError, match="zipf"):
            get_dataset("zipff")


class TestRegistration:
    def test_register_and_unregister(self, tiny_graph):
        @register_dataset("test_tiny", summary="test-only")
        def _build(num_sets, num_elements, *, k=10, density=0.05, seed=0, **kwargs):
            return CoverageInstance(graph=tiny_graph, k=min(k, tiny_graph.num_sets))

        try:
            assert "test_tiny" in list_datasets()
            instance = get_dataset("test_tiny").build(1, 1, k=2)
            assert instance.k == 2
        finally:
            unregister_dataset("test_tiny")
        assert "test_tiny" not in list_datasets()

    def test_duplicate_registration_rejected(self):
        with pytest.raises(SpecError):
            register_dataset("zipf")(lambda *a, **k: None)
