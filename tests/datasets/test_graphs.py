"""Unit tests for repro.datasets.graphs."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.coverage.instance import ProblemKind
from repro.datasets.graphs import (
    barabasi_albert_instance,
    dominating_set_instance,
    erdos_renyi_instance,
    watts_strogatz_instance,
)


class TestDominatingSet:
    def test_closed_neighbourhood_structure(self):
        graph = nx.path_graph(5)  # 0-1-2-3-4
        instance = dominating_set_instance(graph, k=2)
        assert instance.n == 5
        assert instance.m == 5
        # The middle vertex dominates itself and both neighbours.
        assert instance.graph.elements_of(2) == frozenset({1, 2, 3})

    def test_every_set_contains_itself(self):
        graph = nx.cycle_graph(7)
        instance = dominating_set_instance(graph, k=2)
        for node in range(7):
            assert node in instance.graph.elements_of(node)

    def test_kind_and_outliers_passthrough(self):
        graph = nx.star_graph(5)
        instance = dominating_set_instance(
            graph, k=1, kind=ProblemKind.SET_COVER_OUTLIERS, outlier_fraction=0.2
        )
        assert instance.kind is ProblemKind.SET_COVER_OUTLIERS
        assert instance.outlier_fraction == 0.2

    def test_star_graph_center_dominates(self):
        graph = nx.star_graph(9)  # center 0 plus 9 leaves
        instance = dominating_set_instance(graph, k=1)
        assert instance.graph.coverage([0]) == 10


class TestGeneratedModels:
    def test_barabasi_albert_sizes(self):
        instance = barabasi_albert_instance(80, attachment=3, k=5, seed=1)
        assert instance.n == 80
        assert instance.m == 80
        assert instance.metadata["model"] == "barabasi_albert"

    def test_barabasi_albert_heavy_tail(self):
        instance = barabasi_albert_instance(200, attachment=2, k=5, seed=2)
        sizes = sorted((instance.graph.set_degree(s) for s in range(200)), reverse=True)
        assert sizes[0] >= 3 * sizes[len(sizes) // 2]

    def test_erdos_renyi_sizes(self):
        instance = erdos_renyi_instance(60, edge_probability=0.05, k=4, seed=3)
        assert instance.n == 60
        assert instance.m == 60

    def test_watts_strogatz_sizes(self):
        instance = watts_strogatz_instance(50, nearest_neighbors=4, k=3, seed=4)
        assert instance.n == 50
        # Every closed neighbourhood has at least 1 + nearest_neighbors members
        # (up to rewiring), so the sets are not singletons.
        assert all(instance.graph.set_degree(s) >= 3 for s in range(50))

    def test_deterministic_in_seed(self):
        a = barabasi_albert_instance(40, k=3, seed=5)
        b = barabasi_albert_instance(40, k=3, seed=5)
        assert a.graph == b.graph

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            barabasi_albert_instance(0)
        with pytest.raises(ValueError):
            erdos_renyi_instance(10, edge_probability=2.0)
