"""Unit tests for repro.coverage.io."""

from __future__ import annotations

import pytest

from repro.coverage.io import (
    graph_to_edge_lines,
    load_system,
    read_edge_list,
    save_system,
    system_from_json,
    system_to_json,
    write_edge_list,
)
from repro.coverage.setsystem import SetSystem


@pytest.fixture
def system() -> SetSystem:
    return SetSystem.from_dict({"s1": ["a", "b"], "s2": ["b", "c"]})


class TestEdgeList:
    def test_roundtrip(self, tmp_path, system):
        path = tmp_path / "edges.tsv"
        count = write_edge_list(system.labeled_edges(), path)
        assert count == 4
        edges = read_edge_list(path)
        assert sorted(edges) == sorted(
            (str(s), str(e)) for s, e in system.labeled_edges()
        )

    def test_read_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "edges.tsv"
        path.write_text("# comment\n\ns1\te1\n", encoding="utf-8")
        assert read_edge_list(path) == [("s1", "e1")]

    def test_read_malformed_raises(self, tmp_path):
        path = tmp_path / "edges.tsv"
        path.write_text("only_one_field\n", encoding="utf-8")
        with pytest.raises(ValueError, match="expected 2 fields"):
            read_edge_list(path)

    def test_custom_separator(self, tmp_path):
        path = tmp_path / "edges.csv"
        write_edge_list([("s", "e")], path, sep=",")
        assert read_edge_list(path, sep=",") == [("s", "e")]


class TestJson:
    def test_json_roundtrip(self, system):
        document = system_to_json(system)
        rebuilt = system_from_json(document)
        assert rebuilt.n == system.n
        assert rebuilt.m == system.m
        assert {str(k): set(map(str, v)) for k, v in system.to_dict().items()} == {
            str(k): set(map(str, v)) for k, v in rebuilt.to_dict().items()
        }

    def test_json_rejects_wrong_format(self):
        with pytest.raises(ValueError):
            system_from_json('{"format": "other", "sets": {}}')

    def test_file_roundtrip(self, tmp_path, system):
        path = tmp_path / "system.json"
        save_system(system, path)
        rebuilt = load_system(path)
        assert rebuilt.num_edges == system.num_edges


class TestGraphLines:
    def test_graph_to_edge_lines_sorted(self, tiny_graph):
        lines = graph_to_edge_lines(tiny_graph)
        assert len(lines) == tiny_graph.num_edges
        assert lines == sorted(lines)
        assert lines[0].count("\t") == 1
