"""Unit tests for repro.coverage.io."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.coverage.io import (
    columnar_from_edge_list,
    graph_to_edge_lines,
    load_system,
    open_columnar,
    read_edge_list,
    save_system,
    system_from_json,
    system_to_json,
    write_columnar,
    write_edge_list,
)
from repro.coverage.setsystem import SetSystem


@pytest.fixture
def system() -> SetSystem:
    return SetSystem.from_dict({"s1": ["a", "b"], "s2": ["b", "c"]})


class TestEdgeList:
    def test_roundtrip(self, tmp_path, system):
        path = tmp_path / "edges.tsv"
        count = write_edge_list(system.labeled_edges(), path)
        assert count == 4
        edges = read_edge_list(path)
        assert sorted(edges) == sorted(
            (str(s), str(e)) for s, e in system.labeled_edges()
        )

    def test_read_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "edges.tsv"
        path.write_text("# comment\n\ns1\te1\n", encoding="utf-8")
        assert read_edge_list(path) == [("s1", "e1")]

    def test_read_malformed_raises(self, tmp_path):
        path = tmp_path / "edges.tsv"
        path.write_text("only_one_field\n", encoding="utf-8")
        with pytest.raises(ValueError, match="expected 2 fields"):
            read_edge_list(path)

    def test_custom_separator(self, tmp_path):
        path = tmp_path / "edges.csv"
        write_edge_list([("s", "e")], path, sep=",")
        assert read_edge_list(path, sep=",") == [("s", "e")]


class TestJson:
    def test_json_roundtrip(self, system):
        document = system_to_json(system)
        rebuilt = system_from_json(document)
        assert rebuilt.n == system.n
        assert rebuilt.m == system.m
        assert {str(k): set(map(str, v)) for k, v in system.to_dict().items()} == {
            str(k): set(map(str, v)) for k, v in rebuilt.to_dict().items()
        }

    def test_json_rejects_wrong_format(self):
        with pytest.raises(ValueError):
            system_from_json('{"format": "other", "sets": {}}')

    def test_file_roundtrip(self, tmp_path, system):
        path = tmp_path / "system.json"
        save_system(system, path)
        rebuilt = load_system(path)
        assert rebuilt.num_edges == system.num_edges


class TestGraphLines:
    def test_graph_to_edge_lines_sorted(self, tiny_graph):
        lines = graph_to_edge_lines(tiny_graph)
        assert len(lines) == tiny_graph.num_edges
        assert lines == sorted(lines)
        assert lines[0].count("\t") == 1


class TestColumnar:
    def test_integer_round_trip_preserves_order(self, tmp_path, tiny_graph):
        edges = list(tiny_graph.edges())
        count = write_columnar(edges, tmp_path / "cols")
        assert count == len(edges)
        columns = open_columnar(tmp_path / "cols")
        assert list(columns.pairs()) == edges
        assert columns.num_sets == tiny_graph.num_sets
        assert columns.num_elements == tiny_graph.num_elements
        assert columns.set_labels is None and columns.element_labels is None

    def test_columns_are_memory_mapped_uint64(self, tmp_path, tiny_graph):
        write_columnar(tiny_graph.edges(), tmp_path / "cols")
        columns = open_columnar(tmp_path / "cols")
        assert columns.set_ids.dtype == np.uint64
        assert columns.elements.dtype == np.uint64
        assert isinstance(columns.set_ids, np.memmap)
        assert isinstance(columns.elements, np.memmap)

    def test_string_labels_get_vocab_sidecar(self, tmp_path):
        edges = [("alpha", "x"), ("beta", "x"), ("alpha", "y")]
        write_columnar(edges, tmp_path / "cols")
        columns = open_columnar(tmp_path / "cols")
        assert list(columns.labelled_pairs()) == edges
        assert columns.set_labels == ("alpha", "beta")
        assert columns.element_labels == ("x", "y")
        assert columns.num_sets == 2 and columns.num_elements == 2

    def test_numeric_strings_keep_their_ids(self, tmp_path):
        write_columnar([("3", "10"), ("0", "7")], tmp_path / "cols")
        columns = open_columnar(tmp_path / "cols")
        assert list(columns.pairs()) == [(3, 10), (0, 7)]
        assert columns.set_labels is None
        assert columns.num_sets == 4  # max id + 1

    def test_non_canonical_numeric_strings_stay_distinct(self, tmp_path):
        # "01" and "1" are different labels; only canonical decimal strings
        # may take the verbatim-integer path.
        edges = [("01", "a"), ("1", "b"), ("+2", "a")]
        write_columnar(edges, tmp_path / "cols")
        columns = open_columnar(tmp_path / "cols")
        assert columns.set_labels == ("01", "1", "+2")
        assert list(columns.labelled_pairs()) == edges

    def test_explicit_size_overrides(self, tmp_path):
        write_columnar([(0, 1)], tmp_path / "cols", num_sets=10, num_elements=50)
        columns = open_columnar(tmp_path / "cols")
        assert columns.num_sets == 10
        assert columns.num_elements == 50

    def test_empty_edge_list(self, tmp_path):
        assert write_columnar([], tmp_path / "cols") == 0
        columns = open_columnar(tmp_path / "cols")
        assert columns.num_edges == 0
        assert list(columns.pairs()) == []

    def test_conversion_from_edge_list(self, tmp_path, tiny_graph):
        text = tmp_path / "edges.tsv"
        write_edge_list(tiny_graph.edges(), text)
        count = columnar_from_edge_list(text, tmp_path / "cols")
        assert count == tiny_graph.num_edges
        columns = open_columnar(tmp_path / "cols")
        assert list(columns.labelled_pairs()) == read_edge_list(text)

    def test_open_rejects_non_columnar_directories(self, tmp_path):
        with pytest.raises(ValueError, match="no meta.json"):
            open_columnar(tmp_path)
        (tmp_path / "meta.json").write_text(json.dumps({"format": "other"}))
        with pytest.raises(ValueError, match="repro.columnar.v1"):
            open_columnar(tmp_path)

    def test_open_rejects_length_mismatch(self, tmp_path, tiny_graph):
        write_columnar(tiny_graph.edges(), tmp_path / "cols")
        meta_path = tmp_path / "cols" / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["num_edges"] += 1
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(ValueError, match="num_edges"):
            open_columnar(tmp_path / "cols")
