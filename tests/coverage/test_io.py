"""Unit tests for repro.coverage.io."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.coverage.io import (
    columnar_from_edge_list,
    graph_to_edge_lines,
    load_system,
    open_columnar,
    open_columnar_sets,
    read_edge_list,
    save_system,
    system_from_json,
    system_to_json,
    write_columnar,
    write_columnar_columns,
    write_columnar_sets,
    write_edge_list,
)
from repro.coverage.setsystem import SetSystem


@pytest.fixture
def system() -> SetSystem:
    return SetSystem.from_dict({"s1": ["a", "b"], "s2": ["b", "c"]})


class TestEdgeList:
    def test_roundtrip(self, tmp_path, system):
        path = tmp_path / "edges.tsv"
        count = write_edge_list(system.labeled_edges(), path)
        assert count == 4
        edges = read_edge_list(path)
        assert sorted(edges) == sorted(
            (str(s), str(e)) for s, e in system.labeled_edges()
        )

    def test_read_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "edges.tsv"
        path.write_text("# comment\n\ns1\te1\n", encoding="utf-8")
        assert read_edge_list(path) == [("s1", "e1")]

    def test_read_malformed_raises(self, tmp_path):
        path = tmp_path / "edges.tsv"
        path.write_text("only_one_field\n", encoding="utf-8")
        with pytest.raises(ValueError, match="expected 2 fields"):
            read_edge_list(path)

    def test_custom_separator(self, tmp_path):
        path = tmp_path / "edges.csv"
        write_edge_list([("s", "e")], path, sep=",")
        assert read_edge_list(path, sep=",") == [("s", "e")]


class TestJson:
    def test_json_roundtrip(self, system):
        document = system_to_json(system)
        rebuilt = system_from_json(document)
        assert rebuilt.n == system.n
        assert rebuilt.m == system.m
        assert {str(k): set(map(str, v)) for k, v in system.to_dict().items()} == {
            str(k): set(map(str, v)) for k, v in rebuilt.to_dict().items()
        }

    def test_json_rejects_wrong_format(self):
        with pytest.raises(ValueError):
            system_from_json('{"format": "other", "sets": {}}')

    def test_file_roundtrip(self, tmp_path, system):
        path = tmp_path / "system.json"
        save_system(system, path)
        rebuilt = load_system(path)
        assert rebuilt.num_edges == system.num_edges


class TestGraphLines:
    def test_graph_to_edge_lines_sorted(self, tiny_graph):
        lines = graph_to_edge_lines(tiny_graph)
        assert len(lines) == tiny_graph.num_edges
        assert lines == sorted(lines)
        assert lines[0].count("\t") == 1


class TestColumnar:
    def test_integer_round_trip_preserves_order(self, tmp_path, tiny_graph):
        edges = list(tiny_graph.edges())
        count = write_columnar(edges, tmp_path / "cols")
        assert count == len(edges)
        columns = open_columnar(tmp_path / "cols")
        assert list(columns.pairs()) == edges
        assert columns.num_sets == tiny_graph.num_sets
        assert columns.num_elements == tiny_graph.num_elements
        assert columns.set_labels is None and columns.element_labels is None

    def test_columns_are_memory_mapped_uint64(self, tmp_path, tiny_graph):
        write_columnar(tiny_graph.edges(), tmp_path / "cols")
        columns = open_columnar(tmp_path / "cols")
        assert columns.set_ids.dtype == np.uint64
        assert columns.elements.dtype == np.uint64
        assert isinstance(columns.set_ids, np.memmap)
        assert isinstance(columns.elements, np.memmap)

    def test_string_labels_get_vocab_sidecar(self, tmp_path):
        edges = [("alpha", "x"), ("beta", "x"), ("alpha", "y")]
        write_columnar(edges, tmp_path / "cols")
        columns = open_columnar(tmp_path / "cols")
        assert list(columns.labelled_pairs()) == edges
        assert columns.set_labels == ("alpha", "beta")
        assert columns.element_labels == ("x", "y")
        assert columns.num_sets == 2 and columns.num_elements == 2

    def test_numeric_strings_keep_their_ids(self, tmp_path):
        write_columnar([("3", "10"), ("0", "7")], tmp_path / "cols")
        columns = open_columnar(tmp_path / "cols")
        assert list(columns.pairs()) == [(3, 10), (0, 7)]
        assert columns.set_labels is None
        assert columns.num_sets == 4  # max id + 1

    def test_non_canonical_numeric_strings_stay_distinct(self, tmp_path):
        # "01" and "1" are different labels; only canonical decimal strings
        # may take the verbatim-integer path.
        edges = [("01", "a"), ("1", "b"), ("+2", "a")]
        write_columnar(edges, tmp_path / "cols")
        columns = open_columnar(tmp_path / "cols")
        assert columns.set_labels == ("01", "1", "+2")
        assert list(columns.labelled_pairs()) == edges

    def test_explicit_size_overrides(self, tmp_path):
        write_columnar([(0, 1)], tmp_path / "cols", num_sets=10, num_elements=50)
        columns = open_columnar(tmp_path / "cols")
        assert columns.num_sets == 10
        assert columns.num_elements == 50

    def test_empty_edge_list(self, tmp_path):
        assert write_columnar([], tmp_path / "cols") == 0
        columns = open_columnar(tmp_path / "cols")
        assert columns.num_edges == 0
        assert list(columns.pairs()) == []

    def test_conversion_from_edge_list(self, tmp_path, tiny_graph):
        text = tmp_path / "edges.tsv"
        write_edge_list(tiny_graph.edges(), text)
        count = columnar_from_edge_list(text, tmp_path / "cols")
        assert count == tiny_graph.num_edges
        columns = open_columnar(tmp_path / "cols")
        assert list(columns.labelled_pairs()) == read_edge_list(text)

    def test_open_rejects_non_columnar_directories(self, tmp_path):
        with pytest.raises(ValueError, match="no meta.json"):
            open_columnar(tmp_path)
        (tmp_path / "meta.json").write_text(json.dumps({"format": "other"}))
        with pytest.raises(ValueError, match="repro.columnar.v1"):
            open_columnar(tmp_path)

    def test_open_rejects_length_mismatch(self, tmp_path, tiny_graph):
        write_columnar(tiny_graph.edges(), tmp_path / "cols")
        meta_path = tmp_path / "cols" / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["num_edges"] += 1
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(ValueError, match="num_edges"):
            open_columnar(tmp_path / "cols")


class TestColumnarColumns:
    def test_array_writer_matches_pair_writer(self, tmp_path, tiny_graph):
        edges = sorted(tiny_graph.edges())
        write_columnar(edges, tmp_path / "pairs")
        write_columnar_columns(
            np.array([s for s, _ in edges], dtype=np.uint64),
            np.array([e for _, e in edges], dtype=np.uint64),
            tmp_path / "arrays",
        )
        from_pairs = open_columnar(tmp_path / "pairs")
        from_arrays = open_columnar(tmp_path / "arrays")
        assert list(from_arrays.pairs()) == list(from_pairs.pairs())
        assert from_arrays.num_sets == from_pairs.num_sets
        assert from_arrays.num_elements == from_pairs.num_elements

    def test_rejects_mismatched_columns(self, tmp_path):
        with pytest.raises(ValueError, match="equal-length"):
            write_columnar_columns(
                np.zeros(3, dtype=np.uint64), np.zeros(2, dtype=np.uint64), tmp_path / "c"
            )


class TestColumnarSets:
    FAMILY = [(0, [1, 2, 3]), (1, [3, 4]), (2, []), (5, [0, 9])]

    def test_round_trip(self, tmp_path):
        count = write_columnar_sets(self.FAMILY, tmp_path / "sets")
        assert count == 7
        columns = open_columnar_sets(tmp_path / "sets")
        assert list(columns.sets()) == [(s, list(m)) for s, m in self.FAMILY]
        assert columns.num_stored_sets == 4
        assert columns.num_memberships == 7
        assert columns.num_sets == 6  # max set id + 1
        assert columns.num_elements == 6  # distinct members

    def test_to_graph_matches_family(self, tmp_path):
        write_columnar_sets(self.FAMILY, tmp_path / "sets")
        graph = open_columnar_sets(tmp_path / "sets").to_graph()
        for set_id, members in self.FAMILY:
            assert graph.elements_of(set_id) == set(members)

    def test_string_labels_get_a_vocab(self, tmp_path):
        write_columnar_sets([("alpha", ["x", "y"]), ("beta", ["y"])], tmp_path / "sets")
        columns = open_columnar_sets(tmp_path / "sets")
        assert columns.set_labels == ("alpha", "beta")
        assert columns.element_labels == ("x", "y")
        assert list(columns.sets()) == [(0, [0, 1]), (1, [1])]

    def test_empty_family(self, tmp_path):
        assert write_columnar_sets([], tmp_path / "sets") == 0
        columns = open_columnar_sets(tmp_path / "sets")
        assert columns.num_stored_sets == 0
        assert list(columns.sets()) == []

    def test_open_rejects_other_formats(self, tmp_path, tiny_graph):
        with pytest.raises(ValueError, match="no meta.json"):
            open_columnar_sets(tmp_path)
        write_columnar(tiny_graph.edges(), tmp_path / "edges")
        with pytest.raises(ValueError, match="columnar-sets"):
            open_columnar_sets(tmp_path / "edges")

    def test_open_rejects_inconsistent_offsets(self, tmp_path):
        write_columnar_sets(self.FAMILY, tmp_path / "sets")
        np.save(tmp_path / "sets" / "offsets.npy", np.array([0, 1], dtype=np.int64))
        with pytest.raises(ValueError, match="offsets"):
            open_columnar_sets(tmp_path / "sets")


class TestColumnarColumnsValidation:
    def test_rejects_negative_ids(self, tmp_path):
        with pytest.raises(ValueError, match="negative"):
            write_columnar_columns(
                np.array([-1, 2], dtype=np.int64),
                np.array([0, 1], dtype=np.int64),
                tmp_path / "c",
            )

    def test_rejects_non_integer_columns(self, tmp_path):
        with pytest.raises(ValueError, match="integer column"):
            write_columnar_columns(
                np.array([0.5, 1.5]), np.array([0, 1], dtype=np.int64), tmp_path / "c"
            )

    def test_accepts_signed_non_negative(self, tmp_path):
        write_columnar_columns(
            np.array([0, 2], dtype=np.int64),
            np.array([3, 1], dtype=np.int64),
            tmp_path / "c",
        )
        assert list(open_columnar(tmp_path / "c").pairs()) == [(0, 3), (2, 1)]


class TestColumnarSetsOffsetsValidation:
    def test_open_rejects_nonzero_first_offset(self, tmp_path):
        write_columnar_sets([(0, [1, 2]), (1, [3, 4])], tmp_path / "sets")
        np.save(tmp_path / "sets" / "offsets.npy", np.array([2, 4, 4], dtype=np.int64))
        with pytest.raises(ValueError, match="start at 0"):
            open_columnar_sets(tmp_path / "sets")

    def test_open_rejects_decreasing_offsets(self, tmp_path):
        # Passes the length and terminal-bound checks but has a decreasing
        # step, which would silently yield an empty slice for row 1.
        write_columnar_sets([(0, [1]), (1, [2, 3]), (2, [4])], tmp_path / "sets")
        np.save(
            tmp_path / "sets" / "offsets.npy", np.array([0, 3, 1, 4], dtype=np.int64)
        )
        with pytest.raises(ValueError, match="non-decreasing"):
            open_columnar_sets(tmp_path / "sets")
