"""Unit tests for repro.coverage.instance."""

from __future__ import annotations

import pytest

from repro.coverage.bipartite import BipartiteGraph
from repro.coverage.instance import CoverageInstance, ProblemKind
from repro.errors import InvalidInstanceError


class TestValidation:
    def test_basic_construction(self, tiny_graph):
        instance = CoverageInstance(graph=tiny_graph, k=2)
        assert instance.n == 4
        assert instance.m == 6
        assert instance.num_edges == 9
        assert instance.kind is ProblemKind.K_COVER

    def test_kind_coercion_from_string(self, tiny_graph):
        instance = CoverageInstance(graph=tiny_graph, kind="set_cover", k=1)
        assert instance.kind is ProblemKind.SET_COVER

    def test_rejects_non_graph(self):
        with pytest.raises(InvalidInstanceError):
            CoverageInstance(graph="nope", k=1)

    def test_rejects_empty_ground_set(self):
        with pytest.raises(InvalidInstanceError):
            CoverageInstance(graph=BipartiteGraph(2), k=1)

    def test_rejects_k_above_n(self, tiny_graph):
        with pytest.raises(InvalidInstanceError):
            CoverageInstance(graph=tiny_graph, k=10)

    def test_rejects_bad_planted_solution(self, tiny_graph):
        with pytest.raises(InvalidInstanceError):
            CoverageInstance(graph=tiny_graph, k=1, planted_solution=(9,))

    def test_planted_value_auto_computed(self, tiny_graph):
        instance = CoverageInstance(graph=tiny_graph, k=2, planted_solution=(0, 2))
        assert instance.planted_value == 6
        assert instance.reference_value() == 6


class TestEvaluation:
    def test_coverage_helpers(self, tiny_graph):
        instance = CoverageInstance(graph=tiny_graph, k=2)
        assert instance.coverage([0]) == 3
        assert instance.coverage_fraction([0]) == pytest.approx(0.5)
        assert instance.is_full_cover([0, 2]) is True
        assert instance.is_full_cover([0, 1]) is False

    def test_satisfies_outliers(self, tiny_graph):
        instance = CoverageInstance(
            graph=tiny_graph, kind=ProblemKind.SET_COVER_OUTLIERS, k=2, outlier_fraction=0.2
        )
        assert instance.satisfies_outliers([0, 2])
        # covering 5/6 = 0.833 >= 1 - 0.2
        assert instance.satisfies_outliers([0, 1, 3])
        assert not instance.satisfies_outliers([1])

    def test_with_kind(self, tiny_graph):
        instance = CoverageInstance(graph=tiny_graph, k=2)
        other = instance.with_kind(ProblemKind.SET_COVER_OUTLIERS, outlier_fraction=0.1)
        assert other.kind is ProblemKind.SET_COVER_OUTLIERS
        assert other.outlier_fraction == 0.1
        assert other.graph is instance.graph
        assert instance.kind is ProblemKind.K_COVER

    def test_describe_contains_sizes(self, tiny_graph):
        instance = CoverageInstance(graph=tiny_graph, k=2, metadata={"seed": 3})
        info = instance.describe()
        assert info["n"] == 4 and info["m"] == 6
        assert info["meta.seed"] == 3
