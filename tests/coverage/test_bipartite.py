"""Unit tests for repro.coverage.bipartite."""

from __future__ import annotations

import pytest

from repro.coverage.bipartite import BipartiteGraph
from repro.errors import InvalidInstanceError


class TestConstruction:
    def test_empty_graph(self):
        graph = BipartiteGraph(3)
        assert graph.num_sets == 3
        assert graph.num_elements == 0
        assert graph.num_edges == 0

    def test_invalid_num_sets(self):
        with pytest.raises(ValueError):
            BipartiteGraph(0)

    def test_from_sets_list(self):
        graph = BipartiteGraph.from_sets([[0, 1], [1, 2]])
        assert graph.num_sets == 2
        assert graph.num_edges == 4
        assert graph.elements_of(0) == frozenset({0, 1})

    def test_from_sets_mapping(self):
        graph = BipartiteGraph.from_sets({0: [5], 2: [6, 7]})
        assert graph.num_sets == 3
        assert graph.elements_of(1) == frozenset()

    def test_from_sets_num_sets_override(self):
        graph = BipartiteGraph.from_sets([[0]], num_sets=5)
        assert graph.num_sets == 5

    def test_from_sets_empty_raises(self):
        with pytest.raises(InvalidInstanceError):
            BipartiteGraph.from_sets([])


class TestEdges:
    def test_add_edge_counts(self, tiny_graph):
        assert tiny_graph.num_edges == 9
        assert tiny_graph.num_elements == 6

    def test_duplicate_edge_ignored(self, tiny_graph):
        assert tiny_graph.add_edge(0, 0) is False
        assert tiny_graph.num_edges == 9

    def test_add_edge_new(self, tiny_graph):
        assert tiny_graph.add_edge(3, 0) is True
        assert tiny_graph.num_edges == 10

    def test_add_edge_bad_set_raises(self, tiny_graph):
        with pytest.raises(InvalidInstanceError):
            tiny_graph.add_edge(10, 0)

    def test_add_edge_negative_element_raises(self, tiny_graph):
        with pytest.raises(ValueError):
            tiny_graph.add_edge(0, -1)

    def test_remove_edge(self, tiny_graph):
        assert tiny_graph.remove_edge(0, 0) is True
        assert tiny_graph.remove_edge(0, 0) is False
        assert tiny_graph.num_edges == 8

    def test_remove_edge_drops_isolated_element(self, tiny_graph):
        tiny_graph.remove_edge(3, 5)
        tiny_graph.remove_edge(2, 5)
        assert not tiny_graph.has_element(5)

    def test_remove_element(self, tiny_graph):
        removed = tiny_graph.remove_element(2)
        assert removed == 2  # element 2 belongs to sets 0 and 1
        assert tiny_graph.num_edges == 7
        assert not tiny_graph.has_element(2)

    def test_remove_absent_element(self, tiny_graph):
        assert tiny_graph.remove_element(99) == 0

    def test_edges_iterator_complete(self, tiny_graph):
        edges = set(tiny_graph.edges())
        assert (0, 0) in edges and (2, 5) in edges
        assert len(edges) == tiny_graph.num_edges


class TestQueries:
    def test_degrees(self, tiny_graph):
        assert tiny_graph.set_degree(0) == 3
        assert tiny_graph.set_degree(3) == 1
        assert tiny_graph.element_degree(5) == 2
        assert tiny_graph.element_degree(99) == 0

    def test_sets_of(self, tiny_graph):
        assert tiny_graph.sets_of(3) == frozenset({1, 2})
        assert tiny_graph.sets_of(42) == frozenset()

    def test_neighbors_and_coverage(self, tiny_graph):
        assert tiny_graph.neighbors([0, 1]) == {0, 1, 2, 3}
        assert tiny_graph.coverage([0, 1]) == 4
        assert tiny_graph.coverage([]) == 0
        assert tiny_graph.coverage(range(4)) == 6

    def test_coverage_fraction(self, tiny_graph):
        assert tiny_graph.coverage_fraction([0]) == pytest.approx(0.5)
        assert tiny_graph.coverage_fraction(range(4)) == pytest.approx(1.0)

    def test_coverage_fraction_empty_graph(self):
        graph = BipartiteGraph(2)
        assert graph.coverage_fraction([0]) == 1.0

    def test_uncovered_elements(self, tiny_graph):
        assert tiny_graph.uncovered_elements([0]) == {3, 4, 5}

    def test_set_ids(self, tiny_graph):
        assert list(tiny_graph.set_ids()) == [0, 1, 2, 3]


class TestDerivedGraphs:
    def test_induced_on_elements(self, tiny_graph):
        sub = tiny_graph.induced_on_elements([0, 3])
        assert sub.num_sets == tiny_graph.num_sets
        assert sub.num_elements == 2
        assert sub.coverage([0]) == 1
        assert sub.coverage([1, 2]) == 1

    def test_induced_on_unknown_elements(self, tiny_graph):
        sub = tiny_graph.induced_on_elements([99])
        assert sub.num_edges == 0

    def test_without_elements(self, tiny_graph):
        residual = tiny_graph.without_elements(tiny_graph.neighbors([0]))
        assert residual.num_elements == 3
        assert set(residual.elements()) == {3, 4, 5}

    def test_copy_independent(self, tiny_graph):
        clone = tiny_graph.copy()
        clone.add_edge(3, 0)
        assert tiny_graph.num_edges == 9
        assert clone.num_edges == 10

    def test_equality(self, tiny_graph):
        assert tiny_graph == tiny_graph.copy()
        other = tiny_graph.copy()
        other.add_edge(3, 0)
        assert tiny_graph != other

    def test_as_dict(self, tiny_graph):
        mapping = tiny_graph.as_dict()
        assert mapping[0] == frozenset({0, 1, 2})
        assert mapping[3] == frozenset({5})
