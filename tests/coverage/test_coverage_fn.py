"""Unit tests for repro.coverage.coverage_fn."""

from __future__ import annotations

import pytest

from repro.coverage.coverage_fn import CoverageFunction


class TestEvaluation:
    def test_coverage_values(self, tiny_graph):
        cover = CoverageFunction(tiny_graph)
        assert cover([0]) == 3
        assert cover([0, 1]) == 4
        assert cover([]) == 0
        assert cover(range(4)) == 6

    def test_normalized(self, tiny_graph):
        cover = CoverageFunction(tiny_graph, normalize=True)
        assert cover([0]) == pytest.approx(0.5)
        assert cover(range(4)) == pytest.approx(1.0)

    def test_covered_set(self, tiny_graph):
        cover = CoverageFunction(tiny_graph)
        assert cover.covered([1, 3]) == {2, 3, 5}

    def test_query_counter(self, tiny_graph):
        cover = CoverageFunction(tiny_graph)
        cover([0])
        cover([1])
        cover.marginal_gain([0], 1)
        assert cover.query_count == 4  # two calls + marginal gain counts 2
        cover.reset_query_count()
        assert cover.query_count == 0

    def test_marginal_gain(self, tiny_graph):
        cover = CoverageFunction(tiny_graph)
        assert cover.marginal_gain([0], 1) == 1
        assert cover.marginal_gain([], 2) == 3
        assert cover.marginal_gain([2], 3) == 0

    def test_marginal_gain_normalized(self, tiny_graph):
        cover = CoverageFunction(tiny_graph, normalize=True)
        assert cover.marginal_gain([], 0) == pytest.approx(0.5)


class TestStructure:
    def test_monotone_sampled(self, tiny_graph, rng):
        cover = CoverageFunction(tiny_graph)
        assert cover.check_monotone(rng, trials=100)

    def test_submodular_sampled(self, tiny_graph, rng):
        cover = CoverageFunction(tiny_graph)
        assert cover.check_submodular(rng, trials=100)

    def test_best_singleton(self, tiny_graph):
        cover = CoverageFunction(tiny_graph)
        best_set, value = cover.best_singleton()
        assert value == 3
        assert best_set in (0, 2)

    def test_greedy_upper_bound(self, tiny_graph):
        cover = CoverageFunction(tiny_graph)
        assert cover.greedy_upper_bound(1) == 3
        assert cover.greedy_upper_bound(2) == 6
        # Bound never exceeds the number of elements.
        assert cover.greedy_upper_bound(4) == 6

    def test_evaluate_many(self, tiny_graph):
        cover = CoverageFunction(tiny_graph)
        values = cover.evaluate_many([[0], [1], [0, 2]])
        assert values == [3, 2, 6]
