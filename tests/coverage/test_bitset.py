"""Unit tests for repro.coverage.bitset (vectorised coverage evaluation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coverage.bitset import BitsetCoverage
from repro.coverage.kernels import list_kernel_backends
from repro.datasets import uniform_random_instance, zipf_instance
from repro.offline.greedy import greedy_k_cover
from repro.utils.rng import spawn_rng

BACKENDS = list_kernel_backends()


class TestBasics:
    def test_sizes(self, tiny_graph):
        fast = BitsetCoverage(tiny_graph)
        assert fast.num_sets == 4
        assert fast.num_elements == 6
        assert fast.set_size(0) == 3
        assert fast.set_size(3) == 1

    def test_coverage_matches_graph(self, tiny_graph):
        fast = BitsetCoverage(tiny_graph)
        for family in ([], [0], [1, 3], [0, 1, 2, 3], [2, 2]):
            assert fast.coverage(family) == tiny_graph.coverage(family)

    def test_coverage_accepts_numpy_index_arrays(self, tiny_graph):
        fast = BitsetCoverage(tiny_graph)
        for family in ([0], [1, 3], [0, 1, 2, 3]):
            for dtype in (np.int64, np.intp, np.uint32):
                assert fast.coverage(np.array(family, dtype=dtype)) == tiny_graph.coverage(family)
        assert fast.coverage(np.array([], dtype=np.int64)) == 0

    def test_coverage_fraction(self, tiny_graph):
        fast = BitsetCoverage(tiny_graph)
        assert fast.coverage_fraction([0]) == pytest.approx(0.5)
        assert fast.coverage_fraction([]) == 0.0

    def test_snapshot_semantics(self, tiny_graph):
        fast = BitsetCoverage(tiny_graph)
        tiny_graph.add_edge(3, 0)
        # The evaluator reflects the graph at construction time.
        assert fast.coverage([3]) == 1

    def test_evaluate_many(self, tiny_graph):
        fast = BitsetCoverage(tiny_graph)
        assert fast.evaluate_many([[0], [2], [0, 2]]) == [3, 3, 6]

    def test_unknown_backend_rejected(self, tiny_graph):
        with pytest.raises(Exception, match="kernel backend"):
            BitsetCoverage(tiny_graph, backend="nibbles")


class TestAgreementOnRandomInstances:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matches_set_based_coverage(self, seed, backend):
        instance = uniform_random_instance(25, 120, density=0.1, seed=seed)
        fast = BitsetCoverage(instance.graph, backend=backend)
        rng = spawn_rng(seed, "bitset-agreement-queries")
        for _ in range(30):
            size = int(rng.integers(0, 10))
            family = list(rng.choice(25, size=size, replace=False)) if size else []
            assert fast.coverage(family) == instance.graph.coverage(family)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_marginal_gains_vector(self, backend):
        instance = uniform_random_instance(15, 80, density=0.15, seed=3)
        fast = BitsetCoverage(instance.graph, backend=backend)
        covered_sets = [0, 1]
        covered_bits = fast.union_bits(covered_sets)
        gains = fast.marginal_gains(covered_bits)
        covered = instance.graph.neighbors(covered_sets)
        for set_id in range(15):
            expected = len(instance.graph.elements_of(set_id) - covered)
            assert gains[set_id] == expected

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_gains_for_subset_matches_full_vector(self, backend):
        instance = uniform_random_instance(20, 100, density=0.12, seed=5)
        fast = BitsetCoverage(instance.graph, backend=backend)
        covered_bits = fast.union_bits(np.array([4, 9]))
        gains = fast.marginal_gains(covered_bits)
        subset = np.array([0, 7, 13, 19], dtype=np.intp)
        assert fast.gains_for(subset, covered_bits).tolist() == gains[subset].tolist()
        assert fast.gains_for(np.array([], dtype=np.intp), covered_bits).tolist() == []
        # Iterable (non-array) ids are accepted too.
        assert fast.gains_for([0, 7], covered_bits).tolist() == gains[[0, 7]].tolist()


class TestVectorisedGreedy:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("lazy", [False, True])
    def test_matches_reference_greedy_value(self, backend, lazy):
        for seed in range(3):
            instance = zipf_instance(30, 400, edges_per_set=25, k=5, seed=seed)
            fast = BitsetCoverage(instance.graph, backend=backend)
            selection, coverage = fast.greedy_k_cover(5, lazy=lazy)
            reference = greedy_k_cover(instance.graph, 5)
            assert coverage == reference.coverage
            assert instance.graph.coverage(selection) == coverage

    def test_lazy_matches_eager_gains_and_evaluates_less(self):
        instance = zipf_instance(60, 900, edges_per_set=40, k=8, seed=11)
        fast = BitsetCoverage(instance.graph)
        eager_sel, eager_cov, eager_gains, eager_evals = fast.greedy(max_sets=8, lazy=False)
        lazy_sel, lazy_cov, lazy_gains, lazy_evals = fast.greedy(max_sets=8, lazy=True)
        assert lazy_cov == eager_cov
        assert lazy_gains == eager_gains  # greedy gain profile is tie-invariant
        assert lazy_evals < eager_evals

    def test_forbidden_sets_are_skipped(self, tiny_graph):
        fast = BitsetCoverage(tiny_graph)
        selection, coverage = fast.greedy_k_cover(4, forbidden=[2])
        assert 2 not in selection
        reference = greedy_k_cover(tiny_graph, 4, forbidden=[2])
        assert coverage == reference.coverage

    @pytest.mark.parametrize("lazy", [False, True])
    def test_out_of_range_forbidden_ids_are_ignored(self, tiny_graph, lazy):
        # The graph greedy treats unselectable forbidden ids as no-ops; the
        # kernel paths must too (no negative-index masking, no IndexError).
        fast = BitsetCoverage(tiny_graph)
        plain = fast.greedy_k_cover(4, lazy=lazy)
        assert fast.greedy_k_cover(4, lazy=lazy, forbidden=[-1, 99]) == plain

    def test_target_coverage_stops_early(self, tiny_graph):
        selection, coverage, gains, _ = BitsetCoverage(tiny_graph).greedy(target_coverage=3)
        assert coverage >= 3
        assert len(selection) == 1

    def test_stops_when_saturated(self, tiny_graph):
        fast = BitsetCoverage(tiny_graph)
        selection, coverage = fast.greedy_k_cover(4)
        assert coverage == 6
        assert len(selection) <= 3

    def test_invalid_k(self, tiny_graph):
        with pytest.raises(ValueError):
            BitsetCoverage(tiny_graph).greedy_k_cover(0)


class TestPopcountBackends:
    def test_table_fallback_matches_native(self, tiny_graph):
        """The byte-table fallback and np.bitwise_count agree everywhere."""
        import repro.coverage.kernels as kernels_module

        for backend in BACKENDS:
            fast = BitsetCoverage(tiny_graph, backend=backend)
            families = [[0], [1, 3], [0, 1, 2, 3]]
            native = [fast.coverage(f) for f in families]
            original = kernels_module._HAS_BITWISE_COUNT
            kernels_module._HAS_BITWISE_COUNT = False
            try:
                fallback = [fast.coverage(f) for f in families]
                gains = fast.marginal_gains(fast.empty_bits())
            finally:
                kernels_module._HAS_BITWISE_COUNT = original
            assert fallback == native
            assert gains.tolist() == [fast.set_size(s) for s in range(fast.num_sets)]

    def test_backends_bit_identical(self, tiny_graph):
        byte_eval = BitsetCoverage(tiny_graph, backend="bytes")
        word_eval = BitsetCoverage(tiny_graph, backend="words")
        for family in ([], [0], [1, 3], [0, 1, 2, 3]):
            assert byte_eval.coverage(family) == word_eval.coverage(family)
        assert (
            byte_eval.marginal_gains(byte_eval.empty_bits()).tolist()
            == word_eval.marginal_gains(word_eval.empty_bits()).tolist()
        )

    def test_word_rows_use_8x_fewer_lanes(self):
        instance = uniform_random_instance(10, 640, density=0.05, seed=1)
        byte_eval = BitsetCoverage(instance.graph, backend="bytes")
        word_eval = BitsetCoverage(instance.graph, backend="words")
        assert word_eval._packed.dtype == np.uint64
        assert byte_eval._packed.dtype == np.uint8
        assert word_eval._packed.shape[1] * 8 >= byte_eval._packed.shape[1]
        assert word_eval._packed.shape[1] <= -(-byte_eval._packed.shape[1] // 8)


class TestEvaluateManyVectorised:
    def test_uniform_length_families_take_stacked_path(self):
        instance = uniform_random_instance(30, 200, density=0.08, seed=9)
        fast = BitsetCoverage(instance.graph)
        families = [[i, (i + 7) % 30, (i + 13) % 30] for i in range(30)]
        assert fast.evaluate_many(families) == [fast.coverage(f) for f in families]

    def test_two_dimensional_array_input(self):
        instance = uniform_random_instance(30, 200, density=0.08, seed=9)
        fast = BitsetCoverage(instance.graph)
        families = np.array([[i, (i + 7) % 30, (i + 13) % 30] for i in range(30)])
        expected = [fast.coverage(f) for f in families.tolist()]
        assert fast.evaluate_many(families) == expected

    def test_ragged_families_fall_back(self, tiny_graph):
        fast = BitsetCoverage(tiny_graph)
        families = [[], [0], [1, 3], [0, 1, 2, 3]]
        assert fast.evaluate_many(families) == [fast.coverage(f) for f in families]

    def test_family_entries_may_be_numpy_arrays(self, tiny_graph):
        fast = BitsetCoverage(tiny_graph)
        families = [np.array([0, 1]), np.array([2, 3])]
        assert fast.evaluate_many(families) == [fast.coverage([0, 1]), fast.coverage([2, 3])]

    def test_duplicate_ids_in_family(self, tiny_graph):
        fast = BitsetCoverage(tiny_graph)
        assert fast.evaluate_many([[2, 2], [0, 0]]) == [3, 3]

    def test_empty_input(self, tiny_graph):
        assert BitsetCoverage(tiny_graph).evaluate_many([]) == []
