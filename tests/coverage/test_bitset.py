"""Unit tests for repro.coverage.bitset (vectorised coverage evaluation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coverage.bitset import BitsetCoverage
from repro.datasets import uniform_random_instance, zipf_instance
from repro.offline.greedy import greedy_k_cover


class TestBasics:
    def test_sizes(self, tiny_graph):
        fast = BitsetCoverage(tiny_graph)
        assert fast.num_sets == 4
        assert fast.num_elements == 6
        assert fast.set_size(0) == 3
        assert fast.set_size(3) == 1

    def test_coverage_matches_graph(self, tiny_graph):
        fast = BitsetCoverage(tiny_graph)
        for family in ([], [0], [1, 3], [0, 1, 2, 3], [2, 2]):
            assert fast.coverage(family) == tiny_graph.coverage(family)

    def test_coverage_fraction(self, tiny_graph):
        fast = BitsetCoverage(tiny_graph)
        assert fast.coverage_fraction([0]) == pytest.approx(0.5)
        assert fast.coverage_fraction([]) == 0.0

    def test_snapshot_semantics(self, tiny_graph):
        fast = BitsetCoverage(tiny_graph)
        tiny_graph.add_edge(3, 0)
        # The evaluator reflects the graph at construction time.
        assert fast.coverage([3]) == 1

    def test_evaluate_many(self, tiny_graph):
        fast = BitsetCoverage(tiny_graph)
        assert fast.evaluate_many([[0], [2], [0, 2]]) == [3, 3, 6]


class TestAgreementOnRandomInstances:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_set_based_coverage(self, seed):
        instance = uniform_random_instance(25, 120, density=0.1, seed=seed)
        fast = BitsetCoverage(instance.graph)
        rng = np.random.default_rng(seed)
        for _ in range(30):
            size = int(rng.integers(0, 10))
            family = list(rng.choice(25, size=size, replace=False)) if size else []
            assert fast.coverage(family) == instance.graph.coverage(family)

    def test_marginal_gains_vector(self):
        instance = uniform_random_instance(15, 80, density=0.15, seed=3)
        fast = BitsetCoverage(instance.graph)
        covered_sets = [0, 1]
        covered_bits = fast.union_bits(covered_sets)
        gains = fast.marginal_gains(covered_bits)
        covered = instance.graph.neighbors(covered_sets)
        for set_id in range(15):
            expected = len(instance.graph.elements_of(set_id) - covered)
            assert gains[set_id] == expected


class TestVectorisedGreedy:
    def test_matches_reference_greedy_value(self):
        for seed in range(3):
            instance = zipf_instance(30, 400, edges_per_set=25, k=5, seed=seed)
            fast = BitsetCoverage(instance.graph)
            selection, coverage = fast.greedy_k_cover(5)
            reference = greedy_k_cover(instance.graph, 5)
            assert coverage == reference.coverage
            assert instance.graph.coverage(selection) == coverage

    def test_stops_when_saturated(self, tiny_graph):
        fast = BitsetCoverage(tiny_graph)
        selection, coverage = fast.greedy_k_cover(4)
        assert coverage == 6
        assert len(selection) <= 3

    def test_invalid_k(self, tiny_graph):
        with pytest.raises(ValueError):
            BitsetCoverage(tiny_graph).greedy_k_cover(0)


class TestPopcountBackends:
    def test_table_fallback_matches_native(self, tiny_graph):
        """The byte-table fallback and np.bitwise_count agree everywhere."""
        import repro.coverage.bitset as bitset_module

        fast = BitsetCoverage(tiny_graph)
        families = [[0], [1, 3], [0, 1, 2, 3]]
        native = [fast.coverage(f) for f in families]
        original = bitset_module._HAS_BITWISE_COUNT
        bitset_module._HAS_BITWISE_COUNT = False
        try:
            fallback = [fast.coverage(f) for f in families]
            gains = fast.marginal_gains(np.zeros(fast._packed.shape[1], dtype=np.uint8))
        finally:
            bitset_module._HAS_BITWISE_COUNT = original
        assert fallback == native
        assert gains.tolist() == [fast.set_size(s) for s in range(fast.num_sets)]


class TestEvaluateManyVectorised:
    def test_uniform_length_families_take_stacked_path(self):
        instance = uniform_random_instance(30, 200, density=0.08, seed=9)
        fast = BitsetCoverage(instance.graph)
        families = [[i, (i + 7) % 30, (i + 13) % 30] for i in range(30)]
        assert fast.evaluate_many(families) == [fast.coverage(f) for f in families]

    def test_ragged_families_fall_back(self, tiny_graph):
        fast = BitsetCoverage(tiny_graph)
        families = [[], [0], [1, 3], [0, 1, 2, 3]]
        assert fast.evaluate_many(families) == [fast.coverage(f) for f in families]

    def test_duplicate_ids_in_family(self, tiny_graph):
        fast = BitsetCoverage(tiny_graph)
        assert fast.evaluate_many([[2, 2], [0, 0]]) == [3, 3]

    def test_empty_input(self, tiny_graph):
        assert BitsetCoverage(tiny_graph).evaluate_many([]) == []
