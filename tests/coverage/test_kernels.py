"""Unit tests for the coverage kernel backend registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coverage.kernels import (
    KernelBackend,
    get_kernel_backend,
    kernel_backend_choices,
    list_kernel_backends,
    register_kernel_backend,
    resolve_kernel_backend,
    unregister_kernel_backend,
)
from repro.errors import SpecError
from repro.utils.rng import spawn_rng


class TestRegistry:
    def test_shipped_backends_registered(self):
        assert "bytes" in list_kernel_backends()
        assert "words" in list_kernel_backends()

    def test_choices_include_auto(self):
        choices = kernel_backend_choices()
        assert choices[0] == "auto"
        assert set(choices[1:]) == set(list_kernel_backends())

    def test_auto_resolves_to_registered_backend(self):
        backend = resolve_kernel_backend("auto")
        assert backend.name in list_kernel_backends()

    def test_resolve_passes_instances_through(self):
        backend = get_kernel_backend("words")
        assert resolve_kernel_backend(backend) is backend

    def test_unknown_backend_has_hints(self):
        with pytest.raises(SpecError, match="kernel backend"):
            get_kernel_backend("word")

    def test_auto_is_reserved(self):
        with pytest.raises(SpecError, match="reserved"):
            register_kernel_backend(
                KernelBackend(
                    name="auto",
                    dtype=np.dtype(np.uint8),
                    elements_per_lane=8,
                    summary="",
                    pack=lambda dense: dense,
                    popcount=lambda rows, axis: 0,
                )
            )

    def test_register_and_unregister_custom_backend(self):
        custom = KernelBackend(
            name="custom-test-backend",
            dtype=np.dtype(np.uint8),
            elements_per_lane=8,
            summary="test only",
            pack=lambda dense: np.packbits(dense, axis=1),
            popcount=lambda rows, axis: np.bitwise_count(rows).sum(axis=axis, dtype=np.int64),
        )
        register_kernel_backend(custom)
        try:
            assert "custom-test-backend" in list_kernel_backends()
            assert resolve_kernel_backend("custom-test-backend") is custom
        finally:
            unregister_kernel_backend("custom-test-backend")
        assert "custom-test-backend" not in list_kernel_backends()


class TestBackendPrimitives:
    @pytest.mark.parametrize("name", ["bytes", "words"])
    def test_pack_popcount_round_trip(self, name):
        backend = get_kernel_backend(name)
        rng = spawn_rng(7, "kernel-pack-round-trip")
        dense = rng.random((5, 100)) < 0.3
        packed = backend.pack(dense)
        assert packed.dtype == backend.dtype
        per_row = backend.popcount(packed, 1)
        assert per_row.tolist() == dense.sum(axis=1).tolist()
        assert int(backend.popcount(packed, None)) == int(dense.sum())

    @pytest.mark.parametrize("name", ["bytes", "words"])
    def test_empty_row_matches_packed_width(self, name):
        backend = get_kernel_backend(name)
        packed = backend.pack(np.zeros((1, 100), dtype=bool))
        row = backend.empty_row(packed.shape[1])
        assert row.dtype == backend.dtype
        assert row.shape == (packed.shape[1],)
        assert int(backend.popcount(row, None)) == 0

    def test_word_packing_pads_to_whole_words(self):
        backend = get_kernel_backend("words")
        dense = np.ones((2, 9), dtype=bool)  # 9 bits -> 2 bytes -> 1 word
        packed = backend.pack(dense)
        assert packed.shape == (2, 1)
        assert backend.popcount(packed, 1).tolist() == [9, 9]

    def test_word_fallback_popcount_matches_native(self):
        import repro.coverage.kernels as kernels_module

        backend = get_kernel_backend("words")
        rng = spawn_rng(11, "kernel-fallback-popcount")
        rows = rng.integers(0, 2**63, size=(4, 6), dtype=np.uint64)
        native = backend.popcount(rows, 1)
        original = kernels_module._HAS_BITWISE_COUNT
        kernels_module._HAS_BITWISE_COUNT = False
        try:
            fallback = backend.popcount(rows, 1)
        finally:
            kernels_module._HAS_BITWISE_COUNT = original
        assert fallback.tolist() == native.tolist()
