"""Unit tests for repro.coverage.setsystem."""

from __future__ import annotations

import pytest

from repro.coverage.setsystem import SetSystem
from repro.errors import InvalidInstanceError


@pytest.fixture
def system() -> SetSystem:
    return SetSystem.from_dict(
        {"a": ["x", "y", "z"], "b": ["z", "w"], "c": []}
    )


class TestConstruction:
    def test_from_dict_sizes(self, system):
        assert system.n == 3
        assert system.m == 4
        assert system.num_edges == 5

    def test_from_lists(self):
        system = SetSystem.from_lists([[1, 2], [2, 3]])
        assert system.n == 2
        assert system.m == 3

    def test_from_edges(self):
        system = SetSystem.from_edges([("s1", "e1"), ("s1", "e2"), ("s2", "e2")])
        assert system.n == 2
        assert system.members("s1") == {"e1", "e2"}

    def test_add_set_extends_existing(self, system):
        system.add_set("a", ["w"])
        assert system.members("a") == {"x", "y", "z", "w"}
        assert system.n == 3

    def test_add_membership(self, system):
        set_id, element_id = system.add_membership("d", "x")
        assert system.set_label(set_id) == "d"
        assert system.element_label(element_id) == "x"

    def test_empty_set_allowed(self, system):
        assert system.members("c") == set()


class TestLookups:
    def test_roundtrip_labels(self, system):
        assert system.set_label(system.set_id("b")) == "b"
        assert system.element_label(system.element_id("w")) == "w"

    def test_unknown_labels_raise(self, system):
        with pytest.raises(KeyError):
            system.set_id("nope")
        with pytest.raises(KeyError):
            system.element_id("nope")

    def test_members_by_id(self, system):
        member_ids = system.members_by_id(system.set_id("a"))
        labels = {system.element_label(e) for e in member_ids}
        assert labels == {"x", "y", "z"}

    def test_members_by_id_out_of_range(self, system):
        with pytest.raises(InvalidInstanceError):
            system.members_by_id(99)

    def test_labels_for(self, system):
        assert system.labels_for([0, 1]) == ["a", "b"]

    def test_edge_iterators_consistent(self, system):
        assert len(list(system.edges())) == system.num_edges
        labeled = set(system.labeled_edges())
        assert ("a", "x") in labeled and ("b", "w") in labeled


class TestConversion:
    def test_to_graph_matches_sizes(self, system):
        graph = system.to_graph()
        assert graph.num_sets == system.n
        assert graph.num_elements == system.m
        assert graph.num_edges == system.num_edges

    def test_to_graph_empty_system_raises(self):
        with pytest.raises(InvalidInstanceError):
            SetSystem().to_graph()

    def test_to_dict_roundtrip(self, system):
        rebuilt = SetSystem.from_dict(system.to_dict())
        assert rebuilt.n == system.n
        assert rebuilt.to_dict() == system.to_dict()

    def test_len(self, system):
        assert len(system) == 3
