"""Unit tests for repro.core.params."""

from __future__ import annotations

import math

import pytest

from repro.core.params import SketchParams


class TestTheoretical:
    def test_degree_cap_formula(self):
        # n log(1/eps) / (eps k), rounded up.
        cap = SketchParams.theoretical_degree_cap(num_sets=100, k=5, epsilon=0.5)
        expected = math.ceil(100 * math.log(2.0) / (0.5 * 5))
        assert cap == expected

    def test_degree_cap_at_least_one(self):
        assert SketchParams.theoretical_degree_cap(1, 1000, 1.0) >= 1

    def test_edge_budget_is_linear_in_n(self):
        small = SketchParams.theoretical_edge_budget(100, 10_000, 0.5, 1.0)
        large = SketchParams.theoretical_edge_budget(200, 10_000, 0.5, 1.0)
        # log n grows slowly, so doubling n should roughly double the budget.
        assert 1.8 <= large / small <= 2.5

    def test_edge_budget_independent_of_m_up_to_loglog(self):
        b1 = SketchParams.theoretical_edge_budget(100, 10_000, 0.5, 1.0)
        b2 = SketchParams.theoretical_edge_budget(100, 10_000_000, 0.5, 1.0)
        assert b2 / b1 < 2.0  # only log log m dependence

    def test_edge_budget_grows_as_epsilon_shrinks(self):
        loose = SketchParams.theoretical_edge_budget(100, 10_000, 0.5, 1.0)
        tight = SketchParams.theoretical_edge_budget(100, 10_000, 0.1, 1.0)
        assert tight > loose

    def test_theoretical_factory_fields(self):
        params = SketchParams.theoretical(100, 10_000, 5, 0.5, delta_prime=2.0)
        assert params.mode == "theoretical"
        assert params.edge_budget >= params.num_sets
        assert params.eviction_slack == params.degree_cap
        assert params.sample_size == params.edge_budget + params.degree_cap
        assert params.max_stored_edges == params.edge_budget + params.eviction_slack

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            SketchParams.theoretical(10, 10, 2, 0.0)
        with pytest.raises(ValueError):
            SketchParams.theoretical(10, 10, 2, 1.5)

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            SketchParams.theoretical(10, 10, 2, 0.5, delta_prime=0.0)


class TestScaled:
    def test_scaled_budget_shape(self):
        params = SketchParams.scaled(1000, 1_000_000, 10, 0.2, scale=1.0)
        assert params.mode == "scaled"
        # ~ n log n / eps
        expected = math.ceil(1000 * math.log(1000) / 0.2)
        assert params.edge_budget == max(expected, 4 * 1000, 11)

    def test_scaled_smaller_than_theoretical(self):
        scaled = SketchParams.scaled(500, 100_000, 10, 0.2)
        theory = SketchParams.theoretical(500, 100_000, 10, 0.2)
        assert scaled.edge_budget < theory.edge_budget

    def test_scale_multiplies_budget(self):
        base = SketchParams.scaled(1000, 10_000, 5, 0.3, scale=1.0)
        double = SketchParams.scaled(1000, 10_000, 5, 0.3, scale=2.0)
        assert double.edge_budget >= 1.8 * base.edge_budget

    def test_degree_cap_matches_theory(self):
        params = SketchParams.scaled(300, 5_000, 6, 0.4)
        assert params.degree_cap == SketchParams.theoretical_degree_cap(300, 6, 0.4)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            SketchParams.scaled(10, 10, 2, 0.5, scale=0.0)


class TestExplicit:
    def test_explicit_budgets_respected(self):
        params = SketchParams.explicit(50, 500, 3, 0.5, edge_budget=123, degree_cap=7)
        assert params.edge_budget == 123
        assert params.degree_cap == 7
        assert params.mode == "explicit"

    def test_default_degree_cap(self):
        params = SketchParams.explicit(50, 500, 3, 0.5, edge_budget=100)
        assert params.degree_cap == SketchParams.theoretical_degree_cap(50, 3, 0.5)

    def test_custom_eviction_slack(self):
        params = SketchParams.explicit(
            50, 500, 3, 0.5, edge_budget=100, degree_cap=5, eviction_slack=0
        )
        assert params.max_stored_edges == 100


class TestDerived:
    def test_with_k_recomputes_degree_cap(self):
        params = SketchParams.scaled(200, 2_000, 4, 0.3)
        other = params.with_k(8)
        assert other.k == 8
        assert other.edge_budget == params.edge_budget
        assert other.degree_cap == SketchParams.theoretical_degree_cap(200, 8, 0.3)
        assert other.degree_cap <= params.degree_cap

    def test_describe_keys(self):
        params = SketchParams.scaled(10, 100, 2, 0.5)
        info = params.describe()
        assert {"mode", "n", "m", "k", "epsilon", "edge_budget", "degree_cap"} <= set(info)

    def test_frozen(self):
        params = SketchParams.scaled(10, 100, 2, 0.5)
        with pytest.raises(AttributeError):
            params.edge_budget = 1  # type: ignore[misc]
