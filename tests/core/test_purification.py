"""Unit tests for repro.core.purification (Appendix A)."""

from __future__ import annotations

import pytest

from repro.core.purification import (
    KPurificationInstance,
    PurificationOracle,
    adaptive_greedy_search,
    query_lower_bound,
    random_subset_search,
)


class TestInstance:
    def test_random_instance_sizes(self):
        instance = KPurificationInstance.random(100, 10, seed=1)
        assert instance.num_items == 100
        assert instance.num_gold == 10
        assert len(instance.gold_items) == 10
        assert all(0 <= item < 100 for item in instance.gold_items)

    def test_deterministic_in_seed(self):
        a = KPurificationInstance.random(50, 5, seed=2)
        b = KPurificationInstance.random(50, 5, seed=2)
        assert a.gold_items == b.gold_items

    def test_gold_count(self):
        instance = KPurificationInstance.random(30, 6, seed=3)
        assert instance.gold_count(instance.gold_items) == 6
        assert instance.gold_count([]) == 0
        assert instance.gold_count(range(30)) == 6

    def test_too_many_gold_rejected(self):
        with pytest.raises(ValueError):
            KPurificationInstance.random(5, 6)


class TestOracle:
    def test_band_formula(self):
        instance = KPurificationInstance.random(100, 10, seed=1)
        oracle = PurificationOracle(instance, epsilon=0.5)
        low, high = oracle.band(20)
        expected = 10 * 20 / 100
        slack = 0.5 * (expected + 100 / 100)
        assert low == pytest.approx(expected - slack)
        assert high == pytest.approx(expected + slack)

    def test_all_gold_query_purifies(self):
        instance = KPurificationInstance.random(100, 10, seed=1)
        oracle = PurificationOracle(instance, epsilon=0.3)
        assert oracle(instance.gold_items) == 1

    def test_typical_random_query_does_not_purify(self):
        instance = KPurificationInstance.random(1000, 30, seed=2)
        oracle = PurificationOracle(instance, epsilon=0.9)
        # A uniformly random set of half the items has gold count tightly
        # concentrated around its mean, so with a wide band it reports 0.
        assert oracle(range(0, 1000, 2)) == 0

    def test_query_counter_and_reset(self):
        instance = KPurificationInstance.random(50, 5, seed=4)
        oracle = PurificationOracle(instance, epsilon=0.5)
        oracle([1, 2, 3])
        oracle([4])
        assert oracle.queries == 2
        oracle.reset()
        assert oracle.queries == 0


class TestSearches:
    def test_random_search_respects_budget(self):
        instance = KPurificationInstance.random(400, 4, seed=5)
        oracle = PurificationOracle(instance, epsilon=0.8)
        outcome = random_subset_search(oracle, max_queries=50, seed=5)
        assert oracle.queries <= 50
        assert outcome.queries <= 50
        if outcome.found:
            assert oracle(outcome.witness) == 1

    def test_random_search_succeeds_when_k_large(self):
        # With k close to n the gold concentration is easy to hit.
        instance = KPurificationInstance.random(20, 15, seed=6)
        oracle = PurificationOracle(instance, epsilon=0.1)
        outcome = random_subset_search(oracle, subset_size=3, max_queries=2000, seed=6)
        assert outcome.found

    def test_adaptive_search_respects_budget(self):
        instance = KPurificationInstance.random(300, 3, seed=7)
        oracle = PurificationOracle(instance, epsilon=0.8)
        outcome = adaptive_greedy_search(oracle, max_queries=100, seed=7)
        assert outcome.queries <= 100

    def test_hard_regime_defeats_bounded_search(self):
        # With ε·k²/n well above the gold fluctuations of a random query, the
        # oracle's band swallows every query the search makes, so a bounded
        # query budget fails (the regime Theorem A.2 formalises).
        instance = KPurificationInstance.random(400, 40, seed=8)
        oracle = PurificationOracle(instance, epsilon=0.9)
        outcome = random_subset_search(oracle, subset_size=40, max_queries=300, seed=8)
        assert not outcome.found


class TestLowerBound:
    def test_grows_with_k(self):
        assert query_lower_bound(1000, 200, 0.5) > query_lower_bound(1000, 50, 0.5)

    def test_grows_with_epsilon(self):
        assert query_lower_bound(1000, 100, 0.9) > query_lower_bound(1000, 100, 0.2)

    def test_scales_with_success_probability(self):
        assert query_lower_bound(100, 10, 0.5, 1.0) == pytest.approx(
            2 * query_lower_bound(100, 10, 0.5, 0.5)
        )

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            query_lower_bound(0, 1, 0.5)
        with pytest.raises(ValueError):
            query_lower_bound(10, 1, 0.0)
