"""Unit tests for repro.core.lowerbound (Theorem 1.2 / Appendix E)."""

from __future__ import annotations

import pytest

from repro.core.lowerbound import (
    ELEMENT_A,
    ELEMENT_B,
    BoundedMemoryOneCover,
    DisjointnessInstance,
    disjointness_stream,
    evaluate_bounded_memory_protocol,
)


class TestDisjointnessInstance:
    def test_forced_intersecting(self):
        for seed in range(5):
            instance = DisjointnessInstance.random(50, force_intersecting=True, seed=seed)
            assert instance.intersects
            assert instance.optimum_1_cover() == 2

    def test_forced_disjoint(self):
        for seed in range(5):
            instance = DisjointnessInstance.random(50, force_intersecting=False, seed=seed)
            assert not instance.intersects
            assert instance.optimum_1_cover() <= 1

    def test_to_graph_structure(self):
        instance = DisjointnessInstance(
            num_sets=5, alice=frozenset({0, 2}), bob=frozenset({2, 4})
        )
        graph = instance.to_graph()
        assert graph.sets_of(ELEMENT_A) == frozenset({0, 2})
        assert graph.sets_of(ELEMENT_B) == frozenset({2, 4})
        # The intersecting set covers both elements: Opt_1 = 2.
        assert graph.coverage([2]) == 2
        assert graph.coverage([0]) == 1

    def test_reduction_value_matches_intersection(self):
        for seed in range(6):
            instance = DisjointnessInstance.random(30, seed=seed)
            graph = instance.to_graph()
            best = max((graph.coverage([s]) for s in range(30)), default=0)
            assert (best == 2) == instance.intersects

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            DisjointnessInstance.random(0)


class TestStream:
    def test_alice_edges_come_first(self):
        instance = DisjointnessInstance.random(40, force_intersecting=True, seed=1)
        events = list(disjointness_stream(instance))
        switch = next(i for i, e in enumerate(events) if e.element == ELEMENT_B)
        assert all(e.element == ELEMENT_A for e in events[:switch])
        assert all(e.element == ELEMENT_B for e in events[switch:])

    def test_stream_sizes(self):
        instance = DisjointnessInstance.random(40, seed=2)
        stream = disjointness_stream(instance)
        assert stream.num_events == len(instance.alice) + len(instance.bob)
        assert stream.num_sets == 40


class TestBoundedMemoryProtocol:
    def test_full_memory_always_correct(self):
        for seed in range(6):
            instance = DisjointnessInstance.random(
                30, density=0.3, force_intersecting=(seed % 2 == 0), seed=seed
            )
            protocol = BoundedMemoryOneCover(memory_sets=30, seed=seed)
            for event in disjointness_stream(instance):
                protocol.process(event)
            assert protocol.predicts_intersection() == instance.intersects

    def test_never_false_positive(self):
        # The protocol only claims an intersection when it has a witness.
        for seed in range(5):
            instance = DisjointnessInstance.random(40, force_intersecting=False, seed=seed)
            protocol = BoundedMemoryOneCover(memory_sets=5, seed=seed)
            for event in disjointness_stream(instance):
                protocol.process(event)
            assert not protocol.predicts_intersection()

    def test_solution_returns_witness_when_found(self):
        instance = DisjointnessInstance(
            num_sets=10, alice=frozenset({1, 2, 3}), bob=frozenset({3})
        )
        protocol = BoundedMemoryOneCover(memory_sets=10, seed=0)
        for event in disjointness_stream(instance):
            protocol.process(event)
        assert protocol.solution() == [3]

    def test_accuracy_degrades_with_memory(self):
        full = evaluate_bounded_memory_protocol(200, 200, trials=30, density=0.05, seed=3)
        tiny = evaluate_bounded_memory_protocol(200, 4, trials=30, density=0.05, seed=3)
        assert full["accuracy"] == pytest.approx(1.0)
        assert tiny["accuracy_intersecting"] < full["accuracy_intersecting"]

    def test_evaluation_report_fields(self):
        report = evaluate_bounded_memory_protocol(50, 10, trials=10, seed=1)
        assert {"accuracy", "accuracy_intersecting", "accuracy_disjoint", "memory_fraction"} <= set(
            report
        )
        assert 0.0 <= report["accuracy"] <= 1.0

    def test_invalid_memory(self):
        with pytest.raises(ValueError):
            BoundedMemoryOneCover(0)
