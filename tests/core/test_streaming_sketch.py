"""Unit tests for repro.core.streaming_sketch (Algorithm 2)."""

from __future__ import annotations

import pytest

from repro.core.hashing import UniformHash
from repro.core.params import SketchParams
from repro.core.sketch import build_h_leq_n
from repro.core.streaming_sketch import StreamingSketchBuilder
from repro.streaming.events import EdgeArrival
from repro.streaming.stream import EdgeStream


def _params(instance, *, edge_budget, degree_cap, slack=None):
    return SketchParams.explicit(
        instance.n,
        instance.m,
        4,
        0.3,
        edge_budget=edge_budget,
        degree_cap=degree_cap,
        eviction_slack=slack,
    )


class TestBasicStreaming:
    def test_whole_input_fits(self, figure1_graph):
        params = SketchParams.explicit(4, 8, 2, 0.5, edge_budget=1000, degree_cap=100)
        builder = StreamingSketchBuilder(params, seed=1)
        builder.consume(figure1_graph.edges())
        sketch = builder.sketch()
        assert sketch.graph == figure1_graph
        assert sketch.threshold == 1.0
        assert builder.evictions == 0

    def test_duplicate_edges_ignored(self, figure1_graph):
        params = SketchParams.explicit(4, 8, 2, 0.5, edge_budget=1000, degree_cap=100)
        builder = StreamingSketchBuilder(params, seed=1)
        edges = list(figure1_graph.edges())
        builder.consume(edges + edges)
        assert builder.sketch().num_edges == figure1_graph.num_edges

    def test_degree_cap_enforced(self, figure1_graph):
        params = SketchParams.explicit(4, 8, 2, 0.5, edge_budget=1000, degree_cap=1)
        builder = StreamingSketchBuilder(params, seed=1)
        builder.consume(figure1_graph.edges())
        sketch = builder.sketch()
        assert all(sketch.graph.element_degree(e) <= 1 for e in sketch.graph.elements())

    def test_process_event_objects(self, figure1_graph):
        params = SketchParams.explicit(4, 8, 2, 0.5, edge_budget=1000, degree_cap=100)
        builder = StreamingSketchBuilder(params, seed=1)
        for set_id, element in figure1_graph.edges():
            builder.process(EdgeArrival(set_id, element))
        assert builder.edges_seen == figure1_graph.num_edges

    def test_space_meter_charged(self, figure1_graph):
        params = SketchParams.explicit(4, 8, 2, 0.5, edge_budget=1000, degree_cap=100)
        builder = StreamingSketchBuilder(params, seed=1)
        builder.consume(figure1_graph.edges())
        assert builder.space.peak == figure1_graph.num_edges

    def test_invalid_rank_source(self, figure1_graph):
        params = SketchParams.explicit(4, 8, 2, 0.5, edge_budget=10, degree_cap=3)
        with pytest.raises(ValueError):
            StreamingSketchBuilder(params, rank_source="oracle")


class TestEviction:
    def test_stored_edges_bounded(self, planted_kcover):
        params = _params(planted_kcover, edge_budget=150, degree_cap=8)
        builder = StreamingSketchBuilder(params, seed=2)
        limit = params.edge_budget + params.eviction_slack
        for set_id, element in planted_kcover.graph.edges():
            builder.add_edge(set_id, element)
            assert builder.stored_edges <= limit + params.degree_cap
        assert builder.evictions > 0
        assert builder.sketch().num_edges <= limit

    def test_admission_threshold_monotone_decreasing(self, planted_kcover):
        params = _params(planted_kcover, edge_budget=100, degree_cap=8)
        builder = StreamingSketchBuilder(params, seed=2)
        last = 1.0
        for set_id, element in planted_kcover.graph.edges():
            builder.add_edge(set_id, element)
            assert builder.admission_threshold <= last + 1e-15
            last = builder.admission_threshold
        assert last < 1.0

    def test_evicted_elements_never_readmitted(self, planted_kcover):
        params = _params(planted_kcover, edge_budget=100, degree_cap=8)
        hash_fn = UniformHash(7)
        builder = StreamingSketchBuilder(params, hash_fn=hash_fn, seed=7)
        # Stream every edge twice in different orders: any evicted element
        # must stay out (its hash is >= the admission threshold).
        edges = list(planted_kcover.graph.edges())
        builder.consume(edges)
        builder.consume(reversed(edges))
        sketch = builder.sketch()
        for element in sketch.graph.elements():
            assert hash_fn.value(element) <= sketch.threshold

    def test_retained_elements_have_full_capped_degree(self, planted_kcover):
        """Key equivalence invariant with the offline construction."""
        params = _params(planted_kcover, edge_budget=200, degree_cap=5)
        hash_fn = UniformHash(13)
        builder = StreamingSketchBuilder(params, hash_fn=hash_fn, seed=13)
        builder.consume(planted_kcover.graph.edges())
        sketch = builder.sketch()
        threshold = max(sketch.element_hashes.values())
        for element in sketch.graph.elements():
            if hash_fn.value(element) < threshold:  # strictly inside the sketch
                true_degree = planted_kcover.graph.element_degree(element)
                assert sketch.graph.element_degree(element) == min(
                    true_degree, params.degree_cap
                )

    def test_order_invariance_of_retained_element_set(self, planted_kcover):
        params = _params(planted_kcover, edge_budget=150, degree_cap=6)
        hash_fn = UniformHash(21)
        sketches = []
        for order_seed in (1, 2, 3):
            stream = EdgeStream.from_graph(planted_kcover.graph, order="random", seed=order_seed)
            builder = StreamingSketchBuilder(params, hash_fn=hash_fn)
            for event in stream:
                builder.process(event)
            sketches.append(builder.sketch())
        element_sets = [frozenset(s.graph.elements()) for s in sketches]
        # The retained *elements* depend only on the hash, not the order
        # (which edges of a capped element are kept may differ).
        assert element_sets[0] == element_sets[1] == element_sets[2]

    def test_matches_offline_construction_element_set(self, planted_kcover):
        params = _params(planted_kcover, edge_budget=180, degree_cap=7)
        hash_fn = UniformHash(31)
        offline = build_h_leq_n(planted_kcover.graph, params, hash_fn)
        builder = StreamingSketchBuilder(params, hash_fn=hash_fn)
        builder.consume(planted_kcover.graph.edges())
        streaming = builder.sketch()
        offline_elements = set(offline.graph.elements())
        streaming_elements = set(streaming.graph.elements())
        # The streaming construction may keep slightly more elements (its
        # stopping rule allows the extra eviction slack) but never fewer, and
        # everything it keeps beyond the offline sketch hashes above the
        # offline threshold.
        assert offline_elements <= streaming_elements
        extra = streaming_elements - offline_elements
        assert all(hash_fn.value(e) >= offline.threshold for e in extra)


class TestPermutationRankSource:
    def test_permutation_mode_respects_budget(self, planted_kcover):
        params = _params(planted_kcover, edge_budget=150, degree_cap=8)
        builder = StreamingSketchBuilder(params, seed=5, rank_source="permutation")
        builder.consume(planted_kcover.graph.edges())
        sketch = builder.sketch()
        assert sketch.num_edges <= params.edge_budget + params.eviction_slack

    def test_unsampled_elements_discarded(self):
        # Tiny sample: only `sample_size` elements can ever be admitted.
        params = SketchParams.explicit(
            5, 1000, 2, 0.5, edge_budget=10, degree_cap=2, eviction_slack=0
        )
        builder = StreamingSketchBuilder(params, seed=3, rank_source="permutation")
        for element in range(1000):
            builder.add_edge(element % 5, element)
        assert builder.sketch().num_elements <= params.sample_size

    def test_describe_reports_rank_source(self, figure1_graph):
        params = SketchParams.explicit(4, 8, 2, 0.5, edge_budget=10, degree_cap=2)
        builder = StreamingSketchBuilder(params, seed=3, rank_source="permutation")
        assert builder.describe()["rank_source"] == "permutation"


class TestBatchProcessing:
    """process_batch must be byte-identical to the scalar edge path."""

    def _drain(self, builder, instance, *, batch_size=None, order="random", seed=5):
        stream = EdgeStream.from_graph(instance.graph, order=order, seed=seed)
        if batch_size is None:
            for event in stream:
                builder.process(event)
        else:
            for batch in stream.iter_batches(batch_size):
                builder.process_batch(batch)

    @pytest.mark.parametrize("batch_size", [1, 7, 1024])
    def test_matches_scalar_with_evictions(self, planted_kcover, batch_size):
        params = _params(planted_kcover, edge_budget=120, degree_cap=8)
        scalar = StreamingSketchBuilder(params, seed=3)
        batched = StreamingSketchBuilder(params, seed=3)
        self._drain(scalar, planted_kcover)
        self._drain(batched, planted_kcover, batch_size=batch_size)
        assert batched.describe() == scalar.describe()
        assert sorted(batched.sketch().graph.edges()) == sorted(scalar.sketch().graph.edges())
        assert batched.space.peak == scalar.space.peak

    @pytest.mark.parametrize("batch_size", [1, 7, 64])
    def test_permutation_rank_source_is_vectorised_and_identical(
        self, planted_kcover, batch_size
    ):
        import numpy as np

        params = _params(planted_kcover, edge_budget=120, degree_cap=8)
        scalar = StreamingSketchBuilder(params, seed=3, rank_source="permutation")
        batched = StreamingSketchBuilder(params, seed=3, rank_source="permutation")
        # The dense rank table serves the batched path natively (no scalar
        # fallback): one gather ranks a whole element column.
        column = np.array([0, 1, 2, 10**9], dtype=np.uint64)
        ranks = batched._rank_batch(column)
        assert ranks is not None
        assert ranks.tolist() == [batched._rank(int(e)) for e in column]
        self._drain(scalar, planted_kcover)
        self._drain(batched, planted_kcover, batch_size=batch_size)
        assert batched.describe() == scalar.describe()
        assert batched.sketch().element_hashes == scalar.sketch().element_hashes
        assert sorted(batched.sketch().graph.edges()) == sorted(
            scalar.sketch().graph.edges()
        )

    def test_rejects_set_batches(self, figure1_graph):
        from repro.streaming.batches import EventBatch

        params = SketchParams.explicit(4, 8, 2, 0.5, edge_budget=100, degree_cap=10)
        builder = StreamingSketchBuilder(params, seed=1)
        with pytest.raises(TypeError, match="edge batches"):
            builder.process_batch(EventBatch.from_sets([(0, (1, 2))]))

    def test_empty_batch_is_a_noop(self, figure1_graph):
        from repro.streaming.batches import EventBatch

        params = SketchParams.explicit(4, 8, 2, 0.5, edge_budget=100, degree_cap=10)
        builder = StreamingSketchBuilder(params, seed=1)
        assert builder.process_batch(EventBatch.from_edges([])) == 0
        assert builder.edges_seen == 0
