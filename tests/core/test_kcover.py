"""Unit tests for repro.core.kcover (Algorithm 3)."""

from __future__ import annotations

import math

import pytest

from repro.core.kcover import StreamingKCover, default_kcover_params
from repro.core.params import SketchParams
from repro.datasets import planted_kcover_instance, zipf_instance
from repro.offline.greedy import greedy_k_cover
from repro.streaming.runner import StreamingRunner
from repro.streaming.stream import EdgeStream


class TestDefaultParams:
    def test_epsilon_divided_by_twelve(self):
        params = default_kcover_params(100, 1000, 5, 0.24, mode="scaled")
        assert params.epsilon == pytest.approx(0.02)

    def test_delta_prime_is_two_plus_log_n(self):
        params = default_kcover_params(100, 1000, 5, 0.24, mode="scaled")
        assert params.delta_prime == pytest.approx(2 + math.log(100))

    def test_theoretical_mode(self):
        params = default_kcover_params(100, 1000, 5, 0.5, mode="theoretical")
        assert params.mode == "theoretical"

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            default_kcover_params(100, 1000, 5, 0.5, mode="magic")


class TestStreamingKCover:
    def test_single_pass_and_solution_size(self, planted_kcover):
        algo = StreamingKCover(planted_kcover.n, planted_kcover.m, k=4, epsilon=0.3, seed=1)
        runner = StreamingRunner(planted_kcover.graph)
        report = runner.run(
            algo, EdgeStream.from_graph(planted_kcover.graph, order="random", seed=1)
        )
        assert report.passes == 1
        assert report.solution_size <= 4
        assert report.arrival_model == "edge"

    def test_matches_offline_greedy_when_sketch_holds_everything(self, planted_kcover):
        # With a huge budget the sketch is the input, so the result must be
        # exactly the offline greedy's coverage.
        params = SketchParams.explicit(
            planted_kcover.n, planted_kcover.m, 4, 0.1, edge_budget=10**6, degree_cap=10**6
        )
        algo = StreamingKCover(planted_kcover.n, planted_kcover.m, k=4, params=params, seed=1)
        for event in EdgeStream.from_graph(planted_kcover.graph, order="random", seed=1):
            algo.process(event)
        algo.finish_pass(0)
        solution = algo.result()
        assert planted_kcover.graph.coverage(solution) == greedy_k_cover(
            planted_kcover.graph, 4
        ).coverage

    def test_quality_with_restricted_space(self):
        instance = planted_kcover_instance(80, 4000, k=5, planted_coverage=0.9, seed=3)
        params = SketchParams.explicit(
            instance.n, instance.m, 5, 0.2, edge_budget=1500, degree_cap=40
        )
        algo = StreamingKCover(instance.n, instance.m, k=5, params=params, seed=3)
        report = StreamingRunner(instance.graph).run(
            algo, EdgeStream.from_graph(instance.graph, order="random", seed=3)
        )
        reference = greedy_k_cover(instance.graph, 5).coverage
        # 1 - 1/e - eps would be ~0.43; the sketch does far better in practice,
        # but assert the theorem's bound with slack.
        assert report.coverage >= (1 - 1 / math.e - 0.2) * reference
        # Peak transient space: the budget, the eviction slack, plus the one
        # edge admitted immediately before an eviction round.
        assert report.space_peak <= params.edge_budget + params.eviction_slack + 1

    def test_space_independent_of_m(self):
        """The headline claim: space depends on n, not on m."""
        peaks = []
        for m in (2000, 8000):
            instance = planted_kcover_instance(60, m, k=4, seed=5)
            params = SketchParams.explicit(
                instance.n, instance.m, 4, 0.2, edge_budget=800, degree_cap=30
            )
            algo = StreamingKCover(instance.n, instance.m, k=4, params=params, seed=5)
            report = StreamingRunner(instance.graph).run(
                algo, EdgeStream.from_graph(instance.graph, order="random", seed=5)
            )
            peaks.append(report.space_peak)
        assert max(peaks) <= 800 + params.eviction_slack + 1

    def test_result_is_cached(self, planted_kcover):
        algo = StreamingKCover(planted_kcover.n, planted_kcover.m, k=3, seed=2)
        for event in EdgeStream.from_graph(planted_kcover.graph, order="random", seed=2):
            algo.process(event)
        algo.finish_pass(0)
        assert algo.result() is algo.result()

    def test_estimated_coverage_close_to_actual(self, planted_kcover):
        algo = StreamingKCover(planted_kcover.n, planted_kcover.m, k=4, epsilon=0.3, seed=4)
        for event in EdgeStream.from_graph(planted_kcover.graph, order="random", seed=4):
            algo.process(event)
        algo.finish_pass(0)
        actual = planted_kcover.graph.coverage(algo.result())
        assert algo.estimated_coverage() == pytest.approx(actual, rel=0.35)

    def test_custom_solver_is_used(self, planted_kcover):
        calls = []

        def stub_solver(graph, k):
            calls.append(k)
            return list(range(k))

        algo = StreamingKCover(
            planted_kcover.n, planted_kcover.m, k=3, seed=1, solver=stub_solver
        )
        algo.finish_pass(0)
        assert algo.result() == [0, 1, 2]
        assert calls == [3]

    def test_zipf_instance_handles_degree_cap(self):
        instance = zipf_instance(50, 1500, edges_per_set=60, k=5, seed=9)
        params = SketchParams.explicit(
            instance.n, instance.m, 5, 0.2, edge_budget=1000, degree_cap=10
        )
        algo = StreamingKCover(instance.n, instance.m, k=5, params=params, seed=9)
        report = StreamingRunner(instance.graph).run(
            algo, EdgeStream.from_graph(instance.graph, order="random", seed=9)
        )
        reference = greedy_k_cover(instance.graph, 5).coverage
        assert report.coverage >= 0.5 * reference

    def test_wants_single_pass(self, planted_kcover):
        algo = StreamingKCover(planted_kcover.n, planted_kcover.m, k=2)
        assert algo.wants_another_pass() is False

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            StreamingKCover(10, 100, k=0)
        with pytest.raises(ValueError):
            StreamingKCover(10, 100, k=2, epsilon=0.0)

    def test_describe_contains_sketch_info(self, planted_kcover):
        algo = StreamingKCover(planted_kcover.n, planted_kcover.m, k=2, seed=1)
        info = algo.describe()
        assert info["algorithm"] == "bateni-sketch-kcover"
        assert "edge_budget" in info and "stored_edges" in info
