"""Unit tests for repro.core.setcover_outliers (Algorithms 4 and 5)."""

from __future__ import annotations

import math

import pytest

from repro.core.setcover_outliers import (
    GuessChecker,
    StreamingSetCoverOutliers,
    guess_schedule,
)
from repro.datasets import planted_setcover_instance
from repro.streaming.events import EdgeArrival
from repro.streaming.runner import StreamingRunner
from repro.streaming.stream import EdgeStream


class TestGuessSchedule:
    def test_starts_at_one_and_ends_at_n(self):
        schedule = guess_schedule(100, 0.6)
        assert schedule[0] == 1
        assert schedule[-1] == 100

    def test_strictly_increasing(self):
        schedule = guess_schedule(500, 0.3)
        assert all(a < b for a, b in zip(schedule, schedule[1:]))

    def test_geometric_growth_rate(self):
        schedule = guess_schedule(10_000, 0.9)
        # Later ratios approach 1 + eps/3 = 1.3.
        ratios = [b / a for a, b in zip(schedule[-5:], schedule[-4:])]
        assert all(r <= 1.31 + 1e-9 for r in ratios)

    def test_number_of_guesses_logarithmic(self):
        schedule = guess_schedule(1000, 0.5)
        assert len(schedule) <= math.ceil(math.log(1000, 1 + 0.5 / 3)) + 2

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            guess_schedule(0, 0.5)
        with pytest.raises(ValueError):
            guess_schedule(10, 0.0)


class TestGuessChecker:
    def _feed(self, checker: GuessChecker, graph) -> None:
        for set_id, element in graph.edges():
            checker.process(EdgeArrival(set_id, element))

    def test_accepts_when_guess_is_large_enough(self, planted_setcover):
        checker = GuessChecker(
            guess=len(planted_setcover.planted_solution),
            epsilon_prime=0.2,
            lambda_prime=0.1,
            confidence=1.0,
            num_sets=planted_setcover.n,
            num_elements=planted_setcover.m,
            seed=1,
        )
        self._feed(checker, planted_setcover.graph)
        outcome = checker.check()
        assert outcome.accepted
        assert len(outcome.solution) <= checker.budget_k
        assert outcome.sketch_fraction >= outcome.required_fraction - 1e-12

    def test_rejects_hopeless_guess(self, planted_setcover):
        checker = GuessChecker(
            guess=1,
            epsilon_prime=0.2,
            lambda_prime=0.05,
            confidence=1.0,
            num_sets=planted_setcover.n,
            num_elements=planted_setcover.m,
            seed=1,
        )
        self._feed(checker, planted_setcover.graph)
        outcome = checker.check()
        # One set (plus log(1/λ') slack) cannot cover 95% of a 6-set partition.
        assert not outcome.accepted

    def test_budget_k_is_guess_times_log(self):
        checker = GuessChecker(
            guess=4, epsilon_prime=0.2, lambda_prime=0.1, confidence=1.0,
            num_sets=50, num_elements=500, seed=0,
        )
        assert checker.budget_k == math.ceil(4 * math.log(10))

    def test_invalid_lambda(self):
        with pytest.raises(ValueError):
            GuessChecker(
                guess=2, epsilon_prime=0.2, lambda_prime=0.9, confidence=1.0,
                num_sets=10, num_elements=100,
            )


class TestStreamingSetCoverOutliers:
    def _run(self, instance, lam=0.1, epsilon=0.5, seed=1, **kwargs):
        algo = StreamingSetCoverOutliers(
            instance.n, instance.m, outlier_fraction=lam, epsilon=epsilon, seed=seed, **kwargs
        )
        runner = StreamingRunner(instance.graph)
        report = runner.run(
            algo, EdgeStream.from_graph(instance.graph, order="random", seed=seed)
        )
        return algo, report

    def test_single_pass_and_coverage_target(self, planted_setcover):
        algo, report = self._run(planted_setcover, lam=0.1)
        assert report.passes == 1
        # Must cover at least 1 - λ of the elements (with small slack for the
        # scaled sketch constants).
        assert report.coverage_fraction >= 1 - 0.1 - 0.05

    def test_solution_size_near_optimal(self, planted_setcover):
        optimum = len(planted_setcover.planted_solution)
        algo, report = self._run(planted_setcover, lam=0.1, epsilon=0.5)
        bound = (1 + 0.5) * math.log(1 / (0.1 * math.exp(-0.25))) * optimum
        assert report.solution_size <= math.ceil(bound) + 1

    def test_accepted_guess_close_to_optimum(self, planted_setcover):
        optimum = len(planted_setcover.planted_solution)
        algo, _ = self._run(planted_setcover, lam=0.1, epsilon=0.5)
        accepted = algo.accepted_guess()
        assert accepted is not None
        assert accepted <= (1 + 0.5 / 3) * optimum + 1

    def test_guesses_increasing(self, planted_setcover):
        algo, _ = self._run(planted_setcover)
        guesses = list(algo.guesses())
        assert all(a < b for a, b in zip(guesses, guesses[1:]))

    def test_max_guesses_limits_work(self, planted_setcover):
        algo = StreamingSetCoverOutliers(
            planted_setcover.n, planted_setcover.m, 0.1, 0.5, max_guesses=3
        )
        assert len(algo.guesses()) == 3

    def test_outcomes_cached(self, planted_setcover):
        algo, _ = self._run(planted_setcover)
        assert algo.outcomes() is algo.outcomes()

    def test_result_deduplicated(self, planted_setcover):
        algo, report = self._run(planted_setcover)
        assert len(report.solution) == len(set(report.solution))

    def test_invalid_lambda_rejected(self):
        with pytest.raises(ValueError):
            StreamingSetCoverOutliers(10, 100, outlier_fraction=0.5)

    def test_describe_keys(self, planted_setcover):
        algo, _ = self._run(planted_setcover)
        info = algo.describe()
        assert info["algorithm"] == "bateni-sketch-setcover-outliers"
        assert info["num_guesses"] == len(algo.guesses())

    def test_larger_lambda_allows_fewer_sets(self):
        instance = planted_setcover_instance(50, 900, cover_size=10, seed=4)
        _, strict = self._run(instance, lam=0.05, epsilon=0.5, seed=4)
        _, loose = self._run(instance, lam=0.3, epsilon=0.5, seed=4)
        assert loose.solution_size <= strict.solution_size
