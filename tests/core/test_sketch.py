"""Unit tests for repro.core.sketch (offline H_p, H'_p, H_{<=n})."""

from __future__ import annotations

import pytest

from repro.core.hashing import UniformHash
from repro.core.params import SketchParams
from repro.core.sketch import (
    CoverageSketch,
    apply_degree_cap,
    build_h_leq_n,
    build_hp,
    build_hp_prime,
)
from repro.offline.greedy import greedy_k_cover


class FixedHash:
    """Hash stub assigning prescribed values (for deterministic tests)."""

    def __init__(self, values: dict[int, float], default: float = 0.99) -> None:
        self.values_map = values
        self.default = default

    def value(self, element: int) -> float:
        return self.values_map.get(element, self.default)

    def rank(self, element: int) -> int:
        return int(self.value(element) * (2**64))


class TestBuildHp:
    def test_p_one_keeps_everything(self, figure1_graph):
        hp = build_hp(figure1_graph, 1.0, UniformHash(3))
        assert hp.num_edges == figure1_graph.num_edges
        assert hp.num_elements == figure1_graph.num_elements

    def test_keeps_exactly_elements_below_threshold(self, figure1_graph):
        hash_fn = UniformHash(5)
        p = 0.5
        hp = build_hp(figure1_graph, p, hash_fn)
        expected = {e for e in figure1_graph.elements() if hash_fn.value(e) <= p}
        assert set(hp.elements()) == expected

    def test_all_sets_preserved(self, figure1_graph):
        hp = build_hp(figure1_graph, 0.3, UniformHash(1))
        assert hp.num_sets == figure1_graph.num_sets

    def test_figure1_example_with_fixed_hashes(self, figure1_graph):
        # Mirror Figure 1: half the elements hash below p = 0.5.
        hashes = {0: 0.1, 1: 0.7, 2: 0.3, 3: 0.9, 4: 0.2, 5: 0.8, 6: 0.4, 7: 0.6}
        hp = build_hp(figure1_graph, 0.5, FixedHash(hashes))
        assert set(hp.elements()) == {0, 2, 4, 6}

    def test_invalid_p(self, figure1_graph):
        with pytest.raises(ValueError):
            build_hp(figure1_graph, 0.0)
        with pytest.raises(ValueError):
            build_hp(figure1_graph, 1.5)

    def test_monotone_in_p(self, planted_kcover):
        hash_fn = UniformHash(11)
        small = build_hp(planted_kcover.graph, 0.2, hash_fn)
        large = build_hp(planted_kcover.graph, 0.6, hash_fn)
        assert set(small.elements()) <= set(large.elements())
        assert small.num_edges <= large.num_edges


class TestDegreeCap:
    def test_cap_enforced(self, figure1_graph):
        capped, truncated = apply_degree_cap(figure1_graph, 2)
        for element in capped.elements():
            assert capped.element_degree(element) <= 2
        # Elements 3 and 5 have degree 3 in the original graph.
        assert truncated == frozenset({3, 5})

    def test_cap_no_op_when_large(self, figure1_graph):
        capped, truncated = apply_degree_cap(figure1_graph, 10)
        assert capped == figure1_graph
        assert truncated == frozenset()

    def test_deterministic_keeps_smallest_set_ids(self, figure1_graph):
        capped, _ = apply_degree_cap(figure1_graph, 1)
        for element in capped.elements():
            owners = capped.sets_of(element)
            original = figure1_graph.sets_of(element)
            assert owners == frozenset({min(original)})

    def test_invalid_cap(self, figure1_graph):
        with pytest.raises(ValueError):
            apply_degree_cap(figure1_graph, 0)


class TestBuildHpPrime:
    def test_returns_coverage_sketch(self, figure1_graph):
        params = SketchParams.explicit(4, 8, 2, 0.5, edge_budget=100, degree_cap=2)
        sketch = build_hp_prime(figure1_graph, 0.8, params, UniformHash(2))
        assert isinstance(sketch, CoverageSketch)
        assert sketch.threshold == 0.8
        for element in sketch.graph.elements():
            assert sketch.graph.element_degree(element) <= 2

    def test_subgraph_of_hp(self, figure1_graph):
        hash_fn = UniformHash(2)
        params = SketchParams.explicit(4, 8, 2, 0.5, edge_budget=100, degree_cap=2)
        hp = build_hp(figure1_graph, 0.8, hash_fn)
        sketch = build_hp_prime(figure1_graph, 0.8, params, hash_fn)
        assert set(sketch.graph.elements()) == set(hp.elements())
        assert sketch.num_edges <= hp.num_edges


class TestBuildHLeqN:
    def test_budget_respected_up_to_one_element(self, planted_kcover):
        params = SketchParams.explicit(
            planted_kcover.n, planted_kcover.m, 4, 0.3, edge_budget=200, degree_cap=10
        )
        sketch = build_h_leq_n(planted_kcover.graph, params, UniformHash(3))
        # Algorithm 1 stops once the budget is reached; the final element may
        # overshoot by at most its capped degree.
        assert sketch.num_edges <= 200 + 10
        assert sketch.num_edges >= min(200, planted_kcover.num_edges)

    def test_keeps_lowest_hash_elements(self, planted_kcover):
        hash_fn = UniformHash(3)
        params = SketchParams.explicit(
            planted_kcover.n, planted_kcover.m, 4, 0.3, edge_budget=150, degree_cap=10
        )
        sketch = build_h_leq_n(planted_kcover.graph, params, hash_fn)
        kept = set(sketch.graph.elements())
        threshold = sketch.threshold
        for element in planted_kcover.graph.elements():
            if hash_fn.value(element) < threshold and element not in kept:
                pytest.fail("an element below the threshold was not admitted")

    def test_whole_input_fits(self, figure1_graph):
        params = SketchParams.explicit(4, 8, 2, 0.5, edge_budget=1000, degree_cap=100)
        sketch = build_h_leq_n(figure1_graph, params, UniformHash(1))
        assert sketch.threshold == 1.0
        assert sketch.num_edges == figure1_graph.num_edges

    def test_degree_cap_applied(self, figure1_graph):
        params = SketchParams.explicit(4, 8, 2, 0.5, edge_budget=1000, degree_cap=1)
        sketch = build_h_leq_n(figure1_graph, params, UniformHash(1))
        assert all(sketch.graph.element_degree(e) == 1 for e in sketch.graph.elements())
        assert len(sketch.truncated_elements) > 0

    def test_hashes_recorded_for_admitted_elements(self, figure1_graph):
        hash_fn = UniformHash(9)
        params = SketchParams.explicit(4, 8, 2, 0.5, edge_budget=6, degree_cap=3)
        sketch = build_h_leq_n(figure1_graph, params, hash_fn)
        for element, value in sketch.element_hashes.items():
            assert value == hash_fn.value(element)
        assert set(sketch.element_hashes) == set(sketch.graph.elements())


class TestCoverageSketchMethods:
    @pytest.fixture
    def sketch(self, planted_kcover) -> CoverageSketch:
        params = SketchParams.explicit(
            planted_kcover.n, planted_kcover.m, 4, 0.3, edge_budget=400, degree_cap=20
        )
        return build_h_leq_n(planted_kcover.graph, params, UniformHash(5))

    def test_estimate_coverage_close_to_truth(self, planted_kcover, sketch):
        solution = greedy_k_cover(planted_kcover.graph, 4).selected
        estimate = sketch.estimate_coverage(solution)
        truth = planted_kcover.graph.coverage(solution)
        assert estimate == pytest.approx(truth, rel=0.35)

    def test_estimate_total_elements(self, planted_kcover, sketch):
        estimate = sketch.estimate_total_elements()
        assert estimate == pytest.approx(planted_kcover.m, rel=0.35)

    def test_sketch_coverage_counts_sketch_elements(self, sketch):
        value = sketch.sketch_coverage(list(sketch.graph.set_ids()))
        assert value == sketch.num_elements

    def test_coverage_fraction_bounds(self, sketch):
        assert 0.0 <= sketch.coverage_fraction([0]) <= 1.0
        assert sketch.coverage_fraction(list(sketch.graph.set_ids())) == pytest.approx(1.0)

    def test_restrict_to_threshold_nested(self, sketch):
        smaller = sketch.restrict_to_threshold(sketch.threshold / 2)
        assert set(smaller.graph.elements()) <= set(sketch.graph.elements())
        assert smaller.threshold <= sketch.threshold
        for element, value in smaller.element_hashes.items():
            assert value <= sketch.threshold / 2

    def test_describe(self, sketch):
        info = sketch.describe()
        assert info["edges"] == sketch.num_edges
        assert info["degree_cap"] == sketch.params.degree_cap

    def test_empty_threshold_estimate(self, figure1_graph):
        params = SketchParams.explicit(4, 8, 2, 0.5, edge_budget=10, degree_cap=3)
        sketch = CoverageSketch(
            graph=figure1_graph.copy(), params=params, threshold=0.0, element_hashes={}
        )
        assert sketch.estimate_coverage([0]) == 0.0
        assert sketch.estimate_total_elements() == 0.0
