"""Unit tests for repro.core.l0 (KMV sketches and the Appendix D baseline)."""

from __future__ import annotations

import pytest

from repro.core.l0 import (
    KMVSketch,
    L0CoverageOracle,
    kmv_size_for_epsilon,
    l0_exhaustive_k_cover,
    l0_greedy_k_cover,
)
from repro.datasets import planted_kcover_instance
from repro.offline.exact import exact_k_cover
from repro.offline.greedy import greedy_k_cover


class TestKMVSize:
    def test_inverse_square_scaling(self):
        assert kmv_size_for_epsilon(0.1) >= 4 * kmv_size_for_epsilon(0.2) - 1

    def test_minimum_size(self):
        assert kmv_size_for_epsilon(1.0) >= 8

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            kmv_size_for_epsilon(0.0)


class TestKMVSketch:
    def test_exact_below_capacity(self):
        sketch = KMVSketch(64, seed=1)
        sketch.update_many(range(40))
        assert sketch.estimate() == 40.0

    def test_duplicates_ignored(self):
        sketch = KMVSketch(64, seed=1)
        for _ in range(5):
            sketch.update_many(range(30))
        assert sketch.estimate() == 30.0

    def test_estimate_accuracy_above_capacity(self):
        sketch = KMVSketch(256, seed=2)
        sketch.update_many(range(20_000))
        assert sketch.estimate() == pytest.approx(20_000, rel=0.15)

    def test_size_bounded_by_capacity(self):
        sketch = KMVSketch(32, seed=3)
        sketch.update_many(range(1000))
        assert sketch.size == 32

    def test_merge_equals_union(self):
        a, b = KMVSketch(128, seed=4), KMVSketch(128, seed=4)
        a.update_many(range(0, 3000))
        b.update_many(range(1500, 4500))
        merged = a.merge(b)
        assert merged.estimate() == pytest.approx(4500, rel=0.2)

    def test_merge_capacity_mismatch(self):
        with pytest.raises(ValueError):
            KMVSketch(8).merge(KMVSketch(16))

    def test_merge_all(self):
        sketches = []
        for block in range(3):
            s = KMVSketch(128, seed=5)
            s.update_many(range(block * 1000, (block + 1) * 1000))
            sketches.append(s)
        merged = KMVSketch.merge_all(sketches)
        assert merged.estimate() == pytest.approx(3000, rel=0.2)

    def test_merge_all_empty_raises(self):
        with pytest.raises(ValueError):
            KMVSketch.merge_all([])

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            KMVSketch(0)


class TestL0CoverageOracle:
    @pytest.fixture
    def instance(self):
        return planted_kcover_instance(20, 1500, k=4, seed=3)

    @pytest.fixture
    def oracle(self, instance):
        oracle = L0CoverageOracle(instance.n, epsilon=0.15, seed=3)
        oracle.consume(instance.graph.edges())
        return oracle

    def test_union_estimate_accuracy(self, instance, oracle):
        family = [0, 1, 2, 3]
        truth = instance.graph.coverage(family)
        assert oracle.estimate_union(family) == pytest.approx(truth, rel=0.25)

    def test_singleton_estimate(self, instance, oracle):
        truth = instance.graph.set_degree(0)
        assert oracle.estimate_union([0]) == pytest.approx(truth, rel=0.3)

    def test_empty_family(self, oracle):
        assert oracle.estimate_union([]) == 0.0

    def test_query_counter(self, oracle):
        before = oracle.queries
        oracle([0, 1])
        assert oracle.queries == before + 1

    def test_space_charged_is_n_times_capacity(self, instance):
        oracle = L0CoverageOracle(instance.n, epsilon=0.2, seed=1)
        assert oracle.space.peak == oracle.capacity * instance.n

    def test_union_bound_capacity_is_larger(self):
        base = kmv_size_for_epsilon(0.2)
        bigger = L0CoverageOracle.capacity_for_union_bound(100, 5, 0.2)
        assert bigger >= 5 * base  # grows at least linearly with k

    def test_out_of_range_set_rejected(self, oracle):
        with pytest.raises(ValueError):
            oracle.add_edge(9999, 1)


class TestL0KCover:
    def test_exhaustive_matches_optimum_on_tiny(self):
        instance = planted_kcover_instance(8, 200, k=3, seed=5)
        oracle = L0CoverageOracle(instance.n, epsilon=0.1, seed=5)
        oracle.consume(instance.graph.edges())
        selection, estimate = l0_exhaustive_k_cover(oracle, 3)
        _, optimum = exact_k_cover(instance.graph, 3)
        achieved = instance.graph.coverage(selection)
        assert achieved >= 0.8 * optimum
        assert estimate > 0

    def test_greedy_close_to_plain_greedy(self):
        instance = planted_kcover_instance(15, 600, k=4, seed=6)
        oracle = L0CoverageOracle(instance.n, epsilon=0.1, seed=6)
        oracle.consume(instance.graph.edges())
        selection, _ = l0_greedy_k_cover(oracle, 4)
        achieved = instance.graph.coverage(selection)
        reference = greedy_k_cover(instance.graph, 4).coverage
        assert achieved >= 0.8 * reference

    def test_space_comparison_with_paper_sketch(self):
        """Appendix D vs Theorem 3.1: O~(nk) words vs O~(n) edges."""
        n, k = 100, 10
        per_set = L0CoverageOracle.capacity_for_union_bound(n, k, 0.2)
        l0_total = per_set * n
        from repro.core.params import SketchParams

        sketch_budget = SketchParams.scaled(n, 10_000, k, 0.2).edge_budget
        assert l0_total > sketch_budget  # the ℓ0 route costs more space

    def test_invalid_k(self):
        oracle = L0CoverageOracle(5, epsilon=0.2)
        with pytest.raises(ValueError):
            l0_greedy_k_cover(oracle, 0)


class TestOracleBatchProcessing:
    def test_process_batch_matches_scalar(self):
        from repro.streaming.stream import EdgeStream

        instance = planted_kcover_instance(20, 400, k=4, seed=31)
        scalar = L0CoverageOracle(instance.n, epsilon=0.3, seed=2)
        batched = L0CoverageOracle(instance.n, epsilon=0.3, seed=2)
        for event in EdgeStream.from_graph(instance.graph, order="random", seed=4):
            scalar.process(event)
        stream = EdgeStream.from_graph(instance.graph, order="random", seed=4)
        for batch in stream.iter_batches(64):
            batched.process_batch(batch)
        for set_id in range(instance.n):
            assert (
                batched.sketch_of(set_id).values() == scalar.sketch_of(set_id).values()
            )

    def test_process_batch_rejects_set_batches(self):
        from repro.streaming.batches import EventBatch

        oracle = L0CoverageOracle(4, epsilon=0.3)
        with pytest.raises(TypeError, match="edge batches"):
            oracle.process_batch(EventBatch.from_sets([(0, (1, 2))]))

    def test_process_batch_range_check(self):
        from repro.streaming.batches import EventBatch

        oracle = L0CoverageOracle(4, epsilon=0.3)
        with pytest.raises(ValueError, match="out of range"):
            oracle.process_batch(EventBatch.from_edges([(9, 1)]))


class TestKMVVectorisedUpdate:
    def test_update_many_matches_scalar_adds(self):
        items = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 97, 93]
        one_by_one = KMVSketch(8, seed=5)
        for item in items:
            one_by_one.add(item)
        bulk = KMVSketch(8, seed=5)
        bulk.update_many(items)
        assert sorted(bulk.values()) == sorted(one_by_one.values())

    def test_update_many_empty(self):
        sketch = KMVSketch(8, seed=5)
        sketch.update_many([])
        assert sketch.size == 0
