"""Unit tests for repro.core.setcover (Algorithm 6)."""

from __future__ import annotations

import math

import pytest

from repro.core.setcover import StreamingSetCover, outlier_rate_for_passes
from repro.datasets import planted_setcover_instance
from repro.offline.greedy import greedy_set_cover
from repro.streaming.runner import StreamingRunner
from repro.streaming.stream import EdgeStream


class TestOutlierRate:
    def test_formula(self):
        assert outlier_rate_for_passes(100_000, 3) == pytest.approx(100_000 ** (-1 / 5))

    def test_clamped_to_inverse_e(self):
        assert outlier_rate_for_passes(10, 1) <= 1 / math.e + 1e-12

    def test_more_rounds_means_larger_rate(self):
        assert outlier_rate_for_passes(10**6, 5) > outlier_rate_for_passes(10**6, 2)

    def test_invalid(self):
        with pytest.raises(ValueError):
            outlier_rate_for_passes(0, 2)


class TestStreamingSetCover:
    def _run(self, instance, rounds=3, epsilon=0.5, seed=1, **kwargs):
        algo = StreamingSetCover(
            instance.n, instance.m, epsilon=epsilon, rounds=rounds, seed=seed,
            max_guesses=kwargs.pop("max_guesses", 10), **kwargs
        )
        runner = StreamingRunner(instance.graph)
        report = runner.run(
            algo, EdgeStream.from_graph(instance.graph, order="random", seed=seed)
        )
        return algo, report

    def test_full_coverage(self, planted_setcover):
        _, report = self._run(planted_setcover)
        assert report.coverage_fraction == pytest.approx(1.0)

    def test_pass_count_matches_plan(self, planted_setcover):
        algo, report = self._run(planted_setcover, rounds=3)
        assert report.passes == algo.planned_passes == 2 * (3 - 1) + 1

    def test_single_round_is_one_pass_greedy(self, planted_setcover):
        algo, report = self._run(planted_setcover, rounds=1)
        assert report.passes == 1
        assert report.coverage_fraction == pytest.approx(1.0)
        greedy = greedy_set_cover(planted_setcover.graph)
        assert report.solution_size == greedy.size

    def test_solution_size_within_log_m_of_optimum(self, planted_setcover):
        optimum = len(planted_setcover.planted_solution)
        _, report = self._run(planted_setcover, epsilon=0.5)
        assert report.solution_size <= (1 + 0.5) * math.log(planted_setcover.m) * optimum

    def test_solution_contains_no_duplicates(self, planted_setcover):
        _, report = self._run(planted_setcover)
        assert len(report.solution) == len(set(report.solution))

    def test_more_rounds_not_worse_coverage(self):
        instance = planted_setcover_instance(40, 800, cover_size=8, seed=6)
        _, few = self._run(instance, rounds=2, seed=6)
        _, many = self._run(instance, rounds=4, seed=6)
        assert few.coverage_fraction == pytest.approx(1.0)
        assert many.coverage_fraction == pytest.approx(1.0)

    def test_describe_keys(self, planted_setcover):
        algo, _ = self._run(planted_setcover)
        info = algo.describe()
        assert info["algorithm"] == "bateni-sketch-setcover"
        assert info["finalized"] is True
        assert info["planned_passes"] == algo.planned_passes

    def test_current_phase_progression(self, planted_setcover):
        algo = StreamingSetCover(
            planted_setcover.n, planted_setcover.m, rounds=2, max_guesses=5, seed=2
        )
        phases = []
        stream = EdgeStream.from_graph(planted_setcover.graph, order="random", seed=2)
        pass_index = 0
        while True:
            phases.append(algo.current_phase()[0])
            algo.start_pass(pass_index)
            for event in stream:
                algo.process(event)
            algo.finish_pass(pass_index)
            pass_index += 1
            if not algo.wants_another_pass():
                break
        assert phases == ["sketch", "mark", "collect"]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            StreamingSetCover(10, 100, rounds=0)
        with pytest.raises(ValueError):
            StreamingSetCover(0, 100)

    def test_space_reported(self, planted_setcover):
        algo, report = self._run(planted_setcover)
        assert report.space_peak > 0
