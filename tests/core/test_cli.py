"""Unit tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import io

import pytest

from repro.cli import build_parser, main
from repro.coverage.io import write_edge_list
from repro.datasets import planted_kcover_instance


def _run(argv: list[str]) -> tuple[int, str]:
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_kcover_defaults(self):
        args = build_parser().parse_args(["kcover"])
        assert args.command == "kcover"
        assert args.k == 10
        assert args.generator == "planted_kcover"

    def test_unknown_generator_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["kcover", "--generator", "magic"])


class TestCommands:
    def test_kcover_on_generated_instance(self):
        code, output = _run(
            ["kcover", "--num-sets", "40", "--num-elements", "800", "--k", "4",
             "--seed", "3", "--scale", "0.2"]
        )
        assert code == 0
        assert "sketch-kcover" in output
        assert "offline-greedy" in output

    def test_kcover_with_baselines(self):
        code, output = _run(
            ["kcover", "--num-sets", "30", "--num-elements", "500", "--k", "3",
             "--baselines", "--seed", "1"]
        )
        assert code == 0
        assert "saha-getoor" in output and "sieve-streaming" in output

    def test_setcover_command(self):
        code, output = _run(
            ["setcover", "--generator", "planted_setcover", "--num-sets", "30",
             "--num-elements", "400", "--k", "5", "--rounds", "2", "--seed", "2"]
        )
        assert code == 0
        assert "sketch-setcover" in output

    def test_outliers_command(self):
        code, output = _run(
            ["outliers", "--generator", "planted_setcover", "--num-sets", "30",
             "--num-elements", "400", "--k", "5", "--outlier-fraction", "0.1", "--seed", "2"]
        )
        assert code == 0
        assert "sketch-outliers" in output

    def test_sketch_command(self):
        code, output = _run(
            ["sketch", "--num-sets", "30", "--num-elements", "600", "--k", "4",
             "--scale", "0.2", "--seed", "5"]
        )
        assert code == 0
        assert "stored edges" in output
        assert "threshold p*" in output

    def test_generate_then_consume_file(self, tmp_path):
        output_file = tmp_path / "workload.tsv"
        code, message = _run(
            ["generate", "--num-sets", "25", "--num-elements", "300", "--k", "4",
             "--output", str(output_file), "--seed", "7"]
        )
        assert code == 0
        assert output_file.exists()
        assert "wrote" in message
        code, output = _run(["kcover", "--edges", str(output_file), "--k", "4", "--seed", "7"])
        assert code == 0
        assert "sketch-kcover" in output

    def test_kcover_from_edge_file_matches_generator_graph(self, tmp_path):
        instance = planted_kcover_instance(20, 250, k=3, seed=9)
        path = tmp_path / "edges.tsv"
        write_edge_list(instance.graph.edges(), path)
        code, output = _run(["sketch", "--edges", str(path), "--k", "3"])
        assert code == 0
        assert str(instance.num_edges) in output

    def test_error_exit_code_on_missing_file(self, tmp_path):
        code, _ = _run(["kcover", "--edges", str(tmp_path / "missing.tsv")])
        assert code == 2
