"""Unit tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import io

import pytest

from repro.cli import build_parser, main
from repro.coverage.io import write_edge_list
from repro.datasets import planted_kcover_instance


def _run(argv: list[str]) -> tuple[int, str]:
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_kcover_defaults(self):
        args = build_parser().parse_args(["kcover"])
        assert args.command == "kcover"
        assert args.k == 10
        assert args.generator == "planted_kcover"

    def test_unknown_generator_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["kcover", "--generator", "magic"])


class TestCommands:
    def test_kcover_on_generated_instance(self):
        code, output = _run(
            ["kcover", "--num-sets", "40", "--num-elements", "800", "--k", "4",
             "--seed", "3", "--scale", "0.2"]
        )
        assert code == 0
        assert "sketch-kcover" in output
        assert "offline-greedy" in output

    def test_kcover_with_baselines(self):
        code, output = _run(
            ["kcover", "--num-sets", "30", "--num-elements", "500", "--k", "3",
             "--baselines", "--seed", "1"]
        )
        assert code == 0
        assert "saha-getoor" in output and "sieve-streaming" in output

    def test_setcover_command(self):
        code, output = _run(
            ["setcover", "--generator", "planted_setcover", "--num-sets", "30",
             "--num-elements", "400", "--k", "5", "--rounds", "2", "--seed", "2"]
        )
        assert code == 0
        assert "sketch-setcover" in output

    def test_outliers_command(self):
        code, output = _run(
            ["outliers", "--generator", "planted_setcover", "--num-sets", "30",
             "--num-elements", "400", "--k", "5", "--outlier-fraction", "0.1", "--seed", "2"]
        )
        assert code == 0
        assert "sketch-outliers" in output

    def test_sketch_command(self):
        code, output = _run(
            ["sketch", "--num-sets", "30", "--num-elements", "600", "--k", "4",
             "--scale", "0.2", "--seed", "5"]
        )
        assert code == 0
        assert "stored edges" in output
        assert "threshold p*" in output

    def test_generate_then_consume_file(self, tmp_path):
        output_file = tmp_path / "workload.tsv"
        code, message = _run(
            ["generate", "--num-sets", "25", "--num-elements", "300", "--k", "4",
             "--output", str(output_file), "--seed", "7"]
        )
        assert code == 0
        assert output_file.exists()
        assert "wrote" in message
        code, output = _run(["kcover", "--edges", str(output_file), "--k", "4", "--seed", "7"])
        assert code == 0
        assert "sketch-kcover" in output

    def test_kcover_from_edge_file_matches_generator_graph(self, tmp_path):
        instance = planted_kcover_instance(20, 250, k=3, seed=9)
        path = tmp_path / "edges.tsv"
        write_edge_list(instance.graph.edges(), path)
        code, output = _run(["sketch", "--edges", str(path), "--k", "3"])
        assert code == 0
        assert str(instance.num_edges) in output

    def test_error_exit_code_on_missing_file(self, tmp_path):
        code, _ = _run(["kcover", "--edges", str(tmp_path / "missing.tsv")])
        assert code == 2


class TestRegistryCommands:
    def test_list_solvers(self):
        code, output = _run(["list-solvers"])
        assert code == 0
        for name in ("kcover/sketch", "setcover/sketch", "outliers/sketch",
                     "offline/greedy", "kcover/distributed"):
            assert name in output

    def test_generate_list_datasets(self):
        code, output = _run(["generate", "--list"])
        assert code == 0
        for name in ("planted_kcover", "planted_setcover", "uniform", "zipf",
                     "blog_watch"):
            assert name in output

    def test_generate_without_output_or_list_fails(self):
        code, _ = _run(["generate"])
        assert code == 2

    def test_registered_dataset_available_as_generator(self):
        code, output = _run(
            ["kcover", "--generator", "uniform", "--num-sets", "20",
             "--num-elements", "200", "--k", "3", "--seed", "4"]
        )
        assert code == 0
        assert "sketch-kcover" in output


class TestFacadeEquivalence:
    """The migrated CLI must produce the exact tables the hand-wired one did."""

    def test_kcover_table_matches_legacy_wiring(self):
        from repro.baselines import SahaGetoorKCover, SieveStreamingKCover
        from repro.core import StreamingKCover
        from repro.datasets import planted_kcover_instance
        from repro.offline.greedy import greedy_k_cover
        from repro.streaming import EdgeStream, SetStream, StreamingRunner
        from repro.utils.tables import Table

        num_sets, num_elements, k, seed = 30, 500, 3, 1
        graph = planted_kcover_instance(num_sets, num_elements, k=k, seed=seed).graph

        # The pre-registry pipeline, wired by hand exactly as cli.py used to.
        runner = StreamingRunner(graph)
        table = Table(["algorithm", "coverage", "fraction", "size", "passes", "space"])
        algo = StreamingKCover(
            graph.num_sets, max(1, graph.num_elements), k=k,
            epsilon=0.2, scale=0.1, seed=seed,
        )
        report = runner.run(algo, EdgeStream.from_graph(graph, order="random", seed=seed))
        table.add_row(algorithm="sketch-kcover", coverage=report.coverage,
                      fraction=report.coverage_fraction, size=report.solution_size,
                      passes=report.passes, space=report.space_peak)
        for name, baseline in (
            ("saha-getoor", SahaGetoorKCover(k=k)),
            ("sieve-streaming", SieveStreamingKCover(k=k, epsilon=0.1)),
        ):
            rep = runner.run(baseline, SetStream.from_graph(graph, order="random", seed=seed))
            table.add_row(algorithm=name, coverage=rep.coverage, fraction=rep.coverage_fraction,
                          size=rep.solution_size, passes=rep.passes, space=rep.space_peak)
        greedy = greedy_k_cover(graph, k)
        table.add_row(algorithm="offline-greedy", coverage=greedy.coverage,
                      fraction=graph.coverage_fraction(greedy.selected),
                      size=greedy.size, passes="-", space=graph.num_edges)
        legacy = table.to_grid() + "\n"

        code, output = _run(
            ["kcover", "--num-sets", str(num_sets), "--num-elements", str(num_elements),
             "--k", str(k), "--baselines", "--seed", str(seed)]
        )
        assert code == 0
        assert output == legacy

    def test_setcover_table_matches_legacy_wiring(self):
        from repro.core import StreamingSetCover
        from repro.datasets import planted_setcover_instance
        from repro.offline.greedy import greedy_set_cover
        from repro.streaming import EdgeStream, StreamingRunner
        from repro.utils.tables import Table

        num_sets, num_elements, k, seed, rounds = 30, 400, 5, 2, 2
        graph = planted_setcover_instance(
            num_sets, num_elements, cover_size=max(2, k), seed=seed
        ).graph

        runner = StreamingRunner(graph)
        algo = StreamingSetCover(
            graph.num_sets, max(1, graph.num_elements), epsilon=0.5,
            rounds=rounds, scale=0.1, seed=seed, max_guesses=14,
        )
        report = runner.run(algo, EdgeStream.from_graph(graph, order="random", seed=seed))
        greedy = greedy_set_cover(graph, allow_partial=True)
        table = Table(["algorithm", "cover_size", "fraction", "passes", "space"])
        table.add_row(algorithm="sketch-setcover", cover_size=report.solution_size,
                      fraction=report.coverage_fraction, passes=report.passes,
                      space=report.space_peak)
        table.add_row(algorithm="offline-greedy", cover_size=greedy.size, fraction=1.0,
                      passes="-", space=graph.num_edges)
        legacy = table.to_grid() + "\n"

        code, output = _run(
            ["setcover", "--generator", "planted_setcover", "--num-sets", str(num_sets),
             "--num-elements", str(num_elements), "--k", str(k),
             "--rounds", str(rounds), "--seed", str(seed)]
        )
        assert code == 0
        assert output == legacy


class TestCoverageBackendAndColumnar:
    def test_kcover_backend_matches_default_table(self):
        args = ["kcover", "--num-sets", "30", "--num-elements", "500", "--k", "3",
                "--seed", "1", "--scale", "0.2"]
        code_default, default_output = _run(args)
        code_words, words_output = _run(args + ["--coverage-backend", "words"])
        assert code_default == code_words == 0
        # The word kernel changes how the greedy reference is evaluated, not
        # what it finds: identical tables.
        assert words_output == default_output

    def test_backend_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["kcover", "--coverage-backend", "nibbles"])

    def test_generate_columnar_then_consume_directory(self, tmp_path):
        columnar_dir = tmp_path / "workload.cols"
        code, message = _run(
            ["generate", "--num-sets", "25", "--num-elements", "300", "--k", "4",
             "--output", str(columnar_dir), "--format", "columnar", "--seed", "7"]
        )
        assert code == 0
        assert "wrote" in message
        assert (columnar_dir / "meta.json").exists()
        code, output = _run(["kcover", "--edges", str(columnar_dir), "--k", "4", "--seed", "7"])
        assert code == 0
        assert "sketch-kcover" in output

    def test_distributed_command_on_generated_instance(self):
        code, output = _run(
            ["distributed", "--num-sets", "30", "--num-elements", "400", "--k", "3",
             "--machines", "3", "--seed", "5", "--scale", "0.3"]
        )
        assert code == 0
        assert "machines" in output
        assert "machine_load_mean" in output
        assert "merged_threshold" in output

    def test_distributed_columnar_agrees_with_graph_input(self, tmp_path):
        """A columnar --edges dir (batched map phase) matches the text input."""
        instance = planted_kcover_instance(20, 250, k=3, seed=9)
        text = tmp_path / "edges.tsv"
        write_edge_list(instance.graph.edges(), text)
        from repro.coverage.io import columnar_from_edge_list

        columnar_from_edge_list(text, tmp_path / "cols")
        args = ["--k", "3", "--machines", "2", "--strategy", "row_range",
                "--seed", "2", "--scale", "0.3", "--coverage-backend", "words"]
        code_text, from_text = _run(["distributed", "--edges", str(text)] + args)
        code_cols, from_cols = _run(
            ["distributed", "--edges", str(tmp_path / "cols")] + args
        )
        assert code_text == code_cols == 0
        assert from_cols == from_text

    def test_distributed_strategy_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["distributed", "--strategy", "hash-ring"])

    def test_columnar_and_text_inputs_agree(self, tmp_path):
        instance = planted_kcover_instance(20, 250, k=3, seed=9)
        text = tmp_path / "edges.tsv"
        write_edge_list(instance.graph.edges(), text)
        from repro.coverage.io import columnar_from_edge_list

        columnar_from_edge_list(text, tmp_path / "cols")
        code_text, from_text = _run(["kcover", "--edges", str(text), "--k", "3", "--seed", "2"])
        code_cols, from_cols = _run(
            ["kcover", "--edges", str(tmp_path / "cols"), "--k", "3", "--seed", "2"]
        )
        assert code_text == code_cols == 0
        assert from_cols == from_text
