"""Unit tests for repro.core.oracle (Theorem 1.3 constructions)."""

from __future__ import annotations

import pytest

from repro.core.oracle import (
    NoisyCoverageOracle,
    PurificationCoverageOracle,
    oracle_greedy_k_cover,
    purification_to_kcover_instance,
)
from repro.core.purification import KPurificationInstance, PurificationOracle


class TestNoisyOracle:
    def test_within_epsilon(self, planted_kcover):
        oracle = NoisyCoverageOracle(planted_kcover.graph, epsilon=0.1, seed=1)
        for family in ([0], [1, 2], list(range(10))):
            estimate = oracle(family)
            truth = oracle.true_value(family)
            assert abs(estimate - truth) <= 0.1 * truth + 1e-9

    def test_consistent_across_repeated_queries(self, planted_kcover):
        oracle = NoisyCoverageOracle(planted_kcover.graph, epsilon=0.2, seed=2)
        assert oracle([3, 1, 2]) == oracle([2, 3, 1])

    def test_query_counter(self, planted_kcover):
        oracle = NoisyCoverageOracle(planted_kcover.graph, epsilon=0.2, seed=2)
        oracle([0])
        oracle([1])
        assert oracle.queries == 2
        oracle.reset()
        assert oracle.queries == 0

    def test_different_seeds_give_different_noise(self, planted_kcover):
        a = NoisyCoverageOracle(planted_kcover.graph, epsilon=0.2, seed=1)
        b = NoisyCoverageOracle(planted_kcover.graph, epsilon=0.2, seed=99)
        families = [[0], [1], [2], [0, 1], [1, 2]]
        assert any(a(f) != b(f) for f in families)


class TestReductionGraph:
    def test_coverage_formula(self):
        instance = KPurificationInstance.random(20, 4, seed=3)
        graph = purification_to_kcover_instance(instance)
        n, k = 20, 4
        per_gold = n // k
        gold = sorted(instance.gold_items)
        brass = [i for i in range(n) if i not in instance.gold_items]
        # Any nonempty family: C(S) = k + per_gold * Gold(S).
        assert graph.coverage([brass[0]]) == k
        assert graph.coverage([gold[0]]) == k + per_gold
        assert graph.coverage(gold[:2] + brass[:3]) == k + 2 * per_gold

    def test_optimum_is_all_gold(self):
        instance = KPurificationInstance.random(12, 3, seed=4)
        graph = purification_to_kcover_instance(instance)
        gold = sorted(instance.gold_items)
        assert graph.coverage(gold) == 3 + 3 * (12 // 3)
        # No size-3 family beats the gold family.
        from itertools import combinations

        best = max(graph.coverage(c) for c in combinations(range(12), 3))
        assert best == graph.coverage(gold)


class TestPurificationCoverageOracle:
    @pytest.fixture
    def oracle(self) -> PurificationCoverageOracle:
        instance = KPurificationInstance.random(40, 8, seed=5)
        return PurificationCoverageOracle(PurificationOracle(instance, epsilon=0.4))

    def test_empty_family(self, oracle):
        assert oracle([]) == 0.0

    def test_unremarkable_query_gets_flat_answer(self, oracle):
        # A single brass item is within the Pure band, so the oracle answers
        # k + |S| rather than the true value.
        brass = next(
            i for i in range(oracle.num_sets) if i not in oracle.purifier.instance.gold_items
        )
        assert oracle([brass]) == oracle.k + 1

    def test_purifying_query_reveals_truth(self, oracle):
        gold = sorted(oracle.purifier.instance.gold_items)
        value = oracle(gold)
        assert value == oracle.true_value(gold)
        assert oracle.purifying_queries >= 1

    def test_flat_answer_is_within_epsilon_prime(self, oracle):
        """The proof's key claim: the predetermined answer is (1±ε')-accurate."""
        import itertools

        eps = oracle.epsilon_prime
        families = [list(c) for c in itertools.combinations(range(10), 3)]
        for family in families:
            answer = oracle(family)
            truth = oracle.true_value(family)
            assert (1 - eps) * truth <= answer + 1e-9
            assert answer <= (1 + eps) * truth + 1e-9

    def test_optimum_value(self, oracle):
        assert oracle.optimum() == oracle.k + oracle.num_sets


class TestOracleGreedy:
    def test_greedy_on_noisy_oracle_still_good(self, planted_kcover):
        oracle = NoisyCoverageOracle(planted_kcover.graph, epsilon=0.02, seed=3)
        selection, queries = oracle_greedy_k_cover(oracle, 4, planted_kcover.n)
        assert len(selection) == 4
        assert queries > 0
        truth = planted_kcover.graph.coverage(selection)
        assert truth >= 0.5 * planted_kcover.planted_value

    def test_greedy_on_adversarial_oracle_fails(self):
        """Theorem 1.3 in action: the flat oracle gives greedy no signal.

        The regime needs ``ε·k²/n`` comfortably above 1 so small queries never
        purify; then every answer greedy sees is the flat ``k + |S|`` and its
        selection is essentially arbitrary.
        """
        instance = KPurificationInstance.random(90, 30, seed=7)
        purifier = PurificationOracle(instance, epsilon=0.5)
        oracle = PurificationCoverageOracle(purifier)
        selection, _ = oracle_greedy_k_cover(oracle, 30, 90)
        gold_found = instance.gold_count(selection)
        assert gold_found < 30
        true_value = oracle.true_value(selection)
        assert true_value <= 0.75 * oracle.optimum()

    def test_query_budget_respected(self, planted_kcover):
        oracle = NoisyCoverageOracle(planted_kcover.graph, epsilon=0.1, seed=1)
        _, queries = oracle_greedy_k_cover(oracle, 5, planted_kcover.n, max_queries=17)
        assert queries <= 17

    def test_invalid_arguments(self, planted_kcover):
        oracle = NoisyCoverageOracle(planted_kcover.graph, epsilon=0.1)
        with pytest.raises(ValueError):
            oracle_greedy_k_cover(oracle, 0, planted_kcover.n)
