"""Unit tests for repro.distributed (composable sketches, MapReduce simulation)."""

from __future__ import annotations

import pytest

from repro.core.hashing import UniformHash
from repro.core.params import SketchParams
from repro.core.sketch import build_h_leq_n
from repro.distributed import (
    DistributedKCover,
    build_all_machine_sketches,
    merge_machine_sketches,
    partition_edges,
    shard_sizes,
)
from repro.offline.greedy import greedy_k_cover


class TestPartition:
    def test_every_edge_assigned_exactly_once(self, planted_kcover):
        edges = list(planted_kcover.graph.edges())
        for strategy in ("random", "by_set", "by_element", "round_robin"):
            shards = partition_edges(edges, 4, strategy=strategy, seed=1)
            assert len(shards) == 4
            merged = sorted(edge for shard in shards for edge in shard)
            assert merged == sorted(edges)

    def test_by_set_keeps_sets_together(self, planted_kcover):
        edges = list(planted_kcover.graph.edges())
        shards = partition_edges(edges, 3, strategy="by_set", seed=2)
        owner: dict[int, int] = {}
        for machine, shard in enumerate(shards):
            for set_id, _ in shard:
                assert owner.setdefault(set_id, machine) == machine

    def test_by_element_keeps_elements_together(self, planted_kcover):
        edges = list(planted_kcover.graph.edges())
        shards = partition_edges(edges, 3, strategy="by_element", seed=3)
        owner: dict[int, int] = {}
        for machine, shard in enumerate(shards):
            for _, element in shard:
                assert owner.setdefault(element, machine) == machine

    def test_round_robin_balance(self):
        edges = [(0, i) for i in range(10)]
        shards = partition_edges(edges, 3, strategy="round_robin")
        assert shard_sizes(shards) == [4, 3, 3]

    def test_random_roughly_balanced(self, planted_kcover):
        edges = list(planted_kcover.graph.edges())
        sizes = shard_sizes(partition_edges(edges, 4, strategy="random", seed=4))
        assert max(sizes) <= 2 * min(sizes)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            partition_edges([], 0)
        with pytest.raises(ValueError):
            partition_edges([], 2, strategy="hash-ring")


class TestMerge:
    def _params(self, instance, budget=600, cap=25):
        return SketchParams.explicit(
            instance.n, instance.m, instance.k, 0.2, edge_budget=budget, degree_cap=cap
        )

    def test_merge_respects_budgets(self, planted_kcover):
        params = self._params(planted_kcover)
        shards = partition_edges(list(planted_kcover.graph.edges()), 4, seed=5)
        machines = build_all_machine_sketches(shards, params, hash_seed=5)
        merged = merge_machine_sketches(machines, params, hash_seed=5)
        assert merged.num_edges <= params.edge_budget + params.degree_cap
        assert all(
            merged.graph.element_degree(e) <= params.degree_cap
            for e in merged.graph.elements()
        )

    def test_merged_elements_have_global_capped_degree(self, planted_kcover):
        """Composability: below the merged threshold, degrees match the input."""
        params = self._params(planted_kcover)
        hash_fn = UniformHash(6)
        shards = partition_edges(list(planted_kcover.graph.edges()), 3, seed=6)
        machines = build_all_machine_sketches(shards, params, hash_seed=6)
        merged = merge_machine_sketches(machines, params, hash_seed=6)
        for element in merged.graph.elements():
            if hash_fn.value(element) < merged.threshold:
                expected = min(
                    planted_kcover.graph.element_degree(element), params.degree_cap
                )
                assert merged.graph.element_degree(element) == expected

    def test_merge_of_single_machine_equals_central_sketch(self, planted_kcover):
        params = self._params(planted_kcover)
        shards = [list(planted_kcover.graph.edges())]
        machines = build_all_machine_sketches(shards, params, hash_seed=7)
        merged = merge_machine_sketches(machines, params, hash_seed=7)
        central = build_h_leq_n(planted_kcover.graph, params, UniformHash(7))
        assert set(merged.graph.elements()) <= set(machines[0].sketch.graph.elements())
        # Same admitted elements as the offline central construction.
        assert set(merged.graph.elements()) == set(central.graph.elements())

    def test_merge_requires_at_least_one_machine(self, planted_kcover):
        with pytest.raises(ValueError):
            merge_machine_sketches([], self._params(planted_kcover))


class TestDistributedKCover:
    def test_two_round_quality(self, planted_kcover):
        params = SketchParams.explicit(
            planted_kcover.n, planted_kcover.m, 4, 0.2, edge_budget=700, degree_cap=30
        )
        runner = DistributedKCover(
            planted_kcover.n, planted_kcover.m, k=4, num_machines=4, params=params, seed=8
        )
        report = runner.run(list(planted_kcover.graph.edges()))
        achieved = planted_kcover.graph.coverage(report.solution)
        reference = greedy_k_cover(planted_kcover.graph, 4).coverage
        assert achieved >= 0.85 * reference
        assert report.rounds == 2
        assert report.num_machines == 4

    def test_communication_bounded_by_machine_sketches(self, planted_kcover):
        runner = DistributedKCover(
            planted_kcover.n, planted_kcover.m, k=4, num_machines=5, scale=0.1, seed=9
        )
        report = runner.run(list(planted_kcover.graph.edges()))
        assert report.communication_edges == sum(report.machine_stored_edges)
        assert report.coordinator_edges <= report.communication_edges

    def test_partition_strategy_does_not_change_quality_much(self, planted_kcover):
        values = []
        for strategy in ("random", "by_set", "by_element"):
            runner = DistributedKCover(
                planted_kcover.n, planted_kcover.m, k=4, num_machines=4,
                strategy=strategy, scale=0.2, seed=10,
            )
            report = runner.run(list(planted_kcover.graph.edges()))
            values.append(planted_kcover.graph.coverage(report.solution))
        assert max(values) - min(values) <= 0.15 * max(values)

    def test_report_as_dict(self, planted_kcover):
        runner = DistributedKCover(
            planted_kcover.n, planted_kcover.m, k=3, num_machines=2, scale=0.2, seed=11
        )
        report = runner.run(list(planted_kcover.graph.edges()))
        row = report.as_dict()
        assert row["num_machines"] == 2
        assert row["solution_size"] <= 3
        assert report.max_machine_load == max(report.machine_stored_edges)

    def test_invalid_machines(self, planted_kcover):
        with pytest.raises(ValueError):
            DistributedKCover(planted_kcover.n, planted_kcover.m, k=3, num_machines=0)
