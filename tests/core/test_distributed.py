"""Unit tests for repro.distributed (composable sketches, MapReduce simulation)."""

from __future__ import annotations

import pytest

from repro.core.hashing import UniformHash
from repro.core.params import SketchParams
from repro.core.sketch import build_h_leq_n
from repro.coverage.io import write_columnar
from repro.distributed import (
    DistributedKCover,
    EdgePartitioner,
    build_all_machine_sketches,
    merge_machine_sketches,
    partition_edges,
    row_range_bounds,
    shard_sizes,
)
from repro.offline.greedy import greedy_k_cover
from repro.streaming.batches import EventBatch


class TestPartition:
    def test_every_edge_assigned_exactly_once(self, planted_kcover):
        edges = list(planted_kcover.graph.edges())
        for strategy in ("random", "by_set", "by_element", "round_robin"):
            shards = partition_edges(edges, 4, strategy=strategy, seed=1)
            assert len(shards) == 4
            merged = sorted(edge for shard in shards for edge in shard)
            assert merged == sorted(edges)

    def test_by_set_keeps_sets_together(self, planted_kcover):
        edges = list(planted_kcover.graph.edges())
        shards = partition_edges(edges, 3, strategy="by_set", seed=2)
        owner: dict[int, int] = {}
        for machine, shard in enumerate(shards):
            for set_id, _ in shard:
                assert owner.setdefault(set_id, machine) == machine

    def test_by_element_keeps_elements_together(self, planted_kcover):
        edges = list(planted_kcover.graph.edges())
        shards = partition_edges(edges, 3, strategy="by_element", seed=3)
        owner: dict[int, int] = {}
        for machine, shard in enumerate(shards):
            for _, element in shard:
                assert owner.setdefault(element, machine) == machine

    def test_round_robin_balance(self):
        edges = [(0, i) for i in range(10)]
        shards = partition_edges(edges, 3, strategy="round_robin")
        assert shard_sizes(shards) == [4, 3, 3]

    def test_random_roughly_balanced(self, planted_kcover):
        edges = list(planted_kcover.graph.edges())
        sizes = shard_sizes(partition_edges(edges, 4, strategy="random", seed=4))
        assert max(sizes) <= 2 * min(sizes)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            partition_edges([], 0)
        with pytest.raises(ValueError):
            partition_edges([], 2, strategy="hash-ring")

    def test_row_range_is_contiguous_and_balanced(self):
        edges = [(0, i) for i in range(11)]
        shards = partition_edges(edges, 3, strategy="row_range")
        assert shard_sizes(shards) == [4, 4, 3]
        assert [e for shard in shards for e in shard] == edges

    def test_row_range_bounds_cover_all_rows(self):
        bounds = row_range_bounds(10, 4)
        assert bounds.tolist() == [0, 3, 6, 8, 10]
        with pytest.raises(ValueError):
            row_range_bounds(-1, 4)

    def test_partitioner_row_range_requires_total(self):
        with pytest.raises(ValueError):
            EdgePartitioner(3, strategy="row_range")

    def test_partitioner_rejects_set_batches(self):
        batch = EventBatch.from_sets([(0, (1, 2))])
        with pytest.raises(TypeError):
            EdgePartitioner(2, strategy="round_robin").split(batch)

    def test_partitioner_row_range_rejects_overflow(self):
        partitioner = EdgePartitioner(2, strategy="row_range", total_edges=3)
        batch = EventBatch.from_edges([(0, 0), (0, 1), (0, 2), (0, 3)])
        with pytest.raises(ValueError):
            partitioner.split(batch)


class TestMerge:
    def _params(self, instance, budget=600, cap=25):
        return SketchParams.explicit(
            instance.n, instance.m, instance.k, 0.2, edge_budget=budget, degree_cap=cap
        )

    def test_merge_respects_budgets(self, planted_kcover):
        params = self._params(planted_kcover)
        shards = partition_edges(list(planted_kcover.graph.edges()), 4, seed=5)
        machines = build_all_machine_sketches(shards, params, hash_seed=5)
        merged = merge_machine_sketches(machines, params, hash_seed=5)
        assert merged.num_edges <= params.edge_budget + params.degree_cap
        assert all(
            merged.graph.element_degree(e) <= params.degree_cap
            for e in merged.graph.elements()
        )

    def test_merged_elements_have_global_capped_degree(self, planted_kcover):
        """Composability: below the merged threshold, degrees match the input."""
        params = self._params(planted_kcover)
        hash_fn = UniformHash(6)
        shards = partition_edges(list(planted_kcover.graph.edges()), 3, seed=6)
        machines = build_all_machine_sketches(shards, params, hash_seed=6)
        merged = merge_machine_sketches(machines, params, hash_seed=6)
        for element in merged.graph.elements():
            if hash_fn.value(element) < merged.threshold:
                expected = min(
                    planted_kcover.graph.element_degree(element), params.degree_cap
                )
                assert merged.graph.element_degree(element) == expected

    def test_merge_of_single_machine_equals_central_sketch(self, planted_kcover):
        params = self._params(planted_kcover)
        shards = [list(planted_kcover.graph.edges())]
        machines = build_all_machine_sketches(shards, params, hash_seed=7)
        merged = merge_machine_sketches(machines, params, hash_seed=7)
        central = build_h_leq_n(planted_kcover.graph, params, UniformHash(7))
        assert set(merged.graph.elements()) <= set(machines[0].sketch.graph.elements())
        # Same admitted elements as the offline central construction.
        assert set(merged.graph.elements()) == set(central.graph.elements())

    def test_merge_requires_at_least_one_machine(self, planted_kcover):
        with pytest.raises(ValueError):
            merge_machine_sketches([], self._params(planted_kcover))

    @pytest.mark.parametrize("machines", [1, 3])
    def test_truncated_merge_matches_offline_algorithm1(self, planted_kcover, machines):
        """Regression: Algorithm 1's threshold is the last *admitted* hash.

        The merge used to record the hash of the first unadmitted element,
        so a truncated merge disagreed with ``build_h_leq_n`` on the union —
        wrong threshold, wrong ``estimate_coverage``.  With a budget the
        input overflows, the merged sketch must now reproduce the offline
        construction exactly: graph, threshold and coverage estimates.
        """
        params = self._params(planted_kcover, budget=400, cap=20)
        shards = partition_edges(
            list(planted_kcover.graph.edges()), machines, seed=12
        )
        machine_sketches = build_all_machine_sketches(shards, params, hash_seed=12)
        merged = merge_machine_sketches(machine_sketches, params, hash_seed=12)
        central = build_h_leq_n(planted_kcover.graph, params, UniformHash(12))
        assert central.threshold < 1.0  # the budget truly truncates
        assert merged.threshold == central.threshold
        assert merged.graph.as_dict() == central.graph.as_dict()
        assert merged.element_hashes == central.element_hashes
        assert merged.truncated_elements == central.truncated_elements
        some_sets = list(range(0, planted_kcover.n, 3))
        assert merged.estimate_coverage(some_sets) == central.estimate_coverage(some_sets)

    def test_merge_without_truncation_keeps_global_threshold(self, planted_kcover):
        params = self._params(planted_kcover, budget=10**6, cap=10**6)
        shards = partition_edges(list(planted_kcover.graph.edges()), 2, seed=13)
        machine_sketches = build_all_machine_sketches(shards, params, hash_seed=13)
        merged = merge_machine_sketches(machine_sketches, params, hash_seed=13)
        assert merged.threshold == min(
            ms.sketch.threshold for ms in machine_sketches
        )
        assert merged.graph.as_dict() == planted_kcover.graph.as_dict()


class TestDistributedKCover:
    def test_two_round_quality(self, planted_kcover):
        params = SketchParams.explicit(
            planted_kcover.n, planted_kcover.m, 4, 0.2, edge_budget=700, degree_cap=30
        )
        runner = DistributedKCover(
            planted_kcover.n, planted_kcover.m, k=4, num_machines=4, params=params, seed=8
        )
        report = runner.run(list(planted_kcover.graph.edges()))
        achieved = planted_kcover.graph.coverage(report.solution)
        reference = greedy_k_cover(planted_kcover.graph, 4).coverage
        assert achieved >= 0.85 * reference
        assert report.rounds == 2
        assert report.num_machines == 4

    def test_communication_bounded_by_machine_sketches(self, planted_kcover):
        runner = DistributedKCover(
            planted_kcover.n, planted_kcover.m, k=4, num_machines=5, scale=0.1, seed=9
        )
        report = runner.run(list(planted_kcover.graph.edges()))
        assert report.communication_edges == sum(report.machine_stored_edges)
        assert report.coordinator_edges <= report.communication_edges

    def test_partition_strategy_does_not_change_quality_much(self, planted_kcover):
        values = []
        for strategy in ("random", "by_set", "by_element"):
            runner = DistributedKCover(
                planted_kcover.n, planted_kcover.m, k=4, num_machines=4,
                strategy=strategy, scale=0.2, seed=10,
            )
            report = runner.run(list(planted_kcover.graph.edges()))
            values.append(planted_kcover.graph.coverage(report.solution))
        assert max(values) - min(values) <= 0.15 * max(values)

    def test_report_as_dict(self, planted_kcover):
        runner = DistributedKCover(
            planted_kcover.n, planted_kcover.m, k=3, num_machines=2, scale=0.2, seed=11
        )
        report = runner.run(list(planted_kcover.graph.edges()))
        row = report.as_dict()
        assert row["num_machines"] == 2
        assert row["solution_size"] <= 3
        assert report.max_machine_load == max(report.machine_stored_edges)

    def test_report_as_dict_exposes_load_balance(self, planted_kcover):
        """Regression: shard/stored loads used to be dropped from the table row."""
        runner = DistributedKCover(
            planted_kcover.n, planted_kcover.m, k=3, num_machines=4, scale=0.2, seed=11
        )
        report = runner.run(list(planted_kcover.graph.edges()))
        row = report.as_dict()
        assert row["shard_edges_min"] == min(report.shard_edges)
        assert row["shard_edges_max"] == max(report.shard_edges)
        assert row["shard_edges_mean"] == pytest.approx(
            sum(report.shard_edges) / len(report.shard_edges)
        )
        assert row["machine_load_min"] == min(report.machine_stored_edges)
        assert row["machine_load_max"] == max(report.machine_stored_edges)
        assert row["machine_load_mean"] == pytest.approx(
            sum(report.machine_stored_edges) / len(report.machine_stored_edges)
        )
        assert row["merged_threshold"] == report.merged_threshold
        assert sum(report.shard_edges) == planted_kcover.graph.num_edges

    def test_run_from_columnar_matches_run(self, planted_kcover, tmp_path):
        edges = list(planted_kcover.graph.edges())
        write_columnar(edges, tmp_path / "w.cols", num_sets=planted_kcover.n)
        for strategy in ("random", "row_range"):
            runner = DistributedKCover(
                planted_kcover.n, planted_kcover.m, k=4, num_machines=3,
                strategy=strategy, scale=0.2, seed=14, batch_size=257,
            )
            in_memory = runner.run(edges)
            on_disk = runner.run_from_columnar(tmp_path / "w.cols")
            assert on_disk.solution == in_memory.solution
            assert on_disk.coverage_estimate == in_memory.coverage_estimate
            assert on_disk.merged_threshold == in_memory.merged_threshold
            assert on_disk.shard_edges == in_memory.shard_edges
            assert on_disk.machine_stored_edges == in_memory.machine_stored_edges

    def test_coverage_backend_same_solution_and_recorded(self, planted_kcover):
        edges = list(planted_kcover.graph.edges())
        plain = DistributedKCover(
            planted_kcover.n, planted_kcover.m, k=4, num_machines=3, scale=0.2, seed=15
        ).run(edges)
        kernel = DistributedKCover(
            planted_kcover.n, planted_kcover.m, k=4, num_machines=3, scale=0.2,
            seed=15, coverage_backend="words",
        ).run(edges)
        assert kernel.solution == plain.solution
        assert kernel.coverage_estimate == plain.coverage_estimate
        assert kernel.coverage_backend == "words"
        assert plain.coverage_backend is None
        assert kernel.as_dict()["coverage_backend"] == "words"

    def test_run_accepts_iterables_and_batches(self, planted_kcover):
        edges = list(planted_kcover.graph.edges())
        runner = DistributedKCover(
            planted_kcover.n, planted_kcover.m, k=4, num_machines=2, scale=0.2, seed=16
        )
        from_list = runner.run(edges)
        from_iter = runner.run(iter(edges))
        from_batch = runner.run(EventBatch.from_edges(edges))
        assert from_iter.solution == from_list.solution
        assert from_batch.solution == from_list.solution
        assert from_batch.merged_threshold == from_list.merged_threshold

    def test_invalid_machines(self, planted_kcover):
        with pytest.raises(ValueError):
            DistributedKCover(planted_kcover.n, planted_kcover.m, k=3, num_machines=0)
