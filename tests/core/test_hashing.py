"""Unit tests for repro.core.hashing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hashing import HashFamily, TabulationHash, UniformHash, make_hash


@pytest.mark.parametrize("family", [UniformHash(7), TabulationHash(7)])
class TestHashFamilies:
    def test_values_in_unit_interval(self, family):
        for element in range(2000):
            value = family.value(element)
            assert 0.0 <= value < 1.0

    def test_deterministic(self, family):
        assert family.value(12345) == family.value(12345)
        assert family.rank(12345) == family.rank(12345)

    def test_rank_matches_value(self, family):
        for element in (0, 1, 999, 2**40):
            assert family.value(element) == pytest.approx(family.rank(element) / 2**64)

    def test_approximately_uniform(self, family):
        values = np.array([family.value(e) for e in range(20_000)])
        # Mean near 1/2, mass in each quartile near 1/4.
        assert abs(values.mean() - 0.5) < 0.02
        for q in range(4):
            fraction = np.mean((values >= q / 4) & (values < (q + 1) / 4))
            assert abs(fraction - 0.25) < 0.02

    def test_callable_alias(self, family):
        assert family(42) == family.value(42)

    def test_protocol_conformance(self, family):
        assert isinstance(family, HashFamily)


class TestSeeding:
    def test_different_seeds_give_different_functions(self):
        a, b = UniformHash(1), UniformHash(2)
        differing = sum(a.value(e) != b.value(e) for e in range(100))
        assert differing == 100

    def test_tabulation_seeds_differ(self):
        a, b = TabulationHash(1), TabulationHash(2)
        assert any(a.value(e) != b.value(e) for e in range(100))

    def test_pairwise_correlation_small(self):
        a, b = UniformHash(1), UniformHash(2)
        va = np.array([a.value(e) for e in range(5000)])
        vb = np.array([b.value(e) for e in range(5000)])
        assert abs(np.corrcoef(va, vb)[0, 1]) < 0.05


class TestFactory:
    def test_make_uniform(self):
        assert isinstance(make_hash("uniform", 3), UniformHash)

    def test_make_tabulation(self):
        assert isinstance(make_hash("tabulation", 3), TabulationHash)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_hash("md5")


@pytest.mark.parametrize("family", [UniformHash(7), TabulationHash(7)])
class TestVectorisedHashing:
    """rank_many / value_many must be bit-identical to the scalar methods."""

    ELEMENTS = np.array([0, 1, 2, 999, 123456789, 2**40, 2**63, 2**64 - 1], dtype=np.uint64)

    def test_rank_many_matches_scalar(self, family):
        ranks = family.rank_many(self.ELEMENTS)
        assert ranks.dtype == np.uint64
        assert ranks.tolist() == [family.rank(int(e)) for e in self.ELEMENTS]

    def test_value_many_matches_scalar_bitwise(self, family):
        values = family.value_many(self.ELEMENTS)
        assert values.dtype == np.float64
        # Exact float equality: the batched path feeds these into the same
        # threshold comparisons as the scalar path.
        assert values.tolist() == [family.value(int(e)) for e in self.ELEMENTS]

    def test_large_array_roundtrip(self, family):
        elements = np.arange(20_000, dtype=np.uint64)
        values = family.value_many(elements)
        assert np.all((values >= 0.0) & (values < 1.0))
        sample = [100, 5_000, 19_999]
        for index in sample:
            assert values[index] == family.value(index)

    def test_empty_array(self, family):
        assert len(family.rank_many(np.empty(0, dtype=np.uint64))) == 0
