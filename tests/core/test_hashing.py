"""Unit tests for repro.core.hashing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hashing import HashFamily, TabulationHash, UniformHash, make_hash


@pytest.mark.parametrize("family", [UniformHash(7), TabulationHash(7)])
class TestHashFamilies:
    def test_values_in_unit_interval(self, family):
        for element in range(2000):
            value = family.value(element)
            assert 0.0 <= value < 1.0

    def test_deterministic(self, family):
        assert family.value(12345) == family.value(12345)
        assert family.rank(12345) == family.rank(12345)

    def test_rank_matches_value(self, family):
        for element in (0, 1, 999, 2**40):
            assert family.value(element) == pytest.approx(family.rank(element) / 2**64)

    def test_approximately_uniform(self, family):
        values = np.array([family.value(e) for e in range(20_000)])
        # Mean near 1/2, mass in each quartile near 1/4.
        assert abs(values.mean() - 0.5) < 0.02
        for q in range(4):
            fraction = np.mean((values >= q / 4) & (values < (q + 1) / 4))
            assert abs(fraction - 0.25) < 0.02

    def test_callable_alias(self, family):
        assert family(42) == family.value(42)

    def test_protocol_conformance(self, family):
        assert isinstance(family, HashFamily)


class TestSeeding:
    def test_different_seeds_give_different_functions(self):
        a, b = UniformHash(1), UniformHash(2)
        differing = sum(a.value(e) != b.value(e) for e in range(100))
        assert differing == 100

    def test_tabulation_seeds_differ(self):
        a, b = TabulationHash(1), TabulationHash(2)
        assert any(a.value(e) != b.value(e) for e in range(100))

    def test_pairwise_correlation_small(self):
        a, b = UniformHash(1), UniformHash(2)
        va = np.array([a.value(e) for e in range(5000)])
        vb = np.array([b.value(e) for e in range(5000)])
        assert abs(np.corrcoef(va, vb)[0, 1]) < 0.05


class TestFactory:
    def test_make_uniform(self):
        assert isinstance(make_hash("uniform", 3), UniformHash)

    def test_make_tabulation(self):
        assert isinstance(make_hash("tabulation", 3), TabulationHash)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_hash("md5")
