"""Unit tests for repro.core.ensemble."""

from __future__ import annotations

import pytest

from repro.core.ensemble import EnsembleKCover, SketchEnsemble
from repro.core.params import SketchParams
from repro.offline.greedy import greedy_k_cover
from repro.streaming.runner import StreamingRunner
from repro.streaming.stream import EdgeStream


def _params(instance, budget=800, cap=30):
    return SketchParams.explicit(
        instance.n, instance.m, instance.k, 0.2, edge_budget=budget, degree_cap=cap
    )


class TestSketchEnsemble:
    def test_replica_count_and_space(self, planted_kcover):
        ensemble = SketchEnsemble(_params(planted_kcover), replicas=3, seed=1)
        ensemble.consume(planted_kcover.graph.edges())
        sketches = ensemble.sketches()
        assert len(sketches) == 3
        assert ensemble.space.peak == pytest.approx(
            sum(s.num_edges for s in sketches), rel=0.2
        )

    def test_replicas_use_independent_hashes(self, planted_kcover):
        ensemble = SketchEnsemble(_params(planted_kcover, budget=300), replicas=3, seed=1)
        ensemble.consume(planted_kcover.graph.edges())
        element_sets = [frozenset(s.graph.elements()) for s in ensemble.sketches()]
        assert len(set(element_sets)) > 1  # different replicas sample different elements

    def test_median_estimate_close_to_truth(self, planted_kcover):
        ensemble = SketchEnsemble(_params(planted_kcover), replicas=5, seed=2)
        ensemble.consume(planted_kcover.graph.edges())
        family = list(range(4))
        truth = planted_kcover.graph.coverage(family)
        assert ensemble.estimate_coverage(family) == pytest.approx(truth, rel=0.3)
        assert ensemble.estimate_total_elements() == pytest.approx(planted_kcover.m, rel=0.3)

    def test_best_k_cover_quality(self, planted_kcover):
        ensemble = SketchEnsemble(_params(planted_kcover), replicas=3, seed=3)
        ensemble.consume(planted_kcover.graph.edges())
        solution, estimate = ensemble.best_k_cover(4)
        achieved = planted_kcover.graph.coverage(solution)
        reference = greedy_k_cover(planted_kcover.graph, 4).coverage
        assert achieved >= 0.85 * reference
        assert estimate > 0

    def test_sketches_cache_invalidated_on_new_edge(self, planted_kcover):
        ensemble = SketchEnsemble(_params(planted_kcover), replicas=2, seed=4)
        edges = list(planted_kcover.graph.edges())
        ensemble.consume(edges[:10])
        first = ensemble.sketches()
        ensemble.add_edge(*edges[10])
        assert ensemble.sketches() is not first

    def test_describe(self, planted_kcover):
        ensemble = SketchEnsemble(_params(planted_kcover), replicas=2, seed=5)
        ensemble.consume(planted_kcover.graph.edges())
        info = ensemble.describe()
        assert info["replicas"] == 2
        assert len(info["thresholds"]) == 2

    def test_invalid_replicas(self, planted_kcover):
        with pytest.raises(ValueError):
            SketchEnsemble(_params(planted_kcover), replicas=0)


class TestEnsembleKCover:
    def test_protocol_run(self, planted_kcover):
        algo = EnsembleKCover(
            planted_kcover.n, planted_kcover.m, k=4, epsilon=0.3, replicas=3,
            params=_params(planted_kcover), seed=1,
        )
        report = StreamingRunner(planted_kcover.graph).run(
            algo, EdgeStream.from_graph(planted_kcover.graph, order="random", seed=1)
        )
        assert report.passes == 1
        assert report.solution_size <= 4
        reference = greedy_k_cover(planted_kcover.graph, 4).coverage
        assert report.coverage >= 0.85 * reference

    def test_space_scales_with_replicas(self, planted_kcover):
        peaks = []
        for replicas in (1, 3):
            algo = EnsembleKCover(
                planted_kcover.n, planted_kcover.m, k=4, replicas=replicas,
                params=_params(planted_kcover, budget=300), seed=2,
            )
            report = StreamingRunner(planted_kcover.graph).run(
                algo, EdgeStream.from_graph(planted_kcover.graph, order="random", seed=2)
            )
            peaks.append(report.space_peak)
        assert peaks[1] >= 2.5 * peaks[0]

    def test_describe(self, planted_kcover):
        algo = EnsembleKCover(planted_kcover.n, planted_kcover.m, k=3, replicas=2, seed=3)
        assert algo.describe()["algorithm"] == "bateni-sketch-kcover-ensemble"

    def test_invalid_k(self, planted_kcover):
        with pytest.raises(ValueError):
            EnsembleKCover(planted_kcover.n, planted_kcover.m, k=0)
