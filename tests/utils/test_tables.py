"""Unit tests for repro.utils.tables."""

from __future__ import annotations

import pytest

from repro.utils.tables import Table, format_value, render_grid, render_markdown


class TestFormatValue:
    def test_float_formatting(self):
        assert format_value(0.123456) == "0.1235"

    def test_bool_formatting(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_string_passthrough(self):
        assert format_value("abc") == "abc"

    def test_int_passthrough(self):
        assert format_value(42) == "42"


class TestTable:
    def test_add_row_and_len(self):
        table = Table(["a", "b"])
        table.add_row(a=1, b=2)
        table.add_row(a=3)
        assert len(table) == 2

    def test_unknown_column_raises(self):
        table = Table(["a"])
        with pytest.raises(KeyError):
            table.add_row(z=1)

    def test_column_extraction(self):
        table = Table(["algo", "ratio"])
        table.add_rows([{"algo": "x", "ratio": 0.5}, {"algo": "y", "ratio": 0.9}])
        assert table.column("ratio") == [0.5, 0.9]

    def test_column_missing_raises(self):
        table = Table(["a"])
        with pytest.raises(KeyError):
            table.column("b")

    def test_markdown_shape(self):
        table = Table(["algo", "ratio"])
        table.add_row(algo="greedy", ratio=1.0)
        md = table.to_markdown()
        lines = md.splitlines()
        assert lines[0].startswith("| algo")
        assert set(lines[1].replace("|", "")) <= {"-"}
        assert "greedy" in lines[2]

    def test_grid_alignment(self):
        table = Table(["name", "value"])
        table.add_row(name="aa", value=1)
        table.add_row(name="bbbb", value=22)
        grid = table.to_grid()
        lines = grid.splitlines()
        # header, separator, two rows
        assert len(lines) == 4


class TestRenderers:
    def test_render_grid_empty(self):
        assert render_grid([]) == ""

    def test_render_markdown_empty(self):
        assert render_markdown([]) == ""

    def test_render_markdown_pads_short_rows(self):
        md = render_markdown([["a", "b"], ["only"]])
        assert md.splitlines()[-1].count("|") == 3
