"""Unit tests for repro.utils.logging."""

from __future__ import annotations

import logging

from repro.utils.logging import configure, get_logger, kv


class TestGetLogger:
    def test_root_library_logger(self):
        assert get_logger().name == "repro"

    def test_child_logger(self):
        assert get_logger("core").name == "repro.core"


class TestConfigure:
    def test_idempotent_handlers(self):
        logger = configure(logging.DEBUG)
        first = len(logger.handlers)
        configure(logging.INFO)
        assert len(logger.handlers) == first
        assert first >= 1


class TestKv:
    def test_sorted_keys(self):
        assert kv(b=1, a=2) == "a=2 b=1"

    def test_float_formatting(self):
        assert kv(ratio=0.123456789) == "ratio=0.123457"

    def test_mixed_types(self):
        out = kv(algo="kcover", n=10)
        assert "algo=kcover" in out and "n=10" in out
