"""Unit tests for repro.utils.rng."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import (
    MASK64,
    SplitMix64,
    derive_seed,
    mix64,
    random_permutation,
    sample_without_replacement,
    spawn_rng,
)


class TestMix64:
    def test_deterministic(self):
        assert mix64(42, seed=1) == mix64(42, seed=1)

    def test_different_values_differ(self):
        assert mix64(1) != mix64(2)

    def test_different_seeds_differ(self):
        assert mix64(42, seed=1) != mix64(42, seed=2)

    def test_output_in_64_bits(self):
        for value in [0, 1, 2**63, MASK64, -5]:
            assert 0 <= mix64(value) <= MASK64

    def test_avalanche_roughly_half_bits_flip(self):
        # Flipping one input bit should flip close to half the output bits.
        flips = bin(mix64(1000) ^ mix64(1001)).count("1")
        assert 10 <= flips <= 54


class TestSplitMix64:
    def test_sequence_deterministic(self):
        a = SplitMix64(state=7)
        b = SplitMix64(state=7)
        assert [a.next_uint64() for _ in range(5)] == [b.next_uint64() for _ in range(5)]

    def test_float_in_unit_interval(self):
        gen = SplitMix64(state=3)
        for _ in range(1000):
            value = gen.next_float()
            assert 0.0 <= value < 1.0

    def test_float_mean_near_half(self):
        gen = SplitMix64(state=11)
        values = [gen.next_float() for _ in range(5000)]
        assert abs(np.mean(values) - 0.5) < 0.03

    def test_next_below_range_and_uniformity(self):
        gen = SplitMix64(state=5)
        counts = np.zeros(7, dtype=int)
        for _ in range(7000):
            value = gen.next_below(7)
            assert 0 <= value < 7
            counts[value] += 1
        assert counts.min() > 700  # rough uniformity

    def test_next_below_rejects_nonpositive(self):
        gen = SplitMix64(state=5)
        with pytest.raises(ValueError):
            gen.next_below(0)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "sketch") == derive_seed(1, "sketch")

    def test_labels_independent(self):
        assert derive_seed(1, "sketch") != derive_seed(1, "stream")

    def test_master_seeds_independent(self):
        assert derive_seed(1, "sketch") != derive_seed(2, "sketch")

    def test_non_negative(self):
        assert derive_seed(123, "x") >= 0


class TestSpawnRng:
    def test_streams_are_reproducible(self):
        a = spawn_rng(9, "workload")
        b = spawn_rng(9, "workload")
        assert a.integers(0, 1000, size=10).tolist() == b.integers(0, 1000, size=10).tolist()

    def test_streams_with_different_labels_differ(self):
        a = spawn_rng(9, "workload")
        b = spawn_rng(9, "hash")
        assert a.integers(0, 10**9) != b.integers(0, 10**9)


class TestSampling:
    def test_random_permutation_is_permutation(self, rng):
        items = list(range(50))
        perm = random_permutation(items, rng)
        assert sorted(perm) == items

    def test_sample_without_replacement_distinct(self, rng):
        sample = sample_without_replacement(100, 30, rng)
        assert len(sample) == 30
        assert len(set(sample)) == 30
        assert all(0 <= x < 100 for x in sample)

    def test_sample_larger_than_population_returns_all(self, rng):
        sample = sample_without_replacement(10, 50, rng)
        assert sorted(sample) == list(range(10))

    def test_sample_negative_raises(self, rng):
        with pytest.raises(ValueError):
            sample_without_replacement(-1, 5, rng)
