"""Unit tests for repro.utils.validation."""

from __future__ import annotations

import pytest

from repro.utils.validation import (
    check_fraction,
    check_in_range,
    check_non_negative_int,
    check_open_unit,
    check_positive_int,
    check_probability,
    check_type,
)


class TestPositiveInt:
    def test_accepts_positive(self):
        assert check_positive_int(5, "x") == 5

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive_int(-3, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(1.5, "x")

    def test_error_message_contains_name(self):
        with pytest.raises(ValueError, match="budget"):
            check_positive_int(0, "budget")


class TestNonNegativeInt:
    def test_accepts_zero(self):
        assert check_non_negative_int(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative_int(-1, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_non_negative_int(False, "x")


class TestFraction:
    def test_accepts_bounds(self):
        assert check_fraction(0.0, "x") == 0.0
        assert check_fraction(1.0, "x") == 1.0

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            check_fraction(1.01, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_fraction(-0.2, "x")

    def test_probability_alias(self):
        assert check_probability(0.3, "x") == 0.3


class TestOpenUnit:
    def test_accepts_epsilon_range(self):
        assert check_open_unit(0.5, "eps") == 0.5
        assert check_open_unit(1.0, "eps") == 1.0

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_open_unit(0.0, "eps")

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            check_open_unit(1.2, "eps")


class TestInRange:
    def test_accepts_inside(self):
        assert check_in_range(0.5, 0.0, 1.0, "x") == 0.5

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_in_range(2.0, 0.0, 1.0, "x")


class TestCheckType:
    def test_accepts_matching(self):
        assert check_type("abc", str, "x") == "abc"

    def test_accepts_tuple_of_types(self):
        assert check_type(3, (int, float), "x") == 3

    def test_rejects_mismatch(self):
        with pytest.raises(TypeError, match="x must be of type"):
            check_type(3, str, "x")
