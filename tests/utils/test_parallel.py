"""Unit tests for repro.utils.parallel."""

from __future__ import annotations

import pytest

from repro.utils.parallel import chunked, cpu_count, parallel_map


def _square(x: int) -> int:
    return x * x


class TestCpuCount:
    def test_at_least_one(self):
        assert cpu_count() >= 1


class TestChunked:
    def test_even_chunks(self):
        assert chunked([1, 2, 3, 4], 2) == [[1, 2], [3, 4]]

    def test_uneven_chunks(self):
        assert chunked([1, 2, 3, 4, 5], 2) == [[1, 2], [3, 4], [5]]

    def test_chunk_larger_than_input(self):
        assert chunked([1, 2], 10) == [[1, 2]]

    def test_empty(self):
        assert chunked([], 3) == []

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            chunked([1], 0)


class TestParallelMap:
    def test_sequential_matches_map(self):
        items = list(range(20))
        assert parallel_map(_square, items) == [x * x for x in items]

    def test_preserves_order_with_processes(self):
        items = list(range(10))
        result = parallel_map(_square, items, use_processes=True, workers=2)
        assert result == [x * x for x in items]

    def test_single_item_short_circuits(self):
        assert parallel_map(_square, [3], use_processes=True) == [9]

    def test_empty_input(self):
        assert parallel_map(_square, []) == []
