"""Unit tests for repro.utils.timer."""

from __future__ import annotations

import time

from repro.utils.timer import Stopwatch, Timer, timed


class TestTimer:
    def test_accumulates_elapsed(self):
        timer = Timer()
        with timer:
            time.sleep(0.002)
        with timer:
            time.sleep(0.002)
        assert timer.elapsed >= 0.003
        assert timer.activations == 2

    def test_mean(self):
        timer = Timer()
        assert timer.mean == 0.0
        with timer:
            pass
        assert timer.mean >= 0.0

    def test_reset(self):
        timer = Timer()
        with timer:
            pass
        timer.reset()
        assert timer.elapsed == 0.0
        assert timer.activations == 0


class TestTimed:
    def test_yields_timer_and_calls_callback(self):
        seen = []
        with timed(callback=seen.append) as t:
            time.sleep(0.001)
        assert t.elapsed > 0
        assert len(seen) == 1
        assert seen[0] == t.elapsed


class TestStopwatch:
    def test_sections_recorded(self):
        sw = Stopwatch()
        with sw.section("build"):
            time.sleep(0.001)
        with sw.section("solve"):
            pass
        assert set(sw.sections()) == {"build", "solve"}
        assert sw.elapsed("build") > 0
        assert sw.elapsed("missing") == 0.0

    def test_section_reentry_accumulates(self):
        sw = Stopwatch()
        for _ in range(3):
            with sw.section("loop"):
                time.sleep(0.001)
        assert sw.as_dict()["loop"] >= 0.002
