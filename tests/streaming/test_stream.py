"""Unit tests for repro.streaming.stream."""

from __future__ import annotations

import pytest

from repro.streaming.events import EdgeArrival, SetArrival
from repro.streaming.stream import STREAM_ORDERS, EdgeStream, SetStream


class TestEdgeStream:
    def test_given_order_preserved(self):
        edges = [(0, 5), (1, 3), (0, 2)]
        stream = EdgeStream(edges, num_sets=2, order="given")
        assert [e.as_tuple() for e in stream] == edges

    def test_unknown_order_rejected(self):
        with pytest.raises(ValueError):
            EdgeStream([(0, 1)], num_sets=1, order="bogus")

    def test_random_order_is_permutation_and_reproducible(self, tiny_graph):
        s1 = EdgeStream.from_graph(tiny_graph, order="random", seed=3)
        s2 = EdgeStream.from_graph(tiny_graph, order="random", seed=3)
        p1 = [e.as_tuple() for e in s1]
        p2 = [e.as_tuple() for e in s2]
        assert p1 == p2
        assert sorted(p1) == sorted(tiny_graph.edges())

    def test_random_order_differs_across_passes(self, tiny_graph):
        stream = EdgeStream.from_graph(tiny_graph, order="random", seed=3)
        first = [e.as_tuple() for e in stream]
        second = [e.as_tuple() for e in stream]
        assert sorted(first) == sorted(second)
        assert first != second  # overwhelmingly likely for 9 edges

    def test_set_grouped_order(self, tiny_graph):
        stream = EdgeStream.from_graph(tiny_graph, order="set_grouped")
        set_sequence = [e.set_id for e in stream]
        assert set_sequence == sorted(set_sequence)

    def test_element_grouped_order(self, tiny_graph):
        stream = EdgeStream.from_graph(tiny_graph, order="element_grouped")
        element_sequence = [e.element for e in stream]
        assert element_sequence == sorted(element_sequence)

    def test_adversarial_tail_holds_back_largest_set(self, tiny_graph):
        stream = EdgeStream.from_graph(tiny_graph, order="adversarial_tail", seed=1)
        events = [e.as_tuple() for e in stream]
        largest = max(tiny_graph.set_ids(), key=lambda s: (tiny_graph.set_degree(s), -s))
        tail = events[-tiny_graph.set_degree(largest):]
        assert all(set_id == largest for set_id, _ in tail)

    def test_adversarial_tail_with_explicit_sets(self, tiny_graph):
        stream = EdgeStream.from_graph(
            tiny_graph, order="adversarial_tail", seed=1, favored_sets=[3]
        )
        events = [e.as_tuple() for e in stream]
        assert events[-1][0] == 3

    def test_pass_counting(self, tiny_graph):
        stream = EdgeStream.from_graph(tiny_graph, order="given")
        assert stream.passes_taken == 0
        list(stream)
        list(stream)
        assert stream.passes_taken == 2
        stream.reset_pass_count()
        assert stream.passes_taken == 0

    def test_metadata(self, tiny_graph):
        stream = EdgeStream.from_graph(tiny_graph)
        assert stream.num_sets == 4
        assert stream.num_elements_hint == 6
        assert stream.num_events == 9
        assert stream.order == "random"

    def test_num_elements_hint_inferred(self):
        stream = EdgeStream([(0, 10), (0, 20), (1, 10)], num_sets=2)
        assert stream.num_elements_hint == 2

    def test_to_graph_roundtrip(self, tiny_graph):
        stream = EdgeStream.from_graph(tiny_graph, order="random", seed=0)
        assert stream.to_graph() == tiny_graph

    def test_yields_edge_arrivals(self, tiny_graph):
        stream = EdgeStream.from_graph(tiny_graph)
        assert all(isinstance(e, EdgeArrival) for e in stream)

    def test_all_orders_cover_all_edges(self, tiny_graph):
        for order in STREAM_ORDERS:
            stream = EdgeStream.from_graph(tiny_graph, order=order, seed=2)
            assert sorted(e.as_tuple() for e in stream) == sorted(tiny_graph.edges())


class TestSetStream:
    def test_from_graph_and_sizes(self, tiny_graph):
        stream = SetStream.from_graph(tiny_graph, order="given")
        assert stream.num_sets == 4
        assert stream.num_events == 4
        events = list(stream)
        assert all(isinstance(e, SetArrival) for e in events)
        assert {e.set_id for e in events} == {0, 1, 2, 3}

    def test_members_match_graph(self, tiny_graph):
        stream = SetStream.from_graph(tiny_graph, order="given")
        for event in stream:
            assert set(event.elements) == set(tiny_graph.elements_of(event.set_id))

    def test_random_order_reproducible(self, tiny_graph):
        s1 = SetStream.from_graph(tiny_graph, order="random", seed=5)
        s2 = SetStream.from_graph(tiny_graph, order="random", seed=5)
        assert [e.set_id for e in s1] == [e.set_id for e in s2]

    def test_rejects_unknown_order(self):
        with pytest.raises(ValueError):
            SetStream([[0]], order="set_grouped")

    def test_dict_construction(self):
        stream = SetStream({0: [1, 2], 3: [4]})
        assert stream.num_sets == 4
        assert stream.num_events == 2

    def test_pass_counting(self, tiny_graph):
        stream = SetStream.from_graph(tiny_graph)
        list(stream)
        assert stream.passes_taken == 1
        stream.reset_pass_count()
        assert stream.passes_taken == 0

    def test_to_graph(self, tiny_graph):
        stream = SetStream.from_graph(tiny_graph)
        assert stream.to_graph() == tiny_graph

    def test_to_edge_stream(self, tiny_graph):
        edge_stream = SetStream.from_graph(tiny_graph).to_edge_stream(order="given")
        assert edge_stream.num_events == tiny_graph.num_edges
        assert sorted(e.as_tuple() for e in edge_stream) == sorted(tiny_graph.edges())


class TestColumnBackedEdgeStream:
    """EdgeStream.from_columnar: streams built over memory-mapped columns."""

    @pytest.fixture
    def columnar_path(self, tmp_path, tiny_graph):
        from repro.coverage.io import write_columnar

        write_columnar(
            tiny_graph.edges(), tmp_path / "cols", num_sets=tiny_graph.num_sets
        )
        return tmp_path / "cols"

    def test_metadata(self, columnar_path, tiny_graph):
        stream = EdgeStream.from_columnar(columnar_path)
        assert stream.num_sets == tiny_graph.num_sets
        assert stream.num_events == tiny_graph.num_edges
        assert stream.num_elements_hint == tiny_graph.num_elements
        assert stream.order == "given"

    @pytest.mark.parametrize("order", STREAM_ORDERS)
    def test_scalar_iteration_matches_tuple_stream(self, columnar_path, tiny_graph, order):
        tuple_stream = EdgeStream.from_graph(tiny_graph, order=order, seed=7)
        column_stream = EdgeStream.from_columnar(columnar_path, order=order, seed=7)
        expected = sorted(e.as_tuple() for e in tuple_stream)
        got = [e.as_tuple() for e in column_stream]
        assert sorted(got) == expected
        if order == "given":
            assert got == list(tiny_graph.edges())

    @pytest.mark.parametrize("order", STREAM_ORDERS)
    def test_batches_match_scalar_order(self, columnar_path, order):
        scalar = EdgeStream.from_columnar(columnar_path, order=order, seed=3)
        batched = EdgeStream.from_columnar(columnar_path, order=order, seed=3)
        scalar_events = [e.as_tuple() for e in scalar]
        batch_events = [
            (int(s), int(e))
            for batch in batched.iter_batches(4)
            for s, e in zip(batch.set_ids.tolist(), batch.elements.tolist())
        ]
        assert batch_events == scalar_events

    def test_no_tuple_materialisation_on_batched_path(self, columnar_path):
        stream = EdgeStream.from_columnar(columnar_path)
        list(stream.iter_batches(4))
        assert stream._edges is None  # the batched path never builds tuples

    def test_accepts_open_columnar_object(self, columnar_path, tiny_graph):
        from repro.coverage.io import open_columnar

        stream = EdgeStream.from_columnar(open_columnar(columnar_path))
        assert stream.to_graph() == tiny_graph

    def test_adversarial_tail_defaults_to_largest_set(self, columnar_path, tiny_graph):
        tuple_stream = EdgeStream.from_graph(tiny_graph, order="adversarial_tail", seed=1)
        column_stream = EdgeStream.from_columnar(
            columnar_path, order="adversarial_tail", seed=1
        )
        assert column_stream._favored_tail() == tuple_stream._favored_tail()

    def test_pass_counting_and_replay(self, columnar_path):
        stream = EdgeStream.from_columnar(columnar_path, order="random", seed=2)
        first = [e.as_tuple() for e in stream]
        second = [e.as_tuple() for e in stream]
        assert stream.passes_taken == 2
        assert sorted(first) == sorted(second)

    def test_rejects_both_edges_and_columns(self):
        import numpy as np

        with pytest.raises(ValueError, match="exactly one"):
            EdgeStream(
                [(0, 1)],
                columns=(np.zeros(1, dtype=np.uint64), np.zeros(1, dtype=np.uint64)),
                num_sets=1,
            )
        with pytest.raises(ValueError, match="exactly one"):
            EdgeStream(num_sets=1)

    def test_rejects_ragged_columns(self):
        import numpy as np

        with pytest.raises(ValueError, match="equal length"):
            EdgeStream(
                columns=(np.zeros(2, dtype=np.uint64), np.zeros(3, dtype=np.uint64)),
                num_sets=1,
            )

    def test_sketch_built_from_columnar_matches_tuple_stream(self, columnar_path, tiny_graph):
        from repro.core.params import SketchParams
        from repro.core.streaming_sketch import StreamingSketchBuilder

        params = SketchParams.explicit(4, 6, 2, 0.5, edge_budget=100, degree_cap=10)
        via_tuples = StreamingSketchBuilder(params, seed=9)
        via_columns = StreamingSketchBuilder(params, seed=9)
        for event in EdgeStream.from_graph(tiny_graph, order="given"):
            via_tuples.process(event)
        for batch in EdgeStream.from_columnar(columnar_path).iter_batches(3):
            via_columns.process_batch(batch)
        assert via_columns.describe() == via_tuples.describe()


class TestColumnBackedSetStream:
    FAMILY = {0: [1, 2, 3], 1: [3, 4], 2: [], 5: [0, 9]}

    @pytest.fixture
    def columnar_sets_path(self, tmp_path):
        from repro.coverage.io import write_columnar_sets

        path = tmp_path / "sets.cols"
        write_columnar_sets(sorted(self.FAMILY.items()), path)
        return path

    def test_scalar_events_match_in_memory_stream(self, columnar_sets_path):
        memory = SetStream(self.FAMILY, order="random", seed=4)
        columnar = SetStream.from_columnar(columnar_sets_path, order="random", seed=4)
        assert [(e.set_id, tuple(e.elements)) for e in memory] == [
            (e.set_id, tuple(e.elements)) for e in columnar
        ]

    def test_batches_match_in_memory_stream(self, columnar_sets_path):
        memory = SetStream(self.FAMILY, order="given")
        columnar = SetStream.from_columnar(columnar_sets_path, order="given")
        memory_batches = [
            (b.set_ids.tolist(), b.elements.tolist(), b.offsets.tolist())
            for b in memory.iter_batches(2)
        ]
        columnar_batches = [
            (b.set_ids.tolist(), b.elements.tolist(), b.offsets.tolist())
            for b in columnar.iter_batches(2)
        ]
        assert memory_batches == columnar_batches

    def test_batched_path_defers_scalar_materialisation(self, columnar_sets_path):
        stream = SetStream.from_columnar(columnar_sets_path)
        list(stream.iter_batches(3))
        assert stream._sets is None  # no per-set tuples for batched consumers
        list(stream)
        assert stream._sets is not None

    def test_metadata_and_graph(self, columnar_sets_path):
        stream = SetStream.from_columnar(columnar_sets_path)
        assert stream.num_sets == 6
        assert stream.num_events == 4
        graph = stream.to_graph()
        for set_id, members in self.FAMILY.items():
            assert graph.elements_of(set_id) == set(members)

    def test_accepts_open_columns_and_rejects_bad_order(self, columnar_sets_path):
        from repro.coverage.io import open_columnar_sets

        columns = open_columnar_sets(columnar_sets_path)
        stream = SetStream.from_columnar(columns, order="given")
        assert stream.num_events == 4
        with pytest.raises(ValueError, match="given.*random|orders"):
            SetStream.from_columnar(columns, order="element_grouped")
