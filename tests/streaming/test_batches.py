"""Unit tests for the columnar event-batch path (repro.streaming.batches)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PassBudgetExceeded
from repro.streaming.batches import EventBatch
from repro.streaming.events import EdgeArrival, SetArrival
from repro.streaming.passes import MultiPassDriver
from repro.streaming.stream import STREAM_ORDERS, EdgeStream, SetStream

EDGES = [(0, 3), (1, 3), (0, 5), (2, 1), (1, 4), (2, 2), (0, 1), (3, 3)]


class TestEventBatch:
    def test_edge_batch_columns(self):
        batch = EventBatch.from_edges(EDGES)
        assert batch.kind == "edge"
        assert len(batch) == len(EDGES)
        assert batch.num_edges == len(EDGES)
        assert batch.set_ids.dtype == np.uint64
        assert batch.elements.dtype == np.uint64
        assert [e.as_tuple() for e in batch.iter_events()] == EDGES

    def test_set_batch_csr_layout(self):
        sets = [(2, (5, 1, 7)), (0, ()), (1, (4,))]
        batch = EventBatch.from_sets(sets)
        assert batch.kind == "set"
        assert len(batch) == 3
        assert batch.num_edges == 4
        events = list(batch.iter_events())
        assert events == [
            SetArrival(set_id=2, elements=(5, 1, 7)),
            SetArrival(set_id=0, elements=()),
            SetArrival(set_id=1, elements=(4,)),
        ]

    def test_iter_events_yields_plain_ints(self):
        batch = EventBatch.from_edges(EDGES)
        event = next(batch.iter_events())
        assert isinstance(event, EdgeArrival)
        assert type(event.set_id) is int
        assert type(event.element) is int

    def test_mismatched_edge_columns_rejected(self):
        with pytest.raises(ValueError, match="parallel columns"):
            EventBatch(np.array([1, 2], dtype=np.uint64), np.array([1], dtype=np.uint64))

    def test_bad_offsets_rejected(self):
        ids = np.array([0, 1], dtype=np.uint64)
        elements = np.array([1, 2, 3], dtype=np.uint64)
        with pytest.raises(ValueError, match="offsets"):
            EventBatch(ids, elements, np.array([0, 2], dtype=np.int64))
        with pytest.raises(ValueError, match="offsets"):
            EventBatch(ids, elements, np.array([0, 2, 2], dtype=np.int64))
        with pytest.raises(ValueError, match="non-decreasing"):
            EventBatch(
                np.array([0, 1, 2], dtype=np.uint64),
                elements,
                np.array([0, 2, 1, 3], dtype=np.int64),
            )


class TestEdgeStreamBatches:
    @pytest.mark.parametrize("order", STREAM_ORDERS)
    @pytest.mark.parametrize("batch_size", [1, 3, 100])
    def test_batches_replay_scalar_order(self, order, batch_size):
        scalar = EdgeStream(EDGES, num_sets=4, order=order, seed=9)
        batched = EdgeStream(EDGES, num_sets=4, order=order, seed=9)
        for _ in range(2):  # per-pass shuffles must line up pass by pass
            scalar_events = [e.as_tuple() for e in scalar]
            batched_events = [
                event.as_tuple()
                for batch in batched.iter_batches(batch_size)
                for event in batch.iter_events()
            ]
            assert batched_events == scalar_events

    def test_batch_sizes(self):
        stream = EdgeStream(EDGES, num_sets=4, order="given")
        sizes = [len(batch) for batch in stream.iter_batches(3)]
        assert sizes == [3, 3, 2]

    def test_counts_as_one_pass(self):
        stream = EdgeStream(EDGES, num_sets=4, order="given")
        list(stream.iter_batches(4))
        assert stream.passes_taken == 1

    def test_rejects_nonpositive_batch_size(self):
        stream = EdgeStream(EDGES, num_sets=4)
        with pytest.raises(ValueError, match="batch_size"):
            list(stream.iter_batches(0))

    def test_empty_stream_yields_no_batches(self):
        stream = EdgeStream([], num_sets=2, order="given")
        assert list(stream.iter_batches(8)) == []
        assert stream.passes_taken == 1


class TestSetStreamBatches:
    @pytest.mark.parametrize("order", ["given", "random"])
    @pytest.mark.parametrize("batch_size", [1, 2, 50])
    def test_batches_replay_scalar_order(self, order, batch_size):
        sets = {0: [1, 2, 3], 2: [4], 5: [0, 6]}
        scalar = SetStream(sets, order=order, seed=4)
        batched = SetStream(sets, order=order, seed=4)
        for _ in range(2):
            scalar_events = list(scalar)
            batched_events = [
                event
                for batch in batched.iter_batches(batch_size)
                for event in batch.iter_events()
            ]
            assert batched_events == scalar_events

    def test_counts_as_one_pass(self):
        stream = SetStream([[1, 2], [3]], order="given")
        list(stream.iter_batches(1))
        assert stream.passes_taken == 1


class TestDriverBatchPasses:
    def test_batch_pass_counts_against_budget(self):
        stream = EdgeStream(EDGES, num_sets=4, order="given")
        driver = MultiPassDriver(stream, max_passes=2)
        list(driver.new_batch_pass(4))
        list(driver.new_pass())
        assert driver.passes_used == 2
        with pytest.raises(PassBudgetExceeded):
            driver.new_batch_pass(4)
