"""Unit tests for repro.streaming.events."""

from __future__ import annotations

from repro.streaming.events import EdgeArrival, SetArrival


class TestEdgeArrival:
    def test_fields_and_tuple(self):
        event = EdgeArrival(3, 17)
        assert event.set_id == 3
        assert event.element == 17
        assert event.as_tuple() == (3, 17)

    def test_hashable_and_equal(self):
        assert EdgeArrival(1, 2) == EdgeArrival(1, 2)
        assert len({EdgeArrival(1, 2), EdgeArrival(1, 2), EdgeArrival(1, 3)}) == 2


class TestSetArrival:
    def test_from_iterable(self):
        event = SetArrival.from_iterable(5, iter([1, 2, 3]))
        assert event.set_id == 5
        assert event.elements == (1, 2, 3)
        assert len(event) == 3

    def test_edges_expansion(self):
        event = SetArrival(2, (7, 8))
        edges = event.edges()
        assert edges == [EdgeArrival(2, 7), EdgeArrival(2, 8)]

    def test_empty_set_arrival(self):
        event = SetArrival(0, ())
        assert event.edges() == []
        assert len(event) == 0
