"""Unit tests for repro.streaming.runner."""

from __future__ import annotations

import pytest

from repro.errors import PassBudgetExceeded, ReproError
from repro.streaming.events import EdgeArrival
from repro.streaming.runner import StreamingAlgorithm, StreamingReport, StreamingRunner
from repro.streaming.space import SpaceMeter
from repro.streaming.stream import EdgeStream, SetStream


class CountingEdgeAlgorithm:
    """Trivial edge-arrival algorithm: remembers which sets it saw, twice."""

    def __init__(self, passes: int = 1) -> None:
        self.name = "counting-edge"
        self.arrival_model = "edge"
        self.space = SpaceMeter(unit="edges")
        self.passes_wanted = passes
        self.passes_done = 0
        self.seen_sets: set[int] = set()
        self.events = 0

    def start_pass(self, pass_index: int) -> None:
        assert pass_index == self.passes_done

    def process(self, event: EdgeArrival) -> None:
        self.events += 1
        if event.set_id not in self.seen_sets:
            self.seen_sets.add(event.set_id)
            self.space.charge(1)

    def finish_pass(self, pass_index: int) -> None:
        self.passes_done += 1

    def wants_another_pass(self) -> bool:
        return self.passes_done < self.passes_wanted

    def result(self) -> list[int]:
        return sorted(self.seen_sets)[:2]


class TestRunner:
    def test_single_pass_run(self, tiny_graph):
        runner = StreamingRunner(tiny_graph)
        algo = CountingEdgeAlgorithm()
        report = runner.run(algo, EdgeStream.from_graph(tiny_graph, order="given"))
        assert isinstance(report, StreamingReport)
        assert report.passes == 1
        assert report.stream_events == tiny_graph.num_edges
        assert report.solution == (0, 1)
        assert report.coverage == tiny_graph.coverage([0, 1])
        assert 0.0 < report.coverage_fraction <= 1.0
        assert report.space_peak == 4

    def test_multi_pass_run(self, tiny_graph):
        runner = StreamingRunner(tiny_graph)
        algo = CountingEdgeAlgorithm(passes=3)
        report = runner.run(algo, EdgeStream.from_graph(tiny_graph, order="given"))
        assert report.passes == 3
        assert report.stream_events == 3 * tiny_graph.num_edges

    def test_model_mismatch_rejected(self, tiny_graph):
        runner = StreamingRunner(tiny_graph)
        algo = CountingEdgeAlgorithm()
        with pytest.raises(TypeError):
            runner.run(algo, SetStream.from_graph(tiny_graph))

    def test_report_as_dict(self, tiny_graph):
        runner = StreamingRunner(tiny_graph)
        algo = CountingEdgeAlgorithm()
        report = runner.run(
            algo, EdgeStream.from_graph(tiny_graph, order="given"), extra={"note": 1}
        )
        row = report.as_dict()
        assert row["algorithm"] == "counting-edge"
        assert row["note"] == 1
        assert "time.stream" in row

    def test_protocol_runtime_checkable(self):
        assert isinstance(CountingEdgeAlgorithm(), StreamingAlgorithm)

    def test_evaluate_helper(self, tiny_graph):
        runner = StreamingRunner(tiny_graph)
        coverage, fraction = runner.evaluate([0, 2])
        assert coverage == 6
        assert fraction == pytest.approx(1.0)

    def test_solution_deduplicated(self, tiny_graph):
        class DupAlgo(CountingEdgeAlgorithm):
            def result(self) -> list[int]:
                return [0, 0, 1, 1]

        report = StreamingRunner(tiny_graph).run(
            DupAlgo(), EdgeStream.from_graph(tiny_graph, order="given")
        )
        assert report.solution == (0, 1)


class TestPassBudget:
    def test_run_within_budget(self, tiny_graph):
        report = StreamingRunner(tiny_graph).run(
            CountingEdgeAlgorithm(passes=2),
            EdgeStream.from_graph(tiny_graph, order="given"),
            max_passes=2,
        )
        assert report.passes == 2

    def test_exhaustion_raises_pass_budget_exceeded(self, tiny_graph):
        algo = CountingEdgeAlgorithm(passes=3)
        with pytest.raises(PassBudgetExceeded) as excinfo:
            StreamingRunner(tiny_graph).run(
                algo, EdgeStream.from_graph(tiny_graph, order="given"), max_passes=2
            )
        # The error surfaces as soon as the algorithm asks for pass 3.
        assert excinfo.value.used == 3
        assert excinfo.value.budget == 2
        assert algo.passes_done == 2

    def test_duplicate_pass_accounting_detected(self, tiny_graph):
        stream = EdgeStream.from_graph(tiny_graph, order="given")
        algo = CountingEdgeAlgorithm(passes=2)

        # Simulate a driver whose accounting drifts: patch MultiPassDriver to
        # double-charge the pass counter.
        import repro.streaming.runner as runner_module

        class DriftingDriver(runner_module.MultiPassDriver):
            def new_pass(self):
                iterator = super().new_pass()
                self._passes_used += 1  # corrupt the count on purpose
                return iterator

        original = runner_module.MultiPassDriver
        runner_module.MultiPassDriver = DriftingDriver
        try:
            with pytest.raises(ReproError, match="pass accounting mismatch"):
                StreamingRunner(tiny_graph).run(algo, stream)
        finally:
            runner_module.MultiPassDriver = original


class BatchCountingAlgorithm(CountingEdgeAlgorithm):
    """Edge algorithm with a native process_batch, for dispatch tests."""

    def __init__(self, passes: int = 1) -> None:
        super().__init__(passes)
        self.batches = 0

    def process_batch(self, batch) -> None:
        self.batches += 1
        for event in batch.iter_events():
            self.process(event)


class TestBatchedDrive:
    def test_shim_unrolls_batches_for_scalar_algorithms(self, tiny_graph):
        scalar = CountingEdgeAlgorithm()
        batched = CountingEdgeAlgorithm()
        runner = StreamingRunner(tiny_graph)
        ref = runner.run(scalar, EdgeStream.from_graph(tiny_graph, order="given"))
        rep = runner.run(
            batched, EdgeStream.from_graph(tiny_graph, order="given"), batch_size=3
        )
        assert rep.solution == ref.solution
        assert rep.stream_events == ref.stream_events
        assert rep.space_peak == ref.space_peak
        assert batched.events == scalar.events

    def test_native_process_batch_preferred(self, tiny_graph):
        algo = BatchCountingAlgorithm()
        report = StreamingRunner(tiny_graph).run(
            algo, EdgeStream.from_graph(tiny_graph, order="given"), batch_size=4
        )
        assert algo.batches == 3  # 9 edges in batches of 4 -> [4, 4, 1]
        assert report.stream_events == tiny_graph.num_edges

    def test_batched_multi_pass_respects_budget(self, tiny_graph):
        algo = BatchCountingAlgorithm(passes=3)
        with pytest.raises(PassBudgetExceeded):
            StreamingRunner(tiny_graph).run(
                algo,
                EdgeStream.from_graph(tiny_graph, order="given"),
                max_passes=2,
                batch_size=2,
            )

    def test_invalid_batch_size(self, tiny_graph):
        with pytest.raises(ValueError, match="batch_size"):
            StreamingRunner(tiny_graph).run(
                CountingEdgeAlgorithm(),
                EdgeStream.from_graph(tiny_graph, order="given"),
                batch_size=0,
            )


class TestReportDerivedFields:
    def test_events_per_second_derived_from_stream_timing(self, tiny_graph):
        report = StreamingRunner(tiny_graph).run(
            CountingEdgeAlgorithm(), EdgeStream.from_graph(tiny_graph, order="given")
        )
        assert report.events_per_second is not None
        assert report.events_per_second == pytest.approx(
            report.stream_events / report.timings["stream"]
        )
        assert report.as_dict()["events_per_second"] == report.events_per_second

    def test_events_per_second_none_without_stream_timing(self):
        report = StreamingReport(
            algorithm="offline",
            arrival_model="offline",
            solution=(0,),
            coverage=1,
            coverage_fraction=1.0,
            solution_size=1,
            passes=0,
            space_peak=0,
            space_budget=None,
            stream_events=0,
            timings={"solve": 0.5},
        )
        assert report.events_per_second is None
        assert report.as_dict()["events_per_second"] is None

    def test_extra_cannot_overwrite_core_columns(self, tiny_graph):
        report = StreamingRunner(tiny_graph).run(
            CountingEdgeAlgorithm(),
            EdgeStream.from_graph(tiny_graph, order="given"),
            extra={"coverage": -1, "note": "ok"},
        )
        with pytest.raises(ValueError, match="collide"):
            report.as_dict()

    def test_extra_cannot_overwrite_timing_columns(self, tiny_graph):
        report = StreamingRunner(tiny_graph).run(
            CountingEdgeAlgorithm(),
            EdgeStream.from_graph(tiny_graph, order="given"),
            extra={"time.stream": 0.0},
        )
        with pytest.raises(ValueError, match="collide"):
            report.as_dict()
