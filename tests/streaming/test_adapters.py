"""Unit tests for repro.streaming.adapters."""

from __future__ import annotations

import pytest

from repro.streaming.adapters import (
    edge_events_to_set_events,
    edge_stream_from_set_stream,
    interleave_edges,
    set_events_to_edge_events,
    set_stream_from_edge_stream,
)
from repro.streaming.events import EdgeArrival, SetArrival
from repro.streaming.stream import EdgeStream, SetStream


class TestEventConversion:
    def test_set_to_edge_events(self):
        events = [SetArrival(0, (1, 2)), SetArrival(1, (3,))]
        edges = list(set_events_to_edge_events(events))
        assert edges == [EdgeArrival(0, 1), EdgeArrival(0, 2), EdgeArrival(1, 3)]

    def test_edge_to_set_events_groups_and_orders(self):
        edges = [EdgeArrival(1, 5), EdgeArrival(0, 2), EdgeArrival(1, 6)]
        sets = edge_events_to_set_events(edges)
        assert [s.set_id for s in sets] == [1, 0]
        assert sets[0].elements == (5, 6)

    def test_roundtrip_preserves_membership(self, tiny_graph):
        set_events = list(SetStream.from_graph(tiny_graph, order="given"))
        rebuilt = edge_events_to_set_events(set_events_to_edge_events(set_events))
        original = {s.set_id: set(s.elements) for s in set_events}
        assert {s.set_id: set(s.elements) for s in rebuilt} == original


class TestStreamConversion:
    def test_edge_stream_from_set_stream(self, tiny_graph):
        set_stream = SetStream.from_graph(tiny_graph)
        edge_stream = edge_stream_from_set_stream(set_stream, order="given")
        assert edge_stream.num_events == tiny_graph.num_edges

    def test_set_stream_from_edge_stream(self, tiny_graph):
        edge_stream = EdgeStream.from_graph(tiny_graph, order="random", seed=1)
        set_stream = set_stream_from_edge_stream(edge_stream)
        assert set_stream.to_graph() == tiny_graph


class TestInterleave:
    def test_round_robin(self):
        a = [EdgeArrival(0, 0), EdgeArrival(0, 1)]
        b = [EdgeArrival(1, 0)]
        merged = list(interleave_edges([a, b]))
        assert merged == [EdgeArrival(0, 0), EdgeArrival(1, 0), EdgeArrival(0, 1)]

    def test_concatenate(self):
        a = [EdgeArrival(0, 0)]
        b = [EdgeArrival(1, 0)]
        merged = list(interleave_edges([a, b], pattern="concatenate"))
        assert merged == a + b

    def test_unknown_pattern(self):
        with pytest.raises(ValueError):
            list(interleave_edges([[]], pattern="zigzag"))

    def test_empty_sources(self):
        assert list(interleave_edges([[], []])) == []
