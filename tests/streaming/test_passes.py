"""Unit tests for repro.streaming.passes."""

from __future__ import annotations

import pytest

from repro.errors import PassBudgetExceeded
from repro.streaming.passes import MultiPassDriver
from repro.streaming.stream import EdgeStream


@pytest.fixture
def stream(tiny_graph) -> EdgeStream:
    return EdgeStream.from_graph(tiny_graph, order="given")


class TestPasses:
    def test_new_pass_counts(self, stream):
        driver = MultiPassDriver(stream)
        list(driver.new_pass())
        list(driver.new_pass())
        assert driver.passes_used == 2
        assert driver.remaining_passes() is None

    def test_budget_enforced(self, stream):
        driver = MultiPassDriver(stream, max_passes=1)
        list(driver.new_pass())
        with pytest.raises(PassBudgetExceeded):
            driver.new_pass()

    def test_remaining_passes(self, stream):
        driver = MultiPassDriver(stream, max_passes=3)
        assert driver.remaining_passes() == 3
        list(driver.new_pass())
        assert driver.remaining_passes() == 2

    def test_run_pass_feeds_all_events(self, stream):
        driver = MultiPassDriver(stream)
        seen = []
        count = driver.run_pass(seen.append)
        assert count == stream.num_events
        assert len(seen) == stream.num_events

    def test_stream_property(self, stream):
        driver = MultiPassDriver(stream)
        assert driver.stream is stream
        assert driver.max_passes is None
