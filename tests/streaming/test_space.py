"""Unit tests for repro.streaming.space."""

from __future__ import annotations

import pytest

from repro.errors import SpaceBudgetExceeded
from repro.streaming.space import SpaceMeter


class TestCharging:
    def test_charge_and_peak(self):
        meter = SpaceMeter()
        meter.charge(5)
        meter.charge(3)
        meter.release(4)
        assert meter.current == 4
        assert meter.peak == 8
        assert meter.total_charged == 8

    def test_charge_negative_rejected(self):
        with pytest.raises(ValueError):
            SpaceMeter().charge(-1)

    def test_release_floors_at_zero(self):
        meter = SpaceMeter()
        meter.charge(2)
        meter.release(10)
        assert meter.current == 0

    def test_release_negative_rejected(self):
        with pytest.raises(ValueError):
            SpaceMeter().release(-1)

    def test_set_current(self):
        meter = SpaceMeter()
        meter.set_current(7)
        assert meter.current == 7 and meter.peak == 7
        meter.set_current(2)
        assert meter.current == 2 and meter.peak == 7
        with pytest.raises(ValueError):
            meter.set_current(-1)


class TestBudget:
    def test_budget_enforced(self):
        meter = SpaceMeter(budget=3)
        meter.charge(3)
        with pytest.raises(SpaceBudgetExceeded) as excinfo:
            meter.charge(1)
        assert excinfo.value.used == 4
        assert excinfo.value.budget == 3

    def test_budget_not_enforced_records_violation(self):
        meter = SpaceMeter(budget=3, enforce=False)
        meter.charge(10)
        assert meter.violations == 1
        assert not meter.within_budget

    def test_within_budget_without_budget(self):
        meter = SpaceMeter()
        meter.charge(1_000_000)
        assert meter.within_budget


class TestReporting:
    def test_checkpoints(self):
        meter = SpaceMeter()
        meter.charge(4)
        meter.checkpoint("pass1")
        meter.charge(2)
        meter.checkpoint("pass2")
        assert meter.checkpoints == {"pass1": 4, "pass2": 6}

    def test_as_dict_keys(self):
        meter = SpaceMeter(budget=10, unit="words")
        meter.charge(1)
        info = meter.as_dict()
        assert info["unit"] == "words"
        assert info["budget"] == 10
        assert info["peak"] == 1
        assert info["within_budget"] is True
