"""Packaging for the repro library (also a shim for pre-PEP 660 editable installs)."""

import re
from pathlib import Path

from setuptools import find_packages, setup

_INIT = Path(__file__).parent / "src" / "repro" / "__init__.py"
_VERSION = re.search(r'^__version__ = "([^"]+)"', _INIT.read_text(), re.MULTILINE).group(1)

setup(
    name="repro-streaming-coverage",
    version=_VERSION,
    description=(
        "Reproduction of 'Almost Optimal Streaming Algorithms for Coverage "
        "Problems' (Bateni, Esfandiari, Mirrokni; SPAA 2017)"
    ),
    long_description=(Path(__file__).parent / "README.md").read_text(encoding="utf-8")
    if (Path(__file__).parent / "README.md").exists()
    else "",
    long_description_content_type="text/markdown",
    packages=find_packages("src"),
    package_dir={"": "src"},
    python_requires=">=3.10",
    install_requires=["numpy", "networkx", "scipy"],
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering",
        "Intended Audience :: Science/Research",
    ],
)
