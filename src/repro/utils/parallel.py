"""Process-based parallel map helpers.

Several benchmarks sweep a grid of configurations (Algorithm 5 even asks for
its guesses of ``k'`` to be "run in parallel").  These helpers provide a
chunked, process-pool based ``parallel_map`` with a sequential fallback so
that library code never hard-depends on multiprocessing being available
(e.g. under restricted sandboxes), matching the HPC guidance of keeping the
parallel layer thin and optional.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = ["cpu_count", "chunked", "parallel_map"]

T = TypeVar("T")
R = TypeVar("R")


def cpu_count() -> int:
    """Number of usable CPUs (at least 1)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


def chunked(items: Sequence[T], chunk_size: int) -> list[list[T]]:
    """Split a sequence into consecutive chunks of at most ``chunk_size``."""
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    return [list(items[i : i + chunk_size]) for i in range(0, len(items), chunk_size)]


def parallel_map(
    func: Callable[[T], R],
    items: Iterable[T],
    *,
    workers: int | None = None,
    use_processes: bool = False,
) -> list[R]:
    """Map ``func`` over ``items``, optionally with a process pool.

    Parameters
    ----------
    func:
        A picklable callable (when ``use_processes=True``).
    items:
        The work items; the result order matches the input order.
    workers:
        Pool size; defaults to :func:`cpu_count`.
    use_processes:
        When ``False`` (the default) the map is sequential.  Process pools
        only pay off for coarse-grained work items, so parallelism is opt-in.
    """
    items = list(items)
    if not use_processes or len(items) <= 1:
        return [func(item) for item in items]
    workers = workers or cpu_count()
    workers = max(1, min(workers, len(items)))
    if workers == 1:
        return [func(item) for item in items]
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(func, items))
    except (OSError, PermissionError):  # pragma: no cover - sandbox fallback
        return [func(item) for item in items]
