"""Random-number utilities shared by the whole library.

The paper's sketch is randomised through a hash function ``h`` mapping
elements of the ground set to ``[0, 1)``.  For reproducibility every piece of
randomness in the library flows through one of two primitives:

* :class:`SplitMix64` — a tiny, fast, well-mixed 64-bit PRNG / finaliser used
  both as a stateless hash (``mix64``) and as the seed expander for derived
  seeds.
* :func:`spawn_rng` / :func:`derive_seed` — helpers that derive independent
  ``numpy.random.Generator`` instances and integer seeds from a master seed
  and a string label, so that two subsystems never accidentally share a
  random stream.

Nothing in this module depends on the rest of the package.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Iterable

import numpy as np

__all__ = [
    "MASK64",
    "SplitMix64",
    "mix64",
    "mix64_array",
    "derive_seed",
    "spawn_rng",
    "random_permutation",
    "sample_without_replacement",
]

#: Bit mask used to emulate unsigned 64-bit arithmetic in pure Python.
MASK64 = (1 << 64) - 1

_GOLDEN_GAMMA = 0x9E3779B97F4A7C15


def _mix(z: int) -> int:
    """SplitMix64 finaliser: avalanche a 64-bit integer."""
    z &= MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & MASK64
    return (z ^ (z >> 31)) & MASK64


def mix64(value: int, seed: int = 0) -> int:
    """Hash an integer to a pseudo-random 64-bit integer.

    The function is deterministic in ``(value, seed)`` and passes standard
    avalanche tests; it is the basis of :class:`repro.core.hashing.UniformHash`.

    Parameters
    ----------
    value:
        Any Python integer (negative values are folded into 64 bits).
    seed:
        Stream selector; different seeds give (empirically) independent hash
        functions.
    """
    return _mix((value & MASK64) ^ _mix((seed * _GOLDEN_GAMMA) & MASK64))


def mix64_array(values: np.ndarray, seed: int = 0) -> np.ndarray:
    """Vectorised :func:`mix64`: hash a whole ``uint64`` array at once.

    Bit-for-bit identical to calling :func:`mix64` per element (``uint64``
    arithmetic wraps modulo ``2^64`` exactly like the masked Python version),
    but runs as a handful of whole-array operations — this is what makes the
    batched streaming path fast.
    """
    z = np.asarray(values, dtype=np.uint64)
    z = z ^ np.uint64(_mix((seed * _GOLDEN_GAMMA) & MASK64))
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


@dataclass
class SplitMix64:
    """A minimal SplitMix64 pseudo-random generator.

    Useful when a dependency-free, picklable, deterministic generator is
    needed (e.g. inside streaming algorithms whose state must be tiny and
    explicit).  For bulk numerical work prefer :func:`spawn_rng`, which
    returns a :class:`numpy.random.Generator`.
    """

    state: int = 0

    def next_uint64(self) -> int:
        """Advance the state and return the next 64-bit output."""
        self.state = (self.state + _GOLDEN_GAMMA) & MASK64
        return _mix(self.state)

    def next_float(self) -> float:
        """Return a float uniform in ``[0, 1)`` with 53 bits of precision."""
        return (self.next_uint64() >> 11) * (1.0 / (1 << 53))

    def next_below(self, n: int) -> int:
        """Return a uniformly distributed integer in ``[0, n)``.

        Uses rejection sampling to avoid modulo bias.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        # Largest multiple of n that fits in 64 bits.
        limit = (MASK64 + 1) - ((MASK64 + 1) % n)
        while True:
            value = self.next_uint64()
            if value < limit:
                return value % n


def derive_seed(master_seed: int, label: str) -> int:
    """Derive a 63-bit integer seed from a master seed and a textual label.

    Two different labels yield (practically) independent seeds, so each
    subsystem can own a private stream: e.g. the sketch hash, the stream
    shuffling order and the workload generator never correlate.
    """
    label_hash = zlib.crc32(label.encode("utf-8"))
    return mix64(master_seed ^ (label_hash << 17), seed=label_hash) >> 1


def spawn_rng(master_seed: int, label: str) -> np.random.Generator:
    """Return an independent numpy generator derived from ``(seed, label)``."""
    return np.random.default_rng(derive_seed(master_seed, label))


def random_permutation(items: Iterable, rng: np.random.Generator) -> list:
    """Return a new list with the items in uniformly random order."""
    items = list(items)
    order = rng.permutation(len(items))
    return [items[i] for i in order]


def sample_without_replacement(
    population_size: int, sample_size: int, rng: np.random.Generator
) -> list[int]:
    """Sample ``sample_size`` distinct integers from ``range(population_size)``.

    If the requested sample is at least the population, the full (shuffled)
    population is returned — this mirrors Algorithm 2 of the paper, which
    samples ``min(budget, m)`` elements of the ground set up front.
    """
    if population_size < 0 or sample_size < 0:
        raise ValueError("sizes must be non-negative")
    size = min(sample_size, population_size)
    return list(rng.choice(population_size, size=size, replace=False))
