"""Lightweight structured logging for experiments.

The standard :mod:`logging` module is used under the hood; this wrapper only
adds (a) a single place to configure the library logger and (b) a tiny
key=value formatter that experiment scripts use so their output is grep-able.
"""

from __future__ import annotations

import logging
from typing import Any

__all__ = ["get_logger", "configure", "kv"]

_LOGGER_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return the library logger (or a child logger if ``name`` is given)."""
    if name:
        return logging.getLogger(f"{_LOGGER_NAME}.{name}")
    return logging.getLogger(_LOGGER_NAME)


def configure(level: int = logging.INFO) -> logging.Logger:
    """Configure the library logger with a terse console handler.

    Safe to call repeatedly; handlers are only installed once.
    """
    logger = get_logger()
    logger.setLevel(level)
    if not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
        logger.addHandler(handler)
    return logger


def kv(**fields: Any) -> str:
    """Format keyword arguments as a stable ``key=value`` string.

    >>> kv(algo="kcover", n=100, ratio=0.95)
    'algo=kcover n=100 ratio=0.95'
    """
    parts = []
    for key in sorted(fields):
        value = fields[key]
        if isinstance(value, float):
            parts.append(f"{key}={value:.6g}")
        else:
            parts.append(f"{key}={value}")
    return " ".join(parts)
