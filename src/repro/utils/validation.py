"""Argument-validation helpers.

Every public entry point of the library validates its arguments through the
small functions in this module so that error messages are consistent and the
validation logic is unit-testable on its own.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "check_positive_int",
    "check_non_negative_int",
    "check_fraction",
    "check_open_unit",
    "check_probability",
    "check_in_range",
    "check_type",
]


def check_positive_int(value: Any, name: str) -> int:
    """Validate that ``value`` is an integer ``>= 1`` and return it."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return value


def check_non_negative_int(value: Any, name: str) -> int:
    """Validate that ``value`` is an integer ``>= 0`` and return it."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_fraction(value: Any, name: str) -> float:
    """Validate that ``value`` lies in the closed interval ``[0, 1]``."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value}")
    return value


def check_open_unit(value: Any, name: str) -> float:
    """Validate that ``value`` lies in the half-open interval ``(0, 1]``.

    This is the range the paper requires of ``epsilon`` (Theorem 1.1).
    """
    value = float(value)
    if not 0.0 < value <= 1.0:
        raise ValueError(f"{name} must lie in (0, 1], got {value}")
    return value


def check_probability(value: Any, name: str) -> float:
    """Validate a probability in ``[0, 1]`` (alias with a clearer name)."""
    return check_fraction(value, name)


def check_in_range(value: Any, lo: float, hi: float, name: str) -> float:
    """Validate ``lo <= value <= hi``."""
    value = float(value)
    if not lo <= value <= hi:
        raise ValueError(f"{name} must lie in [{lo}, {hi}], got {value}")
    return value


def check_type(value: Any, expected: type | tuple[type, ...], name: str) -> Any:
    """Validate ``isinstance(value, expected)`` and return the value."""
    if not isinstance(value, expected):
        if isinstance(expected, tuple):
            names = ", ".join(t.__name__ for t in expected)
        else:
            names = expected.__name__
        raise TypeError(f"{name} must be of type {names}, got {type(value).__name__}")
    return value
