"""Timing helpers used by the benchmark harness and the examples.

Following the HPC guidance of "no optimisation without measuring", every
experiment records wall-clock timings through :class:`Timer` /
:func:`timed` so results include how long each stage took.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.obs import clock

__all__ = ["Timer", "timed", "Stopwatch"]


@dataclass
class Timer:
    """Accumulating timer: measures total elapsed time across activations.

    Example
    -------
    >>> t = Timer()
    >>> with t:
    ...     do_work()          # doctest: +SKIP
    >>> t.elapsed > 0
    True
    """

    elapsed: float = 0.0
    activations: int = 0
    _start: float | None = field(default=None, repr=False)

    def __enter__(self) -> "Timer":
        self._start = clock.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._start is not None
        self.elapsed += clock.perf_counter() - self._start
        self.activations += 1
        self._start = None

    def reset(self) -> None:
        """Reset the accumulated time and activation count."""
        self.elapsed = 0.0
        self.activations = 0
        self._start = None

    @property
    def mean(self) -> float:
        """Mean elapsed time per activation (0.0 if never activated)."""
        if self.activations == 0:
            return 0.0
        return self.elapsed / self.activations


@contextmanager
def timed(callback: Callable[[float], None] | None = None) -> Iterator[Timer]:
    """Context manager yielding a one-shot :class:`Timer`.

    If ``callback`` is given it is invoked with the elapsed seconds on exit.
    """
    timer = Timer()
    with timer:
        yield timer
    if callback is not None:
        callback(timer.elapsed)


class Stopwatch:
    """Named-section stopwatch for multi-stage pipelines.

    >>> sw = Stopwatch()
    >>> with sw.section("build"):
    ...     pass
    >>> with sw.section("solve"):
    ...     pass
    >>> sorted(sw.sections())
    ['build', 'solve']
    """

    def __init__(self) -> None:
        self._timers: dict[str, Timer] = {}

    @contextmanager
    def section(self, name: str) -> Iterator[Timer]:
        timer = self._timers.setdefault(name, Timer())
        with timer:
            yield timer

    def sections(self) -> list[str]:
        """Names of all sections timed so far."""
        return list(self._timers)

    def elapsed(self, name: str) -> float:
        """Total elapsed time of a section (0.0 if the section never ran)."""
        timer = self._timers.get(name)
        return timer.elapsed if timer is not None else 0.0

    def as_dict(self) -> dict[str, float]:
        """Mapping from section name to elapsed seconds."""
        return {name: timer.elapsed for name, timer in self._timers.items()}
