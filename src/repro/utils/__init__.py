"""Shared utilities: RNG, validation, logging, timing, tables, parallel map."""

from repro.utils.logging import configure, get_logger, kv
from repro.utils.parallel import chunked, cpu_count, parallel_map
from repro.utils.rng import (
    SplitMix64,
    derive_seed,
    mix64,
    random_permutation,
    sample_without_replacement,
    spawn_rng,
)
from repro.utils.tables import Table, render_grid, render_markdown
from repro.utils.timer import Stopwatch, Timer, timed
from repro.utils.validation import (
    check_fraction,
    check_in_range,
    check_non_negative_int,
    check_open_unit,
    check_positive_int,
    check_probability,
    check_type,
)

__all__ = [
    "configure",
    "get_logger",
    "kv",
    "chunked",
    "cpu_count",
    "parallel_map",
    "SplitMix64",
    "derive_seed",
    "mix64",
    "random_permutation",
    "sample_without_replacement",
    "spawn_rng",
    "Table",
    "render_grid",
    "render_markdown",
    "Stopwatch",
    "Timer",
    "timed",
    "check_fraction",
    "check_in_range",
    "check_non_negative_int",
    "check_open_unit",
    "check_positive_int",
    "check_probability",
    "check_type",
]
