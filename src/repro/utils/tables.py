"""Plain-text and Markdown table rendering.

The benchmark harness regenerates the paper's Table 1 (and the per-theorem
experiment tables) as text; this module owns the formatting so reports look
identical whether they come from an example script, a benchmark or a test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

__all__ = ["Table", "format_value", "render_grid", "render_markdown"]


def format_value(value: Any, float_fmt: str = "{:.4g}") -> str:
    """Render a cell value: floats use ``float_fmt``, everything else ``str``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return float_fmt.format(value)
    return str(value)


@dataclass
class Table:
    """A small column-oriented table with pretty-printing.

    >>> t = Table(["algo", "ratio"])
    >>> t.add_row(algo="greedy", ratio=1.0)
    >>> t.add_row(algo="sketch", ratio=0.97)
    >>> print(t.to_markdown())   # doctest: +SKIP
    """

    columns: Sequence[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    float_fmt: str = "{:.4g}"

    def add_row(self, **values: Any) -> None:
        """Append a row given as keyword arguments (missing cells become '')."""
        unknown = set(values) - set(self.columns)
        if unknown:
            raise KeyError(f"unknown columns: {sorted(unknown)}")
        self.rows.append(dict(values))

    def add_rows(self, rows: Iterable[dict[str, Any]]) -> None:
        """Append many rows."""
        for row in rows:
            self.add_row(**row)

    def column(self, name: str) -> list[Any]:
        """Return the values of one column (missing cells become ``None``)."""
        if name not in self.columns:
            raise KeyError(name)
        return [row.get(name) for row in self.rows]

    def _cells(self) -> list[list[str]]:
        out = [[str(c) for c in self.columns]]
        for row in self.rows:
            out.append(
                [format_value(row.get(c, ""), self.float_fmt) for c in self.columns]
            )
        return out

    def to_grid(self) -> str:
        """Render as an aligned plain-text grid."""
        return render_grid(self._cells())

    def to_markdown(self) -> str:
        """Render as a GitHub-flavoured Markdown table."""
        return render_markdown(self._cells())

    def __len__(self) -> int:
        return len(self.rows)


def render_grid(cells: Sequence[Sequence[str]]) -> str:
    """Render rows of already-formatted cells as an aligned text grid."""
    if not cells:
        return ""
    widths = [0] * max(len(row) for row in cells)
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    for idx, row in enumerate(cells):
        line = "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        lines.append(line)
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def render_markdown(cells: Sequence[Sequence[str]]) -> str:
    """Render rows of already-formatted cells as a Markdown table."""
    if not cells:
        return ""
    header, *body = cells
    lines = ["| " + " | ".join(header) + " |"]
    lines.append("|" + "|".join("---" for _ in header) + "|")
    for row in body:
        padded = list(row) + [""] * (len(header) - len(row))
        lines.append("| " + " | ".join(padded) + " |")
    return "\n".join(lines)
