"""Generic name -> entry registry shared by the solver and dataset registries.

Both :mod:`repro.api.registry` and :mod:`repro.datasets.registry` need the
same plumbing — duplicate-name rejection, lookup with did-you-mean hints,
sorted listing — so it lives here once, parameterized by the label used in
error messages and the lookup error class.
"""

from __future__ import annotations

import difflib
from typing import Generic, TypeVar

from repro.errors import SpecError

__all__ = ["NamedRegistry"]

Entry = TypeVar("Entry")


class NamedRegistry(Generic[Entry]):
    """A string-keyed registry with duplicate protection and lookup hints."""

    def __init__(self, kind_label: str, unknown_error: type[SpecError], see_also: str) -> None:
        self._entries: dict[str, Entry] = {}
        self._kind_label = kind_label
        self._unknown_error = unknown_error
        self._see_also = see_also

    def add(self, name: str, entry: Entry) -> None:
        """Register ``entry`` under ``name``; duplicates raise :class:`SpecError`."""
        if name in self._entries:
            raise SpecError(f"{self._kind_label} {name!r} is already registered")
        self._entries[name] = entry

    def remove(self, name: str) -> None:
        """Remove an entry if present (mainly for tests and plugins)."""
        self._entries.pop(name, None)

    def get(self, name: str) -> Entry:
        """Look up an entry, raising the unknown-error with close-match hints."""
        try:
            return self._entries[name]
        except KeyError:
            close = difflib.get_close_matches(name, self._entries, n=3, cutoff=0.4)
            hint = f"; did you mean {', '.join(close)}?" if close else ""
            raise self._unknown_error(
                f"unknown {self._kind_label} {name!r}{hint} (see {self._see_also})"
            ) from None

    def names(self) -> list[str]:
        """Sorted registered names."""
        return sorted(self._entries)

    def values(self) -> list[Entry]:
        """All entries, sorted by name."""
        return [self._entries[name] for name in sorted(self._entries)]
