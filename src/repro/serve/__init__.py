"""Cached-sketch query serving: build once, answer many queries.

The paper's central promise is that one pass over the stream yields a small
sketch ``H_{<=n}`` that can answer *many* coverage queries.  This package
turns that promise into a serving layer:

* :func:`~repro.serve.fingerprint.fingerprint_problem` — a content hash of
  the input, so cache entries are keyed by *what the data is*, not by which
  Python object happens to hold it.
* :class:`~repro.serve.store.SketchStore` — an LRU cache of built sketches
  (with their packed coverage kernels), keyed by fingerprint + build
  parameters.
* :class:`~repro.serve.engine.QueryEngine` — answers
  :class:`~repro.api.specs.QuerySpec` queries (k-cover, set cover,
  outliers; varying ``k``, budgets and forbidden sets) against the cached
  sketch with zero re-ingestion, returning the same
  :class:`~repro.streaming.runner.StreamingReport` that ``solve()``
  produces (byte-identical solutions, property-tested).
* :func:`~repro.serve.driver.drive_queries` — a concurrent request driver
  on :mod:`repro.parallel` (thread backend, shared read-only packed
  arrays) with per-query latency capture and p50/p99/QPS aggregation.
"""

from repro.serve.driver import LoadReport, QueryJob, drive_queries, run_query_job
from repro.serve.engine import SERVABLE_PROBLEMS, SERVE_EXTRA_KEYS, QueryEngine
from repro.serve.fingerprint import (
    fingerprint_columns,
    fingerprint_graph,
    fingerprint_problem,
)
from repro.serve.store import SketchKey, SketchStore

__all__ = [
    # repro-lint: disable=export-hygiene -- public constant: downstream services validate query kinds against it before hitting the engine
    "SERVABLE_PROBLEMS",
    "SERVE_EXTRA_KEYS",
    "QueryEngine",
    "SketchKey",
    "SketchStore",
    "QueryJob",
    "LoadReport",
    "drive_queries",
    "run_query_job",
    "fingerprint_problem",
    "fingerprint_graph",
    "fingerprint_columns",
]
