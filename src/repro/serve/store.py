"""The sketch cache: LRU store of built sketches keyed by content + params.

One :class:`SketchStore` can back any number of
:class:`~repro.serve.engine.QueryEngine` instances — every key carries the
dataset's content fingerprint, so engines over different datasets never
collide.  Entries hold whatever the engine needs to answer queries without
re-ingesting the stream: the built sketch, its packed coverage kernels and
the build run's report.

Concurrency model: a single lock is held across lookup *and* build.  Builds
are rare (one stream pass per distinct build configuration) while hits are
cheap, so serialising a cold build against concurrent requests for the same
key is the point — without it, eight clients racing on a cold cache would
each pay the full ingestion.  The entries themselves are read-only after
construction, so hit paths that escape the lock are safe to use from many
threads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable

from repro.obs import MetricsRegistry
from repro.utils.validation import check_positive_int

__all__ = ["SketchKey", "SketchStore"]


@dataclass(frozen=True)
class SketchKey:
    """Identity of one cached build.

    Attributes
    ----------
    fingerprint:
        Content hash of the input dataset
        (:func:`repro.serve.fingerprint.fingerprint_problem`).
    family:
        The registry name of the solver family the entry was built for
        (``"kcover/sketch"``, ``"setcover/sketch"``, ``"outliers/sketch"``).
    config:
        The build inputs that determine the entry's content, as a flat
        hashable tuple — derived space budgets, seeds, stream order.  What
        goes in (and what is deliberately left out, e.g. the coverage
        backend and the per-query ``k``/``forbidden``) is the engine's
        contract; see :mod:`repro.serve.engine`.
    """

    fingerprint: str
    family: str
    config: tuple[Any, ...]


class SketchStore:
    """Bounded LRU cache of built sketch entries.

    Parameters
    ----------
    capacity:
        Maximum number of entries kept resident.  The least-recently-used
        entry is evicted when a build pushes the store past the bound;
        evicted configurations are rebuilt (deterministically — same key,
        same bytes) on their next request, which the serving property tests
        exercise explicitly.
    """

    def __init__(self, capacity: int = 8) -> None:
        check_positive_int(capacity, "capacity")
        self.capacity = capacity
        self._entries: "OrderedDict[SketchKey, Any]" = OrderedDict()
        self._lock = threading.Lock()
        # Per-store registry, not the process-global one: two stores must
        # never blend their hit rates.  Exporters merge it into a snapshot
        # via MetricsRegistry.snapshot(extra=...).
        self.metrics = MetricsRegistry()
        self._hits = self.metrics.counter(
            "serve.store.hits", help="cache lookups answered by a resident entry"
        )
        self._misses = self.metrics.counter(
            "serve.store.misses", help="cache lookups that required a build"
        )
        self._builds = self.metrics.counter(
            "serve.store.builds", help="sketch builds performed on misses"
        )
        self._evictions = self.metrics.counter(
            "serve.store.evictions", help="entries dropped by LRU, evict() or clear()"
        )
        self._resident = self.metrics.gauge(
            "serve.store.entries", help="entries currently resident"
        )
        self.metrics.gauge(
            "serve.store.capacity", help="configured entry capacity"
        ).set(capacity)

    def get_or_build(
        self, key: SketchKey, build: Callable[[], Any]
    ) -> tuple[Any, bool]:
        """Return ``(entry, cache_hit)``, building and admitting on a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits.inc()
                return entry, True
            self._misses.inc()
            entry = build()
            self._builds.inc()
            self._entries[key] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions.inc()
            self._resident.set(len(self._entries))
            return entry, False

    def evict(self, key: SketchKey) -> bool:
        """Drop one entry; returns whether it was present."""
        with self._lock:
            if key in self._entries:
                del self._entries[key]
                self._evictions.inc()
                self._resident.set(len(self._entries))
                return True
            return False

    def clear(self) -> int:
        """Drop every entry; returns how many were evicted."""
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            self._evictions.inc(count)
            self._resident.set(0)
            return count

    def keys(self) -> tuple[SketchKey, ...]:
        """The resident keys, least-recently-used first."""
        with self._lock:
            return tuple(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, int]:
        """Lifetime counters for reports and the CLI (read off the registry)."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self._hits.value,
                "misses": self._misses.value,
                "builds": self._builds.value,
                "evictions": self._evictions.value,
            }
