"""Content fingerprints for coverage problems.

A serving cache must key sketches by *what the data is*: two
:class:`~repro.coverage.bipartite.BipartiteGraph` objects holding the same
edges are the same dataset, and one :class:`~repro.serve.store.SketchStore`
may be shared by several engines over different datasets.  The fingerprint
is a SHA-256 over a canonical byte encoding:

* **Graphs** hash ``(num_sets, num_elements)`` followed by every set's id
  and its *sorted* member array.  Sorting matters: the graph stores
  adjacency as hash sets, so raw ``edges()`` iteration order is not stable
  across processes, while the sorted encoding is a pure function of the
  edge set.
* **Columnar views** hash the raw column bytes plus the dimensions.  The
  columns are the on-disk representation, already canonical (file order),
  and hashing them avoids materialising a graph just to fingerprint it.

A graph and the columnar view of the same edges therefore get *different*
fingerprints — the fingerprint identifies the loaded representation, which
is also what determines the stream the build consumes.
"""

from __future__ import annotations

import hashlib
import struct

import numpy as np

from repro.coverage.bipartite import BipartiteGraph
from repro.coverage.instance import CoverageInstance
from repro.coverage.io import ColumnarEdges
from repro.errors import SpecError

__all__ = ["fingerprint_graph", "fingerprint_columns", "fingerprint_problem"]


def fingerprint_graph(graph: BipartiteGraph) -> str:
    """SHA-256 hex digest of a graph's canonical (sorted) edge encoding."""
    digest = hashlib.sha256()
    digest.update(b"repro.fingerprint.graph.v1")
    digest.update(struct.pack("<QQ", graph.num_sets, graph.num_elements))
    for set_id in graph.set_ids():
        members = np.array(sorted(graph.elements_of(set_id)), dtype=np.int64)
        digest.update(struct.pack("<QQ", set_id, len(members)))
        digest.update(members.tobytes())
    return digest.hexdigest()


def fingerprint_columns(columns: ColumnarEdges) -> str:
    """SHA-256 hex digest of a columnar view's raw column bytes."""
    digest = hashlib.sha256()
    digest.update(b"repro.fingerprint.columns.v1")
    digest.update(
        struct.pack("<QQQ", columns.num_sets, columns.num_elements, columns.num_edges)
    )
    digest.update(np.ascontiguousarray(columns.set_ids).tobytes())
    digest.update(np.ascontiguousarray(columns.elements).tobytes())
    return digest.hexdigest()


def fingerprint_problem(
    problem: CoverageInstance | BipartiteGraph | ColumnarEdges,
) -> str:
    """Fingerprint any of the problem shapes the serving engine accepts."""
    if isinstance(problem, ColumnarEdges):
        return fingerprint_columns(problem)
    if isinstance(problem, CoverageInstance):
        return fingerprint_graph(problem.graph)
    if isinstance(problem, BipartiteGraph):
        return fingerprint_graph(problem)
    raise SpecError(
        "fingerprint_problem expects a CoverageInstance, BipartiteGraph or "
        f"ColumnarEdges, got {type(problem).__name__}"
    )
