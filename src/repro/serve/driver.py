"""Concurrent request driver: many clients, one engine, latency capture.

The serving story is only real under load, so this module drives a batch of
:class:`~repro.api.specs.QuerySpec` requests through one
:class:`~repro.serve.engine.QueryEngine` on a :mod:`repro.parallel`
mapper and reports per-query latencies plus p50/p99/QPS.

Only the ``serial`` and ``thread`` backends are accepted: the whole point
of warm serving is that every client shares the *same* resident sketch and
packed kernel arrays, and a process pool would pickle a private copy of
the engine into each worker — silently measuring N cold caches instead of
one warm one.  Threads are the honest model for this workload anyway; the
hot path is dominated by NumPy kernel reductions, which release the GIL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro import obs
from repro.api.specs import QuerySpec
from repro.errors import SpecError
from repro.obs import Histogram, clock, percentile
from repro.parallel import ParallelMapper
from repro.streaming.runner import StreamingReport

__all__ = [
    "QueryJob",
    "LoadReport",
    "drive_queries",
    "percentile",
    "run_query_job",
]

#: Executor backends that keep every client on the shared engine.
_SHARED_MEMORY_EXECUTORS = ("serial", "thread")

#: Process-lifetime latency distribution across every driven batch; the
#: per-batch exact distribution lives on each :class:`LoadReport`.
_QUERY_SECONDS = obs.global_metrics().histogram(
    "serve.query_seconds", help="per-query serving latency across driven batches"
)


@dataclass
class QueryJob:
    """One client request: which engine to ask, and what to ask it."""

    engine: Any
    spec: QuerySpec


def run_query_job(job: QueryJob) -> tuple[StreamingReport, float]:
    """Execute one request, returning ``(report, latency_seconds)``.

    Module-level on purpose: it is the function handed to
    ``ParallelMapper.map``, and jobs must stay importable descriptions of
    work (see the ``picklable-jobs`` lint contract).
    """
    start = clock.perf_counter()
    report = job.engine.query(job.spec)
    return report, clock.perf_counter() - start


@dataclass
class LoadReport:
    """Outcome of one driven batch of queries.

    ``reports``/``latencies`` are in request order (the mapper guarantees
    input-order results), so callers can line answers up with their specs.
    ``executor``/``workers`` record what actually ran — a sandbox that
    cannot spawn threads degrades to the serial loop and says so.

    The latency summaries (p50/p99/mean) are read off a sample-tracking
    :class:`~repro.obs.Histogram` built from ``latencies``, so the report
    and the metrics exporters agree on one definition of each statistic.
    """

    clients: int
    executor: str
    workers: int
    latencies: list[float]
    reports: list[StreamingReport]
    wall_seconds: float
    latency: Histogram = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.latency = Histogram(
            "serve.query_seconds",
            help="per-query serving latency of this batch",
            track_samples=True,
        )
        for value in self.latencies:
            self.latency.observe(value)

    @property
    def num_queries(self) -> int:
        """How many requests the batch contained."""
        return self.latency.count

    @property
    def p50(self) -> float:
        """Median per-query latency (seconds, exact nearest-rank)."""
        return self.latency.quantile(50)

    @property
    def p99(self) -> float:
        """99th-percentile per-query latency (seconds, exact nearest-rank)."""
        return self.latency.quantile(99)

    @property
    def mean_latency(self) -> float:
        """Mean per-query latency (seconds)."""
        return self.latency.mean

    @property
    def qps(self) -> float:
        """Aggregate throughput: completed queries per wall-clock second."""
        return self.num_queries / self.wall_seconds if self.wall_seconds else 0.0

    def as_dict(self) -> dict[str, Any]:
        """Flat summary for tables and JSON artifacts (no per-query data)."""
        return {
            "clients": self.clients,
            "executor": self.executor,
            "workers": self.workers,
            "num_queries": self.num_queries,
            "wall_seconds": self.wall_seconds,
            "p50_seconds": self.p50,
            "p99_seconds": self.p99,
            "mean_seconds": self.mean_latency,
            "qps": self.qps,
        }


def drive_queries(
    engine: Any,
    specs: Iterable[QuerySpec | Mapping[str, Any]],
    *,
    clients: int = 8,
    executor: str = "thread",
) -> LoadReport:
    """Drive a batch of queries through ``engine`` with ``clients`` workers.

    ``specs`` may mix :class:`QuerySpec` instances and their dict forms.
    Latency is measured per query inside the worker; ``wall_seconds``
    covers the whole batch, so ``qps`` reflects real concurrency.
    """
    if executor not in _SHARED_MEMORY_EXECUTORS:
        raise SpecError(
            f"drive_queries supports executors {_SHARED_MEMORY_EXECUTORS}, "
            f"got {executor!r}: a process pool would pickle a private engine "
            "copy per worker and benchmark cold caches instead of the shared "
            "warm one"
        )
    resolved = [
        spec if isinstance(spec, QuerySpec) else QuerySpec.from_dict(spec)
        for spec in specs
    ]
    jobs = [QueryJob(engine=engine, spec=spec) for spec in resolved]
    mapper = ParallelMapper(executor, max_workers=clients)
    start = clock.perf_counter()
    with obs.span("serve.drive", clients=clients, queries=len(jobs)):
        outcomes = mapper.map(run_query_job, jobs)
    wall = clock.perf_counter() - start
    latencies = [latency for _, latency in outcomes]
    for latency in latencies:
        _QUERY_SECONDS.observe(latency)
    executed_backend, executed_workers = mapper.last_execution
    return LoadReport(
        clients=clients,
        executor=executed_backend,
        workers=executed_workers,
        latencies=latencies,
        reports=[report for report, _ in outcomes],
        wall_seconds=wall,
    )
