"""The query engine: answer many coverage queries against one cached build.

``solve()`` re-ingests the stream on every call; :class:`QueryEngine`
ingests once per distinct *build configuration* and answers every
subsequent :class:`~repro.api.specs.QuerySpec` from the cached artefact.
What is cached — and what a query may vary for free — depends on the
problem kind:

**k-cover** (``kcover/sketch``).  The sketch ``H_{<=n}`` is built by a
stream pass that never looks at ``k``'s role in selection, the forbidden
set or the coverage backend; only the derived space budgets
(``edge_budget``, ``degree_cap``, ``eviction_slack``), the rank source and
the seeds shape its content.  The cache therefore keys on exactly those,
and a query for any ``k``/``forbidden``/backend whose derived budgets
coincide re-runs just the offline greedy on the cached sketch — through
the same :func:`~repro.offline.greedy.greedy_k_cover` the solver's own
offline phase uses, with a :class:`~repro.coverage.bitset.KernelCache`
sharing one packed kernel per backend across queries.

**set cover** (``setcover/sketch``).  Genuinely multi-pass: every option
(including ``forbidden``, which constrains each iteration's selection)
shapes the passes, so the unit of caching is the *run* — repeat queries
with the same configuration return the memoized report without touching
the stream.

**set cover with outliers** (``outliers/sketch``).  The stream pass builds
per-guess sketches; acceptance checks are offline.  The cache holds the
post-stream algorithm with its guess sketches finalized
(:meth:`~repro.core.setcover_outliers.StreamingSetCoverOutliers.query`),
so varying ``forbidden`` and the backend re-runs only the offline checks.
The backend is *excluded* from the set-cover and outliers keys: kernel
and set-based evaluation select identically (a property the test suite
enforces for every registered backend), so one entry serves them all.

Identity contract: for every query shape, the served report carries the
same solution/coverage/space/pass numbers a fresh ``solve()`` with the
engine's stream settings would produce — byte-identical up to timings and
the :data:`SERVE_EXTRA_KEYS` markers (``tests/serve`` property-tests
this, including after cache eviction and re-admission).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro import obs
from repro.api import ProblemContext, get_solver
from repro.api.specs import QuerySpec
from repro.coverage.bipartite import BipartiteGraph
from repro.coverage.bitset import KernelCache
from repro.coverage.instance import CoverageInstance
from repro.coverage.io import ColumnarEdges, open_columnar
from repro.core.sketch import CoverageSketch
from repro.errors import SpecError
from repro.obs import clock
from repro.offline.greedy import greedy_k_cover
from repro.serve.fingerprint import fingerprint_problem
from repro.serve.store import SketchKey, SketchStore
from repro.streaming.runner import StreamingReport, StreamingRunner
from repro.streaming.stream import STREAM_ORDERS, EdgeStream
from repro.utils.validation import check_positive_int

__all__ = ["QueryEngine", "SERVABLE_PROBLEMS", "SERVE_EXTRA_KEYS"]

#: Problem kind -> the sketch-family solver the engine serves it with.
#: Only the paper's edge-arrival sketch algorithms are served; baselines
#: have no build/query split to exploit.
SERVABLE_PROBLEMS = {
    "k_cover": "kcover/sketch",
    "set_cover": "setcover/sketch",
    "set_cover_outliers": "outliers/sketch",
}

#: Extra keys the engine adds to served reports (and nothing else differs
#: from a fresh ``solve()`` besides timings); comparison code strips these.
SERVE_EXTRA_KEYS = ("served", "cache_hit")

#: QuerySpec fields that must not be smuggled in through ``options``: the
#: engine applies them at query time (or keys on them), and a constructor
#: option would silently diverge from the cache's notion of the build.
_RESERVED_OPTIONS = ("forbidden", "coverage_backend")


@dataclass
class _CachedSketch:
    """k-cover entry: the built sketch, shared kernels, and the build report."""

    sketch: CoverageSketch
    kernels: KernelCache
    base: StreamingReport


@dataclass
class _CachedRun:
    """set-cover entry: the memoized full run."""

    base: StreamingReport


@dataclass
class _CachedAlgorithm:
    """outliers entry: the post-stream algorithm plus the build report."""

    algorithm: Any
    base: StreamingReport


def _canonical_options(options: Mapping[str, Any]) -> str:
    """A hashable canonical form of a JSON-safe options dict."""
    return json.dumps(options, sort_keys=True)


class QueryEngine:
    """Serves coverage queries against cached sketch builds.

    Parameters
    ----------
    problem:
        The dataset: a :class:`~repro.coverage.instance.CoverageInstance`,
        a bare :class:`~repro.coverage.bipartite.BipartiteGraph`, a
        :class:`~repro.coverage.io.ColumnarEdges` view or a columnar
        directory path.
    store:
        The :class:`~repro.serve.store.SketchStore` to cache builds in; a
        private store per engine by default.  Sharing one store across
        engines is safe — every key carries the dataset fingerprint.
    seed:
        Default solver seed (mirrors ``solve(seed=...)``); a query's
        ``options={"seed": ...}`` overrides it per query, exactly as it
        would for ``solve``.
    order / stream_seed:
        The stream the builds consume, matching
        ``StreamSpec(order=..., seed=...)``.  ``stream_seed`` defaults to
        ``seed``, which is ``solve()``'s own default coupling.
    batch_size:
        Columnar ingestion batch for builds (reports record it, results
        are batch-invariant).  ``None`` feeds scalar events.
    coverage_backend:
        Default kernel backend for queries that leave
        ``QuerySpec.coverage_backend`` unset.
    """

    def __init__(
        self,
        problem: CoverageInstance | BipartiteGraph | ColumnarEdges | str | Path,
        *,
        store: SketchStore | None = None,
        seed: int = 0,
        order: str = "random",
        stream_seed: int | None = None,
        batch_size: int | None = 1024,
        coverage_backend: str | None = None,
    ) -> None:
        if isinstance(problem, (str, Path)):
            problem = open_columnar(problem)
        if order not in STREAM_ORDERS:
            raise SpecError(
                f"unknown stream order {order!r}; expected one of {STREAM_ORDERS}"
            )
        if batch_size is not None:
            check_positive_int(batch_size, "batch_size")
        if isinstance(problem, ColumnarEdges):
            self._graph = problem.to_graph()
            self._instance: CoverageInstance | None = None
        elif isinstance(problem, CoverageInstance):
            self._graph = problem.graph
            self._instance = problem
        elif isinstance(problem, BipartiteGraph):
            self._graph = problem
            self._instance = None
        else:
            raise SpecError(
                "problem must be a CoverageInstance, a BipartiteGraph, a "
                "ColumnarEdges view or a columnar directory path, "
                f"got {type(problem).__name__}"
            )
        self._fingerprint = fingerprint_problem(problem)
        self.store = store if store is not None else SketchStore()
        self.seed = int(seed)
        self.order = order
        self.stream_seed = self.seed if stream_seed is None else int(stream_seed)
        self.batch_size = batch_size
        self.coverage_backend = coverage_backend

    # ------------------------------------------------------------------ #
    # public surface
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> BipartiteGraph:
        """The evaluation graph every served coverage number is exact on."""
        return self._graph

    @property
    def fingerprint(self) -> str:
        """Content hash of the dataset (part of every cache key)."""
        return self._fingerprint

    def query(self, spec: QuerySpec | Mapping[str, Any]) -> StreamingReport:
        """Answer one query, building (and caching) the sketch on demand.

        Accepts a :class:`QuerySpec` or its ``to_dict`` form.  Returns the
        same :class:`StreamingReport` shape ``solve()`` produces, with
        ``extra["served"]``/``extra["cache_hit"]`` markers added and
        ``timings["solve"]`` measuring this query (``timings["stream"]``
        remains the cached build's ingestion time).
        """
        if isinstance(spec, Mapping):
            spec = QuerySpec.from_dict(spec)
        if not isinstance(spec, QuerySpec):
            raise SpecError(
                f"query expects a QuerySpec or a mapping, got {type(spec).__name__}"
            )
        for reserved in _RESERVED_OPTIONS:
            if reserved in spec.options:
                raise SpecError(
                    f"pass {reserved!r} as a QuerySpec field, not inside options: "
                    "the engine applies it at query time against the cached build"
                )
        backend = (
            spec.coverage_backend
            if spec.coverage_backend is not None
            else self.coverage_backend
        )
        start = clock.perf_counter()
        with obs.span("serve.query", problem=spec.problem):
            if spec.problem == "k_cover":
                return self._query_kcover(spec, backend, start)
            if spec.problem == "set_cover":
                return self._query_setcover(spec, backend, start)
            return self._query_outliers(spec, backend, start)

    def describe(self) -> dict[str, Any]:
        """Diagnostics for the CLI and reports."""
        return {
            "fingerprint": self._fingerprint,
            "num_sets": self._graph.num_sets,
            "num_elements": self._graph.num_elements,
            "num_edges": self._graph.num_edges,
            "seed": self.seed,
            "order": self.order,
            "stream_seed": self.stream_seed,
            "batch_size": self.batch_size,
            "coverage_backend": self.coverage_backend,
            **{f"store_{k}": v for k, v in self.store.stats().items()},
        }

    # ------------------------------------------------------------------ #
    # per-kind query paths
    # ------------------------------------------------------------------ #
    def _query_kcover(
        self, spec: QuerySpec, backend: str | None, start: float
    ) -> StreamingReport:
        options = dict(spec.options)
        ctx = self._context(spec, backend)
        info = get_solver("kcover/sketch")
        rank_source = str(options.get("rank_source", "hash"))
        # A probe construction resolves the derived budgets exactly the way
        # the registered builder does (epsilon/mode/scale/explicit budgets
        # included), so the key can never drift from the build.  The probe
        # forces the cheap hash rank source: a permutation rank pre-samples
        # O(sample_size) state we must not pay per query.
        probe = info.builder(ctx, **{**options, "rank_source": "hash"})
        params = probe.params
        key = SketchKey(
            fingerprint=self._fingerprint,
            family="kcover/sketch",
            config=(
                int(params.edge_budget),
                int(params.degree_cap),
                int(params.eviction_slack),
                rank_source,
                int(options.get("seed", self.seed)),
                self.order,
                self.stream_seed,
                self.batch_size,
            ),
        )

        def build() -> _CachedSketch:
            algorithm = (
                probe if rank_source == "hash" else info.builder(ctx, **options)
            )
            base = self._drive(algorithm)
            sketch = algorithm.sketch()
            return _CachedSketch(
                sketch=sketch, kernels=KernelCache(sketch.graph), base=base
            )

        entry, hit = self.store.get_or_build(key, build)
        result = greedy_k_cover(
            entry.sketch.graph,
            spec.k,
            forbidden=spec.forbidden,
            kernel=entry.kernels.get(backend),
        )
        # Mirror StreamingKCover.result()'s normalization exactly.
        selection = list(result.selected)[: spec.k]
        solution = tuple(dict.fromkeys(int(s) for s in selection))
        return self._served_report(entry.base, solution, hit, start)

    def _query_setcover(
        self, spec: QuerySpec, backend: str | None, start: float
    ) -> StreamingReport:
        options = dict(spec.options)
        if spec.forbidden:
            # Multi-pass: the constraint shapes every iteration's selection,
            # so it is part of the build, not a post-hoc filter.
            options["forbidden"] = list(spec.forbidden)
        key = SketchKey(
            fingerprint=self._fingerprint,
            family="setcover/sketch",
            config=(
                _canonical_options(options),
                self.seed,
                self.order,
                self.stream_seed,
                self.batch_size,
            ),
        )

        def build() -> _CachedRun:
            ctx = self._context(spec, backend)
            algorithm = get_solver("setcover/sketch").builder(ctx, **options)
            return _CachedRun(base=self._drive(algorithm))

        entry, hit = self.store.get_or_build(key, build)
        return self._served_report(entry.base, entry.base.solution, hit, start)

    def _query_outliers(
        self, spec: QuerySpec, backend: str | None, start: float
    ) -> StreamingReport:
        options = dict(spec.options)
        key = SketchKey(
            fingerprint=self._fingerprint,
            family="outliers/sketch",
            config=(
                float(spec.outlier_fraction),
                _canonical_options(options),
                self.seed,
                self.order,
                self.stream_seed,
                self.batch_size,
            ),
        )

        def build() -> _CachedAlgorithm:
            ctx = self._context(spec, backend)
            algorithm = get_solver("outliers/sketch").builder(ctx, **options)
            base = self._drive(algorithm)
            return _CachedAlgorithm(algorithm=algorithm, base=base)

        entry, hit = self.store.get_or_build(key, build)
        # query() always receives the backend explicitly, so the entry's own
        # construction-time default (whichever query built it) never leaks.
        solution_list, _outcomes = entry.algorithm.query(
            forbidden=spec.forbidden, coverage_backend=backend
        )
        solution = tuple(dict.fromkeys(int(s) for s in solution_list))
        return self._served_report(entry.base, solution, hit, start)

    # ------------------------------------------------------------------ #
    # shared plumbing
    # ------------------------------------------------------------------ #
    def _context(self, spec: QuerySpec, backend: str | None) -> ProblemContext:
        """The ProblemContext a ``solve()`` with the engine's settings builds."""
        return ProblemContext(
            graph=self._graph,
            problem=spec.problem,
            k=spec.k if spec.k is not None else 1,
            outlier_fraction=spec.outlier_fraction or 0.0,
            seed=self.seed,
            instance=self._instance,
            coverage_backend=backend,
        )

    def _drive(self, algorithm: Any) -> StreamingReport:
        """One full build: stream the dataset through a fresh algorithm.

        Matches ``solve(..., stream=StreamSpec(order, stream_seed,
        batch_size))`` event for event, so cached reports carry the same
        pass/space/extra numbers a fresh run records.
        """
        stream = EdgeStream.from_graph(
            self._graph, order=self.order, seed=self.stream_seed
        )
        extra: dict[str, Any] = {"stream_order": self.order}
        if self.batch_size is not None:
            extra["batch_size"] = self.batch_size
        return StreamingRunner(self._graph).run(
            algorithm, stream, batch_size=self.batch_size, extra=extra
        )

    def _served_report(
        self, base: StreamingReport, solution: tuple[int, ...], hit: bool, start: float
    ) -> StreamingReport:
        """A fresh report for this query, re-evaluated on the true graph."""
        coverage = self._graph.coverage(solution)
        total = self._graph.num_elements
        timings = dict(base.timings)
        timings["solve"] = clock.perf_counter() - start
        extra = dict(base.extra)
        extra["served"] = True
        extra["cache_hit"] = bool(hit)
        return StreamingReport(
            algorithm=base.algorithm,
            arrival_model=base.arrival_model,
            solution=solution,
            coverage=coverage,
            coverage_fraction=(coverage / total) if total else 1.0,
            solution_size=len(solution),
            passes=base.passes,
            space_peak=base.space_peak,
            space_budget=base.space_budget,
            stream_events=base.stream_events,
            timings=timings,
            extra=extra,
        )
