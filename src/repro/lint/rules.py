"""The lint rule framework: base class, metadata and registry.

A rule is a class deriving from :class:`Rule` with a :class:`RuleMeta`
describing it (name, one-line summary, the contract it defends, a bad and a
good example) and ``visit_<NodeType>`` methods the engine dispatches AST
nodes to — the same visitor convention as :class:`ast.NodeVisitor`, except
that one shared walk serves every rule and each visit yields
:class:`~repro.lint.findings.Finding` objects instead of mutating state.

Rules register by name in a :class:`~repro.utils.registry.NamedRegistry`
exactly like the solver, dataset, kernel and executor registries, so
downstream code can plug its own contracts into ``repro lint`` with
:func:`register_rule` and have them show up in ``--rules`` / ``--list-rules``
automatically.  The registry stores rule *classes*; every lint run
instantiates fresh instances, so rules may keep per-module scratch state
between ``begin_module`` and ``finish_module`` without leaking across runs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator

from repro.errors import SpecError
from repro.lint.findings import Finding
from repro.utils.registry import NamedRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.lint.engine import LintContext
    from repro.lint.project import ProjectIndex

__all__ = [
    "RuleMeta",
    "Rule",
    "ProjectRule",
    "register_rule",
    "unregister_rule",
    "get_rule",
    "list_rules",
    "iter_rule_metas",
    "rule_choices",
    "attribute_chain",
]


@dataclass(frozen=True)
class RuleMeta:
    """Everything user-facing about a rule, in one place.

    ``--list-rules``, the README rule table and the JSON metadata dump all
    render from this object, so the docs cannot drift from the code.
    """

    name: str
    summary: str
    rationale: str
    example_bad: str
    example_good: str

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name or " " in self.name:
            raise SpecError(
                f"rule name must be a non-empty string without spaces, got {self.name!r}"
            )
        for label in ("summary", "rationale", "example_bad", "example_good"):
            value = getattr(self, label)
            if not isinstance(value, str) or not value.strip():
                raise SpecError(f"rule {self.name!r} needs a non-empty {label}")

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form for the JSON ``--list-rules`` output."""
        return {
            "name": self.name,
            "summary": self.summary,
            "rationale": self.rationale,
            "example_bad": self.example_bad,
            "example_good": self.example_good,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RuleMeta":
        """Inverse of :meth:`to_dict` (used by tooling consuming the JSON dump)."""
        known = {"name", "summary", "rationale", "example_bad", "example_good"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SpecError(f"RuleMeta.from_dict got unknown field(s) {unknown}")
        return cls(**data)


class Rule:
    """Base class for lint rules.

    Subclasses set ``meta`` and implement any of:

    * ``visit_<NodeType>(node, ctx)`` — called for every AST node of that
      type during the module walk; yield/return an iterable of findings
      (or ``None``).
    * :meth:`begin_module` — reset per-module scratch state.
    * :meth:`finish_module` — emit findings that need the whole module
      (e.g. cross-referencing two method bodies).

    Helpers on the base class (:meth:`finding`) keep rule code short.
    """

    meta: RuleMeta

    #: Which phase of the engine runs this rule: ``"file"`` rules see one
    #: module at a time through the shared AST walk; ``"project"`` rules
    #: (see :class:`ProjectRule`) run once, after every file, over the
    #: assembled :class:`~repro.lint.project.ProjectIndex`.
    scope: str = "file"

    def begin_module(self, ctx: "LintContext") -> None:
        """Hook: called before the walk of each module."""

    def finish_module(self, ctx: "LintContext") -> Iterable[Finding]:
        """Hook: called after the walk of each module."""
        return ()

    def finding(
        self, ctx: "LintContext", node: ast.AST | int, message: str, col: int = 0
    ) -> Finding:
        """Build a finding at ``node`` (or at an explicit line number)."""
        if isinstance(node, ast.AST):
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
        else:
            line = node
        return Finding(
            path=ctx.display_path, line=line, col=col, rule=self.meta.name, message=message
        )

    def visitor_methods(self) -> dict[str, Callable[..., Any]]:
        """Map of AST node type name -> bound visitor method."""
        methods: dict[str, Callable[..., Any]] = {}
        for attr in dir(self):
            if attr.startswith("visit_"):
                methods[attr[len("visit_"):]] = getattr(self, attr)
        return methods


class ProjectRule(Rule):
    """Base class for cross-module rules.

    Project rules run *after* the per-file walk, over the
    :class:`~repro.lint.project.ProjectIndex` the engine assembled from
    every linted file's :class:`~repro.lint.project.ModuleFacts`.  They
    register, select and suppress exactly like per-file rules — a project
    finding anchored at ``path:line`` is silenced by the same inline
    ``# repro-lint: disable=...`` comment a per-file finding would be.
    """

    scope = "project"

    def check_project(self, index: "ProjectIndex") -> Iterable[Finding]:
        """Emit findings computed from the whole-program index."""
        return ()


_REGISTRY: NamedRegistry[type[Rule]] = NamedRegistry(
    "lint rule", SpecError, "'repro lint --list-rules'"
)


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator registering a rule under ``cls.meta.name``."""
    meta = getattr(cls, "meta", None)
    if not isinstance(meta, RuleMeta):
        raise SpecError(f"{cls.__name__} must define a RuleMeta 'meta' attribute")
    if meta.name == "all":
        raise SpecError("'all' is reserved for blanket suppressions")
    _REGISTRY.add(meta.name, cls)
    return cls


def unregister_rule(name: str) -> None:
    """Remove a registered rule (mainly for tests and plugins)."""
    _REGISTRY.remove(name)


def get_rule(name: str) -> type[Rule]:
    """Look up a rule class by name (with did-you-mean hints)."""
    return _REGISTRY.get(name)


def list_rules() -> list[str]:
    """Sorted names of the registered rules."""
    return _REGISTRY.names()


def iter_rule_metas() -> list[RuleMeta]:
    """The metadata of every registered rule, sorted by name."""
    return [cls.meta for cls in _REGISTRY.values()]


def rule_choices() -> tuple[str, ...]:
    """Valid values for the ``--rules`` CLI option."""
    return tuple(list_rules())


def attribute_chain(node: ast.AST) -> tuple[str, ...] | None:
    """The dotted-name parts of an attribute chain rooted at a plain name.

    ``np.random.default_rng`` -> ``("np", "random", "default_rng")``;
    anything whose root is not a bare :class:`ast.Name` (a call result, a
    subscript, ...) returns ``None`` — rules treat that as "cannot tell"
    rather than guessing.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def walk_findings(result: Iterable[Finding] | None) -> Iterator[Finding]:
    """Normalise a visitor's return value (``None`` or iterable) to findings."""
    if result is None:
        return
    yield from result
