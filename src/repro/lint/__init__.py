"""repro.lint — repo-aware static analysis for the determinism contracts.

The test suite defends the paper's guarantees *dynamically* (byte-identity
across batch sizes, executors and shard merges); this package defends the
same contracts *statically*, at AST level, before a single test runs:

* ``no-raw-rng`` — randomness flows through :mod:`repro.utils.rng`;
* ``picklable-jobs`` — executor callables are module-level, job dataclasses
  carry plain data;
* ``spec-roundtrip`` — frozen spec dataclasses serialize every field;
* ``hot-path-hygiene`` — ``process_batch`` stays vectorised;
* ``registry-literal-names`` — registry keys are greppable literals;
* ``no-silent-except`` — no handler swallows executor/mmap errors;
* ``suppression-hygiene`` — suppressions name real rules and say why.

Run it as ``repro lint src benchmarks tests`` (text or ``--format json``),
list the rules with ``repro lint --list-rules``, and silence a deliberate
exception inline::

    # repro-lint: disable=<rule>[,<rule>] -- justification

New rules plug in exactly like solvers and kernels: subclass
:class:`~repro.lint.rules.Rule`, give it a
:class:`~repro.lint.rules.RuleMeta`, decorate with
:func:`~repro.lint.rules.register_rule`.
"""

from repro.lint import checks  # noqa: F401  (registers the built-in rules)
from repro.lint.engine import LintContext, collect_files, lint_paths, lint_source
from repro.lint.findings import Finding, LintReport
from repro.lint.reporters import render_json, render_text, report_from_json
from repro.lint.rules import (
    Rule,
    RuleMeta,
    get_rule,
    iter_rule_metas,
    list_rules,
    register_rule,
    rule_choices,
    unregister_rule,
)

__all__ = [
    "Finding",
    "LintReport",
    "LintContext",
    "Rule",
    "RuleMeta",
    "collect_files",
    "get_rule",
    "iter_rule_metas",
    "lint_paths",
    "lint_source",
    "list_rules",
    "register_rule",
    "rule_choices",
    "render_json",
    "render_text",
    "report_from_json",
    "unregister_rule",
]
