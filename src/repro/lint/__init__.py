"""repro.lint — repo-aware static analysis for the determinism contracts.

The test suite defends the paper's guarantees *dynamically* (byte-identity
across batch sizes, executors and shard merges); this package defends the
same contracts *statically*, at AST level, before a single test runs.

Per-file rules (one module at a time):

* ``no-raw-rng`` — randomness flows through :mod:`repro.utils.rng`;
* ``picklable-jobs`` — executor callables are module-level, job dataclasses
  carry plain data;
* ``spec-roundtrip`` — frozen spec dataclasses serialize every field;
* ``hot-path-hygiene`` — ``process_batch`` stays vectorised;
* ``registry-literal-names`` — registry keys are greppable literals;
* ``no-silent-except`` — no handler swallows executor/mmap errors;
* ``suppression-hygiene`` — suppressions name real rules and say why.

Project rules (whole-program, over the :class:`~repro.lint.project.ProjectIndex`
the engine assembles from every file):

* ``knob-drift`` — spec fields, ``solve()``/``Session`` kwargs and CLI
  flags stay in sync, both directions;
* ``transitive-picklability`` — callables reaching executors resolve to
  module-level defs through any chain of aliases/imports/factories;
* ``registry-docs-sync`` — registered names and README tables agree;
* ``export-hygiene`` — ``__all__`` entries exist, re-exports resolve,
  exports are used somewhere in the linted tree.

Run it as ``repro lint src benchmarks tests`` (text or ``--format json``),
list the rules with ``repro lint --list-rules``, and silence a deliberate
exception inline::

    # repro-lint: disable=<rule>[,<rule>] -- justification

The engine scales like the rest of the repo: ``--jobs N`` fans the
per-file phase over :class:`repro.parallel.ParallelMapper` (byte-identical
to serial), ``--cache`` re-analyzes only changed files plus their
import-graph dependents, and ``--changed BASE`` lints just the files git
reports dirty (plus dependents) for a fast pre-gate.

New rules plug in exactly like solvers and kernels: subclass
:class:`~repro.lint.rules.Rule` (or
:class:`~repro.lint.rules.ProjectRule` for cross-module contracts), give
it a :class:`~repro.lint.rules.RuleMeta`, decorate with
:func:`~repro.lint.rules.register_rule`.
"""

from repro.lint import checks  # noqa: F401  (registers the built-in rules)
from repro.lint.cache import LintCache, load_cache
from repro.lint.engine import (
    FileAnalysis,
    FileLintJob,
    LintContext,
    LintStats,
    collect_files,
    execute_lint_job,
    lint_paths,
    lint_paths_with_stats,
    lint_source,
)
from repro.lint.findings import Finding, LintReport
from repro.lint.project import ModuleFacts, ProjectIndex, collect_facts
from repro.lint.reporters import render_json, render_text, report_from_json
from repro.lint.rules import (
    ProjectRule,
    Rule,
    RuleMeta,
    get_rule,
    iter_rule_metas,
    list_rules,
    register_rule,
    rule_choices,
    unregister_rule,
)

__all__ = [
    "FileAnalysis",
    "FileLintJob",
    "Finding",
    "LintCache",
    "LintReport",
    "LintContext",
    "LintStats",
    "ModuleFacts",
    "ProjectIndex",
    "ProjectRule",
    "Rule",
    "RuleMeta",
    "collect_facts",
    "collect_files",
    "execute_lint_job",
    "get_rule",
    "iter_rule_metas",
    "lint_paths",
    "lint_paths_with_stats",
    "lint_source",
    "list_rules",
    "load_cache",
    "register_rule",
    "rule_choices",
    "render_json",
    "render_text",
    "report_from_json",
    "unregister_rule",
]
