"""Text and JSON renderers for :class:`~repro.lint.findings.LintReport`.

The text reporter prints one ``path:line:col: rule: message`` line per
finding (the format editors and CI log scrapers already understand) plus a
one-line summary.  The JSON reporter serializes the whole report losslessly
— :func:`report_from_json` restores an identical :class:`LintReport`, which
is property-tested, so archived CI artifacts can be re-rendered or diffed
offline.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import SpecError
from repro.lint.findings import LintReport

__all__ = ["render_text", "render_json", "report_from_json", "REPORT_VERSION"]

#: Schema version stamped into JSON reports (bump on incompatible changes).
REPORT_VERSION = 1


def render_text(report: LintReport) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [
        f"{finding.location()}: {finding.rule}: {finding.message}"
        for finding in report.findings
    ]
    counts = report.by_rule()
    breakdown = (
        " (" + ", ".join(f"{rule}: {count}" for rule, count in counts.items()) + ")"
        if counts
        else ""
    )
    noun = "finding" if len(report.findings) == 1 else "findings"
    lines.append(
        f"{len(report.findings)} {noun}{breakdown}, {report.suppressed} suppressed, "
        f"{report.files_scanned} files scanned"
    )
    return "\n".join(lines)


def render_json(report: LintReport, stats: Any | None = None) -> str:
    """Lossless JSON form of the report (sorted keys, stable across runs).

    ``stats`` (a :class:`~repro.lint.engine.LintStats`, or anything with a
    ``to_dict``) rides along under a separate ``"stats"`` key when given:
    the *report* stays byte-identical across cold/warm/parallel runs, while
    stats legitimately vary, and :func:`report_from_json` ignores the key —
    no version bump needed.
    """
    payload: dict[str, Any] = {"version": REPORT_VERSION, "report": report.to_dict()}
    if stats is not None:
        payload["stats"] = stats.to_dict() if hasattr(stats, "to_dict") else stats
    return json.dumps(payload, indent=2, sort_keys=True)


def report_from_json(text: str) -> LintReport:
    """Inverse of :func:`render_json`; malformed input raises :class:`SpecError`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise SpecError(f"lint report is not valid JSON: {error}") from None
    if not isinstance(payload, dict) or "report" not in payload:
        raise SpecError("lint report JSON must be an object with a 'report' key")
    version = payload.get("version")
    if version != REPORT_VERSION:
        raise SpecError(
            f"unsupported lint report version {version!r}; expected {REPORT_VERSION}"
        )
    return LintReport.from_dict(payload["report"])
