"""The whole-program side of :mod:`repro.lint`: module facts and the index.

Per-file rules see one AST at a time; the contracts that cost the most
review time span *files* — a knob present in ``ProblemSpec`` but missing
from the CLI, a callable that reaches a process pool through two aliases, a
registered solver absent from the README table.  To check those, the engine
extracts a :class:`ModuleFacts` summary from every file it parses (imports,
module-level symbol table, function signatures, registration and executor
call sites, ``__all__``) and assembles the summaries into a
:class:`ProjectIndex`: import graph, dotted-module lookup, reverse
dependents, and a cross-module callable resolver.

Facts are deliberately *plain data* — frozen dataclasses of strings and
ints that round-trip through ``to_dict`` / ``from_dict`` — for two reasons:
the per-file analysis fans out over :class:`~repro.parallel.ParallelMapper`
(facts must pickle), and the incremental cache persists them as JSON so an
unchanged file's facts never need re-parsing.  The index itself is rebuilt
from facts on every run; only facts are cached.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import PurePosixPath
from typing import Any, Iterable, Mapping

from repro.errors import SpecError
from repro.lint.rules import attribute_chain

__all__ = [
    "ImportRecord",
    "FunctionFacts",
    "DataclassFacts",
    "CallArgRef",
    "JobCallableRef",
    "RegistrationRecord",
    "ModuleFacts",
    "CallableResolution",
    "ProjectIndex",
    "collect_facts",
    "module_name_for",
]


def _require_mapping(data: Any, cls: type) -> Mapping[str, Any]:
    if not isinstance(data, Mapping):
        raise SpecError(
            f"{cls.__name__}.from_dict expects a mapping, got {type(data).__name__}"
        )
    return data


def module_name_for(display_path: str) -> tuple[str, bool]:
    """Dotted module name for a display path, plus whether it is a package.

    Anything after the last ``src`` component is the import root (the layout
    this repo and the synthetic test trees share); paths without a ``src``
    component (``tests/...``, ``benchmarks/...``) use the path as-is.
    """
    parts = [p for p in PurePosixPath(display_path).parts if p not in ("/", "\\")]
    if "src" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("src")
        parts = parts[anchor + 1 :]
    if not parts:
        return "", False
    leaf = parts[-1]
    if leaf.endswith(".py"):
        parts[-1] = leaf[: -len(".py")]
    is_package = parts[-1] == "__init__"
    if is_package:
        parts = parts[:-1]
    return ".".join(parts), is_package


@dataclass(frozen=True)
class ImportRecord:
    """One import binding: ``alias`` names ``name`` (or ``module``) locally."""

    module: str
    name: str | None
    alias: str
    line: int

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-serializable)."""
        return {
            "module": self.module,
            "name": self.name,
            "alias": self.alias,
            "line": self.line,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ImportRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(**_require_mapping(data, cls))


@dataclass(frozen=True)
class FunctionFacts:
    """Signature and body summary of one module-level function or method."""

    qualname: str
    line: int
    params: tuple[str, ...]
    kwonly: tuple[str, ...]
    param_lines: dict[str, int]
    has_kwargs: bool
    returns_nested: bool
    returned_names: tuple[str, ...]
    calls: tuple[str, ...]

    def all_params(self) -> tuple[str, ...]:
        """Positional and keyword-only parameter names together."""
        return self.params + self.kwonly

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-serializable)."""
        return {
            "qualname": self.qualname,
            "line": self.line,
            "params": list(self.params),
            "kwonly": list(self.kwonly),
            "param_lines": dict(self.param_lines),
            "has_kwargs": self.has_kwargs,
            "returns_nested": self.returns_nested,
            "returned_names": list(self.returned_names),
            "calls": list(self.calls),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FunctionFacts":
        """Inverse of :meth:`to_dict`."""
        payload = dict(_require_mapping(data, cls))
        for key in ("params", "kwonly", "returned_names", "calls"):
            payload[key] = tuple(payload.get(key, ()))
        payload["param_lines"] = {
            str(name): int(line) for name, line in payload.get("param_lines", {}).items()
        }
        return cls(**payload)


@dataclass(frozen=True)
class DataclassFacts:
    """Field inventory of one ``@dataclass``-decorated class."""

    name: str
    line: int
    fields: tuple[str, ...]
    field_lines: dict[str, int]

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-serializable)."""
        return {
            "name": self.name,
            "line": self.line,
            "fields": list(self.fields),
            "field_lines": dict(self.field_lines),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DataclassFacts":
        """Inverse of :meth:`to_dict`."""
        payload = dict(_require_mapping(data, cls))
        payload["fields"] = tuple(payload.get("fields", ()))
        payload["field_lines"] = {
            str(name): int(line) for name, line in payload.get("field_lines", {}).items()
        }
        return cls(**payload)


@dataclass(frozen=True)
class CallArgRef:
    """A named callable handed to an executor fan-out (``mapper.map(fn, ...)``)."""

    context: str
    target: str
    line: int
    col: int

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-serializable)."""
        return {
            "context": self.context,
            "target": self.target,
            "line": self.line,
            "col": self.col,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CallArgRef":
        """Inverse of :meth:`to_dict`."""
        return cls(**_require_mapping(data, cls))


@dataclass(frozen=True)
class JobCallableRef:
    """A lambda or named value flowing into a ``*Job`` dataclass field."""

    job_class: str
    via: str
    target: str
    is_lambda: bool
    line: int
    col: int

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-serializable)."""
        return {
            "job_class": self.job_class,
            "via": self.via,
            "target": self.target,
            "is_lambda": self.is_lambda,
            "line": self.line,
            "col": self.col,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobCallableRef":
        """Inverse of :meth:`to_dict`."""
        return cls(**_require_mapping(data, cls))


@dataclass(frozen=True)
class RegistrationRecord:
    """One registry registration site (``kind`` in solver/dataset/kernel/...)."""

    kind: str
    name: str
    line: int
    col: int

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-serializable)."""
        return {
            "kind": self.kind,
            "name": self.name,
            "line": self.line,
            "col": self.col,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RegistrationRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(**_require_mapping(data, cls))


@dataclass(frozen=True)
class ModuleFacts:
    """Everything the project rules need to know about one module.

    ``symbols`` maps each module-level binding to a kind tag: ``"def"``,
    ``"class"``, ``"import"``, ``"lambda"``, ``"assign"`` (opaque value),
    ``"alias:<target>"`` (``x = y``) or ``"call:<callee>"`` (``x = f()``) —
    exactly the distinctions the cross-module callable resolver needs.
    """

    display_path: str
    module: str
    is_package: bool
    imports: tuple[ImportRecord, ...] = ()
    symbols: dict[str, str] | None = None
    symbol_lines: dict[str, int] | None = None
    functions: dict[str, FunctionFacts] | None = None
    dataclasses: dict[str, DataclassFacts] | None = None
    dunder_all: tuple[str, ...] | None = None
    dunder_all_lines: dict[str, int] | None = None
    star_import: bool = False
    used_names: tuple[str, ...] = ()
    mapper_calls: tuple[CallArgRef, ...] = ()
    job_refs: tuple[JobCallableRef, ...] = ()
    registrations: tuple[RegistrationRecord, ...] = ()
    cli_flags: dict[str, int] | None = None

    def __post_init__(self) -> None:
        for label in ("symbols", "symbol_lines", "functions", "dataclasses",
                      "dunder_all_lines", "cli_flags"):
            if getattr(self, label) is None:
                object.__setattr__(self, label, {})

    def in_src(self) -> bool:
        """Whether this module lives under a ``src`` component (public code)."""
        return "src" in PurePosixPath(self.display_path).parts

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-serializable)."""
        return {
            "display_path": self.display_path,
            "module": self.module,
            "is_package": self.is_package,
            "imports": [record.to_dict() for record in self.imports],
            "symbols": dict(self.symbols or {}),
            "symbol_lines": dict(self.symbol_lines or {}),
            "functions": {
                name: facts.to_dict() for name, facts in (self.functions or {}).items()
            },
            "dataclasses": {
                name: facts.to_dict() for name, facts in (self.dataclasses or {}).items()
            },
            "dunder_all": list(self.dunder_all) if self.dunder_all is not None else None,
            "dunder_all_lines": dict(self.dunder_all_lines or {}),
            "star_import": self.star_import,
            "used_names": list(self.used_names),
            "mapper_calls": [record.to_dict() for record in self.mapper_calls],
            "job_refs": [record.to_dict() for record in self.job_refs],
            "registrations": [record.to_dict() for record in self.registrations],
            "cli_flags": dict(self.cli_flags or {}),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ModuleFacts":
        """Inverse of :meth:`to_dict`; malformed input raises :class:`SpecError`."""
        payload = dict(_require_mapping(data, cls))
        known = {
            "display_path", "module", "is_package", "imports", "symbols",
            "symbol_lines", "functions", "dataclasses", "dunder_all",
            "dunder_all_lines", "star_import", "used_names", "mapper_calls",
            "job_refs", "registrations", "cli_flags",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise SpecError(f"ModuleFacts.from_dict got unknown field(s) {unknown}")
        payload["imports"] = tuple(
            ImportRecord.from_dict(item) for item in payload.get("imports", ())
        )
        payload["functions"] = {
            name: FunctionFacts.from_dict(item)
            for name, item in payload.get("functions", {}).items()
        }
        payload["dataclasses"] = {
            name: DataclassFacts.from_dict(item)
            for name, item in payload.get("dataclasses", {}).items()
        }
        raw_all = payload.get("dunder_all")
        payload["dunder_all"] = tuple(raw_all) if raw_all is not None else None
        payload["used_names"] = tuple(payload.get("used_names", ()))
        payload["mapper_calls"] = tuple(
            CallArgRef.from_dict(item) for item in payload.get("mapper_calls", ())
        )
        payload["job_refs"] = tuple(
            JobCallableRef.from_dict(item) for item in payload.get("job_refs", ())
        )
        payload["registrations"] = tuple(
            RegistrationRecord.from_dict(item) for item in payload.get("registrations", ())
        )
        return cls(**payload)


# --------------------------------------------------------------------------- #
# facts collection
# --------------------------------------------------------------------------- #

#: Receivers whose ``.map``/``.map_unordered`` calls are executor fan-outs.
_MAPPER_RECEIVERS = re.compile(r"(mapper|pool|executor)s?$", re.IGNORECASE)

#: Plain-name functions that fan a callable out over workers.
_MAP_FUNCTIONS = frozenset({"parallel_map"})

#: Executor-object methods that take ``(fn, jobs)``.
_FANOUT_METHODS = frozenset({"map", "map_unordered"})

#: Class names treated as shippable job dataclasses.
_JOB_CLASS = re.compile(r"^[A-Z]\w*Job$")

#: ``register_*(name, ...)`` registration families, keyed by callee name.
_NAME_FIRST_KINDS = {"register_solver": "solver", "register_dataset": "dataset"}

#: ``register_*(Entry(name=..., ...))`` registration families.
_ENTRY_FIRST_KINDS = {
    "register_kernel_backend": "kernel",
    "register_executor": "executor",
}


def _iter_scope(node: ast.AST) -> Iterable[ast.AST]:
    """Walk a function body without descending into nested defs/lambdas."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda, ast.ClassDef)):
            stack.extend(ast.iter_child_nodes(child))


def _dotted(node: ast.AST) -> str | None:
    chain = attribute_chain(node)
    return ".".join(chain) if chain is not None else None


def _function_facts(
    node: ast.FunctionDef | ast.AsyncFunctionDef, qualname: str, is_method: bool
) -> FunctionFacts:
    args = node.args
    positional = list(args.posonlyargs) + list(args.args)
    if is_method and positional and positional[0].arg in ("self", "cls"):
        positional = positional[1:]
    param_lines = {arg.arg: arg.lineno for arg in positional + list(args.kwonlyargs)}
    nested = {
        inner.name
        for inner in ast.walk(node)
        if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)) and inner is not node
    }
    returns_nested = False
    returned_names: list[str] = []
    calls: list[str] = []
    for child in _iter_scope(node):
        if isinstance(child, ast.Return) and child.value is not None:
            if isinstance(child.value, ast.Lambda):
                returns_nested = True
            elif isinstance(child.value, ast.Name):
                if child.value.id in nested:
                    returns_nested = True
                else:
                    returned_names.append(child.value.id)
        elif isinstance(child, ast.Call):
            name = _dotted(child.func)
            if name is not None:
                calls.append(name)
    return FunctionFacts(
        qualname=qualname,
        line=node.lineno,
        params=tuple(arg.arg for arg in positional),
        kwonly=tuple(arg.arg for arg in args.kwonlyargs),
        param_lines=param_lines,
        has_kwargs=args.kwarg is not None,
        returns_nested=returns_nested,
        returned_names=tuple(dict.fromkeys(returned_names)),
        calls=tuple(dict.fromkeys(calls)),
    )


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        chain = attribute_chain(
            decorator.func if isinstance(decorator, ast.Call) else decorator
        )
        if chain is not None and chain[-1] == "dataclass":
            return True
    return False


def _dataclass_facts(node: ast.ClassDef) -> DataclassFacts:
    fields: list[str] = []
    field_lines: dict[str, int] = {}
    for statement in node.body:
        if not isinstance(statement, ast.AnnAssign):
            continue
        if not isinstance(statement.target, ast.Name):
            continue
        annotation = ast.unparse(statement.annotation)
        if "ClassVar" in annotation or "InitVar" in annotation:
            continue
        name = statement.target.id
        if name.startswith("_"):
            continue
        fields.append(name)
        field_lines[name] = statement.lineno
    return DataclassFacts(
        name=node.name, line=node.lineno, fields=tuple(fields), field_lines=field_lines
    )


def _registered_rule_name(node: ast.ClassDef) -> str | None:
    """The RuleMeta name of a class decorated with ``@register_rule``."""
    decorated = any(
        (chain := attribute_chain(deco)) is not None and chain[-1] == "register_rule"
        for deco in node.decorator_list
    )
    if not decorated:
        return None
    for statement in node.body:
        if not isinstance(statement, ast.Assign):
            continue
        targets = [t.id for t in statement.targets if isinstance(t, ast.Name)]
        if "meta" not in targets or not isinstance(statement.value, ast.Call):
            continue
        chain = attribute_chain(statement.value.func)
        if chain is None or chain[-1] != "RuleMeta":
            continue
        for keyword in statement.value.keywords:
            if (
                keyword.arg == "name"
                and isinstance(keyword.value, ast.Constant)
                and isinstance(keyword.value.value, str)
            ):
                return keyword.value.value
    return None


def _fanout_context(node: ast.Call) -> str | None:
    """A human label (``"mapper.map"``) if this call fans a callable out."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id if func.id in _MAP_FUNCTIONS else None
    if not isinstance(func, ast.Attribute):
        return None
    receiver = _dotted(func.value)
    if func.attr == "submit":
        return f"{receiver or '<pool>'}.submit"
    if func.attr in _FANOUT_METHODS:
        if receiver is not None and _MAPPER_RECEIVERS.search(receiver.split(".")[-1]):
            return f"{receiver}.{func.attr}"
    return None


def _resolve_relative(module: str, is_package: bool, level: int, target: str | None) -> str:
    """Absolute dotted module for a relative import inside ``module``."""
    parts = module.split(".") if module else []
    if not is_package and parts:
        parts = parts[:-1]
    if level > 1:
        parts = parts[: max(0, len(parts) - (level - 1))]
    base = ".".join(parts)
    if target:
        return f"{base}.{target}" if base else target
    return base


class _FactsCollector:
    """One pass over a parsed module producing its :class:`ModuleFacts`."""

    def __init__(self, display_path: str) -> None:
        self.display_path = display_path
        self.module, self.is_package = module_name_for(display_path)
        self.imports: list[ImportRecord] = []
        self.symbols: dict[str, str] = {}
        self.symbol_lines: dict[str, int] = {}
        self.functions: dict[str, FunctionFacts] = {}
        self.dataclasses: dict[str, DataclassFacts] = {}
        self.dunder_all: list[str] | None = None
        self.dunder_all_lines: dict[str, int] = {}
        self.star_import = False
        self.mapper_calls: list[CallArgRef] = []
        self.job_refs: list[JobCallableRef] = []
        self.registrations: list[RegistrationRecord] = []
        self.cli_flags: dict[str, int] = {}

    def collect(self, tree: ast.Module) -> ModuleFacts:
        self._module_scope(tree.body)
        used: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                used.add(node.id)
            elif isinstance(node, ast.Attribute):
                used.add(node.attr)
            elif isinstance(node, ast.Call):
                self._inspect_call(node)
            elif isinstance(node, ast.ClassDef):
                self._inspect_class(node)
        return ModuleFacts(
            display_path=self.display_path,
            module=self.module,
            is_package=self.is_package,
            imports=tuple(self.imports),
            symbols=self.symbols,
            symbol_lines=self.symbol_lines,
            functions=self.functions,
            dataclasses=self.dataclasses,
            dunder_all=tuple(self.dunder_all) if self.dunder_all is not None else None,
            dunder_all_lines=self.dunder_all_lines,
            star_import=self.star_import,
            used_names=tuple(sorted(used)),
            mapper_calls=tuple(self.mapper_calls),
            job_refs=tuple(self.job_refs),
            registrations=tuple(self.registrations),
            cli_flags=self.cli_flags,
        )

    # -- module scope ---------------------------------------------------- #
    def _module_scope(self, body: Iterable[ast.stmt]) -> None:
        for statement in body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._bind(statement.name, "def", statement.lineno)
                self.functions[statement.name] = _function_facts(
                    statement, statement.name, is_method=False
                )
            elif isinstance(statement, ast.ClassDef):
                self._bind(statement.name, "class", statement.lineno)
                for inner in statement.body:
                    if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        qualname = f"{statement.name}.{inner.name}"
                        self.functions[qualname] = _function_facts(
                            inner, qualname, is_method=True
                        )
                if _is_dataclass_decorated(statement):
                    self.dataclasses[statement.name] = _dataclass_facts(statement)
            elif isinstance(statement, ast.Import):
                self._collect_import(statement)
            elif isinstance(statement, ast.ImportFrom):
                self._collect_import_from(statement)
            elif isinstance(statement, ast.Assign):
                self._collect_assign(statement)
            elif isinstance(statement, ast.AnnAssign):
                if isinstance(statement.target, ast.Name) and statement.value is not None:
                    self._bind(
                        statement.target.id,
                        self._value_kind(statement.value),
                        statement.lineno,
                    )
            elif isinstance(statement, ast.AugAssign):
                self._collect_aug_assign(statement)
            elif isinstance(statement, ast.If):
                self._module_scope(statement.body)
                self._module_scope(statement.orelse)
            elif isinstance(statement, ast.Try):
                self._module_scope(statement.body)
                for handler in statement.handlers:
                    self._module_scope(handler.body)
                self._module_scope(statement.orelse)
                self._module_scope(statement.finalbody)
            elif isinstance(statement, ast.With):
                self._module_scope(statement.body)

    def _bind(self, name: str, kind: str, line: int) -> None:
        self.symbols[name] = kind
        self.symbol_lines.setdefault(name, line)

    def _value_kind(self, value: ast.expr) -> str:
        if isinstance(value, ast.Lambda):
            return "lambda"
        target = _dotted(value)
        if target is not None:
            return f"alias:{target}"
        if isinstance(value, ast.Call):
            callee = _dotted(value.func)
            if callee is not None:
                return f"call:{callee}"
        return "assign"

    def _collect_import(self, node: ast.Import) -> None:
        for alias in node.names:
            binding = alias.asname or alias.name.split(".")[0]
            self._bind(binding, "import", node.lineno)
            self.imports.append(
                ImportRecord(
                    module=alias.name, name=None, alias=binding, line=node.lineno
                )
            )

    def _collect_import_from(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if node.level:
            module = _resolve_relative(self.module, self.is_package, node.level, node.module)
        for alias in node.names:
            if alias.name == "*":
                self.star_import = True
                continue
            binding = alias.asname or alias.name
            self._bind(binding, "import", node.lineno)
            self.imports.append(
                ImportRecord(
                    module=module, name=alias.name, alias=binding, line=node.lineno
                )
            )

    def _collect_assign(self, node: ast.Assign) -> None:
        names = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if names == ["__all__"]:
            self._collect_dunder_all(node.value, replace=True)
            return
        kind = self._value_kind(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                self._bind(target.id, kind, node.lineno)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    if isinstance(element, ast.Name):
                        self._bind(element.id, "assign", node.lineno)

    def _collect_aug_assign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Name) and node.target.id == "__all__":
            self._collect_dunder_all(node.value, replace=False)

    def _collect_dunder_all(self, value: ast.expr, *, replace: bool) -> None:
        if not isinstance(value, (ast.List, ast.Tuple)):
            return
        if replace or self.dunder_all is None:
            self.dunder_all = [] if replace else (self.dunder_all or [])
        for element in value.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                self.dunder_all.append(element.value)
                self.dunder_all_lines.setdefault(element.value, element.lineno)

    # -- whole-tree call/class sites -------------------------------------- #
    def _inspect_call(self, node: ast.Call) -> None:
        chain = attribute_chain(node.func)
        callee = chain[-1] if chain is not None else None
        if callee in _NAME_FIRST_KINDS and node.args:
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                self.registrations.append(
                    RegistrationRecord(
                        kind=_NAME_FIRST_KINDS[callee],
                        name=first.value,
                        line=node.lineno,
                        col=node.col_offset,
                    )
                )
        elif callee in _ENTRY_FIRST_KINDS and node.args:
            entry = node.args[0]
            if isinstance(entry, ast.Call):
                for keyword in entry.keywords:
                    if (
                        keyword.arg == "name"
                        and isinstance(keyword.value, ast.Constant)
                        and isinstance(keyword.value.value, str)
                    ):
                        self.registrations.append(
                            RegistrationRecord(
                                kind=_ENTRY_FIRST_KINDS[callee],
                                name=keyword.value.value,
                                line=node.lineno,
                                col=node.col_offset,
                            )
                        )
        elif callee == "add_argument":
            for arg in node.args:
                if (
                    isinstance(arg, ast.Constant)
                    and isinstance(arg.value, str)
                    and arg.value.startswith("--")
                ):
                    self.cli_flags.setdefault(arg.value, node.lineno)
        context = _fanout_context(node)
        if context is not None and node.args:
            target = _dotted(node.args[0])
            if target is not None:
                self.mapper_calls.append(
                    CallArgRef(
                        context=context,
                        target=target,
                        line=node.args[0].lineno,
                        col=node.args[0].col_offset,
                    )
                )
        if chain is not None and _JOB_CLASS.match(chain[-1]):
            values = list(node.args) + [kw.value for kw in node.keywords]
            for value in values:
                if isinstance(value, ast.Lambda):
                    self.job_refs.append(
                        JobCallableRef(
                            job_class=chain[-1],
                            via="constructor",
                            target="",
                            is_lambda=True,
                            line=value.lineno,
                            col=value.col_offset,
                        )
                    )
                else:
                    target = _dotted(value)
                    if target is not None:
                        self.job_refs.append(
                            JobCallableRef(
                                job_class=chain[-1],
                                via="constructor",
                                target=target,
                                is_lambda=False,
                                line=value.lineno,
                                col=value.col_offset,
                            )
                        )

    def _inspect_class(self, node: ast.ClassDef) -> None:
        rule_name = _registered_rule_name(node)
        if rule_name is not None:
            self.registrations.append(
                RegistrationRecord(
                    kind="rule", name=rule_name, line=node.lineno, col=node.col_offset
                )
            )
        if _JOB_CLASS.match(node.name) and _is_dataclass_decorated(node):
            for statement in node.body:
                if not isinstance(statement, ast.AnnAssign) or statement.value is None:
                    continue
                if isinstance(statement.value, ast.Lambda):
                    self.job_refs.append(
                        JobCallableRef(
                            job_class=node.name,
                            via="default",
                            target="",
                            is_lambda=True,
                            line=statement.value.lineno,
                            col=statement.value.col_offset,
                        )
                    )
                else:
                    target = _dotted(statement.value)
                    if target is not None:
                        self.job_refs.append(
                            JobCallableRef(
                                job_class=node.name,
                                via="default",
                                target=target,
                                is_lambda=False,
                                line=statement.value.lineno,
                                col=statement.value.col_offset,
                            )
                        )


def collect_facts(tree: ast.Module, display_path: str) -> ModuleFacts:
    """Extract the :class:`ModuleFacts` summary of one parsed module."""
    return _FactsCollector(display_path).collect(tree)


# --------------------------------------------------------------------------- #
# the project index
# --------------------------------------------------------------------------- #

#: Resolution statuses for :meth:`ProjectIndex.resolve_callable`.
RESOLUTION_OK = "ok"
RESOLUTION_UNKNOWN = "unknown"
RESOLUTION_VIOLATION = "violation"

#: Recursion bound for alias/import chains (cycles are guarded separately;
#: this caps pathological straight-line chains).
_MAX_RESOLVE_DEPTH = 16


@dataclass(frozen=True)
class CallableResolution:
    """Outcome of resolving a dotted callable reference across modules."""

    status: str
    detail: str = ""

    @property
    def is_violation(self) -> bool:
        """Whether the reference provably cannot pickle by reference."""
        return self.status == RESOLUTION_VIOLATION


_OK = CallableResolution(RESOLUTION_OK)
_UNKNOWN = CallableResolution(RESOLUTION_UNKNOWN)


class ProjectIndex:
    """Cross-module view over a set of :class:`ModuleFacts`.

    Holds the import graph (display-path edges between project modules),
    a dotted-module lookup, reverse-dependency closure for the incremental
    engine, and the cross-module callable resolver the
    ``transitive-picklability`` rule walks.
    """

    def __init__(
        self,
        facts: Iterable[ModuleFacts],
        *,
        readme_path: str | None = None,
        readme_text: str | None = None,
    ) -> None:
        self.modules: tuple[ModuleFacts, ...] = tuple(
            sorted(facts, key=lambda item: item.display_path)
        )
        self.by_path: dict[str, ModuleFacts] = {
            item.display_path: item for item in self.modules
        }
        self.by_module: dict[str, ModuleFacts] = {}
        for item in self.modules:
            if item.module:
                self.by_module.setdefault(item.module, item)
        self.readme_path = readme_path
        self.readme_text = readme_text
        self._edges: dict[str, tuple[str, ...]] = {}
        self._reverse: dict[str, set[str]] = {}
        for item in self.modules:
            targets: list[str] = []
            for record in item.imports:
                for candidate in self._import_candidates(record):
                    resolved = self.by_module.get(candidate)
                    if resolved is not None and resolved is not item:
                        targets.append(resolved.display_path)
            deduped = tuple(dict.fromkeys(targets))
            self._edges[item.display_path] = deduped
            for target in deduped:
                self._reverse.setdefault(target, set()).add(item.display_path)

    @staticmethod
    def _import_candidates(record: ImportRecord) -> tuple[str, ...]:
        if record.name is None:
            return (record.module,)
        return (f"{record.module}.{record.name}", record.module)

    # -- graph ------------------------------------------------------------ #
    def imported_paths(self, display_path: str) -> tuple[str, ...]:
        """Display paths of the project modules ``display_path`` imports."""
        return self._edges.get(display_path, ())

    def dependents_of(self, display_paths: Iterable[str]) -> set[str]:
        """Transitive reverse-import closure (the seeds themselves excluded)."""
        seeds = set(display_paths)
        dependents: set[str] = set()
        frontier = list(seeds)
        while frontier:
            current = frontier.pop()
            for importer in self._reverse.get(current, ()):
                if importer not in dependents and importer not in seeds:
                    dependents.add(importer)
                    frontier.append(importer)
        return dependents

    def find_module(self, *suffixes: str) -> ModuleFacts | None:
        """The first module (sorted by path) whose display path ends with a suffix."""
        for item in self.modules:
            if item.display_path.endswith(suffixes):
                return item
        return None

    # -- callable resolution ---------------------------------------------- #
    def resolve_callable(
        self,
        facts: ModuleFacts,
        dotted: str,
        _seen: frozenset[tuple[str, str]] = frozenset(),
    ) -> CallableResolution:
        """Classify a dotted callable reference seen inside ``facts``.

        ``ok`` — provably a module-level def/class (pickles by reference);
        ``violation`` — provably a lambda or a closure built by a factory;
        ``unknown`` — a local variable, an opaque value or an external
        import.  The rule that consumes this only acts on violations, so
        "unknown" is always the safe answer.
        """
        key = (facts.display_path, dotted)
        if key in _seen or len(_seen) >= _MAX_RESOLVE_DEPTH:
            return _UNKNOWN
        seen = _seen | {key}
        parts = dotted.split(".")
        root = parts[0]
        if root in ("self", "cls"):
            return _UNKNOWN
        symbols = facts.symbols or {}
        kind = symbols.get(root)
        if kind is None:
            return _UNKNOWN
        if kind == "def":
            return _OK if len(parts) == 1 else _UNKNOWN
        if kind == "class":
            return _OK
        if kind == "assign":
            return _UNKNOWN
        if kind == "lambda":
            line = (facts.symbol_lines or {}).get(root, 0)
            return CallableResolution(
                RESOLUTION_VIOLATION,
                f"resolves to the module-level lambda '{root}' "
                f"({facts.display_path}:{line}); lambdas have no importable "
                "name, so pickle-by-reference fails",
            )
        if kind.startswith("alias:"):
            target = kind[len("alias:"):]
            return self.resolve_callable(
                facts, ".".join([target] + parts[1:]), seen
            )
        if kind.startswith("call:"):
            return self._resolve_factory_result(facts, root, kind[len("call:"):], seen)
        if kind == "import":
            return self._resolve_imported(facts, parts, seen)
        return _UNKNOWN

    def _resolve_factory_result(
        self,
        facts: ModuleFacts,
        binding: str,
        maker: str,
        seen: frozenset[tuple[str, str]],
    ) -> CallableResolution:
        located = self._function_for(facts, maker, seen)
        if located is None:
            return _UNKNOWN
        owner, function = located
        if function.returns_nested:
            return CallableResolution(
                RESOLUTION_VIOLATION,
                f"is built by {maker}() ({owner.display_path}:{function.line}), "
                "which returns a nested function/lambda — a closure a process "
                "pool cannot pickle by reference",
            )
        for name in function.returned_names:
            result = self.resolve_callable(owner, name, seen)
            if result.is_violation:
                return CallableResolution(
                    RESOLUTION_VIOLATION,
                    f"is built by {maker}(), whose return value {result.detail}",
                )
        return _UNKNOWN

    def _function_for(
        self,
        facts: ModuleFacts,
        dotted: str,
        seen: frozenset[tuple[str, str]],
    ) -> tuple[ModuleFacts, FunctionFacts] | None:
        """Locate the :class:`FunctionFacts` a dotted name refers to, if any."""
        key = (facts.display_path, f"fn:{dotted}")
        if key in seen or len(seen) >= _MAX_RESOLVE_DEPTH:
            return None
        seen = seen | {key}
        functions = facts.functions or {}
        if dotted in functions:
            return facts, functions[dotted]
        parts = dotted.split(".")
        root = parts[0]
        kind = (facts.symbols or {}).get(root)
        if kind is None:
            return None
        if kind.startswith("alias:"):
            target = kind[len("alias:"):]
            return self._function_for(facts, ".".join([target] + parts[1:]), seen)
        if kind == "import":
            record = self._import_record(facts, root)
            if record is None:
                return None
            owner, remaining = self._follow_import(record, parts[1:])
            if owner is None or not remaining:
                return None
            return self._function_for(owner, ".".join(remaining), seen)
        return None

    def _import_record(self, facts: ModuleFacts, alias: str) -> ImportRecord | None:
        for record in facts.imports:
            if record.alias == alias:
                return record
        return None

    def _follow_import(
        self, record: ImportRecord, rest: list[str]
    ) -> tuple[ModuleFacts | None, list[str]]:
        """The project module an import lands in, plus the unresolved tail.

        ``(None, rest)`` means the import targets an external package.
        """
        if record.name is None:
            # ``import pkg.mod [as alias]`` — the dotted tail may traverse
            # further submodules; bind to the longest module prefix known.
            segments = record.module.split(".") + rest
            for cut in range(len(segments), 0, -1):
                candidate = ".".join(segments[:cut])
                module = self.by_module.get(candidate)
                if module is not None:
                    return module, segments[cut:]
            return None, rest
        submodule = self.by_module.get(f"{record.module}.{record.name}")
        if submodule is not None:
            return submodule, rest
        owner = self.by_module.get(record.module)
        if owner is not None:
            return owner, [record.name] + rest
        return None, rest

    def _resolve_imported(
        self,
        facts: ModuleFacts,
        parts: list[str],
        seen: frozenset[tuple[str, str]],
    ) -> CallableResolution:
        record = self._import_record(facts, parts[0])
        if record is None:
            return _UNKNOWN
        owner, remaining = self._follow_import(record, parts[1:])
        if owner is None:
            # External package: assume its attributes are importable
            # module-level objects — flagging them would be all noise.
            return _OK
        if not remaining:
            return _OK  # the module object itself
        return self.resolve_callable(owner, ".".join(remaining), seen)
