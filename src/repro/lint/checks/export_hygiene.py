"""``export-hygiene`` — ``__all__`` and re-exports describe real, used symbols.

``__all__`` lists and ``__init__`` re-exports are promises about the public
surface, and nothing at runtime checks them: a phantom ``__all__`` entry
only explodes under ``from pkg import *`` (which nobody runs until a user
does), a broken re-export only when the specific name is imported, and a
dead export never — it just accretes.  This project rule audits all three
against the :class:`~repro.lint.project.ProjectIndex`:

* a name in ``__all__`` that the module does not actually bind;
* a ``from <project module> import name`` naming a symbol the target module
  does not define (and that is not a submodule);
* an ``__all__`` export of a ``src`` module that no *other* linted module
  imports or references — checked only when the lint scope includes
  non-``src`` trees (tests/benchmarks/examples), since "imported nowhere"
  is only meaningful when the places that would import it are in scope.

Star-importing modules are skipped where the star makes the symbol table
unknowable.  Deliberately-external API kept for downstream users carries an
inline suppression naming that intent.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.lint.findings import Finding
from repro.lint.rules import ProjectRule, RuleMeta, register_rule

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.lint.project import ProjectIndex


@register_rule
class ExportHygieneRule(ProjectRule):
    """Flag phantom ``__all__`` entries, broken re-exports, dead exports."""

    meta = RuleMeta(
        name="export-hygiene",
        summary="__all__ entries exist, re-exports resolve, exports are used",
        rationale=(
            "Nothing at runtime validates __all__ or cross-module imports "
            "until the exact name is touched: a phantom export breaks "
            "star-imports, a stale re-export breaks the next caller, and "
            "a never-imported export is dead API the docs still promise. "
            "The project index knows every module's symbol table, so all "
            "three are decidable at lint time."
        ),
        example_bad='__all__ = ["solve", "Sesion"]  # typo: module defines Session',
        example_good='__all__ = ["solve", "Session"]',
    )

    def check_project(self, index: "ProjectIndex") -> Iterator[Finding]:
        # name -> display paths that reference it (as a load, an attribute
        # or an import target) anywhere in the linted tree.
        users: dict[str, set[str]] = {}
        for facts in index.modules:
            for name in facts.used_names:
                users.setdefault(name, set()).add(facts.display_path)
            for record in facts.imports:
                if record.name is not None:
                    users.setdefault(record.name, set()).add(facts.display_path)
        check_dead = any(not facts.in_src() for facts in index.modules)

        for facts in index.modules:
            symbols = facts.symbols or {}
            if facts.dunder_all is not None and not facts.star_import:
                for name in facts.dunder_all:
                    if name not in symbols:
                        yield Finding(
                            path=facts.display_path,
                            line=(facts.dunder_all_lines or {}).get(name, 1),
                            col=0,
                            rule=self.meta.name,
                            message=(
                                f"__all__ names {name!r} but the module does "
                                "not bind it; star-imports and doc tooling "
                                "will fail on this entry"
                            ),
                        )
            for record in facts.imports:
                if record.name is None:
                    continue
                owner = index.by_module.get(record.module)
                if owner is None or owner is facts or owner.star_import:
                    continue  # external target, or an unknowable symbol table
                if index.by_module.get(f"{record.module}.{record.name}") is not None:
                    continue  # importing a submodule, not a symbol
                if record.name not in (owner.symbols or {}):
                    yield Finding(
                        path=facts.display_path,
                        line=record.line,
                        col=0,
                        rule=self.meta.name,
                        message=(
                            f"'from {record.module} import {record.name}' "
                            f"names a symbol {owner.display_path} does not "
                            "define; the import fails the moment this "
                            "module loads"
                        ),
                    )
            if not (check_dead and facts.in_src() and facts.dunder_all):
                continue
            if facts.star_import:
                continue
            for name in facts.dunder_all:
                if name.startswith("_"):
                    continue
                if index.by_module.get(f"{facts.module}.{name}") is not None:
                    continue  # a submodule listing, not an API symbol
                using = users.get(name, set()) - {facts.display_path}
                if not using:
                    yield Finding(
                        path=facts.display_path,
                        line=(facts.dunder_all_lines or {}).get(name, 1),
                        col=0,
                        rule=self.meta.name,
                        message=(
                            f"{name!r} is exported in __all__ but no other "
                            "linted module imports or references it; drop "
                            "the export or suppress with the downstream "
                            "consumer it exists for"
                        ),
                    )
