"""``suppression-hygiene`` — suppressions name real rules and say why.

Inline suppressions are part of the contract surface: a suppressed finding
is a documented, deliberate exception.  That only works if the comment names
a rule that actually exists (a typo would silence nothing while looking like
it did) and carries a justification the next reader can audit.  Findings
from this rule are deliberately *unsuppressable* — otherwise
``disable=all`` would justify itself.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.lint.findings import Finding
from repro.lint.rules import Rule, RuleMeta, list_rules, register_rule

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.lint.engine import LintContext


@register_rule
class SuppressionHygieneRule(Rule):
    """Audit the suppression comments themselves."""

    meta = RuleMeta(
        name="suppression-hygiene",
        summary="suppressions must name registered rules and carry a justification",
        rationale=(
            "A suppressed finding is a documented exception to a contract. "
            "A comment naming a misspelled rule silences nothing while "
            "looking like it did, and one without a justification leaves "
            "the next reader unable to audit whether the exception still "
            "holds. These findings cannot themselves be suppressed."
        ),
        example_bad="x = rng()  # repro-lint: disable=no-raw-rng",
        example_good=(
            "x = rng()  # repro-lint: disable=no-raw-rng -- literal seed, "
            "fixture only"
        ),
    )

    def finish_module(self, ctx: "LintContext") -> Iterator[Finding]:
        known = set(list_rules()) | {"all", "syntax-error"}
        for suppression in sorted(ctx.suppressions.values(), key=lambda s: s.line):
            for name in sorted(suppression.rules - known):
                yield self.finding(
                    ctx,
                    suppression.line,
                    f"suppression names unknown rule '{name}'; see "
                    "'repro lint --list-rules'",
                )
            if not suppression.justification:
                yield self.finding(
                    ctx,
                    suppression.line,
                    "suppression has no justification; write "
                    "'# repro-lint: disable=<rule> -- <why this exception holds>'",
                )
