"""``no-silent-except`` — exceptions are handled, re-raised or recorded.

The executor runtime and the mmap ingestion layer both degrade gracefully on
purpose — but *explicitly*: the mapper's sandbox fallback records
``last_execution=("serial", 1)`` and the columnar loader raises typed
errors.  A bare ``except:`` (which also swallows ``KeyboardInterrupt``) or a
handler whose whole body is ``pass`` hides exactly the failures those layers
are designed to surface: a worker killed mid-map, a truncated column file,
an out-of-bounds row slice.  Handlers must re-raise, return a fallback,
log, or otherwise leave a trace.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.lint.findings import Finding
from repro.lint.rules import Rule, RuleMeta, register_rule

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.lint.engine import LintContext


def _is_noop(statement: ast.stmt) -> bool:
    if isinstance(statement, (ast.Pass, ast.Continue)):
        return True
    if isinstance(statement, ast.Expr) and isinstance(statement.value, ast.Constant):
        return True  # docstring or bare Ellipsis
    return False


@register_rule
class NoSilentExceptRule(Rule):
    """Flag bare excepts and handlers that swallow exceptions silently."""

    meta = RuleMeta(
        name="no-silent-except",
        summary="no bare except, no handler whose whole body is pass",
        rationale=(
            "Graceful degradation in this library is explicit: the mapper's "
            "sandbox fallback records what actually ran, the mmap loader "
            "raises typed errors. A bare except (which even catches "
            "KeyboardInterrupt) or an except-pass hides worker deaths and "
            "truncated column files behind silently wrong results."
        ),
        example_bad="try:\n    sketch = job.run()\nexcept Exception:\n    pass",
        example_good="except OSError:\n    return self._fallback(fn, jobs)",
    )

    def visit_ExceptHandler(
        self, node: ast.ExceptHandler, ctx: "LintContext"
    ) -> Iterator[Finding]:
        if node.type is None:
            yield self.finding(
                ctx,
                node,
                "bare 'except:' catches everything including "
                "KeyboardInterrupt/SystemExit; name the exception types",
            )
        if node.body and all(_is_noop(statement) for statement in node.body):
            caught = ast.unparse(node.type) if node.type is not None else "everything"
            yield self.finding(
                ctx,
                node,
                f"handler for {caught} swallows the exception with no trace; "
                "re-raise, return a fallback, or record what was skipped",
            )
