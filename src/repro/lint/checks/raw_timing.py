"""``raw-timing`` — library timing reads flow through :mod:`repro.obs.clock`.

The observability layer makes latency histograms, span durations and report
timings *testable*: installing a :class:`repro.obs.clock.FakeClock` turns
every duration in the library deterministic.  That only works if library
code reads clocks through :func:`repro.obs.clock.perf_counter` /
:func:`repro.obs.clock.wall_time` — a direct ``time.perf_counter()`` (or
``time.time()``, ``time.monotonic()``, ...) creates a timing source the
fake cannot intercept, and a "deterministic" test silently measures real
wall-clock again.

Scope: modules under ``src/repro/`` only.  Benchmarks and tests measure the
real world on purpose and may call :mod:`time` freely; the one legitimate
real read inside the library (the ``repro.obs.clock`` indirection itself)
carries justified suppressions.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.lint.findings import Finding
from repro.lint.project import module_name_for
from repro.lint.rules import Rule, RuleMeta, attribute_chain, register_rule

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.lint.engine import LintContext

#: ``time``-module readers that bypass the clock indirection.  ``sleep``,
#: ``strftime`` etc. stay legal — only *reads used as measurements* drift.
_BANNED_READERS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)


def _in_library(ctx: "LintContext") -> bool:
    """Whether the module under inspection is repro library code."""
    module, _ = module_name_for(ctx.display_path)
    return module == "repro" or module.startswith("repro.")


@register_rule
class RawTimingRule(Rule):
    """Flag direct :mod:`time` reads in library code."""

    meta = RuleMeta(
        name="raw-timing",
        summary="library timing reads must go through repro.obs.clock",
        rationale=(
            "Tests fake time by swapping the repro.obs.clock sources; a "
            "direct time.perf_counter()/time.time() read in src/repro "
            "escapes the fake, so span durations, latency histograms and "
            "report timings stop being deterministic under test. Benchmarks "
            "and tests measure real time on purpose and are exempt."
        ),
        example_bad="start = time.perf_counter()",
        example_good="start = clock.perf_counter()  # from repro.obs import clock",
    )

    def visit_Call(self, node: ast.Call, ctx: "LintContext") -> Iterator[Finding]:
        if not _in_library(ctx):
            return
        chain = attribute_chain(node.func)
        if (
            chain is not None
            and len(chain) == 2
            and chain[0] == "time"
            and chain[1] in _BANNED_READERS
        ):
            yield self.finding(
                ctx,
                node,
                f"time.{chain[1]}() reads the clock behind repro.obs.clock's "
                "back; use clock.perf_counter()/clock.wall_time() so tests "
                "can fake time",
            )

    def visit_ImportFrom(
        self, node: ast.ImportFrom, ctx: "LintContext"
    ) -> Iterator[Finding]:
        if not _in_library(ctx):
            return
        if node.module != "time":
            return
        imported = sorted(
            alias.name for alias in node.names if alias.name in _BANNED_READERS
        )
        if imported:
            yield self.finding(
                ctx,
                node,
                f"importing {', '.join(imported)} from the time module hides "
                "clock reads from repro.obs.clock; import the clock module "
                "instead",
            )
