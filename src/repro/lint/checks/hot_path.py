"""``hot-path-hygiene`` — keep per-event Python out of the batched hot paths.

``process_batch`` exists so one numpy pass replaces thousands of per-event
Python iterations; the ~7.8x streaming and ~4-7x distributed speedups live
or die on it.  The recurring regression is a whole batch column quietly
flowing back into the scalar world — ``batch.elements.tolist()`` followed by
a per-row loop — which keeps results identical while erasing the speedup, so
no correctness test ever catches it.  This rule flags whole-column
``.tolist()`` conversions and per-row ``for`` loops over batch columns
inside ``process_batch`` methods and the kernel-backend modules.  Converting
a *filtered* selection (``batch.set_ids[survivors].tolist()``) is fine: the
vectorised prefilter has already done the per-event work.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.lint.findings import Finding
from repro.lint.rules import Rule, RuleMeta, register_rule

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.lint.engine import LintContext

#: Functions whose bodies are batched hot paths wherever they live.
_HOT_FUNCTIONS = frozenset({"process_batch"})

#: Modules that are hot paths end to end (the coverage kernel backends).
_HOT_MODULES = ("coverage/kernels.py",)

#: EventBatch / columnar column attribute names.
_BATCH_COLUMNS = frozenset({"set_ids", "elements", "offsets", "members"})


def _in_hot_scope(ctx: "LintContext") -> bool:
    if ctx.in_module(*_HOT_MODULES):
        return True
    return any(
        getattr(fn, "name", None) in _HOT_FUNCTIONS for fn in ctx.enclosing_functions()
    )


def _bare_column(node: ast.AST) -> str | None:
    """``X.set_ids``-style whole-column reference (no subscript) or None."""
    if isinstance(node, ast.Attribute) and node.attr in _BATCH_COLUMNS:
        return node.attr
    return None


@register_rule
class HotPathHygieneRule(Rule):
    """Flag whole-column scalar fallbacks inside batched hot paths."""

    meta = RuleMeta(
        name="hot-path-hygiene",
        summary="no whole-column .tolist()/per-row loops in process_batch or kernels",
        rationale=(
            "The batched engine's speedups depend on process_batch staying "
            "vectorised; converting a whole EventBatch column to Python "
            "objects (or looping over it row by row) keeps results identical "
            "while silently erasing the speedup, so only a static check "
            "catches it. Filtered selections like "
            "batch.set_ids[survivors].tolist() are allowed — the vectorised "
            "prefilter already did the per-event work."
        ),
        example_bad="for e in batch.elements.tolist(): self._admit(e)",
        example_good="survivors = ranks < self._threshold\n"
        "for e in batch.elements[survivors].tolist(): self._admit(e)",
    )

    def visit_Call(self, node: ast.Call, ctx: "LintContext") -> Iterator[Finding]:
        if not _in_hot_scope(ctx):
            return
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "tolist"):
            return
        column = _bare_column(func.value)
        if column is not None:
            yield self.finding(
                ctx,
                node,
                f"whole-column .{column}.tolist() in a batched hot path "
                "drops back to per-event Python; vectorise the test or "
                "subscript the survivors first",
            )

    def visit_For(self, node: ast.For, ctx: "LintContext") -> Iterator[Finding]:
        if not _in_hot_scope(ctx):
            return
        column = _bare_column(node.iter)
        if column is not None:
            yield self.finding(
                ctx,
                node,
                f"per-row for-loop over batch column .{column} in a batched "
                "hot path; iterate a vectorised mask/selection instead",
            )
