"""The built-in repo-specific lint rules.

Importing this package registers every built-in rule in the rule registry
(the same import-for-side-effect convention the solver and dataset
registries use).  Each rule lives in its own module, named after the
contract it defends.
"""

from repro.lint.checks import (  # noqa: F401  (imported for registration)
    hot_path,
    picklable_jobs,
    raw_rng,
    registry_names,
    silent_except,
    spec_roundtrip,
    suppressions,
)

__all__ = [
    "hot_path",
    "picklable_jobs",
    "raw_rng",
    "registry_names",
    "silent_except",
    "spec_roundtrip",
    "suppressions",
]
