"""The built-in repo-specific lint rules.

Importing this package registers every built-in rule in the rule registry
(the same import-for-side-effect convention the solver and dataset
registries use).  Each rule lives in its own module, named after the
contract it defends.  Per-file rules see one AST at a time; the project
rules (knob drift, transitive picklability, registry/docs sync, export
hygiene) run after every file over the assembled
:class:`~repro.lint.project.ProjectIndex`.
"""

from repro.lint.checks import (  # noqa: F401  (imported for registration)
    export_hygiene,
    hot_path,
    knob_drift,
    picklable_jobs,
    raw_rng,
    raw_timing,
    registry_docs,
    registry_names,
    silent_except,
    spec_roundtrip,
    suppressions,
    transitive_pickle,
)

__all__ = [
    "export_hygiene",
    "hot_path",
    "knob_drift",
    "picklable_jobs",
    "raw_rng",
    "raw_timing",
    "registry_docs",
    "registry_names",
    "silent_except",
    "spec_roundtrip",
    "suppressions",
    "transitive_pickle",
]
