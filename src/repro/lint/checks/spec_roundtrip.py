"""``spec-roundtrip`` — frozen spec dataclasses serialize every field.

Run specs exist so experiments can be persisted, diffed and replayed; a
field that is missing from ``to_dict`` silently vanishes from archived runs,
and one missing from ``from_dict`` makes old reports unreadable.  Both have
happened in past PRs (``DistributedRunReport.as_dict`` once dropped the
per-machine loads).  This rule cross-references each frozen dataclass's
declared fields against the string keys its ``to_dict`` emits and the names
its ``from_dict`` accepts, so a new field cannot land without riding through
both directions of the round-trip.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.lint.findings import Finding
from repro.lint.rules import Rule, RuleMeta, attribute_chain, register_rule

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.lint.engine import LintContext


def _is_frozen_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        chain = attribute_chain(decorator.func)
        if chain is None or chain[-1] != "dataclass":
            continue
        for keyword in decorator.keywords:
            if (
                keyword.arg == "frozen"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                return True
    return False


def _field_names(node: ast.ClassDef) -> list[str]:
    """Declared dataclass fields (top-level annotated names, no ClassVar)."""
    names: list[str] = []
    for statement in node.body:
        if not isinstance(statement, ast.AnnAssign):
            continue
        if not isinstance(statement.target, ast.Name):
            continue
        annotation = ast.unparse(statement.annotation)
        if "ClassVar" in annotation or "InitVar" in annotation:
            continue
        if statement.target.id.startswith("_"):
            continue
        names.append(statement.target.id)
    return names


def _method(node: ast.ClassDef, name: str) -> ast.FunctionDef | None:
    for statement in node.body:
        if isinstance(statement, ast.FunctionDef) and statement.name == name:
            return statement
    return None


def _string_constants(node: ast.AST) -> set[str]:
    return {
        inner.value
        for inner in ast.walk(node)
        if isinstance(inner, ast.Constant) and isinstance(inner.value, str)
    }


def _accepts_kwargs_splat(node: ast.FunctionDef) -> bool:
    """Whether the body forwards a ``**mapping`` into a constructor call."""
    return any(
        isinstance(inner, ast.Call)
        and any(keyword.arg is None for keyword in inner.keywords)
        for inner in ast.walk(node)
    )


@register_rule
class SpecRoundtripRule(Rule):
    """Flag spec fields missing from the to_dict/from_dict round-trip."""

    meta = RuleMeta(
        name="spec-roundtrip",
        summary="frozen dataclass fields must appear in both to_dict and from_dict",
        rationale=(
            "Specs and reports are persisted, diffed and replayed; a field "
            "missing from to_dict vanishes from archived runs, one missing "
            "from from_dict makes old reports unreadable. Every frozen "
            "dataclass that offers the round-trip must carry all of its "
            "fields through both directions."
        ),
        example_bad=(
            "@dataclass(frozen=True)\n"
            "class Spec:\n"
            "    a: int\n"
            "    b: int\n"
            "    def to_dict(self):\n"
            "        return {'a': self.a}  # b is dropped"
        ),
        example_good=(
            "def to_dict(self):\n"
            "    return {'a': self.a, 'b': self.b}\n"
            "@classmethod\n"
            "def from_dict(cls, data):\n"
            "    return cls(**data)"
        ),
    )

    def visit_ClassDef(self, node: ast.ClassDef, ctx: "LintContext") -> Iterator[Finding]:
        if not _is_frozen_dataclass(node):
            return
        to_dict = _method(node, "to_dict")
        from_dict = _method(node, "from_dict")
        if to_dict is None and from_dict is None:
            return
        if to_dict is None or from_dict is None:
            present, missing = (
                ("to_dict", "from_dict") if from_dict is None else ("from_dict", "to_dict")
            )
            yield self.finding(
                ctx,
                node,
                f"{node.name} defines {present} but not {missing}; the "
                "serialization round-trip needs both directions",
            )
        fields = _field_names(node)
        if to_dict is not None:
            emitted = _string_constants(to_dict)
            for name in fields:
                if name not in emitted:
                    yield self.finding(
                        ctx,
                        to_dict,
                        f"{node.name}.to_dict drops field '{name}'; every "
                        "field must appear in the serialized form",
                    )
        if from_dict is not None and not _accepts_kwargs_splat(from_dict):
            accepted = _string_constants(from_dict) | {
                keyword.arg
                for inner in ast.walk(from_dict)
                if isinstance(inner, ast.Call)
                for keyword in inner.keywords
                if keyword.arg is not None
            }
            for name in fields:
                if name not in accepted:
                    yield self.finding(
                        ctx,
                        from_dict,
                        f"{node.name}.from_dict never reads field '{name}'; "
                        "round-tripping a serialized spec would lose it",
                    )
