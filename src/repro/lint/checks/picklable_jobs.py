"""``picklable-jobs`` — executor jobs must survive a process boundary.

The :mod:`repro.parallel` runtime promises byte-identical results across the
serial, thread and process backends.  That only holds if every callable
handed to a :class:`~repro.parallel.ParallelMapper` (or a pool's ``submit``)
is a *module-level* function the process backend can pickle by reference —
lambdas, closures and bound methods work on the serial/thread backends and
then explode (or silently force the sandbox fallback) the first time someone
flips ``--executor process``.  Likewise the job dataclasses shipped to map
workers must carry only plain data: an open file, an mmap view or a live
stream object in a job field pickles either not at all or as a deep copy of
the data it was supposed to avoid shipping.
"""

from __future__ import annotations

import ast
import re
from typing import TYPE_CHECKING, Iterator

from repro.lint.findings import Finding
from repro.lint.rules import Rule, RuleMeta, attribute_chain, register_rule

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.lint.engine import LintContext

#: Receiver names (last attribute-chain part) treated as executor objects
#: for ``.map(fn, jobs)`` calls.
_MAPPER_RECEIVERS = re.compile(r"(mapper|pool|executor)s?$", re.IGNORECASE)

#: Constructor/helper call names whose result is an executor object.
_MAPPER_FACTORIES = frozenset({"ParallelMapper", "as_mapper"})

#: Plain-name functions that fan a callable out over workers.
_MAP_FUNCTIONS = frozenset({"parallel_map"})

#: Type names that must never appear in a picklable job dataclass field:
#: open handles, mmap views and live stream/column objects either fail to
#: pickle or pickle as a copy of the data the job exists to avoid shipping.
_UNPICKLABLE_FIELD_TYPES = re.compile(
    r"\b(IO|TextIO|BinaryIO|BufferedReader|BufferedWriter|FileIO|mmap|"
    r"memoryview|socket|EdgeStream|SetStream|ColumnarEdges|ColumnarSets)\b"
)


def _is_executor_map(node: ast.Call) -> bool:
    """Whether ``node`` hands its first argument to an executor fan-out."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in _MAP_FUNCTIONS
    if not isinstance(func, ast.Attribute):
        return False
    if func.attr == "submit":
        return True
    if func.attr != "map":
        return False
    receiver = func.value
    chain = attribute_chain(receiver)
    if chain is not None:
        return bool(_MAPPER_RECEIVERS.search(chain[-1]))
    if isinstance(receiver, ast.Call):
        inner = attribute_chain(receiver.func)
        return inner is not None and inner[-1] in _MAPPER_FACTORIES
    return False


def _local_function_names(ctx: "LintContext") -> set[str]:
    """Names of functions defined *inside* the enclosing function stack."""
    names: set[str] = set()
    for outer in ctx.enclosing_functions():
        for inner in ast.walk(outer):
            if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)) and inner is not outer:
                names.add(inner.name)
    return names


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        chain = attribute_chain(
            decorator.func if isinstance(decorator, ast.Call) else decorator
        )
        if chain is not None and chain[-1] == "dataclass":
            return True
    return False


@register_rule
class PicklableJobsRule(Rule):
    """Flag executor callables and job fields a process pool cannot pickle."""

    meta = RuleMeta(
        name="picklable-jobs",
        summary="executor callables must be module-level; job fields plain data",
        rationale=(
            "ParallelMapper promises byte-identical results across serial, "
            "thread and process backends. Lambdas, closures and bound "
            "methods pickle by value or not at all, so they work under "
            "serial/thread and break the first process run; job dataclasses "
            "carrying open files, mmap views or live stream objects defeat "
            "the ship-nothing contract of the columnar map jobs."
        ),
        example_bad="mapper.map(lambda job: job.run(), jobs)",
        example_good="mapper.map(execute_map_job, jobs)  # top-level function",
    )

    def visit_Call(self, node: ast.Call, ctx: "LintContext") -> Iterator[Finding]:
        if not _is_executor_map(node) or not node.args:
            return
        callable_arg = node.args[0]
        if isinstance(callable_arg, ast.Lambda):
            yield self.finding(
                ctx,
                callable_arg,
                "lambda passed to an executor fan-out; process pools pickle "
                "callables by reference, so hand over a module-level function",
            )
            return
        if isinstance(callable_arg, ast.Name):
            if callable_arg.id in _local_function_names(ctx):
                yield self.finding(
                    ctx,
                    callable_arg,
                    f"'{callable_arg.id}' is defined inside the enclosing "
                    "function (a closure); move it to module level so every "
                    "executor backend can pickle it",
                )
            return
        chain = attribute_chain(callable_arg)
        if chain is not None and chain[0] in ("self", "cls") and len(chain) >= 2:
            yield self.finding(
                ctx,
                callable_arg,
                f"bound method '{'.'.join(chain)}' passed to an executor "
                "fan-out; bound methods drag their instance through pickle — "
                "use a module-level function taking the job as data",
            )

    def visit_ClassDef(self, node: ast.ClassDef, ctx: "LintContext") -> Iterator[Finding]:
        if "distributed/" not in ctx.display_path:
            return
        if not node.name.endswith("Job") or not _is_dataclass(node):
            return
        for statement in node.body:
            if not isinstance(statement, ast.AnnAssign):
                continue
            annotation = ast.unparse(statement.annotation)
            match = _UNPICKLABLE_FIELD_TYPES.search(annotation)
            if match:
                yield self.finding(
                    ctx,
                    statement,
                    f"job dataclass {node.name} field "
                    f"{ast.unparse(statement.target)}: {annotation} — "
                    f"{match.group(1)} does not pickle as plain data; carry a "
                    "path/bounds description and re-open in the worker",
                )
