"""``no-raw-rng`` — all randomness flows through :mod:`repro.utils.rng`.

The paper's sketch is a *deterministic* function of the hash seeds: the
byte-identity property tests (scalar vs batched, serial vs process pools,
merged shards vs one-shot sketch) only hold because every random draw in the
library derives from ``derive_seed`` / ``mix64`` / ``spawn_rng``.  An ad-hoc
``np.random.default_rng()`` (or the stdlib ``random`` module, or a
time-based seed) creates a stream the seed-derivation scheme cannot see, and
the determinism contract silently breaks.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.lint.findings import Finding
from repro.lint.rules import Rule, RuleMeta, attribute_chain, register_rule

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.lint.engine import LintContext

#: The one module allowed to touch numpy's RNG constructors directly.
_RNG_HOME = ("utils/rng.py",)

#: Direct-name constructors that bypass the seed-derivation scheme.
_BANNED_NAMES = frozenset({"default_rng", "RandomState"})

#: Calls whose result is wall-clock time — a non-deterministic seed.
_TIME_SOURCES = frozenset({"time", "time_ns", "monotonic", "perf_counter", "now"})


def _is_time_call(node: ast.AST) -> bool:
    for inner in ast.walk(node):
        if isinstance(inner, ast.Call):
            chain = attribute_chain(inner.func)
            if chain and chain[-1] in _TIME_SOURCES:
                return True
    return False


@register_rule
class NoRawRngRule(Rule):
    """Flag RNG streams created outside :mod:`repro.utils.rng`."""

    meta = RuleMeta(
        name="no-raw-rng",
        summary="randomness must flow through repro.utils.rng (derive_seed/spawn_rng)",
        rationale=(
            "The sketch is a deterministic function of the hash seeds; the "
            "byte-identity property tests across batch sizes, executors and "
            "shard merges rely on every random stream deriving from "
            "derive_seed/mix64. A raw np.random.default_rng(), the stdlib "
            "random module, or a time-based seed creates a stream the "
            "seed-derivation scheme cannot reproduce."
        ),
        example_bad="rng = np.random.default_rng()",
        example_good='rng = spawn_rng(master_seed, "my-subsystem")',
    )

    def visit_Call(self, node: ast.Call, ctx: "LintContext") -> Iterator[Finding]:
        if ctx.in_module(*_RNG_HOME):
            return
        chain = attribute_chain(node.func)
        if chain is not None:
            if len(chain) >= 3 and chain[0] in ("np", "numpy") and chain[1] == "random":
                yield self.finding(
                    ctx,
                    node,
                    f"{'.'.join(chain)}() creates a random stream outside "
                    "repro.utils.rng; derive it with spawn_rng(seed, label) / "
                    "derive_seed so the determinism contract holds",
                )
            elif len(chain) == 1 and chain[0] in _BANNED_NAMES:
                yield self.finding(
                    ctx,
                    node,
                    f"{chain[0]}() bypasses repro.utils.rng; use "
                    "spawn_rng(seed, label) instead",
                )
        for keyword in node.keywords:
            if keyword.arg == "seed" and _is_time_call(keyword.value):
                yield self.finding(
                    ctx,
                    keyword.value,
                    "seed is derived from wall-clock time; seeds must be "
                    "explicit integers (or derive_seed results) so runs replay",
                )

    def visit_Import(self, node: ast.Import, ctx: "LintContext") -> Iterator[Finding]:
        if ctx.in_module(*_RNG_HOME):
            return
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                yield self.finding(
                    ctx,
                    node,
                    "the stdlib random module is process-global and unseeded by "
                    "default; use repro.utils.rng (SplitMix64/spawn_rng) instead",
                )

    def visit_ImportFrom(
        self, node: ast.ImportFrom, ctx: "LintContext"
    ) -> Iterator[Finding]:
        if ctx.in_module(*_RNG_HOME):
            return
        if node.module == "random":
            yield self.finding(
                ctx,
                node,
                "importing from the stdlib random module bypasses "
                "repro.utils.rng; use SplitMix64/spawn_rng instead",
            )
        elif node.module in ("numpy.random", "numpy") and any(
            alias.name in _BANNED_NAMES | {"random"} for alias in node.names
        ):
            yield self.finding(
                ctx,
                node,
                "importing numpy RNG constructors bypasses repro.utils.rng; "
                "use spawn_rng(seed, label) instead",
            )
