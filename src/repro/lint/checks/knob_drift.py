"""``knob-drift`` — every spec knob threads through every user-facing layer.

A knob that exists in :class:`~repro.api.specs.ProblemSpec` but not in
``solve()``, or in ``solve()`` but not as a CLI flag, is the drift class
that costs the most review time: the feature works in whichever layer the
author tested and silently does not exist in the others (PR 8's ``reduce``
knob had to touch five layers by hand).  This project rule walks the
assembled :class:`~repro.lint.project.ProjectIndex` and checks both
directions:

* **forward** — each field of the spec dataclasses must be reachable in
  each layer that spec feeds: ``ProblemSpec`` through ``solve()`` kwargs,
  ``Session`` kwargs *and* a CLI ``--flag``; ``SolverSpec`` through
  ``solve()`` and ``Session``; ``StreamSpec``/``QuerySpec`` through the
  CLI.  A finding names exactly the missing layer.
* **reverse** — each keyword-only parameter of ``solve()`` must correspond
  to some spec field (under the alias table), so the facade cannot grow
  knobs the declarative spec layer cannot express.

Layer naming is not always literal — ``ProblemSpec.problem`` surfaces as
``problem_kind=`` (the facade reserves ``problem`` for the instance) and
``map_workers`` as ``max_workers=`` / ``--workers`` — so an alias table
maps each (spec, field) to the names each layer accepts.  Spec-only knobs
(``dataset_args`` has no CLI syntax) carry an inline suppression with the
justification, keeping every exception visible at the field it exempts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.lint.findings import Finding
from repro.lint.project import ModuleFacts
from repro.lint.rules import ProjectRule, RuleMeta, register_rule

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.lint.project import ProjectIndex

#: Which layers each spec class must reach.  Layers: ``solve`` (the
#: ``solve()`` facade signature), ``session`` (any ``Session`` method
#: signature), ``cli`` (an ``add_argument("--flag")`` site).
_SPEC_LAYERS: dict[str, tuple[str, ...]] = {
    "ProblemSpec": ("solve", "session", "cli"),
    "SolverSpec": ("solve", "session"),
    "StreamSpec": ("cli",),
    "QuerySpec": ("cli",),
}

#: (spec class, field) -> layer -> accepted names, where the layer name
#: differs from the field name.  Unlisted fields default to the field name
#: itself (``--field-name`` with dashes for the CLI layer).
_ALIASES: dict[tuple[str, str], dict[str, tuple[str, ...]]] = {
    # The facade reserves ``problem`` for the instance argument itself.
    ("ProblemSpec", "problem"): {
        "solve": ("problem_kind",),
        "session": ("problem_kind",),
    },
    ("QuerySpec", "problem"): {"cli": ("--problem",)},
    # ``map_workers`` caps the mapper pool; the imperative layers call the
    # same knob ``max_workers`` (matching concurrent.futures) and the CLI
    # shortens it to ``--workers``.
    ("ProblemSpec", "map_workers"): {
        "solve": ("max_workers",),
        "session": ("max_workers",),
        "cli": ("--workers",),
    },
    # Dataset bindings surface on the CLI as the generate-family flag.
    ("ProblemSpec", "dataset"): {"cli": ("--generator",)},
    # ``SolverSpec.name`` is the facade's ``solver`` argument.
    ("SolverSpec", "name"): {"solve": ("solver",), "session": ("solver",)},
}

_LAYER_DESCRIPTION = {
    "solve": "a solve() keyword",
    "session": "a Session keyword",
    "cli": "a CLI flag",
}


def _cli_alias(field: str) -> str:
    return "--" + field.replace("_", "-")


def _accepted(spec: str, field: str, layer: str) -> tuple[str, ...]:
    aliases = _ALIASES.get((spec, field), {})
    if layer in aliases:
        return aliases[layer]
    return (_cli_alias(field),) if layer == "cli" else (field,)


def _session_params(facade: ModuleFacts) -> set[str]:
    """Union of parameter names across every ``Session`` method."""
    names: set[str] = set()
    for qualname, function in (facade.functions or {}).items():
        if qualname.startswith("Session."):
            names.update(function.all_params())
    return names


@register_rule
class KnobDriftRule(ProjectRule):
    """Cross-check spec fields against solve()/Session/CLI, both ways."""

    meta = RuleMeta(
        name="knob-drift",
        summary="spec fields, solve()/Session kwargs and CLI flags stay in sync",
        rationale=(
            "Every knob must thread ProblemSpec -> solve() -> Session -> "
            "CLI; a layer forgotten during review means the feature "
            "silently does not exist there. This rule proves each spec "
            "field reachable in each required layer (naming the missing "
            "one) and each solve() keyword expressible as a spec field, so "
            "drift is a lint failure instead of a bug report."
        ),
        example_bad="class ProblemSpec: reduce: str  # solve() has no reduce=",
        example_good="def solve(..., *, reduce: str | None = None, ...)",
    )

    def check_project(self, index: "ProjectIndex") -> Iterator[Finding]:
        specs = index.find_module("api/specs.py")
        if specs is None:
            return  # tree without the spec layer: nothing to cross-check
        facade = index.find_module("api/facade.py")
        cli = index.find_module("cli.py")
        layers: dict[str, set[str]] = {}
        solve = (facade.functions or {}).get("solve") if facade else None
        if solve is not None:
            layers["solve"] = set(solve.all_params())
        if facade is not None:
            session = _session_params(facade)
            if session:
                layers["session"] = session
        if cli is not None and cli.cli_flags:
            layers["cli"] = set(cli.cli_flags)

        spec_classes = specs.dataclasses or {}
        for spec_name in sorted(_SPEC_LAYERS):
            spec = spec_classes.get(spec_name)
            if spec is None:
                continue
            for field in spec.fields:
                for layer in _SPEC_LAYERS[spec_name]:
                    available = layers.get(layer)
                    if available is None:
                        continue  # that layer is not in the linted tree
                    accepted = _accepted(spec_name, field, layer)
                    if not any(name in available for name in accepted):
                        yield Finding(
                            path=specs.display_path,
                            line=spec.field_lines.get(field, spec.line),
                            col=0,
                            rule=self.meta.name,
                            message=(
                                f"{spec_name}.{field} is not reachable as "
                                f"{_LAYER_DESCRIPTION[layer]} (expected "
                                f"{' or '.join(repr(n) for n in accepted)}); "
                                f"thread the knob through the {layer} layer "
                                "or suppress with the reason it is spec-only"
                            ),
                        )

        if solve is None or facade is None:
            return
        expressible: set[str] = set()
        for spec_name, spec in spec_classes.items():
            for field in spec.fields:
                expressible.add(field)
                expressible.update(_accepted(spec_name, field, "solve"))
        for param in solve.kwonly:
            if param not in expressible:
                yield Finding(
                    path=facade.display_path,
                    line=solve.param_lines.get(param, solve.line),
                    col=0,
                    rule=self.meta.name,
                    message=(
                        f"solve() keyword {param!r} corresponds to no spec "
                        "field; add the field (or an alias) so declarative "
                        "RunSpecs can express it, or suppress with the "
                        "reason it is imperative-only"
                    ),
                )
