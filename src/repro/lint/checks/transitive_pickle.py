"""``transitive-picklability`` — fan-out callables pickle through any alias.

The per-file ``picklable-jobs`` rule sees only the immediate argument of a
``mapper.map(fn, jobs)`` call: a lambda or local def handed over directly.
The failures that survive review are *indirect* — the callable reaches the
pool through a module-level alias, a factory that returns a closure, or a
``*Job`` dataclass field — and only blow up when someone first flips
``executor="process"``.  This project rule follows the cross-module
resolver of :class:`~repro.lint.project.ProjectIndex` from every fan-out
call site and every ``*Job`` constructor/field-default reference, and flags
references that *provably* resolve to something a process pool cannot
pickle by reference (a module-level lambda, or a factory whose return value
is a nested function).  References it cannot resolve — locals, attributes
of objects, external packages — stay silent: the rule reports violations it
can prove, never guesses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.lint.findings import Finding
from repro.lint.rules import ProjectRule, RuleMeta, register_rule

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.lint.project import ProjectIndex


@register_rule
class TransitivePicklabilityRule(ProjectRule):
    """Resolve fan-out callables across modules; flag provable closures."""

    meta = RuleMeta(
        name="transitive-picklability",
        summary="callables reaching executors resolve to module-level defs",
        rationale=(
            "A callable shipped to a process pool pickles by *reference* "
            "(module + qualname), so a lambda or factory-built closure "
            "fails only at runtime, only under executor='process'. The "
            "per-file rule catches direct lambdas; this rule follows "
            "aliases, imports and factory returns across modules so the "
            "indirect cases fail in lint instead."
        ),
        example_bad="handler = lambda j: run(j)  # other module: pool.map(handler, jobs)",
        example_good="def handler(job): ...  # module-level, pickles by reference",
    )

    def check_project(self, index: "ProjectIndex") -> Iterator[Finding]:
        for facts in index.modules:
            for ref in facts.mapper_calls:
                resolution = index.resolve_callable(facts, ref.target)
                if resolution.is_violation:
                    yield Finding(
                        path=facts.display_path,
                        line=ref.line,
                        col=ref.col,
                        rule=self.meta.name,
                        message=(
                            f"callable {ref.target!r} handed to {ref.context} "
                            f"{resolution.detail}"
                        ),
                    )
            for ref in facts.job_refs:
                if ref.is_lambda:
                    yield Finding(
                        path=facts.display_path,
                        line=ref.line,
                        col=ref.col,
                        rule=self.meta.name,
                        message=(
                            f"lambda flows into a {ref.job_class} "
                            f"{ref.via} field; job payloads ship to worker "
                            "processes, so every callable they carry must "
                            "be a module-level def"
                        ),
                    )
                    continue
                resolution = index.resolve_callable(facts, ref.target)
                if resolution.is_violation:
                    yield Finding(
                        path=facts.display_path,
                        line=ref.line,
                        col=ref.col,
                        rule=self.meta.name,
                        message=(
                            f"value {ref.target!r} flowing into a "
                            f"{ref.job_class} {ref.via} field "
                            f"{resolution.detail}"
                        ),
                    )
