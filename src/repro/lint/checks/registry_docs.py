"""``registry-docs-sync`` — registries and README tables agree, both ways.

The self-lint test has long cross-checked the *rule* table in the README
against ``--list-rules``; every other registry (solvers, datasets, kernel
backends, executors) relied on authors remembering to edit docs.  This
project rule generalizes the check: every registration site recorded in the
:class:`~repro.lint.project.ProjectIndex` (``register_solver(name, ...)``,
``register_kernel_backend(Entry(name=...))``, ``@register_rule`` classes,
...) must have a row in the matching README table, and every table row must
correspond to a registration — so docs cannot drift from the registries in
either direction.

A README table is recognized by its first header cell (``solver``,
``dataset``, ``executor``, ``kernel backend``, ``rule``); the first cell of
each row, stripped of backticks, is the registered name.  Pseudo-choices
that are deliberately *not* registry entries (the ``auto`` executor/kernel
selector) are allowlisted.  Only registrations in ``src`` modules count —
tests register throwaway names under fixtures all the time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.lint.findings import Finding
from repro.lint.rules import ProjectRule, RuleMeta, register_rule

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.lint.project import ProjectIndex

#: README table header (first cell, lowercased, backticks stripped) ->
#: registration kind recorded by the facts collector.
_TABLE_KINDS = {
    "rule": "rule",
    "solver": "solver",
    "dataset": "dataset",
    "generator": "dataset",
    "executor": "executor",
    "kernel": "kernel",
    "backend": "kernel",
    "kernel backend": "kernel",
}

_KIND_LABELS = {
    "rule": "rule",
    "solver": "solver",
    "dataset": "dataset",
    "executor": "executor",
    "kernel": "kernel backend",
}

#: Documented choices that are deliberately not registry entries: ``auto``
#: is a selector resolved to a real backend at run time, not a backend.
_PSEUDO_ENTRIES = {
    "executor": frozenset({"auto"}),
    "kernel": frozenset({"auto"}),
}


def _cells(line: str) -> list[str]:
    return [cell.strip() for cell in line.strip().strip("|").split("|")]


def _readme_tables(text: str) -> dict[str, dict[str, int]]:
    """Per registration kind, the documented names with their line numbers."""
    tables: dict[str, dict[str, int]] = {}
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        if not lines[i].lstrip().startswith("|"):
            i += 1
            continue
        start = i
        while i < len(lines) and lines[i].lstrip().startswith("|"):
            i += 1
        block = lines[start:i]
        if len(block) < 3:
            continue  # header + separator + at least one row
        header = _cells(block[0])
        kind = _TABLE_KINDS.get(header[0].strip("`*").strip().lower()) if header else None
        if kind is None:
            continue
        rows = tables.setdefault(kind, {})
        for line_number, row in enumerate(block[2:], start=start + 3):
            cells = _cells(row)
            if not cells:
                continue
            name = cells[0].strip().strip("`").strip()
            if name and not set(name) <= {"-", ":", " "}:
                rows.setdefault(name, line_number)
    return tables


@register_rule
class RegistryDocsSyncRule(ProjectRule):
    """Flag registered names absent from README tables, and vice versa."""

    meta = RuleMeta(
        name="registry-docs-sync",
        summary="registered names and README tables agree in both directions",
        rationale=(
            "Registries are the user-facing surface: CLI choices, "
            "list-* commands and the README tables all claim to describe "
            "the same set of names. A solver registered but undocumented "
            "is invisible to readers; a documented name that was renamed "
            "or removed sends users to a SpecError. Cross-checking both "
            "directions makes the docs a checked artifact."
        ),
        example_bad='register_solver("kcover/fancy", ...)  # README table lacks a row',
        example_good="| `kcover/fancy` | ... |  # row matches the registration",
    )

    def check_project(self, index: "ProjectIndex") -> Iterator[Finding]:
        registered: dict[str, dict[str, tuple[str, int, int]]] = {}
        for facts in index.modules:
            if not facts.in_src():
                continue  # test/bench fixtures register throwaway names
            for record in facts.registrations:
                registered.setdefault(record.kind, {}).setdefault(
                    record.name, (facts.display_path, record.line, record.col)
                )
        if not registered:
            return  # nothing in scope registers anything: no contract to check
        tables = (
            _readme_tables(index.readme_text) if index.readme_text is not None else {}
        )
        for kind in sorted(registered):
            label = _KIND_LABELS.get(kind, kind)
            documented = tables.get(kind)
            if documented is None:
                name, (path, line, col) = min(registered[kind].items())
                missing = "no README.md was found" if index.readme_text is None else (
                    f"the README has no {label} table"
                )
                yield Finding(
                    path=path,
                    line=line,
                    col=col,
                    rule=self.meta.name,
                    message=(
                        f"{len(registered[kind])} registered {label} name(s) "
                        f"(e.g. {name!r}) are undocumented: {missing}"
                    ),
                )
                continue
            for name, (path, line, col) in sorted(registered[kind].items()):
                if name not in documented:
                    yield Finding(
                        path=path,
                        line=line,
                        col=col,
                        rule=self.meta.name,
                        message=(
                            f"{label} {name!r} is registered here but has no "
                            f"row in the README {label} table"
                        ),
                    )
            pseudo = _PSEUDO_ENTRIES.get(kind, frozenset())
            for name, line in sorted(documented.items()):
                if name not in registered[kind] and name not in pseudo:
                    yield Finding(
                        path=index.readme_path or "README.md",
                        line=line,
                        col=0,
                        rule=self.meta.name,
                        message=(
                            f"README documents {label} {name!r} but no "
                            "registration in the linted tree defines it"
                        ),
                    )
