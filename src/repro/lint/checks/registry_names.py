"""``registry-literal-names`` — registry keys are greppable string literals.

Every registry in the library (solvers, datasets, kernel backends, executor
backends, lint rules) is wired into user-facing choice lists: CLI
``choices=``, spec validation, ``list-*`` commands and the docs.  A name
computed at registration time (``register_solver(PREFIX + name)``) cannot be
grepped, silently diverges from the choices plumbing, and makes
``did-you-mean`` hints useless.  This rule requires the name handed to a
``register_*`` call — directly, or as the ``name=`` of an inline entry
constructor — to be a non-empty string literal without whitespace.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.lint.findings import Finding
from repro.lint.rules import Rule, RuleMeta, attribute_chain, register_rule

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.lint.engine import LintContext

#: register_*(name, ...) style — first positional argument is the key.
#: (register_rule is absent on purpose: it takes a class, the key lives in
#: the class's RuleMeta which validates itself at definition time.)
_NAME_FIRST = frozenset({"register_solver", "register_dataset"})

#: register_*(Entry(name=..., ...)) style — the entry object carries the key.
_ENTRY_FIRST = frozenset({"register_kernel_backend", "register_executor"})


def _literal_name_problem(node: ast.expr) -> str | None:
    """Why ``node`` is not an acceptable registry-name literal (or None)."""
    if not isinstance(node, ast.Constant) or not isinstance(node.value, str):
        return "must be a string literal (a computed name cannot be grepped " \
               "or cross-checked against the choices plumbing)"
    if not node.value:
        return "must not be empty"
    if any(ch.isspace() for ch in node.value):
        return "must not contain whitespace (it feeds CLI choices lists)"
    return None


@register_rule
class RegistryLiteralNamesRule(Rule):
    """Flag computed or malformed names at registry registration sites."""

    meta = RuleMeta(
        name="registry-literal-names",
        summary="names passed to register_* must be clean string literals",
        rationale=(
            "Registry keys feed CLI choices, spec validation and "
            "did-you-mean hints; a name computed at registration time "
            "cannot be grepped and silently diverges from that plumbing. "
            "Passing an already-built entry variable is fine — the rule "
            "only audits literal registration sites it can see."
        ),
        example_bad='register_solver(PREFIX + "/greedy", ...)',
        example_good='register_solver("offline/greedy", ...)',
    )

    def visit_Call(self, node: ast.Call, ctx: "LintContext") -> Iterator[Finding]:
        chain = attribute_chain(node.func)
        if chain is None:
            return
        callee = chain[-1]
        if callee in _NAME_FIRST:
            if not node.args:
                return
            problem = _literal_name_problem(node.args[0])
            if problem is not None:
                yield self.finding(
                    ctx, node.args[0], f"name passed to {callee} {problem}"
                )
        elif callee in _ENTRY_FIRST:
            if not node.args or not isinstance(node.args[0], ast.Call):
                return  # a pre-built entry variable: nothing to audit here
            entry = node.args[0]
            name_kw = next(
                (kw for kw in entry.keywords if kw.arg == "name"), None
            )
            if name_kw is None:
                if entry.args:
                    return  # positional construction: can't tell which is the name
                yield self.finding(
                    ctx,
                    entry,
                    f"entry constructed inline for {callee} has no name= "
                    "keyword; give the registry key as a literal",
                )
                return
            problem = _literal_name_problem(name_kw.value)
            if problem is not None:
                yield self.finding(
                    ctx, name_kw.value, f"name passed to {callee} {problem}"
                )
