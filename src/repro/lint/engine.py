"""The lint engine: file walker, shared AST walk and suppression handling.

One :func:`lint_paths` call turns a set of files/directories into a
:class:`~repro.lint.findings.LintReport`:

* every ``*.py`` file under the given paths is parsed once;
* one AST walk per module dispatches each node to every interested rule
  (rules declare ``visit_<NodeType>`` methods — see
  :class:`~repro.lint.rules.Rule`), with the enclosing function/class stack
  maintained in the shared :class:`LintContext`;
* inline suppression comments silence findings line by line::

      rng = np.random.default_rng(7)  # repro-lint: disable=no-raw-rng -- literal seed, test fixture

  A suppression comment that is *alone* on its line covers the next line
  too, for statements too long to share a line with a comment.  The text
  after ``--`` is the mandatory justification; the ``suppression-hygiene``
  rule flags comments without one (and suppression can't silence that rule,
  otherwise ``disable=all`` would justify itself).

Results are deterministic: files are visited in sorted order and findings
sort by (path, line, col, rule), so two runs over the same tree produce
byte-identical reports.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import SpecError
from repro.lint.findings import Finding, LintReport
from repro.lint.rules import Rule, get_rule, list_rules, walk_findings

__all__ = [
    "Suppression",
    "LintContext",
    "parse_suppressions",
    "lint_source",
    "lint_paths",
    "collect_files",
]

#: Rules whose findings an inline suppression can never silence — the
#: suppression machinery itself is audited by these.
UNSUPPRESSABLE_RULES = frozenset({"suppression-hygiene"})

#: ``# repro-lint: disable=<rule>[,<rule>...] [-- justification]``
_SUPPRESSION_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)"
    r"(?:\s+--\s*(?P<why>.*\S))?\s*$"
)


@dataclass(frozen=True)
class Suppression:
    """One inline ``# repro-lint: disable=...`` comment."""

    line: int
    rules: frozenset[str]
    justification: str | None
    standalone: bool

    def covers(self, rule: str) -> bool:
        """Whether this comment silences findings of ``rule``."""
        return rule not in UNSUPPRESSABLE_RULES and (
            "all" in self.rules or rule in self.rules
        )


def parse_suppressions(lines: Sequence[str]) -> dict[int, Suppression]:
    """Scan source lines for suppression comments, keyed by 1-based line."""
    suppressions: dict[int, Suppression] = {}
    for number, text in enumerate(lines, start=1):
        match = _SUPPRESSION_RE.search(text)
        if match is None:
            continue
        names = frozenset(part.strip() for part in match.group(1).split(","))
        standalone = text[: match.start()].strip() == ""
        suppressions[number] = Suppression(
            line=number,
            rules=names,
            justification=match.group("why"),
            standalone=standalone,
        )
    return suppressions


@dataclass
class LintContext:
    """Everything a rule may need while visiting one module."""

    path: Path
    display_path: str
    source: str
    lines: list[str]
    tree: ast.Module
    suppressions: dict[int, Suppression]
    #: Enclosing FunctionDef/AsyncFunctionDef/ClassDef nodes, outermost first;
    #: maintained by the walker, readable from any visit method.
    scope: list[ast.AST] = field(default_factory=list)

    def enclosing_functions(self) -> list[ast.AST]:
        """The stack of enclosing function nodes, outermost first."""
        return [
            node
            for node in self.scope
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]

    def enclosing_function(self) -> ast.AST | None:
        """The innermost enclosing function node, if any."""
        functions = self.enclosing_functions()
        return functions[-1] if functions else None

    def enclosing_class(self) -> ast.ClassDef | None:
        """The innermost enclosing class node, if any."""
        for node in reversed(self.scope):
            if isinstance(node, ast.ClassDef):
                return node
        return None

    def in_module(self, *suffixes: str) -> bool:
        """Whether this module's display path ends with any given suffix."""
        return self.display_path.endswith(suffixes)

    def suppressed(self, finding: Finding) -> bool:
        """Whether an inline comment silences ``finding``."""
        candidates = [self.suppressions.get(finding.line)]
        above = self.suppressions.get(finding.line - 1)
        if above is not None and above.standalone:
            candidates.append(above)
        return any(s is not None and s.covers(finding.rule) for s in candidates)


_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def _walk(
    node: ast.AST,
    ctx: LintContext,
    dispatch: dict[str, list],
    findings: list[Finding],
) -> None:
    handlers = dispatch.get(type(node).__name__)
    if handlers:
        for method in handlers:
            findings.extend(walk_findings(method(node, ctx)))
    is_scope = isinstance(node, _SCOPE_NODES)
    if is_scope:
        ctx.scope.append(node)
    try:
        for child in ast.iter_child_nodes(node):
            _walk(child, ctx, dispatch, findings)
    finally:
        if is_scope:
            ctx.scope.pop()


def _resolve_rules(rule_names: Iterable[str] | None) -> list[Rule]:
    """Fresh rule instances for one run (``None`` selects every rule)."""
    names = list(rule_names) if rule_names is not None else list_rules()
    if not names:
        raise SpecError("no lint rules selected")
    return [get_rule(name)() for name in names]


def lint_source(
    source: str,
    display_path: str = "<string>",
    *,
    rules: Iterable[str] | None = None,
    path: Path | None = None,
) -> tuple[list[Finding], int]:
    """Lint one module's source text.

    Returns ``(findings, suppressed_count)`` — findings that survived the
    inline suppressions, in (line, col, rule) order.  A module that does not
    parse produces a single ``syntax-error`` finding instead of raising, so
    one broken file cannot abort a tree-wide run.
    """
    active = _resolve_rules(rules)
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return (
            [
                Finding(
                    path=display_path,
                    line=error.lineno or 1,
                    col=(error.offset or 1) - 1,
                    rule="syntax-error",
                    message=f"file does not parse: {error.msg}",
                )
            ],
            0,
        )
    lines = source.splitlines()
    ctx = LintContext(
        path=path if path is not None else Path(display_path),
        display_path=display_path,
        source=source,
        lines=lines,
        tree=tree,
        suppressions=parse_suppressions(lines),
    )
    dispatch: dict[str, list] = {}
    for rule in active:
        rule.begin_module(ctx)
        for node_type, method in rule.visitor_methods().items():
            dispatch.setdefault(node_type, []).append(method)
    raw: list[Finding] = []
    _walk(tree, ctx, dispatch, raw)
    for rule in active:
        raw.extend(walk_findings(rule.finish_module(ctx)))
    kept: list[Finding] = []
    suppressed = 0
    for finding in raw:
        if ctx.suppressed(finding):
            suppressed += 1
        else:
            kept.append(finding)
    kept.sort()
    return kept, suppressed


def collect_files(paths: Iterable[Path | str]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated ``*.py`` list."""
    seen: set[Path] = set()
    ordered: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.is_file():
            if path.suffix != ".py":
                raise SpecError(f"{path} is not a Python file")
            candidates = [path]
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                ordered.append(candidate)
    return ordered


def _display_path(path: Path) -> str:
    """Repo-relative posix path when possible, for stable report output."""
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_paths(
    paths: Iterable[Path | str], *, rules: Iterable[str] | None = None
) -> LintReport:
    """Lint every ``*.py`` file under ``paths`` into one report."""
    rule_names = list(rules) if rules is not None else list_rules()
    _resolve_rules(rule_names)  # validate names up front (did-you-mean hints)
    findings: list[Finding] = []
    suppressed = 0
    files = collect_files(paths)
    for file in files:
        file_findings, file_suppressed = lint_source(
            file.read_text(encoding="utf-8"),
            _display_path(file),
            rules=rule_names,
            path=file,
        )
        findings.extend(file_findings)
        suppressed += file_suppressed
    findings.sort()
    return LintReport(
        findings=tuple(findings),
        files_scanned=len(files),
        suppressed=suppressed,
        rules=tuple(rule_names),
    )
