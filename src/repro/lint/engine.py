"""The lint engine: file walker, shared AST walk, cache and fan-out.

One :func:`lint_paths` call turns a set of files/directories into a
:class:`~repro.lint.findings.LintReport`:

* every ``*.py`` file under the given paths is parsed once;
* one AST walk per module dispatches each node to every interested
  *file-scope* rule (rules declare ``visit_<NodeType>`` methods — see
  :class:`~repro.lint.rules.Rule`), with the enclosing function/class stack
  maintained in the shared :class:`LintContext`;
* the same parse extracts the module's
  :class:`~repro.lint.project.ModuleFacts`; after the per-file phase the
  facts of *every* file are assembled into a
  :class:`~repro.lint.project.ProjectIndex` and the *project-scope* rules
  (:class:`~repro.lint.rules.ProjectRule`) run over it — that is where the
  cross-module contracts (knob drift, transitive picklability, registry/docs
  sync, export hygiene) are checked;
* inline suppression comments silence findings line by line::

      rng = np.random.default_rng(7)  # repro-lint: disable=no-raw-rng -- literal seed, test fixture

  A suppression comment that is *alone* on its line covers the next line
  too, for statements too long to share a line with a comment.  The text
  after ``--`` is the mandatory justification; the ``suppression-hygiene``
  rule flags comments without one (and suppression can't silence that rule,
  otherwise ``disable=all`` would justify itself).  Project findings are
  suppressed by the very same comments — a finding is a ``path:line``
  wherever it was computed.

The engine scales like the rest of the repo.  The per-file phase fans out
over :class:`~repro.parallel.ParallelMapper` (each :class:`FileLintJob` is
picklable; the ordered gather makes every backend byte-identical to the
serial loop).  With a cache directory (:mod:`repro.lint.cache`), a file
whose content hash is unchanged under the same rule set is served from
cache; a changed file is re-analyzed *along with its import-graph
dependents*, and the project rules always re-run over the merged index —
so a warm report is byte-identical to a cold one.  ``changed_base`` narrows
the per-file phase further to ``git diff --name-only <base>`` plus
dependents (the CI pre-gate), while project rules still see facts for the
whole tree.

Results are deterministic: files are visited in sorted order and findings
sort by (path, line, col, rule), so two runs over the same tree produce
byte-identical reports.
"""

from __future__ import annotations

import ast
import hashlib
import os
import re
import subprocess
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import SpecError
from repro.obs import clock
from repro.lint.cache import LintCache, load_cache
from repro.lint.findings import Finding, LintReport
from repro.lint.project import ModuleFacts, ProjectIndex, collect_facts, module_name_for
from repro.lint.rules import Rule, get_rule, list_rules, walk_findings
from repro.parallel import ParallelMapper

__all__ = [
    "Suppression",
    "LintContext",
    "LintStats",
    "FileLintJob",
    "FileAnalysis",
    "parse_suppressions",
    "lint_source",
    "lint_paths",
    "lint_paths_with_stats",
    "collect_files",
    "execute_lint_job",
]

#: Rules whose findings an inline suppression can never silence — the
#: suppression machinery itself is audited by these.
UNSUPPRESSABLE_RULES = frozenset({"suppression-hygiene"})

#: ``# repro-lint: disable=<rule>[,<rule>...] [-- justification]``
_SUPPRESSION_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)"
    r"(?:\s+--\s*(?P<why>.*\S))?\s*$"
)


@dataclass(frozen=True)
class Suppression:
    """One inline ``# repro-lint: disable=...`` comment."""

    line: int
    rules: frozenset[str]
    justification: str | None
    standalone: bool

    def covers(self, rule: str) -> bool:
        """Whether this comment silences findings of ``rule``."""
        return rule not in UNSUPPRESSABLE_RULES and (
            "all" in self.rules or rule in self.rules
        )

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-serializable, for the incremental cache)."""
        return {
            "line": self.line,
            "rules": sorted(self.rules),
            "justification": self.justification,
            "standalone": self.standalone,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Suppression":
        """Inverse of :meth:`to_dict`."""
        return cls(
            line=data["line"],
            rules=frozenset(data["rules"]),
            justification=data["justification"],
            standalone=data["standalone"],
        )


def parse_suppressions(lines: Sequence[str]) -> dict[int, Suppression]:
    """Scan source lines for suppression comments, keyed by 1-based line."""
    suppressions: dict[int, Suppression] = {}
    for number, text in enumerate(lines, start=1):
        match = _SUPPRESSION_RE.search(text)
        if match is None:
            continue
        names = frozenset(part.strip() for part in match.group(1).split(","))
        standalone = text[: match.start()].strip() == ""
        suppressions[number] = Suppression(
            line=number,
            rules=names,
            justification=match.group("why"),
            standalone=standalone,
        )
    return suppressions


@dataclass
class LintContext:
    """Everything a rule may need while visiting one module."""

    path: Path
    display_path: str
    source: str
    lines: list[str]
    tree: ast.Module
    suppressions: dict[int, Suppression]
    #: Enclosing FunctionDef/AsyncFunctionDef/ClassDef nodes, outermost first;
    #: maintained by the walker, readable from any visit method.
    scope: list[ast.AST] = field(default_factory=list)

    def enclosing_functions(self) -> list[ast.AST]:
        """The stack of enclosing function nodes, outermost first."""
        return [
            node
            for node in self.scope
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]

    def enclosing_function(self) -> ast.AST | None:
        """The innermost enclosing function node, if any."""
        functions = self.enclosing_functions()
        return functions[-1] if functions else None

    def enclosing_class(self) -> ast.ClassDef | None:
        """The innermost enclosing class node, if any."""
        for node in reversed(self.scope):
            if isinstance(node, ast.ClassDef):
                return node
        return None

    def in_module(self, *suffixes: str) -> bool:
        """Whether this module's display path ends with any given suffix."""
        return self.display_path.endswith(suffixes)

    def suppressed(self, finding: Finding) -> bool:
        """Whether an inline comment silences ``finding``."""
        return suppression_covers(self.suppressions, finding)


def suppression_covers(
    suppressions: Mapping[int, Suppression], finding: Finding
) -> bool:
    """Whether one module's suppression comments silence ``finding``.

    Shared by the per-file walk and the project phase, so cross-module
    findings obey exactly the same inline-comment semantics.
    """
    candidates = [suppressions.get(finding.line)]
    above = suppressions.get(finding.line - 1)
    if above is not None and above.standalone:
        candidates.append(above)
    return any(s is not None and s.covers(finding.rule) for s in candidates)


_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def _walk(
    node: ast.AST,
    ctx: LintContext,
    dispatch: dict[str, list],
    findings: list[Finding],
) -> None:
    handlers = dispatch.get(type(node).__name__)
    if handlers:
        for method in handlers:
            findings.extend(walk_findings(method(node, ctx)))
    is_scope = isinstance(node, _SCOPE_NODES)
    if is_scope:
        ctx.scope.append(node)
    try:
        for child in ast.iter_child_nodes(node):
            _walk(child, ctx, dispatch, findings)
    finally:
        if is_scope:
            ctx.scope.pop()


def _normalize_rule_names(rule_names: Iterable[str] | None) -> list[str]:
    """Expand ``None`` / the ``"all"`` selector into the full rule list."""
    if rule_names is None:
        return list_rules()
    names = list(rule_names)
    if "all" in names:
        return list_rules()
    return names


def _resolve_rules(rule_names: Iterable[str] | None) -> list[Rule]:
    """Fresh rule instances for one run (``None``/``"all"`` selects every rule)."""
    names = _normalize_rule_names(rule_names)
    if not names:
        raise SpecError("no lint rules selected")
    return [get_rule(name)() for name in names]


# --------------------------------------------------------------------------- #
# per-file analysis (also the parallel job body)
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class FileAnalysis:
    """Everything one file contributes to a lint run.

    ``rules`` names the (sorted) file-scope rules the findings were computed
    under — ``None`` marks a facts-only pass (no rule walk ran), which the
    ``--changed`` fast path uses to give project rules whole-tree facts
    without linting every file.  This object is what the parallel workers
    return and what the incremental cache persists.
    """

    display_path: str
    digest: str
    facts: ModuleFacts
    suppressions: tuple[Suppression, ...] = ()
    rules: tuple[str, ...] | None = None
    findings: tuple[Finding, ...] = ()
    suppressed: int = 0

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-serializable, the cache entry shape)."""
        return {
            "display_path": self.display_path,
            "digest": self.digest,
            "facts": self.facts.to_dict(),
            "suppressions": [item.to_dict() for item in self.suppressions],
            "rules": list(self.rules) if self.rules is not None else None,
            "findings": [item.to_dict() for item in self.findings],
            "suppressed": self.suppressed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FileAnalysis":
        """Inverse of :meth:`to_dict`; malformed input raises :class:`SpecError`."""
        payload = dict(_require_mapping(data))
        known = {
            "display_path", "digest", "facts", "suppressions", "rules",
            "findings", "suppressed",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise SpecError(f"FileAnalysis.from_dict got unknown field(s) {unknown}")
        try:
            facts = ModuleFacts.from_dict(payload["facts"])
            suppressions = tuple(
                Suppression.from_dict(item) for item in payload.get("suppressions", ())
            )
            findings = tuple(
                Finding.from_dict(item) for item in payload.get("findings", ())
            )
            raw_rules = payload.get("rules")
            rules = tuple(raw_rules) if raw_rules is not None else None
            return cls(
                display_path=payload["display_path"],
                digest=payload["digest"],
                facts=facts,
                suppressions=suppressions,
                rules=rules,
                findings=findings,
                suppressed=payload.get("suppressed", 0),
            )
        except (KeyError, TypeError) as error:
            raise SpecError(f"malformed FileAnalysis payload: {error!r}") from None


def _require_mapping(data: Any) -> Mapping[str, Any]:
    if not isinstance(data, Mapping):
        raise SpecError(
            f"FileAnalysis.from_dict expects a mapping, got {type(data).__name__}"
        )
    return data


@dataclass(frozen=True)
class FileLintJob:
    """One picklable unit of per-file work for the parallel fan-out.

    Carries the *source text* (not a live handle) so the worker analyzes
    exactly the bytes the parent hashed — no read-twice races — and plain
    rule names the worker re-resolves against its own registry after import.
    ``rule_names=None`` requests a facts-only pass.
    """

    path: str
    display_path: str
    source: str
    digest: str
    rule_names: tuple[str, ...] | None


def _empty_facts(display_path: str) -> ModuleFacts:
    name, is_package = module_name_for(display_path)
    return ModuleFacts(display_path=display_path, module=name, is_package=is_package)


#: CPython 3.11's AST constructor tracks recursion depth in shared state, so
#: concurrent ``ast.parse`` calls from threads at different stack depths can
#: raise ``SystemError: AST constructor recursion depth mismatch``.  The GIL
#: already serializes the parse work, so taking a lock around it costs
#: nothing under the thread backend (process workers each own a lock).
_PARSE_LOCK = threading.Lock()


def _analyze_module(
    source: str,
    display_path: str,
    path: Path,
    rule_names: tuple[str, ...] | None,
) -> FileAnalysis:
    """Parse once; collect facts, and (unless facts-only) run the file rules."""
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
    try:
        with _PARSE_LOCK:
            tree = ast.parse(source)
    except SyntaxError as error:
        findings: tuple[Finding, ...] = ()
        if rule_names is not None:
            findings = (
                Finding(
                    path=display_path,
                    line=error.lineno or 1,
                    col=(error.offset or 1) - 1,
                    rule="syntax-error",
                    message=f"file does not parse: {error.msg}",
                ),
            )
        return FileAnalysis(
            display_path=display_path,
            digest=digest,
            facts=_empty_facts(display_path),
            rules=rule_names,
            findings=findings,
        )
    lines = source.splitlines()
    suppression_map = parse_suppressions(lines)
    facts = collect_facts(tree, display_path)
    ordered_suppressions = tuple(
        suppression_map[line] for line in sorted(suppression_map)
    )
    if rule_names is None:
        return FileAnalysis(
            display_path=display_path,
            digest=digest,
            facts=facts,
            suppressions=ordered_suppressions,
        )
    active = [rule for rule in _resolve_rules(rule_names) if rule.scope == "file"]
    ctx = LintContext(
        path=path,
        display_path=display_path,
        source=source,
        lines=lines,
        tree=tree,
        suppressions=suppression_map,
    )
    dispatch: dict[str, list] = {}
    for rule in active:
        rule.begin_module(ctx)
        for node_type, method in rule.visitor_methods().items():
            dispatch.setdefault(node_type, []).append(method)
    raw: list[Finding] = []
    _walk(tree, ctx, dispatch, raw)
    for rule in active:
        raw.extend(walk_findings(rule.finish_module(ctx)))
    kept: list[Finding] = []
    suppressed = 0
    for finding in raw:
        if ctx.suppressed(finding):
            suppressed += 1
        else:
            kept.append(finding)
    kept.sort()
    return FileAnalysis(
        display_path=display_path,
        digest=digest,
        facts=facts,
        suppressions=ordered_suppressions,
        rules=rule_names,
        findings=tuple(kept),
        suppressed=suppressed,
    )


def execute_lint_job(job: FileLintJob) -> FileAnalysis:
    """The parallel job body: analyze one file from its shipped source."""
    # A fresh worker process imports only this module when it unpickles the
    # job; the built-in rules register on the package import, so force it.
    from repro.lint import checks  # noqa: F401

    return _analyze_module(
        job.source, job.display_path, Path(job.path), job.rule_names
    )


def lint_source(
    source: str,
    display_path: str = "<string>",
    *,
    rules: Iterable[str] | None = None,
    path: Path | None = None,
) -> tuple[list[Finding], int]:
    """Lint one module's source text (file-scope rules only).

    Returns ``(findings, suppressed_count)`` — findings that survived the
    inline suppressions, in (line, col, rule) order.  A module that does not
    parse produces a single ``syntax-error`` finding instead of raising, so
    one broken file cannot abort a tree-wide run.  Project-scope rules need
    the whole-tree index and therefore only run under :func:`lint_paths`.
    """
    rule_names = tuple(_normalize_rule_names(rules))
    _resolve_rules(rule_names)  # validate names up front (did-you-mean hints)
    analysis = _analyze_module(
        source,
        display_path,
        path if path is not None else Path(display_path),
        rule_names,
    )
    return list(analysis.findings), analysis.suppressed


# --------------------------------------------------------------------------- #
# file collection and git scoping
# --------------------------------------------------------------------------- #


def collect_files(paths: Iterable[Path | str]) -> list[Path]:
    """Expand files/directories into one sorted, de-duplicated ``*.py`` list.

    Overlapping arguments (``repro lint src src/repro``, a file listed twice,
    a file also covered by a directory) contribute each file exactly once,
    and the result is globally sorted by resolved path — one canonical order
    regardless of how the arguments sliced the tree.
    """
    seen: set[Path] = set()
    ordered: list[tuple[str, Path]] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.is_file():
            if path.suffix != ".py":
                raise SpecError(f"{path} is not a Python file")
            candidates = [path]
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                ordered.append((resolved.as_posix(), candidate))
    ordered.sort(key=lambda pair: pair[0])
    return [path for _, path in ordered]


def _display_path(path: Path) -> str:
    """Repo-relative posix path when possible, for stable report output."""
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _git_changed_files(base: str) -> set[Path]:
    """Resolved paths of files ``git diff --name-only <base>`` reports dirty."""
    try:
        toplevel = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
        diff = subprocess.run(
            ["git", "diff", "--name-only", base, "--"],
            capture_output=True, text=True, check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError) as error:
        stderr = (getattr(error, "stderr", "") or str(error)).strip()
        raise SpecError(f"--changed could not diff against {base!r}: {stderr}") from None
    root = Path(toplevel)
    return {
        (root / line.strip()).resolve() for line in diff.splitlines() if line.strip()
    }


def _locate_readme(files: Sequence[Path]) -> tuple[str | None, str | None]:
    """Find the README.md governing the linted tree (for registry-docs-sync).

    Walks up from the deepest common ancestor of the linted files, a bounded
    number of levels, and returns ``(display_path, text)`` — or ``(None,
    None)`` when no README exists (synthetic trees without docs).
    """
    if not files:
        return None, None
    common = Path(os.path.commonpath([file.resolve() for file in files]))
    if common.is_file():
        common = common.parent
    for _ in range(6):
        candidate = common / "README.md"
        if candidate.is_file():
            return _display_path(candidate), candidate.read_text(encoding="utf-8")
        if common.parent == common:
            break
        common = common.parent
    return None, None


# --------------------------------------------------------------------------- #
# the tree-wide run
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class LintStats:
    """How a lint run executed (cache hits, fan-out, phases).

    Deliberately *outside* :class:`~repro.lint.findings.LintReport`: the
    report is byte-identical across cold/warm/parallel runs, while stats
    (wall time, hit rate) legitimately differ run to run.
    """

    files_in_scope: int
    files_analyzed: int
    files_from_cache: int
    files_facts_only: int
    analyzed_paths: tuple[str, ...]
    wall_seconds: float
    executor: str
    workers: int
    project_rules: tuple[str, ...]
    project_rules_ran: bool
    changed_base: str | None
    cache_dir: str | None

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of in-scope files served from cache without a rule walk."""
        denominator = self.files_analyzed + self.files_from_cache
        return self.files_from_cache / denominator if denominator else 0.0

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-serializable; includes the derived hit rate)."""
        return {
            "files_in_scope": self.files_in_scope,
            "files_analyzed": self.files_analyzed,
            "files_from_cache": self.files_from_cache,
            "files_facts_only": self.files_facts_only,
            "analyzed_paths": list(self.analyzed_paths),
            "wall_seconds": self.wall_seconds,
            "executor": self.executor,
            "workers": self.workers,
            "project_rules": list(self.project_rules),
            "project_rules_ran": self.project_rules_ran,
            "changed_base": self.changed_base,
            "cache_dir": self.cache_dir,
            "cache_hit_rate": self.cache_hit_rate,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LintStats":
        """Inverse of :meth:`to_dict` (the derived hit rate is recomputed)."""
        payload = dict(data)
        payload.pop("cache_hit_rate", None)
        payload["analyzed_paths"] = tuple(payload.get("analyzed_paths", ()))
        payload["project_rules"] = tuple(payload.get("project_rules", ()))
        return cls(**payload)


@dataclass(frozen=True)
class _FileRecord:
    """One in-scope file with everything the scheduling phase needs."""

    path: Path
    display_path: str
    source: str
    digest: str


def _load_records(files: Sequence[Path]) -> list[_FileRecord]:
    records = []
    for file in files:
        raw = file.read_bytes()
        records.append(
            _FileRecord(
                path=file,
                display_path=_display_path(file),
                source=raw.decode("utf-8"),
                digest=hashlib.sha256(raw).hexdigest(),
            )
        )
    return records


def _cached_analyses(
    cache: LintCache, records: Sequence[_FileRecord]
) -> tuple[dict[str, FileAnalysis], dict[str, ModuleFacts]]:
    """Digest-matched cache entries, plus the *facts* of stale entries.

    Stale facts are never reused for findings, but they still carry the
    module's identity (display path, dotted name), which is exactly what the
    dependents computation needs to resolve reverse import edges *into* a
    changed file.
    """
    valid: dict[str, FileAnalysis] = {}
    stale_facts: dict[str, ModuleFacts] = {}
    for record in records:
        entry = cache.get(record.display_path)
        if entry is None:
            continue
        try:
            analysis = FileAnalysis.from_dict(entry)
        # repro-lint: disable=no-silent-except -- a malformed cache entry is a cache miss by design; re-analysis recomputes it
        except SpecError:
            continue
        if analysis.digest == record.digest:
            valid[record.display_path] = analysis
        else:
            stale_facts[record.display_path] = analysis.facts
    return valid, stale_facts


def lint_paths_with_stats(
    paths: Iterable[Path | str],
    *,
    rules: Iterable[str] | None = None,
    executor: str | None = None,
    max_workers: int | None = None,
    cache_dir: Path | str | None = None,
    changed_base: str | None = None,
) -> tuple[LintReport, LintStats]:
    """Lint a tree and report how the run executed.

    The report is independent of ``executor``, ``cache_dir`` and worker
    count — byte-identical across serial/parallel and cold/warm runs.
    ``changed_base`` switches to the fast path: only files dirty per
    ``git diff --name-only <base>`` (plus their import-graph dependents) get
    the rule walk, every other file contributes facts only, and
    ``files_scanned`` counts just the walked files.
    """
    started = clock.perf_counter()
    rule_names = tuple(_normalize_rule_names(rules))
    instances = _resolve_rules(rule_names)  # validates (did-you-mean hints)
    file_rule_canon = tuple(
        sorted(rule.meta.name for rule in instances if rule.scope == "file")
    )
    project_rule_names = tuple(
        sorted(rule.meta.name for rule in instances if rule.scope == "project")
    )
    files = collect_files(paths)
    records = _load_records(files)
    by_display = {record.display_path: record for record in records}
    cache = load_cache(cache_dir)
    cached, stale_facts = _cached_analyses(cache, records)

    def findings_usable(display_path: str) -> bool:
        analysis = cached.get(display_path)
        return analysis is not None and analysis.rules == file_rule_canon

    mapper = ParallelMapper(executor, max_workers=max_workers)
    facts_only_jobs: list[FileLintJob] = []
    fresh: dict[str, FileAnalysis] = {}
    if changed_base is not None:
        dirty_resolved = _git_changed_files(changed_base)
        dirty = {
            record.display_path
            for record in records
            if record.path.resolve() in dirty_resolved
        }
        # Dependents need the import graph of the *whole* tree, so fill the
        # gaps the cache leaves with a cheap facts-only pass first (no rule
        # walk); with a cold cache this is still far cheaper than full lint.
        facts_only_jobs = [
            _job(record, None)
            for record in records
            if record.display_path not in cached
        ]
        for analysis in mapper.map(execute_lint_job, facts_only_jobs):
            fresh[analysis.display_path] = analysis
        known = dict(cached)
        known.update(fresh)
        interim_facts = [known[record.display_path].facts for record in records]
    else:
        dirty = {
            record.display_path
            for record in records
            if not findings_usable(record.display_path)
        }
        # Every un-cached file is already in the dirty set here; stale facts
        # of the *changed* files keep reverse import edges into them
        # resolvable, which is what pulls their importers into the walk.
        interim_facts = [analysis.facts for analysis in cached.values()]
        interim_facts.extend(stale_facts.values())

    dependents = ProjectIndex(interim_facts).dependents_of(dirty) & set(by_display)
    selected = sorted(dirty | dependents)
    full_results = mapper.map(
        execute_lint_job, [_job(by_display[name], rule_names) for name in selected]
    )
    for analysis in full_results:
        fresh[analysis.display_path] = analysis

    # Canonicalize the stored rule set so cache validity is order-independent.
    fresh = {
        name: _with_canonical_rules(analysis, file_rule_canon)
        for name, analysis in fresh.items()
    }

    if changed_base is not None:
        scanned = selected
    else:
        scanned = [record.display_path for record in records]
    findings: list[Finding] = []
    suppressed = 0
    for name in scanned:
        analysis = fresh.get(name)
        if analysis is None or analysis.rules is None:
            analysis = cached[name]
        findings.extend(analysis.findings)
        suppressed += analysis.suppressed

    # Project phase: every file's facts, fresh results winning over cache.
    all_analyses = dict(cached)
    all_analyses.update(fresh)
    project_ran = False
    if project_rule_names and all(
        record.display_path in all_analyses for record in records
    ):
        project_ran = True
        readme_path, readme_text = _locate_readme(files)
        index = ProjectIndex(
            [all_analyses[record.display_path].facts for record in records],
            readme_path=readme_path,
            readme_text=readme_text,
        )
        suppression_maps = {
            name: {item.line: item for item in analysis.suppressions}
            for name, analysis in all_analyses.items()
        }
        for rule in instances:
            if rule.scope != "project":
                continue
            for finding in walk_findings(rule.check_project(index)):
                module_suppressions = suppression_maps.get(finding.path, {})
                if suppression_covers(module_suppressions, finding):
                    suppressed += 1
                else:
                    findings.append(finding)

    if cache.enabled:
        for name, analysis in fresh.items():
            cache.put(name, analysis.to_dict())
        cache.save()

    findings.sort()
    report = LintReport(
        findings=tuple(findings),
        files_scanned=len(scanned),
        suppressed=suppressed,
        rules=rule_names,
    )
    executed_backend, executed_workers = mapper.last_execution
    stats = LintStats(
        files_in_scope=len(records),
        files_analyzed=len(selected),
        files_from_cache=sum(1 for name in scanned if name not in fresh),
        files_facts_only=len(facts_only_jobs),
        analyzed_paths=tuple(selected),
        wall_seconds=clock.perf_counter() - started,
        executor=executed_backend,
        workers=executed_workers,
        project_rules=project_rule_names,
        project_rules_ran=project_ran,
        changed_base=changed_base,
        cache_dir=str(cache_dir) if cache_dir is not None else None,
    )
    return report, stats


def _job(record: _FileRecord, rule_names: tuple[str, ...] | None) -> FileLintJob:
    return FileLintJob(
        path=str(record.path),
        display_path=record.display_path,
        source=record.source,
        digest=record.digest,
        rule_names=rule_names,
    )


def _with_canonical_rules(
    analysis: FileAnalysis, canon: tuple[str, ...]
) -> FileAnalysis:
    if analysis.rules is None:
        return analysis
    return FileAnalysis(
        display_path=analysis.display_path,
        digest=analysis.digest,
        facts=analysis.facts,
        suppressions=analysis.suppressions,
        rules=canon,
        findings=analysis.findings,
        suppressed=analysis.suppressed,
    )


def lint_paths(
    paths: Iterable[Path | str], *, rules: Iterable[str] | None = None
) -> LintReport:
    """Lint every ``*.py`` file under ``paths`` into one report."""
    report, _ = lint_paths_with_stats(paths, rules=rules)
    return report
