"""Incremental-lint cache: content-hash keyed per-file results on disk.

One JSON file (``<cache-dir>/cache.json``, default directory
``.repro-lint-cache/``) maps display paths to serialized
``FileAnalysis`` payloads — findings, suppression records and the
:class:`~repro.lint.project.ModuleFacts` the project rules consume — keyed
by the sha256 of the file's bytes.  The engine re-analyzes a file only when
its hash changed (or the rule set differs), re-walks its import-graph
dependents, and re-runs the project rules over the merged index every time,
so a warm run is byte-identical to a cold one.

The cache is an *optimization*, never a source of truth: a missing,
corrupt, truncated or version-mismatched cache file (or any single bad
entry) is silently treated as empty and rebuilt — a stale cache must never
fail a lint run or change its outcome.  Writes are atomic
(write-temp-then-rename), so a run killed mid-save leaves the previous
cache intact.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

__all__ = ["LintCache", "load_cache", "CACHE_VERSION", "CACHE_FILENAME"]

#: Schema version stamped into the cache file; a mismatch discards the cache
#: (it is only an optimization — rebuilding is always correct).
CACHE_VERSION = 1

#: File name inside the cache directory.
CACHE_FILENAME = "cache.json"


class LintCache:
    """Per-file analysis payloads keyed by display path.

    ``directory=None`` builds a *disabled* cache: lookups miss, ``save`` is
    a no-op.  Entries are opaque JSON dicts — the engine owns their shape
    and validates them on read, so one malformed entry degrades to a cache
    miss instead of an error.
    """

    def __init__(
        self, directory: Path | None, entries: dict[str, Any] | None = None
    ) -> None:
        self.directory = directory
        self.entries: dict[str, Any] = dict(entries or {})
        #: Why a cache file on disk was discarded, if it was (for stats).
        self.discard_reason: str | None = None

    @property
    def enabled(self) -> bool:
        """Whether this cache is backed by a directory at all."""
        return self.directory is not None

    def get(self, display_path: str) -> Any | None:
        """The stored entry for one file, or ``None`` on a miss."""
        return self.entries.get(display_path)

    def put(self, display_path: str, entry: Any) -> None:
        """Store/replace the entry for one file (kept in memory until save)."""
        self.entries[display_path] = entry

    def save(self) -> None:
        """Atomically persist every entry; disabled caches do nothing."""
        if self.directory is None:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {"version": CACHE_VERSION, "entries": self.entries}
        target = self.directory / CACHE_FILENAME
        temporary = self.directory / (CACHE_FILENAME + ".tmp")
        temporary.write_text(
            json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8"
        )
        os.replace(temporary, target)


def load_cache(directory: Path | str | None) -> LintCache:
    """Load the cache under ``directory`` (``None`` disables caching).

    Any defect — unreadable file, invalid JSON, wrong shape, unknown
    version — yields an *empty* enabled cache with ``discard_reason`` set,
    never an error: correctness comes from re-analysis, the cache only
    saves time.
    """
    if directory is None:
        return LintCache(None)
    directory = Path(directory)
    cache = LintCache(directory)
    target = directory / CACHE_FILENAME
    try:
        text = target.read_text(encoding="utf-8")
    except FileNotFoundError:
        return cache
    except OSError as error:
        cache.discard_reason = f"unreadable cache file: {error}"
        return cache
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        cache.discard_reason = f"corrupt cache JSON: {error}"
        return cache
    if not isinstance(payload, dict) or not isinstance(payload.get("entries"), dict):
        cache.discard_reason = "cache file is not a {version, entries} object"
        return cache
    if payload.get("version") != CACHE_VERSION:
        cache.discard_reason = (
            f"cache version {payload.get('version')!r} != {CACHE_VERSION}"
        )
        return cache
    cache.entries = payload["entries"]
    return cache
