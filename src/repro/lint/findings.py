"""Findings and reports produced by the :mod:`repro.lint` pass.

A :class:`Finding` is one rule violation at one source location; a
:class:`LintReport` is the outcome of linting a set of paths — the findings
that survived suppression, plus the counts the reporters and the CI artifact
need.  Both are frozen dataclasses that round-trip losslessly through
``to_dict`` / ``from_dict`` (the same contract the :mod:`repro.api` specs
follow), so a JSON report written by one run can be re-read, diffed and
re-rendered without losing information.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Mapping

from repro.errors import SpecError

__all__ = ["Finding", "LintReport"]


def _reject_unknown_keys(cls: type, data: Mapping[str, Any]) -> None:
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise SpecError(
            f"{cls.__name__}.from_dict got unknown field(s) {unknown}; "
            f"expected a subset of {sorted(known)}"
        )


def _require_mapping(data: Any, cls: type) -> Mapping[str, Any]:
    if not isinstance(data, Mapping):
        raise SpecError(
            f"{cls.__name__}.from_dict expects a mapping, got {type(data).__name__}"
        )
    return data


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is the display path the engine linted under (repo-relative when
    possible), ``line`` / ``col`` are 1-based / 0-based as in :mod:`ast`,
    and ``message`` explains the violation in terms of the contract the rule
    defends.  Findings order by location so reports are deterministic.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def __post_init__(self) -> None:
        if not isinstance(self.path, str) or not self.path:
            raise SpecError(f"finding path must be a non-empty string, got {self.path!r}")
        if not isinstance(self.rule, str) or not self.rule:
            raise SpecError(f"finding rule must be a non-empty string, got {self.rule!r}")
        if isinstance(self.line, bool) or not isinstance(self.line, int) or self.line < 1:
            raise SpecError(f"finding line must be a positive integer, got {self.line!r}")
        if isinstance(self.col, bool) or not isinstance(self.col, int) or self.col < 0:
            raise SpecError(f"finding col must be a non-negative integer, got {self.col!r}")
        if not isinstance(self.message, str) or not self.message:
            raise SpecError("finding message must be a non-empty string")

    def location(self) -> str:
        """``path:line:col`` for text reports (clickable in most editors)."""
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-serializable)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Finding":
        """Inverse of :meth:`to_dict`; unknown fields raise :class:`SpecError`."""
        data = _require_mapping(data, cls)
        _reject_unknown_keys(cls, data)
        return cls(**data)


@dataclass(frozen=True)
class LintReport:
    """The outcome of one lint run over a set of paths.

    ``findings`` are the unsuppressed violations in deterministic
    (path, line, col, rule) order; ``suppressed`` counts the violations an
    inline ``# repro-lint: disable=...`` comment silenced; ``rules`` names
    the rules that ran (so a filtered run is distinguishable from a clean
    full run in an archived report).
    """

    findings: tuple[Finding, ...] = ()
    files_scanned: int = 0
    suppressed: int = 0
    rules: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "findings", tuple(self.findings))
        object.__setattr__(self, "rules", tuple(self.rules))
        for finding in self.findings:
            if not isinstance(finding, Finding):
                raise SpecError(f"findings must be Finding instances, got {finding!r}")
        for name in self.rules:
            if not isinstance(name, str) or not name:
                raise SpecError(f"rules must be non-empty strings, got {name!r}")
        for label, value in (("files_scanned", self.files_scanned),
                             ("suppressed", self.suppressed)):
            if isinstance(value, bool) or not isinstance(value, int) or value < 0:
                raise SpecError(f"{label} must be a non-negative integer, got {value!r}")

    @property
    def clean(self) -> bool:
        """Whether the run produced no unsuppressed findings."""
        return not self.findings

    def exit_code(self) -> int:
        """The CLI exit code this report maps to (0 clean, 1 findings)."""
        return 0 if self.clean else 1

    def by_rule(self) -> dict[str, int]:
        """Finding counts per rule name (only rules that fired)."""
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-serializable)."""
        return {
            "findings": [finding.to_dict() for finding in self.findings],
            "files_scanned": self.files_scanned,
            "suppressed": self.suppressed,
            "rules": list(self.rules),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LintReport":
        """Inverse of :meth:`to_dict`; unknown fields raise :class:`SpecError`."""
        data = _require_mapping(data, cls)
        _reject_unknown_keys(cls, data)
        payload = dict(data)
        raw_findings = payload.pop("findings", ())
        if not isinstance(raw_findings, (list, tuple)):
            raise SpecError("findings must be a list")
        findings = tuple(Finding.from_dict(item) for item in raw_findings)
        return cls(findings=findings, **payload)
