"""The Ω(n) space lower bound for streaming k-cover (Theorem 1.2, Appendix E).

The proof reduces two-party set disjointness to 1-cover: Alice holds
``A ⊆ [n]``, Bob holds ``B ⊆ [n]``; the instance has two elements ``a`` and
``b`` and ``n`` sets, where set ``i`` contains ``a`` iff ``i ∈ A`` and ``b``
iff ``i ∈ B``.  The stream presents all of Alice's edges first, then Bob's.
``Opt_1 = 2`` exactly when ``A ∩ B ≠ ∅``, so any streaming algorithm that
``(1/2 + ε)``-approximates 1-cover decides disjointness, and disjointness
needs Ω(n) bits of communication.

A lower bound cannot be "run", but its failure mode can be demonstrated:
:func:`evaluate_bounded_memory_protocol` plays the reduction against any
strategy that is only allowed to remember a bounded number of Alice's items,
and measures the error rate as a function of the memory budget.  The paper's
own sketch, instrumented the same way, needs memory proportional to ``n`` on
this family — which is the content of the theorem (and why the ``O~(n)``
upper bound is tight).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.coverage.bipartite import BipartiteGraph
from repro.streaming.events import EdgeArrival
from repro.streaming.stream import EdgeStream
from repro.utils.rng import spawn_rng
from repro.utils.validation import check_positive_int

__all__ = [
    "DisjointnessInstance",
    "disjointness_stream",
    "BoundedMemoryOneCover",
    "evaluate_bounded_memory_protocol",
]

#: Element ids used by the reduction ("a" and "b" in the paper's proof).
ELEMENT_A = 0
ELEMENT_B = 1


@dataclass(frozen=True)
class DisjointnessInstance:
    """A two-party set-disjointness instance over the universe ``[n]``."""

    num_sets: int
    alice: frozenset[int]
    bob: frozenset[int]

    @property
    def intersects(self) -> bool:
        """Whether the two sets share an item (``Opt_1 = 2`` in the reduction)."""
        return bool(self.alice & self.bob)

    @classmethod
    def random(
        cls,
        num_sets: int,
        *,
        density: float = 0.5,
        force_intersecting: bool | None = None,
        unique_intersection: bool = False,
        seed: int = 0,
    ) -> "DisjointnessInstance":
        """Draw a random instance; optionally force (non-)intersection.

        ``force_intersecting=None`` leaves the intersection to chance;
        ``True``/``False`` post-processes the draw so the answer is fixed —
        the distribution used by the benchmark to build a balanced test set.

        ``unique_intersection=True`` additionally makes Bob's set disjoint
        from Alice's except for exactly one planted common item when
        intersection is forced.  This is the classical *hard* promise
        distribution for set disjointness (at most one common item), the one
        the Ω(n) communication bound is proved for — dense random overlaps
        are much easier to detect.
        """
        check_positive_int(num_sets, "num_sets")
        rng = spawn_rng(seed, "disjointness")
        alice = {int(i) for i in range(num_sets) if rng.random() < density}
        bob = {int(i) for i in range(num_sets) if rng.random() < density}
        if force_intersecting is True:
            if not alice:
                alice.add(int(rng.integers(num_sets)))
            if unique_intersection:
                bob -= alice
                bob.add(int(rng.choice(sorted(alice))))
            elif not (alice & bob):
                bob.add(int(rng.choice(sorted(alice))))
        elif force_intersecting is False:
            bob -= alice
        return cls(num_sets=num_sets, alice=frozenset(alice), bob=frozenset(bob))

    def to_graph(self) -> BipartiteGraph:
        """The reduction's 2-element coverage instance."""
        graph = BipartiteGraph(self.num_sets)
        for set_id in self.alice:
            graph.add_edge(set_id, ELEMENT_A)
        for set_id in self.bob:
            graph.add_edge(set_id, ELEMENT_B)
        return graph

    def optimum_1_cover(self) -> int:
        """``Opt_1``: 2 if the sets intersect, else 1 (or 0 if both empty)."""
        if self.intersects:
            return 2
        return 1 if (self.alice or self.bob) else 0


def disjointness_stream(instance: DisjointnessInstance, *, seed: int = 0) -> EdgeStream:
    """The reduction's edge stream: Alice's edges first, then Bob's."""
    edges = [(set_id, ELEMENT_A) for set_id in sorted(instance.alice)]
    edges += [(set_id, ELEMENT_B) for set_id in sorted(instance.bob)]
    return EdgeStream(
        edges, num_sets=instance.num_sets, num_elements_hint=2, order="given", seed=seed
    )


class BoundedMemoryOneCover:
    """A one-pass 1-cover strategy allowed to remember only ``memory_sets`` ids.

    While Alice's half of the stream plays, the strategy keeps a uniform
    reservoir sample of at most ``memory_sets`` of the set ids it has seen
    containing element ``a``.  During Bob's half it reports coverage 2 as
    soon as an arriving edge's set id is in the remembered sample.  This is
    the natural sub-linear-memory protocol; the theorem says *no* protocol
    with ``o(n)`` bits can do better than chance, and the benchmark shows
    this one degrades exactly as the memory shrinks.
    """

    def __init__(self, memory_sets: int, *, seed: int = 0) -> None:
        check_positive_int(memory_sets, "memory_sets")
        self.memory_sets = memory_sets
        self._rng = spawn_rng(seed, "bounded-memory-1cover")
        self._sample: list[int] = []
        self._seen_a = 0
        self._claims_two = False
        self._witness: int | None = None

    def process(self, event: EdgeArrival) -> None:
        """Consume one edge of the reduction stream."""
        if event.element == ELEMENT_A:
            self._seen_a += 1
            if len(self._sample) < self.memory_sets:
                self._sample.append(event.set_id)
            else:
                # Reservoir sampling keeps the sample uniform over seen ids.
                index = int(self._rng.integers(self._seen_a))
                if index < self.memory_sets:
                    self._sample[index] = event.set_id
        else:
            if event.set_id in self._sample:
                self._claims_two = True
                self._witness = event.set_id

    def predicts_intersection(self) -> bool:
        """The protocol's answer after the stream ends."""
        return self._claims_two

    def solution(self) -> list[int]:
        """The 1-cover solution implied by the answer."""
        if self._witness is not None:
            return [self._witness]
        return [self._sample[0]] if self._sample else []


def evaluate_bounded_memory_protocol(
    num_sets: int,
    memory_sets: int,
    *,
    trials: int = 50,
    density: float = 0.08,
    unique_intersection: bool = False,
    seed: int = 0,
    protocol_factory: Callable[[int, int], BoundedMemoryOneCover] | None = None,
) -> dict[str, float]:
    """Error rate of a bounded-memory protocol on a balanced disjointness family.

    Half the trials are intersecting, half disjoint.  Returns the accuracy on
    each class, the overall accuracy, and the implied (1/2 + ε)-approximation
    success rate (detecting ``Opt_1 = 2`` is exactly what a better-than-1/2
    approximation must do).  ``unique_intersection=True`` draws the hard
    promise distribution (at most one common item).
    """
    check_positive_int(num_sets, "num_sets")
    check_positive_int(memory_sets, "memory_sets")
    factory = protocol_factory or (lambda mem, s: BoundedMemoryOneCover(mem, seed=s))
    correct_intersecting = 0
    correct_disjoint = 0
    half = max(1, trials // 2)
    for trial in range(2 * half):
        force = trial < half
        instance = DisjointnessInstance.random(
            num_sets,
            density=density,
            force_intersecting=force,
            unique_intersection=unique_intersection,
            seed=seed + trial,
        )
        protocol = factory(memory_sets, seed + 10_000 + trial)
        for event in disjointness_stream(instance, seed=seed + trial):
            protocol.process(event)
        predicted = protocol.predicts_intersection()
        if force and predicted == instance.intersects:
            correct_intersecting += 1
        if not force and predicted == instance.intersects:
            correct_disjoint += 1
    return {
        "num_sets": float(num_sets),
        "memory_sets": float(memory_sets),
        "trials": float(2 * half),
        "accuracy_intersecting": correct_intersecting / half,
        "accuracy_disjoint": correct_disjoint / half,
        "accuracy": (correct_intersecting + correct_disjoint) / (2.0 * half),
        "memory_fraction": memory_sets / float(num_sets),
    }
