"""``(1 ± ε)``-approximate coverage oracles and the Appendix A reduction.

Section 1.3.3 / Theorem 1.3 show that black-box access to an oracle that
estimates the coverage function within a ``1 ± ε`` factor is *not* enough to
approximate k-cover: any ``α``-approximation needs
``exp(Ω(nε²α² − log n))`` queries.  This module provides:

* :class:`NoisyCoverageOracle` — a benign oracle: the true coverage value
  perturbed by a deterministic pseudo-random relative error of at most ε
  (consistent across repeated queries of the same family), with a query
  counter.  This is the kind of oracle ℓ0 sketches realise.
* :class:`PurificationCoverageOracle` — the *adversarial* oracle used in the
  proof of Theorem 1.3: built on a hidden k-purification instance, it
  answers ``k + |S|`` whenever the query set's gold content is statistically
  unremarkable and only reveals the true coverage on purifying sets.
* :func:`purification_to_kcover_instance` — the explicit reduction graph:
  ``k`` elements common to every set plus ``n/k`` exclusive elements per
  gold set, so that ``C(S) = k + (n/k)·Gold(S)`` and ``Opt = k + n``.
* :func:`oracle_greedy_k_cover` — greedy driven purely by oracle values, the
  natural algorithm whose failure the benchmark demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.coverage.bipartite import BipartiteGraph
from repro.core.purification import KPurificationInstance, PurificationOracle
from repro.utils.rng import mix64
from repro.utils.validation import check_open_unit, check_positive_int

__all__ = [
    "NoisyCoverageOracle",
    "PurificationCoverageOracle",
    "purification_to_kcover_instance",
    "oracle_greedy_k_cover",
]


class NoisyCoverageOracle:
    """A ``(1 ± ε)``-approximate oracle to the coverage function.

    The multiplicative error of a query is a deterministic pseudo-random
    value in ``[−ε, +ε]`` derived from the queried family and the seed, so
    the oracle is consistent (repeating a query returns the same estimate)
    but adversarially unhelpful beyond its accuracy guarantee.
    """

    def __init__(self, graph: BipartiteGraph, epsilon: float, *, seed: int = 0) -> None:
        check_open_unit(epsilon, "epsilon")
        self._graph = graph
        self.epsilon = epsilon
        self.seed = seed
        self.queries = 0

    def _noise(self, family: frozenset[int]) -> float:
        key = mix64(hash(tuple(sorted(family))) & ((1 << 63) - 1), seed=self.seed)
        unit = key / float(1 << 64)  # [0, 1)
        return (2.0 * unit - 1.0) * self.epsilon

    def true_value(self, set_ids: Iterable[int]) -> int:
        """The exact coverage (not charged as an oracle query)."""
        return self._graph.coverage(set_ids)

    def __call__(self, set_ids: Iterable[int]) -> float:
        """A ``(1 ± ε)``-accurate estimate of ``C(S)``."""
        family = frozenset(int(s) for s in set_ids)
        self.queries += 1
        exact = self._graph.coverage(family)
        return exact * (1.0 + self._noise(family))

    def reset(self) -> None:
        """Reset the query counter."""
        self.queries = 0


@dataclass
class PurificationCoverageOracle:
    """The adversarial ``(1 ± ε')``-approximate oracle of Theorem 1.3.

    Built from a k-purification instance with accuracy ``ε' = 2ε``: for a
    nonempty query family ``S``,

    * if ``Pure_ε(S) = 0`` the oracle answers the predetermined value
      ``k + |S|`` (which the proof shows lies within ``1 ± ε'`` of the true
      coverage), and
    * otherwise it answers the true coverage ``k + (n/k)·Gold(S)``.

    ``queries`` counts oracle calls; ``purifying_queries`` counts how many of
    them revealed real information (had ``Pure = 1``).
    """

    purifier: PurificationOracle

    def __post_init__(self) -> None:
        self.queries = 0
        self.purifying_queries = 0

    @property
    def epsilon_prime(self) -> float:
        """The oracle's accuracy parameter ``ε' = 2ε``."""
        return 2.0 * self.purifier.epsilon

    @property
    def num_sets(self) -> int:
        """Number of sets ``n`` in the induced k-cover instance."""
        return self.purifier.instance.num_items

    @property
    def k(self) -> int:
        """The ``k`` of the induced k-cover instance (= number of gold items)."""
        return self.purifier.instance.num_gold

    def true_value(self, set_ids: Iterable[int]) -> float:
        """The true coverage ``k + (n/k)·Gold(S)`` of the reduction instance."""
        family = set(int(s) for s in set_ids)
        if not family:
            return 0.0
        n, k = self.num_sets, self.k
        return k + (n / k) * self.purifier.instance.gold_count(family)

    def __call__(self, set_ids: Iterable[int]) -> float:
        """Answer a coverage query as the adversarial oracle would."""
        family = set(int(s) for s in set_ids)
        self.queries += 1
        if not family:
            return 0.0
        if self.purifier(family) == 1:
            self.purifying_queries += 1
            return self.true_value(family)
        return float(self.k + len(family))

    def optimum(self) -> float:
        """The optimum of the induced k-cover instance: ``k + n``."""
        return float(self.k + self.num_sets)


def purification_to_kcover_instance(
    instance: KPurificationInstance, *, elements_per_gold: int | None = None
) -> BipartiteGraph:
    """Materialise the reduction graph of Theorem 1.3.

    Every item becomes a set.  All ``n`` sets share ``k`` common elements;
    each *gold* set additionally owns ``n/k`` exclusive elements (rounded to
    at least 1, overridable via ``elements_per_gold``), so that for any
    nonempty family ``S``: ``C(S) = k + (n/k)·Gold(S)``.

    The graph is only needed by tests and examples that want to run real
    algorithms against the reduction; the oracle itself never builds it.
    """
    n = instance.num_items
    k = instance.num_gold
    check_positive_int(n, "num_items")
    per_gold = elements_per_gold if elements_per_gold is not None else max(1, n // k)
    graph = BipartiteGraph(n)
    # Common elements 0 .. k-1 belong to every set.
    for set_id in range(n):
        for element in range(k):
            graph.add_edge(set_id, element)
    # Exclusive elements for gold sets.
    next_element = k
    for gold in sorted(instance.gold_items):
        for _ in range(per_gold):
            graph.add_edge(gold, next_element)
            next_element += 1
    return graph


def oracle_greedy_k_cover(
    oracle, k: int, num_sets: int, *, max_queries: int | None = None
) -> tuple[list[int], int]:
    """Greedy k-cover driven purely by oracle values.

    At each step the set with the largest *oracle-estimated* marginal value
    is added.  Works with any callable oracle over families of set ids.
    Returns the selection and the number of oracle queries spent.  ``None``
    for ``max_queries`` means no limit; otherwise the greedy stops early when
    the budget is exhausted.
    """
    check_positive_int(k, "k")
    check_positive_int(num_sets, "num_sets")
    selection: list[int] = []
    queries_before = getattr(oracle, "queries", 0)
    for _ in range(min(k, num_sets)):
        best_set, best_value = None, float("-inf")
        for candidate in range(num_sets):
            if candidate in selection:
                continue
            if max_queries is not None and getattr(oracle, "queries", 0) - queries_before >= max_queries:
                return selection, getattr(oracle, "queries", 0) - queries_before
            value = oracle(selection + [candidate])
            if value > best_value:
                best_set, best_value = candidate, value
        if best_set is None:
            break
        selection.append(best_set)
    return selection, getattr(oracle, "queries", 0) - queries_before
