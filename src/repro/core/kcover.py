"""Algorithm 3: single-pass streaming k-cover via the ``H_{<=n}`` sketch.

Theorem 3.1: for any ``ε ∈ (0, 1]`` the algorithm below returns a
``(1 − 1/e − ε)``-approximate k-cover solution with probability ``1 − 1/n``
using ``O~(n)`` space, in the edge-arrival model.  The recipe is exactly the
paper's: build ``H_{<=n}(k, ε/12, 2 + log n)`` over the stream, then run the
offline ``1 − 1/e`` greedy **on the sketch** and return its selection.

The class implements the :class:`repro.streaming.runner.StreamingAlgorithm`
protocol so it can be driven by :class:`StreamingRunner` and compared
head-to-head with the baselines.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable

from repro.coverage.bipartite import BipartiteGraph
from repro.core.hashing import HashFamily
from repro.core.params import SketchParams
from repro.core.sketch import CoverageSketch
from repro.core.streaming_sketch import StreamingSketchBuilder
from repro.offline.greedy import greedy_k_cover
from repro.streaming.batches import EventBatch
from repro.streaming.events import EdgeArrival
from repro.streaming.space import SpaceMeter
from repro.utils.validation import check_open_unit, check_positive_int

__all__ = ["StreamingKCover", "default_kcover_params"]


def default_kcover_params(
    num_sets: int,
    num_elements: int,
    k: int,
    epsilon: float,
    *,
    mode: str = "scaled",
    scale: float = 1.0,
) -> SketchParams:
    """The sketch parameters Algorithm 3 uses.

    The paper sets ``δ'' = 2 + log n`` and ``ε' = ε/12``; ``mode`` selects
    between the paper's theoretical budgets and the scaled budgets used for
    laptop-scale experiments (see :mod:`repro.core.params`).
    """
    check_positive_int(num_sets, "num_sets")
    check_positive_int(k, "k")
    check_open_unit(epsilon, "epsilon")
    eps_prime = epsilon / 12.0
    delta_prime = 2.0 + math.log(max(2, num_sets))
    if mode == "theoretical":
        return SketchParams.theoretical(
            num_sets, num_elements, k, eps_prime, delta_prime=delta_prime
        )
    if mode == "scaled":
        return SketchParams.scaled(
            num_sets,
            num_elements,
            k,
            eps_prime,
            delta_prime=delta_prime,
            scale=scale,
        )
    raise ValueError(f"unknown mode {mode!r}; expected 'theoretical' or 'scaled'")


class StreamingKCover:
    """Single-pass edge-arrival streaming algorithm for k-cover (Algorithm 3).

    Parameters
    ----------
    num_sets, num_elements:
        Instance dimensions ``n`` and (an upper bound on) ``m``.
    k:
        Number of sets to select.
    epsilon:
        Target accuracy; the approximation guarantee is ``1 − 1/e − ε``.
    params:
        Explicit sketch budgets; overrides ``mode`` / ``scale`` when given.
    mode, scale:
        Parameter mode passed to :func:`default_kcover_params`.
    seed:
        Randomness seed for the sketch hash.
    hash_fn:
        Optional explicit hash family (otherwise derived from ``seed``).
    solver:
        The offline k-cover algorithm run on the sketch.  Defaults to the
        lazy greedy; any α-approximation can be plugged in — Theorem 2.7 is
        exactly the statement that the composition stays ``(α − O(ε))``.
    coverage_backend:
        Optional packed-bitset kernel backend name (``"auto"``, ``"bytes"``,
        ``"words"``; see :mod:`repro.coverage.kernels`).  The default solver
        then packs a :class:`~repro.coverage.bitset.BitsetCoverage` of the
        *sketch* and runs the greedy on it — identical selections (the
        kernels share the greedy's tie-break, property-tested), much faster
        on dense sketches.  Ignored when an explicit ``solver`` is given.
    forbidden:
        Set ids the offline phase may not select.  The sketch construction is
        unaffected (the stream pass is oblivious to the constraint — that is
        what lets a serving layer answer many forbidden-set queries against
        one sketch); only the greedy on the sketch skips these ids.
        Unsupported with an explicit ``solver`` (the callable's signature has
        nowhere to carry the constraint).
    """

    def __init__(
        self,
        num_sets: int,
        num_elements: int,
        k: int,
        epsilon: float = 0.2,
        *,
        params: SketchParams | None = None,
        mode: str = "scaled",
        scale: float = 1.0,
        seed: int = 0,
        hash_fn: HashFamily | None = None,
        rank_source: str = "hash",
        solver: Callable[[BipartiteGraph, int], list[int]] | None = None,
        coverage_backend: str | None = None,
        forbidden: Iterable[int] = (),
    ) -> None:
        check_positive_int(k, "k")
        check_open_unit(epsilon, "epsilon")
        self.name = "bateni-sketch-kcover"
        self.arrival_model = "edge"
        self.k = k
        self.epsilon = epsilon
        self.coverage_backend = coverage_backend
        self.forbidden = frozenset(int(s) for s in forbidden)
        if solver is not None and self.forbidden:
            raise ValueError(
                "forbidden= requires the default greedy solver; an explicit "
                "solver callable cannot receive the constraint"
            )
        self.params = params or default_kcover_params(
            num_sets, num_elements, k, epsilon, mode=mode, scale=scale
        )
        self.space = SpaceMeter(unit="edges")
        self._builder = StreamingSketchBuilder(
            self.params,
            hash_fn=hash_fn,
            seed=seed,
            rank_source=rank_source,
            space=self.space,
        )
        self._solver = solver or self._kernel_greedy_solver
        self._finished = False
        self._solution: list[int] | None = None

    def _kernel_greedy_solver(self, graph: BipartiteGraph, k: int) -> list[int]:
        """Default offline phase: greedy on the sketch, kernel-backed on request."""
        from repro.coverage.bitset import kernel_for

        return greedy_k_cover(
            graph,
            k,
            forbidden=self.forbidden,
            kernel=kernel_for(graph, self.coverage_backend),
        ).selected

    # ------------------------------------------------------------------ #
    # StreamingAlgorithm protocol
    # ------------------------------------------------------------------ #
    def start_pass(self, pass_index: int) -> None:
        """Single-pass algorithm: only pass 0 is expected."""
        if pass_index > 0:  # pragma: no cover - defensive
            raise RuntimeError("StreamingKCover is a single-pass algorithm")

    def process(self, event: EdgeArrival) -> None:
        """Feed one membership edge into the sketch builder."""
        self._builder.process(event)

    def process_batch(self, batch: EventBatch) -> None:
        """Feed a columnar edge batch into the sketch builder (vectorised)."""
        self._builder.process_batch(batch)

    def finish_pass(self, pass_index: int) -> None:
        """Mark the stream as fully consumed."""
        self._finished = True

    def wants_another_pass(self) -> bool:
        """Always ``False``: Algorithm 3 is single pass."""
        return False

    def result(self) -> list[int]:
        """Run the offline solver on the sketch and return the chosen sets."""
        if self._solution is None:
            sketch = self.sketch()
            self._solution = list(self._solver(sketch.graph, self.k))[: self.k]
        return self._solution

    # ------------------------------------------------------------------ #
    # extras
    # ------------------------------------------------------------------ #
    def sketch(self) -> CoverageSketch:
        """The sketch built from the stream seen so far."""
        return self._builder.sketch()

    def estimated_coverage(self) -> float:
        """Lemma 2.2 estimate of the chosen solution's true coverage."""
        sketch = self.sketch()
        return sketch.estimate_coverage(self.result())

    def describe(self) -> dict[str, object]:
        """Diagnostics merged from the builder and the parameters."""
        info: dict[str, object] = {"algorithm": self.name, "k": self.k, "epsilon": self.epsilon}
        if self.coverage_backend is not None:
            info["coverage_backend"] = self.coverage_backend
        info.update(self.params.describe())
        info.update(self._builder.describe())
        return info
