"""ℓ0 (distinct-count) sketches and the Appendix D baseline.

Appendix D recalls that one can maintain, per set, a small mergeable sketch
estimating the number of distinct elements (ℓ0) of any union of sets within
``1 ± ε`` — and that turning this into a k-cover algorithm the obvious way
costs ``O~(nk)`` space (because the failure probability has to be divided
among all ``C(n, k)`` candidate solutions), whereas the paper's sketch needs
only ``O~(n)`` (Theorem D.2 vs. Theorem 3.1).

We implement the classic K-Minimum-Values (KMV / bottom-k) distinct counter:

* mergeable (union of two sketches = the k smallest of the merged hash set),
* unbiased estimator ``(size − 1) / v_size`` where ``v_size`` is the largest
  retained hash value,
* relative error ``O(1/sqrt(size))``, so ``size = O(1/ε²)`` gives ``1 ± ε``.

:class:`L0CoverageOracle` keeps one KMV per set, is built from an edge
stream, and estimates the coverage of any family by merging the per-set
sketches, exactly the construction Appendix D describes.
:func:`l0_exhaustive_k_cover` and :func:`l0_greedy_k_cover` are the two ways
of consuming it (the appendix's exponential-time enumeration, and the
practical greedy used by the benchmark).
"""

from __future__ import annotations

import heapq
import math
from itertools import combinations
from typing import Iterable, Sequence

import numpy as np

from repro.core.hashing import HashFamily, UniformHash
from repro.streaming.batches import EventBatch
from repro.streaming.events import EdgeArrival
from repro.streaming.space import SpaceMeter
from repro.utils.validation import check_open_unit, check_positive_int

__all__ = [
    "KMVSketch",
    "kmv_size_for_epsilon",
    "L0CoverageOracle",
    "l0_exhaustive_k_cover",
    "l0_greedy_k_cover",
]


def kmv_size_for_epsilon(epsilon: float, confidence: float = 4.0) -> int:
    """Sketch size giving relative error ~ε: ``ceil(confidence / ε²)``."""
    check_open_unit(epsilon, "epsilon")
    return max(8, math.ceil(confidence / (epsilon * epsilon)))


class KMVSketch:
    """Bottom-k (K-Minimum-Values) distinct counting sketch.

    Stores the ``capacity`` smallest hash values seen; duplicates are
    ignored, so the estimate depends only on the *set* of inserted items.
    """

    __slots__ = ("capacity", "_hash", "_heap", "_members")

    def __init__(self, capacity: int, hash_fn: HashFamily | None = None, *, seed: int = 0) -> None:
        check_positive_int(capacity, "capacity")
        self.capacity = capacity
        self._hash = hash_fn or UniformHash(seed)
        # Max-heap (negated values) of the smallest hash values kept.
        self._heap: list[float] = []
        self._members: set[float] = set()

    def add(self, item: int) -> None:
        """Insert one item (by id)."""
        self.add_hashed(self._hash.value(int(item)))

    def add_hashed(self, value: float) -> None:
        """Insert one already-hashed value in ``[0, 1)``.

        Exposed so batched callers can hash a whole column of items in one
        vectorised call and stream the values in; semantics are identical to
        :meth:`add` on the pre-image.
        """
        if value in self._members:
            return
        if len(self._heap) < self.capacity:
            heapq.heappush(self._heap, -value)
            self._members.add(value)
        elif value < -self._heap[0]:
            dropped = -heapq.heappushpop(self._heap, -value)
            self._members.discard(dropped)
            self._members.add(value)

    def update_many(self, items: Iterable[int]) -> None:
        """Insert many items."""
        value_many = getattr(self._hash, "value_many", None)
        if value_many is not None:
            items = list(items)
            if not items:
                return
            values = value_many(np.asarray(items, dtype=np.uint64))
            for value in values.tolist():
                self.add_hashed(value)
            return
        for item in items:
            self.add(item)

    @property
    def size(self) -> int:
        """Number of hash values currently retained (≤ capacity)."""
        return len(self._heap)

    def values(self) -> list[float]:
        """The retained hash values (unsorted)."""
        return [-v for v in self._heap]

    def merge(self, other: "KMVSketch") -> "KMVSketch":
        """Return the sketch of the union of the two underlying sets."""
        if other.capacity != self.capacity:
            raise ValueError("can only merge sketches with equal capacity")
        merged = KMVSketch(self.capacity, self._hash)
        for value in sorted(set(self.values()) | set(other.values()))[: self.capacity]:
            heapq.heappush(merged._heap, -value)
            merged._members.add(value)
        return merged

    @staticmethod
    def merge_all(sketches: Sequence["KMVSketch"]) -> "KMVSketch":
        """Merge any number of sketches (at least one required)."""
        if not sketches:
            raise ValueError("need at least one sketch to merge")
        capacity = sketches[0].capacity
        hash_fn = sketches[0]._hash
        merged = KMVSketch(capacity, hash_fn)
        values: set[float] = set()
        for sketch in sketches:
            if sketch.capacity != capacity:
                raise ValueError("can only merge sketches with equal capacity")
            values |= set(sketch.values())
        for value in sorted(values)[:capacity]:
            heapq.heappush(merged._heap, -value)
            merged._members.add(value)
        return merged

    def estimate(self) -> float:
        """Estimated number of distinct inserted items."""
        size = len(self._heap)
        if size < self.capacity:
            # Sketch is not full: it has seen every distinct item exactly.
            return float(size)
        kth = -self._heap[0]  # the largest retained (k-th smallest overall)
        if kth <= 0.0:
            return float(size)
        return (self.capacity - 1) / kth


class L0CoverageOracle:
    """One KMV sketch per set: the ``(1 ± ε)``-approximate oracle of Appendix D.

    Space is ``n`` sketches of ``O(1/ε²)`` words; with the
    failure-probability bookkeeping of Theorem D.2 (union bound over the
    ``C(n, k)`` candidate solutions) the required size grows to ``O~(k/ε²)``
    per set — i.e. ``O~(nk)`` overall — which is what
    :func:`capacity_for_union_bound` computes and the benchmark reports.
    """

    def __init__(
        self,
        num_sets: int,
        epsilon: float,
        *,
        capacity: int | None = None,
        seed: int = 0,
        space: SpaceMeter | None = None,
    ) -> None:
        check_positive_int(num_sets, "num_sets")
        check_open_unit(epsilon, "epsilon")
        self.num_sets = num_sets
        self.epsilon = epsilon
        self.capacity = capacity if capacity is not None else kmv_size_for_epsilon(epsilon)
        self.space = space if space is not None else SpaceMeter(unit="words")
        shared_hash = UniformHash(seed)
        self._hash = shared_hash
        self._sketches = [KMVSketch(self.capacity, shared_hash) for _ in range(num_sets)]
        self.queries = 0
        # Charge the fixed sketch arrays up front (capacity words per set).
        self.space.charge(self.capacity * num_sets)

    @staticmethod
    def capacity_for_union_bound(num_sets: int, k: int, epsilon: float) -> int:
        """Per-set sketch size needed to union-bound over all C(n,k) solutions.

        Following Appendix D: the per-query failure probability must be
        ``1/Θ~(C(n,k))``, and the ℓ0 space grows with ``log(1/δ)``, i.e. by a
        factor ``Θ(k log n)``.
        """
        base = kmv_size_for_epsilon(epsilon)
        return base * max(1, k) * max(1, math.ceil(math.log(max(2, num_sets))))

    def add_edge(self, set_id: int, element: int) -> None:
        """Process one membership edge."""
        if not 0 <= set_id < self.num_sets:
            raise ValueError(f"set id {set_id} out of range")
        self._sketches[set_id].add(element)

    def process(self, event: EdgeArrival) -> None:
        """Process one :class:`EdgeArrival`."""
        self.add_edge(event.set_id, event.element)

    def process_batch(self, batch: EventBatch) -> None:
        """Process a columnar edge batch: one vectorised hash, then scatter.

        Equivalent to processing the batch's edges one at a time — the
        per-set KMV insertions happen in stream order with identical hash
        values; only the hashing is amortised over the whole batch.
        """
        if batch.offsets is not None:
            raise TypeError("L0CoverageOracle consumes edge batches, got a set batch")
        if len(batch) == 0:
            return
        if len(batch.set_ids) and int(batch.set_ids.max()) >= self.num_sets:
            raise ValueError(
                f"set id {int(batch.set_ids.max())} out of range"
            )
        values = self._hash.value_many(batch.elements)
        sketches = self._sketches
        # Hashing is the vectorised part; the per-set KMV insertions must
        # happen in stream order against mutable per-sketch heaps.
        # repro-lint: disable=hot-path-hygiene -- KMV heap insertion is inherently per-event; hashing above is the batched part
        for set_id, value in zip(batch.set_ids.tolist(), values.tolist()):
            sketches[set_id].add_hashed(value)

    def consume(self, events: Iterable[EdgeArrival | tuple[int, int]]) -> None:
        """Feed a whole stream of edges."""
        for event in events:
            if isinstance(event, EdgeArrival):
                self.add_edge(event.set_id, event.element)
            else:
                self.add_edge(event[0], event[1])

    def sketch_of(self, set_id: int) -> KMVSketch:
        """The per-set sketch (read-only use)."""
        return self._sketches[set_id]

    def estimate_union(self, set_ids: Iterable[int]) -> float:
        """Estimate ``C(S)`` by merging the per-set sketches."""
        ids = [int(s) for s in set_ids]
        self.queries += 1
        if not ids:
            return 0.0
        merged = KMVSketch.merge_all([self._sketches[s] for s in ids])
        return merged.estimate()

    def __call__(self, set_ids: Iterable[int]) -> float:
        return self.estimate_union(set_ids)


def l0_exhaustive_k_cover(oracle: L0CoverageOracle, k: int) -> tuple[list[int], float]:
    """Appendix D's exponential-time algorithm: try every size-k family.

    Only sensible for tiny ``n``; the benchmark uses it to confirm the
    ``1 − ε`` quality claim of Theorem D.2 while charging the ``O~(nk)``
    space.
    """
    check_positive_int(k, "k")
    best: tuple[list[int], float] = ([], -1.0)
    for family in combinations(range(oracle.num_sets), min(k, oracle.num_sets)):
        value = oracle.estimate_union(family)
        if value > best[1]:
            best = (list(family), value)
    return best


def l0_greedy_k_cover(oracle: L0CoverageOracle, k: int) -> tuple[list[int], float]:
    """Greedy k-cover over ℓ0 estimates (the practical way to use the oracle)."""
    check_positive_int(k, "k")
    selection: list[int] = []
    current = 0.0
    for _ in range(min(k, oracle.num_sets)):
        best_set, best_value = None, current
        for candidate in range(oracle.num_sets):
            if candidate in selection:
                continue
            value = oracle.estimate_union(selection + [candidate])
            if value > best_value:
                best_set, best_value = candidate, value
        if best_set is None:
            break
        selection.append(best_set)
        current = best_value
    return selection, current
