"""Algorithms 4 and 5: single-pass streaming set cover with λ outliers.

Theorem 3.3: for ``ε ∈ (0, 1]`` and ``λ ∈ (0, 1/e]`` the algorithm returns a
``(1 + ε) log(1/λ)``-approximate solution to set cover with λ outliers with
probability ``1 − 1/n`` using ``O~(n/λ³) ⊆ O~_λ(n)`` space, single pass,
edge arrivals.

Structure, exactly as in the paper:

* **Algorithm 4** (:class:`GuessChecker`) — for a guessed cover size ``k'``
  build the sketch ``H_{<=n}(k' log(1/λ'), ε, δ'')`` with
  ``ε = ε'/(13 log(1/λ'))``, run greedy for ``k' log(1/λ')`` steps on the
  sketch, and accept iff the selection covers at least a
  ``1 − λ' − ε log(1/λ')`` fraction of the sketch's elements.  Lemma 3.2: it
  never accepts when the true minimum cover exceeds ``k'``... more precisely
  it never returns *false* when a cover of size ``k'`` exists, and an
  accepted solution covers ``1 − λ' − ε'`` of the real elements w.h.p.
* **Algorithm 5** (:class:`StreamingSetCoverOutliers`) — run Algorithm 4 for
  geometrically increasing guesses ``k' = 1, (1+ε/3), (1+ε/3)², ...`` (all
  sketches maintained in the same single pass) and return the first guess
  whose checker accepts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.core.hashing import HashFamily, UniformHash
from repro.core.params import SketchParams
from repro.core.sketch import CoverageSketch
from repro.core.streaming_sketch import StreamingSketchBuilder
from repro.offline.greedy import greedy_k_cover
from repro.streaming.events import EdgeArrival
from repro.streaming.space import SpaceMeter
from repro.utils.validation import check_in_range, check_open_unit, check_positive_int

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.coverage.bitset import KernelCache

__all__ = ["GuessChecker", "GuessOutcome", "StreamingSetCoverOutliers", "guess_schedule"]

#: Sentinel distinguishing "use the instance's configured backend" from an
#: explicit per-query override (which may legitimately be ``None``).
_UNSET: object = object()


def guess_schedule(num_sets: int, epsilon: float) -> list[int]:
    """The geometric schedule of cover-size guesses used by Algorithm 5.

    Starts at ``k' = 1`` and multiplies by ``1 + ε/3`` until reaching ``n``;
    duplicate integer guesses (possible for small values) are merged.
    """
    check_positive_int(num_sets, "num_sets")
    check_open_unit(epsilon, "epsilon")
    guesses: list[int] = []
    value = 1.0
    while True:
        guess = min(num_sets, max(1, math.ceil(value)))
        if not guesses or guess != guesses[-1]:
            guesses.append(guess)
        if guess >= num_sets:
            break
        value *= 1.0 + epsilon / 3.0
    return guesses


@dataclass
class GuessOutcome:
    """Result of checking one guess ``k'`` (one Algorithm 4 run)."""

    guess: int
    accepted: bool
    solution: list[int]
    sketch_fraction: float
    required_fraction: float
    sketch_edges: int


class GuessChecker:
    """Algorithm 4: the per-guess submodule of the outlier set cover.

    Parameters
    ----------
    guess:
        The guessed minimum cover size ``k'``.
    epsilon_prime:
        The outer accuracy ``ε'`` (the paper's Algorithm 4 input).
    lambda_prime:
        The per-call outlier fraction ``λ'``.
    confidence:
        The paper's ``C'`` (enters only through ``δ''``).
    num_sets, num_elements:
        Instance dimensions.
    mode, scale, seed, hash_fn:
        Sketch parameterisation, as in :class:`StreamingKCover`.
    coverage_backend:
        Optional packed-bitset kernel backend; :meth:`check` then runs its
        greedy on a kernel of the guess's sketch (identical selections).
    """

    def __init__(
        self,
        guess: int,
        epsilon_prime: float,
        lambda_prime: float,
        confidence: float,
        num_sets: int,
        num_elements: int,
        *,
        mode: str = "scaled",
        scale: float = 1.0,
        seed: int = 0,
        hash_fn: HashFamily | None = None,
        space: SpaceMeter | None = None,
        coverage_backend: str | None = None,
    ) -> None:
        check_positive_int(guess, "guess")
        check_open_unit(epsilon_prime, "epsilon_prime")
        check_in_range(lambda_prime, 1e-9, 1.0 / math.e, "lambda_prime")
        self.guess = guess
        self.lambda_prime = lambda_prime
        self.epsilon_prime = epsilon_prime
        # Algorithm 4, line 1: ε = ε' / (13 log(1/λ')), δ'' = log_{1+ε} n (log(C'n)+2).
        log_inv_lambda = math.log(1.0 / lambda_prime)
        self.budget_k = max(1, math.ceil(guess * log_inv_lambda))
        self.epsilon = min(1.0, epsilon_prime / (13.0 * max(1.0, log_inv_lambda)))
        delta_prime = max(
            1.0,
            math.log(max(2, num_sets), 1.0 + max(self.epsilon, 1e-6))
            * (math.log(max(2.0, confidence * num_sets)) + 2.0),
        )
        if mode == "theoretical":
            params = SketchParams.theoretical(
                num_sets, num_elements, self.budget_k, self.epsilon, delta_prime=delta_prime
            )
        else:
            params = SketchParams.scaled(
                num_sets,
                num_elements,
                self.budget_k,
                max(self.epsilon, 1e-3),
                delta_prime=delta_prime,
                scale=scale,
            )
        self.params = params
        self.coverage_backend = coverage_backend
        self.space = space if space is not None else SpaceMeter(unit="edges")
        self.builder = StreamingSketchBuilder(
            params,
            hash_fn=hash_fn or UniformHash(seed),
            seed=seed,
            space=self.space,
        )
        self._final_sketch: CoverageSketch | None = None
        self._kernels: "KernelCache | None" = None

    def process(self, event: EdgeArrival) -> None:
        """Feed one edge into this guess's sketch."""
        self.builder.process(event)

    def finalize(self) -> CoverageSketch:
        """Freeze the post-stream sketch (plus a kernel cache) for queries.

        Before finalization every :meth:`check` re-snapshots the builder (the
        pre-existing behaviour, correct while the stream is still being fed);
        after it, checks and queries share one immutable sketch and one
        packed kernel per backend — the serving layer's repeat-query path.
        """
        if self._final_sketch is None:
            from repro.coverage.bitset import KernelCache

            self._final_sketch = self.builder.sketch()
            self._kernels = KernelCache(self._final_sketch.graph)
        return self._final_sketch

    def check(
        self,
        *,
        forbidden: Iterable[int] = (),
        coverage_backend: object = _UNSET,
    ) -> GuessOutcome:
        """Run greedy on the sketch and apply the acceptance test (Algorithm 4).

        ``forbidden`` excludes set ids from the greedy; ``coverage_backend``
        overrides the configured kernel backend for this call only.  Neither
        affects the sketch itself, so one stream pass supports arbitrarily
        many differently-constrained checks.
        """
        from repro.coverage.bitset import kernel_for

        backend = (
            self.coverage_backend if coverage_backend is _UNSET else coverage_backend
        )
        if self._final_sketch is not None and self._kernels is not None:
            sketch = self._final_sketch
            kernel = self._kernels.get(backend)  # type: ignore[arg-type]
        else:
            sketch = self.builder.sketch()
            kernel = kernel_for(sketch.graph, backend)  # type: ignore[arg-type]
        result = greedy_k_cover(
            sketch.graph,
            self.budget_k,
            forbidden=forbidden,
            kernel=kernel,
        )
        fraction = sketch.coverage_fraction(result.selected)
        required = 1.0 - self.lambda_prime - self.epsilon * math.log(1.0 / self.lambda_prime)
        accepted = fraction >= required - 1e-12
        return GuessOutcome(
            guess=self.guess,
            accepted=accepted,
            solution=result.selected,
            sketch_fraction=fraction,
            required_fraction=required,
            sketch_edges=sketch.num_edges,
        )


class StreamingSetCoverOutliers:
    """Algorithm 5: single-pass streaming set cover with λ outliers.

    Implements the :class:`StreamingAlgorithm` protocol.  All per-guess
    sketches are maintained simultaneously during the single pass ("run
    these in parallel" in the paper's pseudocode); afterwards the guesses
    are checked in increasing order and the first accepted solution wins.

    Parameters
    ----------
    num_sets, num_elements:
        Instance dimensions.
    outlier_fraction:
        The target ``λ ∈ (0, 1/e]``.
    epsilon:
        Approximation slack; the returned solution has size at most
        ``(1 + ε) log(1/λ)`` times the optimum cover size.
    confidence:
        The paper's ``C`` (success probability ``1 − 1/(Cn)``).
    coverage_backend:
        Optional packed-bitset kernel backend; every guess's offline check
        (greedy on its sketch) then runs kernel-backed — the sketches are
        where this algorithm spends its offline time, one per guess.
    forbidden:
        Set ids no guess's greedy may select.  Applied at check time only;
        the per-guess sketches are built identically regardless.
    """

    def __init__(
        self,
        num_sets: int,
        num_elements: int,
        outlier_fraction: float,
        epsilon: float = 0.3,
        *,
        confidence: float = 1.0,
        mode: str = "scaled",
        scale: float = 1.0,
        seed: int = 0,
        max_guesses: int | None = None,
        coverage_backend: str | None = None,
        forbidden: Iterable[int] = (),
    ) -> None:
        check_positive_int(num_sets, "num_sets")
        check_open_unit(epsilon, "epsilon")
        check_in_range(outlier_fraction, 1e-9, 1.0 / math.e, "outlier_fraction")
        self.name = "bateni-sketch-setcover-outliers"
        self.arrival_model = "edge"
        self.num_sets = num_sets
        self.num_elements = num_elements
        self.outlier_fraction = outlier_fraction
        self.epsilon = epsilon
        # Algorithm 5, line 1.
        self.epsilon_prime = outlier_fraction * (1.0 - math.exp(-epsilon / 2.0))
        self.lambda_prime = outlier_fraction * math.exp(-epsilon / 2.0)
        self.confidence_prime = confidence * max(
            1.0, math.log(max(2, num_sets), 1.0 + epsilon / 3.0)
        )
        self.space = SpaceMeter(unit="edges")
        guesses = guess_schedule(num_sets, epsilon)
        if max_guesses is not None:
            guesses = guesses[:max_guesses]
        self._checkers = [
            GuessChecker(
                guess,
                max(self.epsilon_prime, 1e-4),
                self.lambda_prime,
                self.confidence_prime,
                num_sets,
                num_elements,
                mode=mode,
                scale=scale,
                seed=seed + 1000 * index,
                space=self.space,
                coverage_backend=coverage_backend,
            )
            for index, guess in enumerate(guesses)
        ]
        self.coverage_backend = coverage_backend
        self.forbidden = frozenset(int(s) for s in forbidden)
        self._outcomes: list[GuessOutcome] | None = None
        self._solution: list[int] | None = None

    # ------------------------------------------------------------------ #
    # StreamingAlgorithm protocol
    # ------------------------------------------------------------------ #
    def start_pass(self, pass_index: int) -> None:
        """Single-pass algorithm."""
        if pass_index > 0:  # pragma: no cover - defensive
            raise RuntimeError("StreamingSetCoverOutliers is a single-pass algorithm")

    def process(self, event: EdgeArrival) -> None:
        """Feed one edge into every guess's sketch."""
        for checker in self._checkers:
            checker.process(event)

    def finish_pass(self, pass_index: int) -> None:
        """Nothing to do — checking happens lazily in :meth:`result`."""

    def wants_another_pass(self) -> bool:
        """Always ``False``: single pass."""
        return False

    def result(self) -> list[int]:
        """The solution of the smallest accepted guess (or the last guess)."""
        if self._solution is None:
            outcomes = self.outcomes()
            accepted = next((o for o in outcomes if o.accepted), None)
            chosen = accepted if accepted is not None else outcomes[-1]
            self._solution = list(dict.fromkeys(chosen.solution))
        return self._solution

    # ------------------------------------------------------------------ #
    # extras
    # ------------------------------------------------------------------ #
    def outcomes(self) -> list[GuessOutcome]:
        """Per-guess Algorithm 4 outcomes (computed once, cached)."""
        if self._outcomes is None:
            self._outcomes = [
                checker.check(forbidden=self.forbidden) for checker in self._checkers
            ]
        return self._outcomes

    def query(
        self,
        *,
        forbidden: Iterable[int] = (),
        coverage_backend: object = _UNSET,
    ) -> tuple[list[int], list[GuessOutcome]]:
        """Re-run the accept/reject cascade against the frozen sketches.

        Unlike :meth:`result`/:meth:`outcomes` this never touches the cached
        state, so a long-lived instance can answer many differently
        constrained queries (new forbidden sets, another kernel backend)
        after its single stream pass.  Returns ``(solution, outcomes)`` with
        the same first-accepted-else-last selection rule as :meth:`result`.
        """
        backend = (
            self.coverage_backend if coverage_backend is _UNSET else coverage_backend
        )
        outcomes: list[GuessOutcome] = []
        for checker in self._checkers:
            checker.finalize()
            outcomes.append(
                checker.check(forbidden=forbidden, coverage_backend=backend)
            )
        accepted = next((o for o in outcomes if o.accepted), None)
        chosen = accepted if accepted is not None else outcomes[-1]
        return list(dict.fromkeys(chosen.solution)), outcomes

    def guesses(self) -> Sequence[int]:
        """The guessed cover sizes, in increasing order."""
        return [checker.guess for checker in self._checkers]

    def accepted_guess(self) -> int | None:
        """The smallest accepted guess (``None`` if every guess was rejected)."""
        for outcome in self.outcomes():
            if outcome.accepted:
                return outcome.guess
        return None

    def describe(self) -> dict[str, object]:
        """Diagnostics for reports."""
        return {
            "algorithm": self.name,
            "lambda": self.outlier_fraction,
            "epsilon": self.epsilon,
            "num_guesses": len(self._checkers),
            "space_peak": self.space.peak,
            "accepted_guess": self.accepted_guess(),
        }
