"""Streaming construction of ``H_{<=n}`` over an edge-arrival stream.

This is Algorithm 2 of the paper.  The offline construction (Algorithm 1)
admits elements in increasing hash order until the edge budget is hit; in the
stream, edges arrive in arbitrary order, so the builder instead:

1. hashes each arriving element to a rank in ``[0, 1)``;
2. keeps edges only for elements whose rank is below the current *admission
   threshold* (initially 1.0);
3. caps the per-element degree at ``degree_cap``;
4. whenever the number of stored edges exceeds
   ``edge_budget + eviction_slack`` (the paper allows the slack of one
   element's degree cap), evicts the tracked element with the **largest**
   rank and lowers the admission threshold to that rank — so the evicted
   element, and any element hashed above it, can never re-enter.

The final content is exactly the offline sketch up to the boundary element:
elements whose rank is below the final threshold keep all their (capped)
edges, elements above it keep none.  Rule 4 guarantees monotonicity (an
element is never re-admitted after losing edges), which is what makes the
streaming sketch equivalent to the offline one; the unit tests verify this
equivalence on random inputs.

Two rank sources are supported, mirroring the paper's discussion of
randomness:

* ``"hash"`` (default): ranks come from a :class:`UniformHash`, requiring no
  knowledge of the ground set.
* ``"permutation"``: the ground set size ``m`` is known; Algorithm 2's
  explicit trick of pre-sampling ``edge_budget + degree_cap`` elements and
  ranking them by a random permutation is used, and *unsampled* elements are
  discarded outright.  This variant uses only ``O~(|H_{<=n}|)`` random bits,
  as the paper notes.
"""

from __future__ import annotations

import heapq
from typing import Iterable

import numpy as np

from repro.coverage.bipartite import BipartiteGraph
from repro.core.hashing import HashFamily, UniformHash
from repro.core.params import SketchParams
from repro.core.sketch import CoverageSketch
from repro.streaming.batches import EventBatch
from repro.streaming.events import EdgeArrival
from repro.streaming.space import SpaceMeter
from repro.utils.rng import spawn_rng

__all__ = ["StreamingSketchBuilder"]


class StreamingSketchBuilder:
    """Incrementally builds a :class:`CoverageSketch` from edge arrivals.

    Parameters
    ----------
    params:
        The sketch budgets (edge budget, degree cap, eviction slack).
    hash_fn:
        Rank source for the ``"hash"`` mode; defaults to
        :class:`UniformHash` seeded with ``seed``.
    seed:
        Seed for the default hash function / the permutation sampling.
    rank_source:
        ``"hash"`` or ``"permutation"`` (see module docstring).
    space:
        Optional external :class:`SpaceMeter` to charge; a fresh one is
        created otherwise.  One unit is charged per stored edge.
    """

    def __init__(
        self,
        params: SketchParams,
        *,
        hash_fn: HashFamily | None = None,
        seed: int = 0,
        rank_source: str = "hash",
        space: SpaceMeter | None = None,
    ) -> None:
        if rank_source not in ("hash", "permutation"):
            raise ValueError("rank_source must be 'hash' or 'permutation'")
        self.params = params
        self.hash_fn = hash_fn or UniformHash(seed)
        self.rank_source = rank_source
        self.seed = seed
        self.space = space if space is not None else SpaceMeter(unit="edges")
        self._graph = BipartiteGraph(params.num_sets)
        self._ranks: dict[int, float] = {}
        # Max-heap over (negated rank, element) of currently tracked elements.
        self._heap: list[tuple[float, int]] = []
        self._truncated: set[int] = set()
        self._admission_threshold = 1.0
        self._edges_seen = 0
        self._edges_discarded = 0
        self._evictions = 0
        self._permutation_ranks: tuple[np.ndarray, np.ndarray] | None = None
        self._permutation_rank_of: dict[int, float] | None = None
        if rank_source == "permutation":
            self._permutation_ranks = self._sample_permutation()
            sampled, ranks = self._permutation_ranks
            # Dict twin of the sorted arrays for the scalar per-edge path
            # (a dict probe is ~10x cheaper than a searchsorted call); both
            # structures are O(|Π|).
            self._permutation_rank_of = {
                int(element): float(rank) for element, rank in zip(sampled, ranks)
            }

    # ------------------------------------------------------------------ #
    # rank handling
    # ------------------------------------------------------------------ #
    def _sample_permutation(self) -> tuple[np.ndarray, np.ndarray]:
        """Pre-sample Algorithm 2's element set Π and rank it by position.

        Π has ``edge_budget + degree_cap`` elements drawn uniformly without
        replacement from the ground set ``0 .. m-1``; the rank of a sampled
        element is its (normalised) position in a random permutation of Π.
        The result is ``(elements, ranks)``: the sampled element ids sorted
        ascending plus their aligned ranks — ``O(|Π|)`` space, preserving
        the sketch's sublinear-space story — so both the scalar and the
        batched path rank by binary search (``np.searchsorted``) instead of
        dict lookups; unsampled elements rank ``inf`` and are always
        discarded.
        """
        rng = spawn_rng(self.seed, "algorithm2-permutation")
        population = self.params.num_elements
        size = min(self.params.sample_size, population)
        sample = rng.choice(population, size=size, replace=False)
        permutation = rng.permutation(size)
        ranks = (permutation.astype(np.float64) + 1.0) / (max(1, population) + 1)
        order = np.argsort(sample)
        return sample[order].astype(np.uint64), ranks[order]

    def _rank(self, element: int) -> float:
        if self._permutation_rank_of is not None:
            return self._permutation_rank_of.get(element, float("inf"))
        return self.hash_fn.value(element)

    def _rank_batch(self, elements: np.ndarray) -> np.ndarray | None:
        """Vectorised ranks of a whole element column (None if unavailable).

        Bit-identical to calling :meth:`_rank` per element: the sorted
        permutation sample is probed with one ``searchsorted`` gather, and
        the hash path defers to the hash family's ``value_many`` when it
        exposes one.
        """
        if self._permutation_ranks is not None:
            sampled, sample_ranks = self._permutation_ranks
            out = np.full(len(elements), np.inf, dtype=np.float64)
            if len(sampled):
                index = np.searchsorted(sampled, elements)
                index_clipped = np.minimum(index, len(sampled) - 1)
                hit = (index < len(sampled)) & (sampled[index_clipped] == elements)
                out[hit] = sample_ranks[index_clipped[hit]]
            return out
        value_many = getattr(self.hash_fn, "value_many", None)
        if value_many is None:
            return None
        return value_many(elements)

    # ------------------------------------------------------------------ #
    # stream interface
    # ------------------------------------------------------------------ #
    @property
    def stored_edges(self) -> int:
        """Number of edges currently stored."""
        return self._graph.num_edges

    @property
    def evictions(self) -> int:
        """Number of element evictions performed so far."""
        return self._evictions

    @property
    def edges_seen(self) -> int:
        """Number of stream edges observed so far."""
        return self._edges_seen

    @property
    def edges_discarded(self) -> int:
        """Number of stream edges discarded on arrival."""
        return self._edges_discarded

    @property
    def admission_threshold(self) -> float:
        """Current rank threshold below which new elements are admitted."""
        return self._admission_threshold

    def add_edge(self, set_id: int, element: int) -> bool:
        """Process one membership edge; returns whether it was stored."""
        self._edges_seen += 1
        return self._admit(set_id, element, self._rank(element))

    def _admit(self, set_id: int, element: int, rank: float) -> bool:
        """Admission decision for one edge whose rank is already computed."""
        if rank >= self._admission_threshold:
            self._edges_discarded += 1
            return False
        tracked = element in self._ranks
        if tracked:
            if self._graph.element_degree(element) >= self.params.degree_cap:
                self._truncated.add(element)
                self._edges_discarded += 1
                return False
            if not self._graph.add_edge(set_id, element):
                self._edges_discarded += 1
                return False
            self.space.charge(1)
        else:
            self._ranks[element] = rank
            heapq.heappush(self._heap, (-rank, element))
            self._graph.add_edge(set_id, element)
            self.space.charge(1)
        self._evict_if_needed()
        return True

    def process(self, event: EdgeArrival) -> bool:
        """Process an :class:`EdgeArrival` event (same as :meth:`add_edge`)."""
        return self.add_edge(event.set_id, event.element)

    def process_batch(self, batch: EventBatch) -> int:
        """Process a whole columnar edge batch; returns the edges stored.

        The batch's elements are ranked in one vectorised call — a dense
        table gather for ``rank_source="permutation"``, the hash family's
        ``value_many`` otherwise — and edges whose rank already clears the
        current admission threshold are rejected wholesale; since the
        threshold only ever decreases, the scalar path would reject every
        one of them too.  Survivors then go through the ordinary per-edge
        admission (threshold re-check, degree cap, dedup, eviction), so the
        builder state after a batch is byte-identical to feeding the same
        edges one at a time.
        """
        if batch.offsets is not None:
            raise TypeError("StreamingSketchBuilder consumes edge batches, got a set batch")
        count = len(batch)
        if count == 0:
            return 0
        ranks = self._rank_batch(batch.elements)
        if ranks is None:
            stored = 0
            for event in batch.iter_events():
                if self.process(event):
                    stored += 1
            return stored
        survivors = np.flatnonzero(ranks < self._admission_threshold)
        self._edges_seen += count
        self._edges_discarded += count - len(survivors)
        stored = 0
        if len(survivors):
            set_ids = batch.set_ids[survivors].tolist()
            elements = batch.elements[survivors].tolist()
            survivor_ranks = ranks[survivors].tolist()
            for set_id, element, rank in zip(set_ids, elements, survivor_ranks):
                if self._admit(set_id, element, rank):
                    stored += 1
        return stored

    def consume(self, events: Iterable[EdgeArrival | tuple[int, int]]) -> None:
        """Feed a whole iterable of edges / events through the builder."""
        for event in events:
            if isinstance(event, EdgeArrival):
                self.add_edge(event.set_id, event.element)
            else:
                set_id, element = event
                self.add_edge(set_id, element)

    def _evict_if_needed(self) -> None:
        """Evict highest-ranked elements while over the transient edge limit."""
        limit = self.params.edge_budget + self.params.eviction_slack
        while self._graph.num_edges > limit and len(self._ranks) > 1:
            while self._heap:
                neg_rank, element = self._heap[0]
                if element in self._ranks and -neg_rank == self._ranks[element]:
                    break
                heapq.heappop(self._heap)  # stale entry
            if not self._heap:
                break
            neg_rank, element = heapq.heappop(self._heap)
            rank = -neg_rank
            del self._ranks[element]
            removed = self._graph.remove_element(element)
            self.space.release(removed)
            self._truncated.discard(element)
            self._admission_threshold = min(self._admission_threshold, rank)
            self._evictions += 1

    # ------------------------------------------------------------------ #
    # result
    # ------------------------------------------------------------------ #
    def sketch(self) -> CoverageSketch:
        """Finalize and return the sketch built so far.

        The threshold ``p*`` is the largest rank among retained elements when
        any eviction (or admission rejection) occurred, and 1.0 when the
        whole stream fit in the budget — mirroring the offline convention.
        """
        saw_rejection = self._evictions > 0 or self._admission_threshold < 1.0
        if self._ranks and saw_rejection:
            threshold = max(self._ranks.values())
        elif self._ranks:
            threshold = 1.0
        else:
            threshold = self._admission_threshold
        return CoverageSketch(
            graph=self._graph.copy(),
            params=self.params,
            threshold=threshold,
            element_hashes=dict(self._ranks),
            truncated_elements=frozenset(self._truncated),
        )

    def describe(self) -> dict[str, float | int | str]:
        """Diagnostics for logging and tests."""
        return {
            "rank_source": self.rank_source,
            "stored_edges": self.stored_edges,
            "tracked_elements": len(self._ranks),
            "edges_seen": self._edges_seen,
            "edges_discarded": self._edges_discarded,
            "evictions": self._evictions,
            "admission_threshold": self._admission_threshold,
            "space_peak": self.space.peak,
        }
