"""Ensembles of independent sketches.

Section 1.3.2 notes that "all the algorithms presented here construct O~(1)
independent instances of the sketch" — repeating the construction with
independent hash functions and aggregating is how the failure probability is
driven down to ``1/n`` without blowing up any single sketch.  This module
makes that pattern a first-class object:

* :class:`SketchEnsemble` — ``R`` independent :class:`StreamingSketchBuilder`
  instances fed from the same edge stream.  It exposes

  - a **median-of-estimates** coverage estimator (the standard way to turn
    per-sketch ``1 ± ε`` estimates with constant failure probability into a
    high-probability estimate), and
  - a **best-of-R** k-cover solver: run greedy on every sketch and keep the
    candidate whose *median estimated* coverage is largest, so the selection
    rule itself never touches the original graph.

* :class:`EnsembleKCover` — drop-in replacement for
  :class:`repro.core.kcover.StreamingKCover` that uses an ensemble instead of
  a single sketch (same protocol, single pass, ``R×`` the space).
"""

from __future__ import annotations

import statistics
from typing import Iterable, Sequence

from repro.coverage.bipartite import BipartiteGraph
from repro.core.hashing import UniformHash
from repro.core.params import SketchParams
from repro.core.sketch import CoverageSketch
from repro.core.streaming_sketch import StreamingSketchBuilder
from repro.offline.greedy import greedy_k_cover
from repro.parallel import ExecutorBackend, ParallelMapper, as_mapper
from repro.streaming.batches import EventBatch
from repro.streaming.events import EdgeArrival
from repro.streaming.space import SpaceMeter
from repro.utils.rng import derive_seed
from repro.utils.validation import check_positive_int

__all__ = ["SketchEnsemble", "EnsembleKCover"]


def _replica_greedy_job(job: tuple[BipartiteGraph, int, str | None]) -> list[int]:
    """Greedy on one replica sketch (top-level so process pools can ship it)."""
    from repro.coverage.bitset import kernel_for

    graph, k, coverage_backend = job
    return greedy_k_cover(graph, k, kernel=kernel_for(graph, coverage_backend)).selected


class SketchEnsemble:
    """``R`` independent sketches of the same stream, with median aggregation.

    Parameters
    ----------
    params:
        Budgets shared by every replica.
    replicas:
        Number of independent sketches ``R`` (the paper's O~(1)).
    seed:
        Master seed; replica ``i`` hashes with an independently derived seed.
    space:
        Optional shared meter; every stored edge of every replica is charged.
    coverage_backend:
        Optional packed-bitset kernel backend; :meth:`best_k_cover` then
        runs each replica's greedy on a kernel of that replica's sketch
        (identical selections, faster on dense sketches).
    executor:
        Executor backend (or prebuilt :class:`~repro.parallel.ParallelMapper`)
        for :meth:`best_k_cover`'s per-replica greedy runs — the replicas are
        independent, exactly the fan-out shape of the distributed map phase.
        ``None`` keeps the serial loop; results are gathered in replica
        order, so every backend returns the same selection.
    max_workers:
        Pool-size cap for the parallel executors.
    """

    def __init__(
        self,
        params: SketchParams,
        replicas: int = 3,
        *,
        seed: int = 0,
        space: SpaceMeter | None = None,
        coverage_backend: str | None = None,
        executor: str | ExecutorBackend | ParallelMapper | None = None,
        max_workers: int | None = None,
    ) -> None:
        check_positive_int(replicas, "replicas")
        self.params = params
        self.replicas = replicas
        self.coverage_backend = coverage_backend
        self.mapper = as_mapper(executor, max_workers)
        self.space = space if space is not None else SpaceMeter(unit="edges")
        self._builders = [
            StreamingSketchBuilder(
                params,
                hash_fn=UniformHash(derive_seed(seed, f"ensemble-replica-{index}")),
                space=self.space,
            )
            for index in range(replicas)
        ]
        self._sketches: list[CoverageSketch] | None = None

    # ------------------------------------------------------------------ #
    # streaming
    # ------------------------------------------------------------------ #
    def add_edge(self, set_id: int, element: int) -> None:
        """Feed one membership edge to every replica."""
        self._sketches = None
        for builder in self._builders:
            builder.add_edge(set_id, element)

    def process(self, event: EdgeArrival) -> None:
        """Feed one :class:`EdgeArrival` to every replica."""
        self.add_edge(event.set_id, event.element)

    def process_batch(self, batch: EventBatch) -> None:
        """Feed a columnar edge batch to every replica (vectorised per replica)."""
        self._sketches = None
        for builder in self._builders:
            builder.process_batch(batch)

    def consume(self, events: Iterable[EdgeArrival | tuple[int, int]]) -> None:
        """Feed a whole stream of edges."""
        for event in events:
            if isinstance(event, EdgeArrival):
                self.add_edge(event.set_id, event.element)
            else:
                self.add_edge(event[0], event[1])

    # ------------------------------------------------------------------ #
    # aggregation
    # ------------------------------------------------------------------ #
    def sketches(self) -> list[CoverageSketch]:
        """The current replica sketches (finalised lazily, cached)."""
        if self._sketches is None:
            self._sketches = [builder.sketch() for builder in self._builders]
        return self._sketches

    def estimate_coverage(self, set_ids: Sequence[int]) -> float:
        """Median over replicas of the Lemma 2.2 estimator for ``C(S)``."""
        return statistics.median(
            sketch.estimate_coverage(set_ids) for sketch in self.sketches()
        )

    def estimate_total_elements(self) -> float:
        """Median over replicas of the ground-set-size estimate."""
        return statistics.median(
            sketch.estimate_total_elements() for sketch in self.sketches()
        )

    def best_k_cover(self, k: int) -> tuple[list[int], float]:
        """Best-of-R greedy: pick the replica solution with the largest median estimate.

        The per-replica greedy runs are independent, so they fan out over
        the configured executor; candidates come back in replica order and
        the first maximal median estimate wins, which keeps the selection
        identical across serial, thread and process backends.

        Returns the chosen set ids and their median estimated coverage.
        """
        check_positive_int(k, "k")
        candidates = self.mapper.map(
            _replica_greedy_job,
            [(sketch.graph, k, self.coverage_backend) for sketch in self.sketches()],
        )
        best_solution: list[int] = []
        best_estimate = -1.0
        for candidate in candidates:
            estimate = self.estimate_coverage(candidate)
            if estimate > best_estimate:
                best_solution, best_estimate = candidate, estimate
        return best_solution, best_estimate

    def describe(self) -> dict[str, object]:
        """Diagnostics for reports."""
        sketches = self.sketches()
        return {
            "replicas": self.replicas,
            "total_edges": sum(s.num_edges for s in sketches),
            "space_peak": self.space.peak,
            "thresholds": [s.threshold for s in sketches],
            # What the last fan-out actually ran with — ("serial", 1) after
            # a sandbox fallback — not merely the configured plan.
            "executor": self.mapper.last_execution[0],
        }


class EnsembleKCover:
    """Single-pass k-cover using a best-of-R ensemble of sketches.

    Implements the same streaming protocol as
    :class:`repro.core.kcover.StreamingKCover`; the extra replicas multiply
    the space by ``R`` but reduce the probability that one unlucky hash
    function distorts the outcome — the trade Section 1.3.2 alludes to.
    """

    def __init__(
        self,
        num_sets: int,
        num_elements: int,
        k: int,
        epsilon: float = 0.2,
        *,
        replicas: int = 3,
        params: SketchParams | None = None,
        mode: str = "scaled",
        scale: float = 1.0,
        seed: int = 0,
        coverage_backend: str | None = None,
        executor: str | ExecutorBackend | ParallelMapper | None = None,
        max_workers: int | None = None,
    ) -> None:
        from repro.core.kcover import default_kcover_params

        check_positive_int(k, "k")
        self.name = "bateni-sketch-kcover-ensemble"
        self.arrival_model = "edge"
        self.k = k
        self.epsilon = epsilon
        self.params = params or default_kcover_params(
            num_sets, num_elements, k, epsilon, mode=mode, scale=scale
        )
        self.space = SpaceMeter(unit="edges")
        self.ensemble = SketchEnsemble(
            self.params,
            replicas,
            seed=seed,
            space=self.space,
            coverage_backend=coverage_backend,
            executor=executor,
            max_workers=max_workers,
        )
        self._solution: list[int] | None = None

    def start_pass(self, pass_index: int) -> None:
        """Single-pass algorithm."""
        if pass_index > 0:  # pragma: no cover - defensive
            raise RuntimeError("EnsembleKCover is a single-pass algorithm")

    def process(self, event: EdgeArrival) -> None:
        """Feed one edge to every replica."""
        self.ensemble.process(event)

    def process_batch(self, batch: EventBatch) -> None:
        """Feed a columnar edge batch to every replica."""
        self.ensemble.process_batch(batch)

    def finish_pass(self, pass_index: int) -> None:
        """Nothing to finalise until :meth:`result`."""

    def wants_another_pass(self) -> bool:
        """Always ``False``."""
        return False

    def result(self) -> list[int]:
        """Best-of-R greedy selection."""
        if self._solution is None:
            self._solution, _ = self.ensemble.best_k_cover(self.k)
        return self._solution

    def describe(self) -> dict[str, object]:
        """Diagnostics merged from the ensemble."""
        info: dict[str, object] = {"algorithm": self.name, "k": self.k, "epsilon": self.epsilon}
        info.update(self.ensemble.describe())
        return info
