"""The paper's contribution: coverage sketches and streaming algorithms."""

from repro.core.ensemble import EnsembleKCover, SketchEnsemble
from repro.core.hashing import HashFamily, TabulationHash, UniformHash, make_hash
from repro.core.kcover import StreamingKCover, default_kcover_params
from repro.core.l0 import (
    KMVSketch,
    L0CoverageOracle,
    kmv_size_for_epsilon,
    l0_exhaustive_k_cover,
    l0_greedy_k_cover,
)
from repro.core.lowerbound import (
    BoundedMemoryOneCover,
    DisjointnessInstance,
    disjointness_stream,
    evaluate_bounded_memory_protocol,
)
from repro.core.oracle import (
    NoisyCoverageOracle,
    PurificationCoverageOracle,
    oracle_greedy_k_cover,
    purification_to_kcover_instance,
)
from repro.core.params import SketchParams
from repro.core.purification import (
    KPurificationInstance,
    PurificationOracle,
    SearchOutcome,
    adaptive_greedy_search,
    query_lower_bound,
    random_subset_search,
)
from repro.core.setcover import StreamingSetCover, outlier_rate_for_passes
from repro.core.setcover_outliers import (
    GuessChecker,
    GuessOutcome,
    StreamingSetCoverOutliers,
    guess_schedule,
)
from repro.core.sketch import (
    CoverageSketch,
    apply_degree_cap,
    build_h_leq_n,
    build_hp,
    build_hp_prime,
)
from repro.core.streaming_sketch import StreamingSketchBuilder

__all__ = [
    "EnsembleKCover",
    "SketchEnsemble",
    "HashFamily",
    "TabulationHash",
    "UniformHash",
    "make_hash",
    "SketchParams",
    "CoverageSketch",
    "apply_degree_cap",
    "build_h_leq_n",
    "build_hp",
    "build_hp_prime",
    "StreamingSketchBuilder",
    "StreamingKCover",
    "default_kcover_params",
    "StreamingSetCoverOutliers",
    "GuessChecker",
    "GuessOutcome",
    "guess_schedule",
    "StreamingSetCover",
    "outlier_rate_for_passes",
    "NoisyCoverageOracle",
    "PurificationCoverageOracle",
    "oracle_greedy_k_cover",
    "purification_to_kcover_instance",
    "KPurificationInstance",
    "PurificationOracle",
    "SearchOutcome",
    "adaptive_greedy_search",
    "query_lower_bound",
    "random_subset_search",
    "KMVSketch",
    "L0CoverageOracle",
    "kmv_size_for_epsilon",
    "l0_exhaustive_k_cover",
    "l0_greedy_k_cover",
    "BoundedMemoryOneCover",
    "DisjointnessInstance",
    "disjointness_stream",
    "evaluate_bounded_memory_protocol",
]
