"""The k-purification problem (Appendix A).

An instance is a uniformly random assignment of ``k`` *gold* and ``n − k``
*brass* labels to ``n`` items.  The solver never sees the labels; it only has
access to the oracle

.. math::

   \\mathrm{Pure}_\\varepsilon(S) = \\begin{cases}
      0 & \\text{if } \\frac{k|S|}{n} - \\varepsilon\\bigl(\\frac{k|S|}{n} +
          \\frac{k^2}{n}\\bigr) \\le \\mathrm{Gold}(S) \\le
          \\frac{k|S|}{n} + \\varepsilon\\bigl(\\frac{k|S|}{n} +
          \\frac{k^2}{n}\\bigr), \\\\
      1 & \\text{otherwise},
   \\end{cases}

and must find any query set with ``Pure = 1`` (a set whose gold content
deviates noticeably from the expectation of a random set of its size).

Theorem A.2: every randomised algorithm that succeeds with probability ``δ``
must issue at least ``(δ/2)·exp(ε²k²/(3n))`` oracle queries.  The reduction
of Theorem 1.3 then turns this into the impossibility of approximating
k-cover through a ``(1 ± ε)``-approximate coverage oracle; the companion
module :mod:`repro.core.oracle` builds that reduction.

Besides the instance and oracle, this module provides two query strategies
used by the ``bench_oracle_hardness`` experiment:

* :func:`random_subset_search` — the natural attack: query uniformly random
  size-``s`` subsets until one purifies.
* :func:`adaptive_greedy_search` — a mildly adaptive attack that grows a
  candidate set item by item; it fares no better, as the theorem predicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.utils.rng import spawn_rng
from repro.utils.validation import check_open_unit, check_positive_int

__all__ = [
    "KPurificationInstance",
    "PurificationOracle",
    "SearchOutcome",
    "random_subset_search",
    "adaptive_greedy_search",
    "query_lower_bound",
]


@dataclass
class KPurificationInstance:
    """A hidden gold/brass labelling of ``n`` items."""

    num_items: int
    num_gold: int
    gold_items: frozenset[int]

    @classmethod
    def random(cls, num_items: int, num_gold: int, *, seed: int = 0) -> "KPurificationInstance":
        """Draw the gold items uniformly at random (the problem's distribution)."""
        check_positive_int(num_items, "num_items")
        check_positive_int(num_gold, "num_gold")
        if num_gold > num_items:
            raise ValueError("num_gold cannot exceed num_items")
        rng = spawn_rng(seed, "k-purification")
        gold = frozenset(int(i) for i in rng.choice(num_items, size=num_gold, replace=False))
        return cls(num_items=num_items, num_gold=num_gold, gold_items=gold)

    def gold_count(self, items: Iterable[int]) -> int:
        """``Gold(S)``: number of gold items in the query set."""
        return sum(1 for item in items if item in self.gold_items)


class PurificationOracle:
    """The ``Pure_ε`` oracle with query counting."""

    def __init__(self, instance: KPurificationInstance, epsilon: float) -> None:
        check_open_unit(epsilon, "epsilon")
        self.instance = instance
        self.epsilon = epsilon
        self.queries = 0

    def band(self, size: int) -> tuple[float, float]:
        """The inclusive [low, high] band of gold counts that report 0."""
        n = self.instance.num_items
        k = self.instance.num_gold
        expected = k * size / n
        slack = self.epsilon * (k * size / n + k * k / n)
        return expected - slack, expected + slack

    def __call__(self, items: Iterable[int]) -> int:
        """Query the oracle: 1 iff the gold count escapes the band."""
        items = set(items)
        self.queries += 1
        low, high = self.band(len(items))
        gold = self.instance.gold_count(items)
        return 0 if low <= gold <= high else 1

    def reset(self) -> None:
        """Reset the query counter."""
        self.queries = 0


@dataclass
class SearchOutcome:
    """Result of running a purification search strategy."""

    found: bool
    queries: int
    witness: tuple[int, ...] = field(default_factory=tuple)


def random_subset_search(
    oracle: PurificationOracle,
    *,
    subset_size: int | None = None,
    max_queries: int = 10_000,
    seed: int = 0,
) -> SearchOutcome:
    """Query uniformly random subsets until one purifies or the budget runs out.

    ``subset_size`` defaults to ``k`` (the reduction of Theorem 1.3 cares
    about size-``k`` queries).
    """
    n = oracle.instance.num_items
    size = subset_size if subset_size is not None else oracle.instance.num_gold
    size = max(1, min(size, n))
    rng = spawn_rng(seed, "purification-random-search")
    for _ in range(max_queries):
        subset = rng.choice(n, size=size, replace=False)
        if oracle(subset) == 1:
            return SearchOutcome(found=True, queries=oracle.queries, witness=tuple(int(i) for i in subset))
    return SearchOutcome(found=False, queries=oracle.queries)


def adaptive_greedy_search(
    oracle: PurificationOracle,
    *,
    max_queries: int = 10_000,
    seed: int = 0,
) -> SearchOutcome:
    """A mildly adaptive attack: grow a random prefix, querying at every size.

    Each round draws a fresh random permutation of the items and queries its
    prefixes of increasing size.  Because ``Pure`` reveals a single bit and
    the band widens with the query size, adaptivity does not help — which is
    what Theorem A.2 formalises and the benchmark demonstrates.
    """
    n = oracle.instance.num_items
    rng = spawn_rng(seed, "purification-adaptive-search")
    while oracle.queries < max_queries:
        order = rng.permutation(n)
        prefix: list[int] = []
        for item in order:
            if oracle.queries >= max_queries:
                break
            prefix.append(int(item))
            if oracle(prefix) == 1:
                return SearchOutcome(found=True, queries=oracle.queries, witness=tuple(prefix))
    return SearchOutcome(found=False, queries=oracle.queries)


def query_lower_bound(
    num_items: int, num_gold: int, epsilon: float, success_probability: float = 0.5
) -> float:
    """Theorem A.2's lower bound ``(δ/2)·exp(ε²k²/(3n))`` on the query count."""
    check_positive_int(num_items, "num_items")
    check_positive_int(num_gold, "num_gold")
    check_open_unit(epsilon, "epsilon")
    exponent = (epsilon**2) * (num_gold**2) / (3.0 * num_items)
    return (success_probability / 2.0) * float(np.exp(exponent))
